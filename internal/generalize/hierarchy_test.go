package generalize

import (
	"testing"
	"testing/quick"

	"repro/internal/relational"
)

func TestNumericHierarchy(t *testing.T) {
	h, err := NewNumericHierarchy(5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 5 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	v := relational.Float(72)
	if got := h.Generalize(v, 0); !relational.Equal(got, v) {
		t.Errorf("level 0 = %s", got)
	}
	if got := h.Generalize(v, 1); got.Display() != "[70-75)" {
		t.Errorf("level 1 = %s", got.Display())
	}
	if got := h.Generalize(v, 2); got.Display() != "[70-80)" {
		t.Errorf("level 2 = %s", got.Display())
	}
	if got := h.Generalize(v, 3); got.Display() != "[60-80)" {
		t.Errorf("level 3 = %s", got.Display())
	}
	if got := h.Generalize(v, 4); !relational.Equal(got, Suppressed) {
		t.Errorf("top level = %s, want *", got)
	}
	// Out-of-range levels clamp.
	if got := h.Generalize(v, 99); !relational.Equal(got, Suppressed) {
		t.Errorf("clamped level = %s", got)
	}
	if got := h.Generalize(v, -3); !relational.Equal(got, v) {
		t.Errorf("negative level = %s", got)
	}
	// Int input works; text input suppresses; NULL passes through.
	if got := h.Generalize(relational.Int(72), 1); got.Display() != "[70-75)" {
		t.Errorf("int input = %s", got.Display())
	}
	if got := h.Generalize(relational.Text("x"), 1); !relational.Equal(got, Suppressed) {
		t.Errorf("text input = %s", got)
	}
	if got := h.Generalize(relational.Null(), 3); !got.IsNull() {
		t.Errorf("NULL should pass through, got %s", got)
	}
}

func TestNumericHierarchyErrors(t *testing.T) {
	if _, err := NewNumericHierarchy(0, 2, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewNumericHierarchy(5, 1, 1); err == nil {
		t.Error("factor 1 should fail")
	}
	if _, err := NewNumericHierarchy(5, 2, 0); err == nil {
		t.Error("zero depth should fail")
	}
}

// Property: generalization is deterministic and level-monotone in class
// coarseness — two values in the same bucket at level L stay together at
// every higher range level.
func TestNumericBucketsNest(t *testing.T) {
	h, _ := NewNumericHierarchy(5, 2, 4)
	f := func(a, b int16, lvRaw uint8) bool {
		lv := 1 + int(lvRaw)%(h.Levels()-2) // a range level
		va, vb := relational.Float(float64(a)), relational.Float(float64(b))
		if h.Generalize(va, lv).Display() != h.Generalize(vb, lv).Display() {
			return true // not in same bucket: nothing to check
		}
		for l := lv + 1; l < h.Levels()-1; l++ {
			if h.Generalize(va, l).Display() != h.Generalize(vb, l).Display() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCategoryHierarchy(t *testing.T) {
	h, err := NewCategoryHierarchy(map[string]string{
		"calgary":  "alberta",
		"edmonton": "alberta",
		"alberta":  "canada",
		"toronto":  "ontario",
		"ontario":  "canada",
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 4 { // identity + 2 ancestor levels + suppression
		t.Fatalf("Levels = %d", h.Levels())
	}
	v := relational.Text("Calgary")
	if got := h.Generalize(v, 1); got.Display() != "alberta" {
		t.Errorf("level 1 = %s", got.Display())
	}
	if got := h.Generalize(v, 2); got.Display() != "canada" {
		t.Errorf("level 2 = %s", got.Display())
	}
	if got := h.Generalize(v, 3); !relational.Equal(got, Suppressed) {
		t.Errorf("level 3 = %s", got)
	}
	// Value already at root stays there below suppression.
	if got := h.Generalize(relational.Text("canada"), 2); got.Display() != "canada" {
		t.Errorf("root stays: %s", got.Display())
	}
	// Unknown category stays itself at ancestor levels (treated as root).
	if got := h.Generalize(relational.Text("mars"), 1); got.Display() != "mars" {
		t.Errorf("unknown category = %s", got.Display())
	}
	// Non-text suppresses at range levels.
	if got := h.Generalize(relational.Int(5), 1); !relational.Equal(got, Suppressed) {
		t.Errorf("non-text = %s", got)
	}
}

func TestCategoryHierarchyErrors(t *testing.T) {
	if _, err := NewCategoryHierarchy(map[string]string{}); err == nil {
		t.Error("empty hierarchy should fail")
	}
	if _, err := NewCategoryHierarchy(map[string]string{"a": "b", "b": "a"}); err == nil {
		t.Error("cycle should fail")
	}
}

func TestSuppressionHierarchy(t *testing.T) {
	var h SuppressionHierarchy
	if h.Levels() != 2 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	v := relational.Text("ssn-123")
	if got := h.Generalize(v, 0); !relational.Equal(got, v) {
		t.Errorf("level 0 = %s", got)
	}
	if got := h.Generalize(v, 1); !relational.Equal(got, Suppressed) {
		t.Errorf("level 1 = %s", got)
	}
	if got := h.Generalize(relational.Null(), 1); !got.IsNull() {
		t.Errorf("NULL = %s", got)
	}
}

func TestRoundingHierarchy(t *testing.T) {
	h, err := NewRoundingHierarchy(5, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 5 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	v := relational.Float(72.4)
	checks := map[int]float64{1: 70, 2: 70, 3: 75}
	for lv, want := range checks {
		got, _ := h.Generalize(v, lv).AsFloat()
		if got != want {
			t.Errorf("level %d = %g, want %g", lv, got, want)
		}
	}
	if got := h.Generalize(v, 4); !relational.Equal(got, Suppressed) {
		t.Errorf("top = %s", got)
	}
	if _, err := NewRoundingHierarchy(); err == nil {
		t.Error("no steps should fail")
	}
	if _, err := NewRoundingHierarchy(5, 5); err == nil {
		t.Error("non-increasing steps should fail")
	}
	if _, err := NewRoundingHierarchy(-1); err == nil {
		t.Error("negative step should fail")
	}
}
