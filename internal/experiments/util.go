// Package experiments regenerates every table and figure of the paper plus
// the quantitative programme it defines but only sketches (the experiment
// index in DESIGN.md). Each experiment is a pure function returning typed
// rows; Fprint helpers render them as aligned text tables for the
// cmd/experiments binary and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders rows as an aligned text table with a header rule.
func WriteTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// b renders a 0/1 flag in the paper's w_i / default_i style.
func b(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
