// Social network example: a site revises its privacy policy three times —
// the "frequently changing privacy policies on social networking sites" that
// Secs. 1 and 10 call out. A synthetic Westin population of members is
// audited across versions: every revision widens some dimension, P(W) and
// defaults accumulate, and the what-if engine prices each change before
// adoption (Eq. 31).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/economics"
	"repro/internal/population"
	"repro/internal/privacy"
)

func main() {
	const (
		posts   = "posts"
		profile = "profile"
		contact = "contact"
	)
	purposes := []privacy.Purpose{"service", "ads"}

	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: posts, Sensitivity: 2, Purposes: purposes},
			{Name: profile, Sensitivity: 3, Purposes: purposes},
			{Name: contact, Sensitivity: 5, Purposes: purposes},
		},
	}, 404)
	if err != nil {
		log.Fatal(err)
	}
	members := gen.Generate(5000)
	pop := population.PrefsOf(members)
	sigma := gen.AttributeSensitivities()
	fmt.Printf("members: %d %v\n\n", len(pop), population.SegmentCounts(members))

	// v1: conservative launch policy — service purpose only.
	v1 := privacy.NewHousePolicy("v1-launch")
	for _, attr := range []string{posts, profile, contact} {
		v1.Add(attr, privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 2, Retention: 2})
	}
	// v2: posts become world-visible and retained indefinitely.
	v2 := v1.Clone("v2-public-posts")
	v2 = v2.Widen("v2-public-posts", posts, privacy.DimVisibility, 3)
	v2 = v2.Widen("v2-public-posts", posts, privacy.DimRetention, 3)
	// v3: profile data flows to the ads purpose at full granularity.
	v3 := v2.AddPurpose("v3-ads", profile,
		privacy.Tuple{Purpose: "ads", Visibility: 3, Granularity: 3, Retention: 4})
	// v4: contact info joins the ads pipeline too.
	v4 := v3.AddPurpose("v4-ads-contact", contact,
		privacy.Tuple{Purpose: "ads", Visibility: 3, Granularity: 3, Retention: 4})

	versions := []*privacy.HousePolicy{v1, v2, v3, v4}

	// Audit each version against the full launch population.
	fmt.Println("policy version audit (full launch population):")
	fmt.Printf("%-18s %8s %12s %12s\n", "version", "P(W)", "P(Default)", "Violations")
	for _, hp := range versions {
		a, err := core.NewAssessor(hp, sigma, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rep := a.AssessPopulation(pop)
		fmt.Printf("%-18s %8.4f %12.4f %12.0f\n", hp.Name, rep.PW, rep.PDefault, rep.TotalViolations)
	}

	// Price each transition with the what-if engine.
	const baseU = 4.0 // ad revenue per member per quarter
	fmt.Println("\ntransition pricing (Eq. 31):")
	for i := 1; i < len(versions); i++ {
		w, err := economics.Compare(versions[i-1], versions[i], sigma, core.Options{}, pop, baseU)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s → %s: ΔP(Default)=%+.4f, adopt only if extra utility per member T > %.3f\n",
			versions[i-1].Name, versions[i].Name, w.DeltaPDefault, w.BreakEvenT)
	}

	// Run the transitions as an expansion scenario where defaulted members
	// actually leave, and find where the site should have stopped.
	steps := []economics.Step{
		{Label: "v2 public posts", Apply: func(*privacy.HousePolicy) *privacy.HousePolicy { return v2 }, ExtraUtility: 1.0},
		{Label: "v3 ads on profile", Apply: func(*privacy.HousePolicy) *privacy.HousePolicy { return v3 }, ExtraUtility: 2.0},
		{Label: "v4 ads on contact", Apply: func(*privacy.HousePolicy) *privacy.HousePolicy { return v4 }, ExtraUtility: 1.5},
	}
	sc := &economics.Scenario{BasePolicy: v1, AttrSens: sigma, BaseUtility: baseU}
	points, err := sc.Run(pop, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlive rollout (defaulted members leave):")
	fmt.Printf("%-22s %10s %12s %12s %10s\n", "step", "members", "utility", "break-even", "justified")
	for _, p := range points {
		fmt.Printf("%-22s %10d %12.0f %12.3f %10v\n", p.Label, p.NFuture, p.UtilityFuture, p.BreakEvenT, p.Justified)
	}
	opt := economics.OptimalStep(points)
	fmt.Printf("\noptimal stopping point: %q (utility %.0f)\n", points[opt].Label, points[opt].UtilityFuture)
}
