// Package floatutil provides the epsilon comparisons the floatcmp checker
// (internal/analysis, cmd/ppdblint) points to. The paper's severity sums
// (Eqs. 14-16) and utility calculus (Eqs. 25-31) accumulate float64 terms
// whose exact bit patterns depend on summation order, so code must never
// compare them with == / != — use Eq, Zero or an explicit EqTol tolerance.
package floatutil

import "math"

// Tolerance is the default comparison tolerance. Severity terms are
// products of small integers and sensitivities in [0, 10], so 1e-9 sits
// far below any meaningful difference while absorbing summation-order
// noise.
const Tolerance = 1e-9

// Eq reports whether a and b are equal within Tolerance, absolutely or
// relative to the larger magnitude. NaNs are never equal; equal infinities
// are.
func Eq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:ignore floatcmp exact equality is the fast path and the only way infinities compare equal
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) {
		return false // opposite infinities, or inf vs finite
	}
	return diff <= Tolerance || diff <= Tolerance*math.Max(math.Abs(a), math.Abs(b))
}

// EqTol reports |a−b| ≤ tol with an explicit absolute tolerance. NaNs are
// never equal; equal infinities are.
func EqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:ignore floatcmp exact equality is the fast path and the only way infinities compare equal
		return true
	}
	diff := math.Abs(a - b)
	return !math.IsInf(diff, 0) && diff <= tol
}

// Zero reports whether x is within Tolerance of zero.
func Zero(x float64) bool { return math.Abs(x) <= Tolerance }

// Less reports a < b beyond Tolerance (i.e. meaningfully less, not noise).
func Less(a, b float64) bool { return b-a > Tolerance && !Eq(a, b) }
