package relational

import (
	"strings"
	"testing"
)

// Additional edge-case coverage: expression tree walks, grouped evaluation
// of complex items, lexer corners and statement marker types.

func TestGroupedCompositeExpressions(t *testing.T) {
	db := fixtureDB(t)
	// Aggregates inside arithmetic, NOT, IS NULL, IN — all walked by
	// containsAgg / collectAggs / evalGrouped.
	res, err := db.Query(`
		SELECT city,
		       SUM(age) / COUNT(*) AS mean_age,
		       MAX(weight) IS NULL AS no_weights,
		       COUNT(*) IN (2, 3) AS small
		FROM patients GROUP BY city ORDER BY city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	calgary := res.Rows[0]
	if mean, _ := calgary[1].AsInt(); mean != 43 { // (34+51+45)/3 integer division
		t.Errorf("mean_age = %v", calgary[1])
	}
	if b, _ := calgary[2].AsBool(); b {
		t.Errorf("no_weights = %v", calgary[2])
	}
	if b, _ := calgary[3].AsBool(); !b {
		t.Errorf("small = %v", calgary[3])
	}
	// Unary minus over an aggregate.
	res, err = db.Query("SELECT -COUNT(*) AS neg FROM patients")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != -5 {
		t.Errorf("neg count = %v", res.Rows[0][0])
	}
}

func TestGroupedHavingWithAggExpression(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query(`
		SELECT city FROM patients
		GROUP BY city
		HAVING NOT (COUNT(*) < 3)
		ORDER BY city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Display() != "calgary" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByNullsPlacement(t *testing.T) {
	db := fixtureDB(t)
	// dave has NULL weight: first ascending, last descending.
	asc, err := db.Query("SELECT name FROM patients ORDER BY weight, name")
	if err != nil {
		t.Fatal(err)
	}
	if asc.Rows[0][0].Display() != "dave" {
		t.Errorf("ascending first = %v", asc.Rows[0][0])
	}
	desc, err := db.Query("SELECT name FROM patients ORDER BY weight DESC, name")
	if err != nil {
		t.Fatal(err)
	}
	if desc.Rows[len(desc.Rows)-1][0].Display() != "dave" {
		t.Errorf("descending last = %v", desc.Rows)
	}
}

func TestLexerNumberForms(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT 1e3, 2.5E2, 1.5e+2, 12e-1 FROM patients LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1000, 250, 150, 1.2}
	for i, w := range want {
		if f, _ := res.Rows[0][i].AsFloat(); f != w {
			t.Errorf("col %d = %v, want %g", i, res.Rows[0][i], w)
		}
	}
	// Malformed number.
	if _, err := db.Query("SELECT 12abc FROM patients"); err == nil {
		t.Error("malformed number should fail")
	}
}

func TestStatementMarkers(t *testing.T) {
	// The stmt() marker methods exist to seal the Statement interface; call
	// them for completeness.
	for _, st := range []Statement{
		CreateTableStmt{}, DropTableStmt{}, InsertStmt{},
		SelectStmt{}, UpdateStmt{}, DeleteStmt{},
	} {
		st.stmt()
	}
}

func TestAggAndSubqueryStringForms(t *testing.T) {
	a := Agg{Fn: AggSum, Arg: ColRef{Name: "x"}}
	if a.String() != "SUM(x)" {
		t.Errorf("Agg.String = %q", a.String())
	}
	star := Agg{Fn: AggCount, Star: true}
	if star.String() != "COUNT(*)" {
		t.Errorf("star = %q", star.String())
	}
	if _, err := star.Eval(MapEnv{}); err == nil {
		t.Error("raw Agg.Eval must error")
	}
	q := InSubquery{X: ColRef{Name: "id"}}
	if !strings.Contains(q.String(), "IN (SELECT") {
		t.Errorf("InSubquery.String = %q", q.String())
	}
	qn := InSubquery{Not: true, X: ColRef{Name: "id"}}
	if !strings.Contains(qn.String(), "NOT IN") {
		t.Errorf("not-in String = %q", qn.String())
	}
	if _, err := q.Eval(MapEnv{}); err == nil {
		t.Error("raw InSubquery.Eval must error")
	}
	// Kind and BinOp string forms.
	if Kind(99).String() == "" || BinOp(99).String() == "" || ColType(99).String() == "" {
		t.Error("fallback String forms must be non-empty")
	}
	if AggFn(99).String() == "" {
		t.Error("AggFn fallback String must be non-empty")
	}
}

func TestInnerWithoutJoinBacktracks(t *testing.T) {
	db := fixtureDB(t)
	// INNER not followed by JOIN: the parser backtracks and the statement
	// fails cleanly ("inner" is reserved and cannot be an alias).
	if _, err := db.Query("SELECT name FROM patients INNER WHERE id = 1"); err == nil {
		t.Error("INNER without JOIN should fail to parse")
	}
	// The full INNER JOIN spelling still works.
	res, err := db.Query("SELECT p.name FROM patients p INNER JOIN visits v ON p.id = v.patient_id WHERE v.id = 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Display() != "alice" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestParseExprTrailingInput(t *testing.T) {
	if _, err := ParseExpr("1 + 2 extra"); err == nil {
		t.Error("trailing input should fail")
	}
	if _, err := ParseExpr("1 +"); err == nil {
		t.Error("dangling operator should fail")
	}
}

func TestSubqueryInsideInListAndNesting(t *testing.T) {
	db := fixtureDB(t)
	// Nested IN subquery inside another subquery's WHERE.
	res, err := db.Query(`
		SELECT name FROM patients
		WHERE id IN (
			SELECT patient_id FROM visits
			WHERE patient_id IN (SELECT id FROM patients WHERE city = 'calgary')
		)
		ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // alice, bob visited and live in calgary
		t.Errorf("rows = %v", res.Rows)
	}
}
