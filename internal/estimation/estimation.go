// Package estimation implements the legacy-system programme of Sec. 10: "in
// the absence of explicit tracking of providers' privacy preferences or
// knowledge of the specific values v_i at which data providers default, the
// model identifies the quantities that require estimation. Long-term
// observation of a particular house and its population of users … can be
// used to identify the number of users who will default as a house expands
// its privacy policy. This in turn can be used to empirically construct a
// cumulative distribution function of the number of defaults as the house
// expands its privacy policies."
//
// Concretely: each historical policy version contributes an observation
// (severity index S_k, observed default fraction F_k). Because defaults are
// triggered by Violation_i exceeding a fixed threshold, the true mapping
// S → default fraction is non-decreasing; we therefore fit a monotone curve
// by isotonic regression (pool-adjacent-violators) and interpolate to
// predict the default fraction of a policy the house has not yet tried.
// The severity index of a candidate policy is computed against a small
// surveyed sample of preferences (the paper's "survey questions" route).
package estimation

import (
	"fmt"
	"sort"

	"repro/internal/analysis/floatutil"
	"repro/internal/core"
	"repro/internal/privacy"
)

// Observation is one historical data point: a policy's severity index and
// the default fraction observed under it.
type Observation struct {
	Severity    float64 // severity index S_k (e.g. mean Violation_i on a survey sample)
	DefaultFrac float64 // observed fraction of providers that defaulted
}

// Curve is a fitted monotone severity → default-fraction mapping.
type Curve struct {
	xs, ys []float64 // strictly increasing xs, non-decreasing ys
}

// Fit sorts the observations by severity, averages duplicates, and applies
// pool-adjacent-violators to enforce monotonicity. At least two distinct
// severity values are required.
func Fit(obs []Observation) (*Curve, error) {
	if len(obs) < 2 {
		return nil, fmt.Errorf("estimation: need at least two observations, got %d", len(obs))
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Severity < sorted[j].Severity })
	for _, o := range sorted {
		if o.DefaultFrac < 0 || o.DefaultFrac > 1 {
			return nil, fmt.Errorf("estimation: default fraction %g outside [0, 1]", o.DefaultFrac)
		}
	}
	// Merge duplicate severities by averaging. Severities are Eq. 15 sums,
	// so "duplicate" must tolerate summation-order noise or two providers
	// with the same preferences would produce two isotonic knots.
	var xs, ys, ws []float64
	for _, o := range sorted {
		if len(xs) > 0 && floatutil.Eq(o.Severity, xs[len(xs)-1]) {
			n := ws[len(ws)-1]
			ys[len(ys)-1] = (ys[len(ys)-1]*n + o.DefaultFrac) / (n + 1)
			ws[len(ws)-1] = n + 1
			continue
		}
		xs = append(xs, o.Severity)
		ys = append(ys, o.DefaultFrac)
		ws = append(ws, 1)
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("estimation: need at least two distinct severity values")
	}
	pav(ys, ws)
	return &Curve{xs: xs, ys: ys}, nil
}

// pav is the pool-adjacent-violators algorithm: it replaces ys in place by
// the best non-decreasing fit under weights ws.
func pav(ys, ws []float64) {
	type block struct {
		sum, w float64
		count  int
	}
	var blocks []block
	for i := range ys {
		blocks = append(blocks, block{sum: ys[i] * ws[i], w: ws[i], count: 1})
		for len(blocks) > 1 {
			a, b := blocks[len(blocks)-2], blocks[len(blocks)-1]
			if a.sum/a.w <= b.sum/b.w {
				break
			}
			blocks = blocks[:len(blocks)-1]
			blocks[len(blocks)-1] = block{sum: a.sum + b.sum, w: a.w + b.w, count: a.count + b.count}
		}
	}
	i := 0
	for _, bl := range blocks {
		mean := bl.sum / bl.w
		for k := 0; k < bl.count; k++ {
			ys[i] = mean
			i++
		}
	}
}

// At predicts the default fraction at severity x by linear interpolation,
// clamping outside the observed range (the curve never extrapolates above
// the largest observed fraction — a deliberate, conservative choice).
func (c *Curve) At(x float64) float64 {
	if x <= c.xs[0] {
		return c.ys[0]
	}
	n := len(c.xs)
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, x)
	// xs[i-1] < x ≤ xs[i]
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Knots returns copies of the fitted curve's support points.
func (c *Curve) Knots() (xs, ys []float64) {
	xs = append(xs, c.xs...)
	ys = append(ys, c.ys...)
	return xs, ys
}

// SeverityIndex computes the severity index of a policy against a surveyed
// preference sample: the mean Violation_i (Eq. 15) over the sample. The
// sample stands in for the unknown full population (Sec. 10's survey
// route); only its relative ordering across policies matters for the fit.
func SeverityIndex(policy *privacy.HousePolicy, attrSens privacy.AttributeSensitivities,
	opts core.Options, sample []*privacy.Prefs) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("estimation: empty survey sample")
	}
	assessor, err := core.NewAssessor(policy, attrSens, opts)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, p := range sample {
		total += assessor.Severity(p)
	}
	return total / float64(len(sample)), nil
}

// History accumulates (policy, observed default fraction) pairs and fits
// the curve on demand.
type History struct {
	attrSens privacy.AttributeSensitivities
	opts     core.Options
	sample   []*privacy.Prefs
	obs      []Observation
}

// NewHistory builds a history around a fixed survey sample.
func NewHistory(attrSens privacy.AttributeSensitivities, opts core.Options, sample []*privacy.Prefs) (*History, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("estimation: empty survey sample")
	}
	return &History{attrSens: attrSens, opts: opts, sample: sample}, nil
}

// Observe records a historical policy with its observed default fraction.
func (h *History) Observe(policy *privacy.HousePolicy, defaultFrac float64) error {
	s, err := SeverityIndex(policy, h.attrSens, h.opts, h.sample)
	if err != nil {
		return err
	}
	if defaultFrac < 0 || defaultFrac > 1 {
		return fmt.Errorf("estimation: default fraction %g outside [0, 1]", defaultFrac)
	}
	h.obs = append(h.obs, Observation{Severity: s, DefaultFrac: defaultFrac})
	return nil
}

// Len returns the number of observations recorded.
func (h *History) Len() int { return len(h.obs) }

// Fit fits the monotone curve over the recorded history.
func (h *History) Fit() (*Curve, error) { return Fit(h.obs) }

// Predict estimates the default fraction a candidate policy would cause.
func (h *History) Predict(policy *privacy.HousePolicy) (float64, error) {
	curve, err := h.Fit()
	if err != nil {
		return 0, err
	}
	s, err := SeverityIndex(policy, h.attrSens, h.opts, h.sample)
	if err != nil {
		return 0, err
	}
	return curve.At(s), nil
}
