// Healthcare example: a clinic runs a PPDB over patient records with
// purposes care / research / billing. It demonstrates purpose-bound access
// with visibility gating, granularity degradation on research reads,
// retention sweeping on a simulated clock, the audit trail, and α-PPDB
// certification — the full Sec. 10 prototype on the paper's motivating
// domain (Westin ranks health data most sensitive).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/generalize"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/relational"
)

const corpus = `
policy "clinic-v1" {
  attr patient {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=specific retention=month
    tuple purpose=billing visibility=house granularity=specific retention=year
  }
  attr condition {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  attr balance {
    tuple purpose=billing visibility=house granularity=specific retention=year
  }
  sensitivity condition 5
  sensitivity weight 4
  sensitivity balance 5
}

provider "maria" threshold 80 {
  attr patient {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=specific retention=month
    tuple purpose=billing visibility=house granularity=specific retention=year
  }
  attr condition {
    sens value=2 v=2 g=2 r=1
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  attr balance {
    tuple purpose=billing visibility=house granularity=specific retention=year
  }
}

provider "omar" threshold 15 {
  # Omar consents to care only — research use trips the implicit-zero rule.
  attr patient {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=billing visibility=house granularity=specific retention=year
  }
  attr condition {
    sens value=4 v=3 g=3 r=2
    tuple purpose=care visibility=house granularity=specific retention=year
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
  }
  attr balance {
    tuple purpose=billing visibility=house granularity=specific retention=year
  }
}
`

func main() {
	doc, err := policydsl.Parse(corpus)
	if err != nil {
		log.Fatal(err)
	}

	weightH, err := generalize.NewNumericHierarchy(5, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	condH, err := generalize.NewCategoryHierarchy(map[string]string{
		"flu": "respiratory", "asthma": "respiratory",
		"diabetes": "metabolic", "hypertension": "cardiovascular",
		"respiratory": "illness", "metabolic": "illness", "cardiovascular": "illness",
	})
	if err != nil {
		log.Fatal(err)
	}

	db, err := ppdb.New(ppdb.Config{
		Policy:   doc.Policy,
		AttrSens: doc.AttrSens,
		Hierarchies: map[string]generalize.Hierarchy{
			"weight":    weightH,
			"condition": condH,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	schema, err := relational.NewSchema([]relational.Column{
		{Name: "patient", Type: relational.TypeText, PrimaryKey: true},
		{Name: "condition", Type: relational.TypeText},
		{Name: "weight", Type: relational.TypeFloat},
		{Name: "balance", Type: relational.TypeFloat},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterTable("records", schema, "patient"); err != nil {
		log.Fatal(err)
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			log.Fatal(err)
		}
	}
	mustInsert(db, "maria", relational.Row{relational.Text("maria"), relational.Text("asthma"), relational.Float(61.5), relational.Float(120)})
	mustInsert(db, "omar", relational.Row{relational.Text("omar"), relational.Text("diabetes"), relational.Float(92), relational.Float(450)})

	// 1. A clinician (house class) reads exact data for care.
	show(db, "clinician reads for care (exact)", ppdb.AccessRequest{
		Requester: "dr-chen", Purpose: "care", Visibility: 2,
		SQL: "SELECT patient, condition, weight FROM records ORDER BY patient",
	})

	// 2. A research partner (third-party class) gets degraded granularity.
	show(db, "research partner reads (degraded to 'partial')", ppdb.AccessRequest{
		Requester: "uni-lab", Purpose: "research", Visibility: 3,
		SQL: "SELECT patient, condition, weight FROM records ORDER BY patient",
	})

	// 3. Research cannot see billing balances at all.
	_, err = db.Query(ppdb.AccessRequest{
		Requester: "uni-lab", Purpose: "research", Visibility: 3,
		SQL: "SELECT balance FROM records",
	})
	fmt.Printf("\nresearch asks for balances → %v\n", err)

	// 4. Certification: Omar never consented to research, so the implicit-
	//    zero rule flags him and he would default (threshold 15).
	cert, err := db.Certify(0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertification: P(W)=%.2f P(Default)=%.2f α=0.25-PPDB=%v wouldDefault=%v\n",
		cert.Report.PW, cert.Report.PDefault, cert.IsAlphaPPDB, cert.WouldDefault)

	// 5. Retention: advance 60 days; research's month-long grants lapse but
	//    care's year-long grants keep the cells alive. Advance past a year
	//    and the records expire entirely.
	if _, err := db.Advance(400 * 24 * time.Hour); err != nil {
		log.Fatal(err)
	}
	sweep, err := db.Sweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 400 days: sweep expired %d cells, deleted %d rows; records left: %d\n",
		sweep.CellsExpired, sweep.RowsDeleted, db.TableLen("records"))

	// 6. The audit trail captured everything, including the denial.
	fmt.Println("\naudit trail:")
	for _, rec := range db.Audit().Records() {
		verdict := "allowed"
		if !rec.Allowed {
			verdict = "DENIED: " + rec.Reason
		}
		fmt.Printf("  [%s] %s purpose=%s class=%d → %s\n",
			rec.At.Format("2006-01-02"), rec.Requester, rec.Purpose, rec.Visibility, verdict)
	}
}

func mustInsert(db *ppdb.DB, provider string, row relational.Row) {
	if _, err := db.Insert("records", provider, row); err != nil {
		log.Fatal(err)
	}
}

func show(db *ppdb.DB, title string, req ppdb.AccessRequest) {
	fmt.Printf("\n%s:\n", title)
	res, err := db.Query(req)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
		return
	}
	fmt.Printf("  %v\n", res.Columns)
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.Display()
		}
		fmt.Printf("  %v\n", cells)
	}
}
