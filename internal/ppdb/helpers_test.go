package ppdb

import (
	"repro/internal/core"
	"repro/internal/privacy"
)

// coreOptionsWithMatcher builds assessor options carrying a purpose matcher.
func coreOptionsWithMatcher(m privacy.Matcher) core.Options {
	return core.Options{Matcher: m}
}
