// Columnar compilation of the assessment inputs (DESIGN.md §13): the house
// policy is flattened once per Assessor into contiguous slices indexed by a
// dense attribute id, and each provider's effective preference tuples are
// flattened once per registration into parallel columns. The hot
// certification loop (columnar.go) then walks plain slices — no map
// iteration, no string hashing, no per-provider allocation — while
// AssessProvider remains the readable reference implementation the columns
// are compiled to agree with bit-for-bit.
package core

import (
	"repro/internal/privacy"
)

// maxPolicyTuplesPerAttr bounds the per-attribute policy range the compiled
// representation supports: each preference tuple carries a uint64 purpose
// cover mask with one bit per policy tuple of its attribute. Policies wider
// than this are legal — Compile then returns nil and every assessment path
// falls back to the reference AssessProvider.
const maxPolicyTuplesPerAttr = 64

// CompiledPolicy is the house policy flattened for the columnar kernel:
// attribute and purpose strings interned to dense uint32 ids (attribute ids
// assigned in sorted-attribute order), policy tuple levels laid out in
// contiguous per-dimension slices, and per-attribute metadata (Σ^a, house
// purposes, retention ceiling) indexed by attribute id. Built once by
// NewAssessor and immutable afterwards, like the Assessor itself.
type CompiledPolicy struct {
	attrs    *privacy.Interner // attribute id ↔ canonical name, sorted order
	purposes *privacy.Interner // purpose id ↔ canonical purpose string

	attrSens []float64 // attribute id → Σ^a

	// polStart[id]..polStart[id+1] is attribute id's range in the flattened
	// policy columns below, preserving the policy's insertion order within
	// each attribute (the reference enumeration order).
	polStart   []uint32
	polPurpose []uint32 // purpose id per policy tuple
	polV       []int32  // visibility level per policy tuple
	polG       []int32  // granularity level per policy tuple
	polR       []int32  // retention level per policy tuple

	// housePurposes[id] is the sorted purpose set of attribute id — the set
	// the Sec. 5 implicit-zero rule synthesizes against.
	housePurposes [][]privacy.Purpose

	// retCeil[id] is the maximum retention level over attribute id's policy
	// tuples — the "kept while any purpose still needs it" ceiling retention
	// sweeps enforce per column.
	retCeil []privacy.Level

	// maskable is false when some attribute holds more than
	// maxPolicyTuplesPerAttr tuples, overflowing the uint64 cover mask;
	// Compile then declines and callers use the reference path.
	maskable bool
}

// compilePolicy flattens hp. attrSens must already be validated.
func compilePolicy(hp *privacy.HousePolicy, attrSens privacy.AttributeSensitivities) *CompiledPolicy {
	cp := &CompiledPolicy{
		attrs:    privacy.NewInterner(),
		purposes: privacy.NewInterner(),
		maskable: true,
	}
	attrs := hp.Attributes()
	cp.polStart = make([]uint32, 1, len(attrs)+1)
	for _, attr := range attrs {
		cp.attrs.Intern(attr)
		cp.attrSens = append(cp.attrSens, attrSens.Get(attr))
		pols := hp.ForAttribute(attr)
		if len(pols) > maxPolicyTuplesPerAttr {
			cp.maskable = false
		}
		ceil := privacy.LevelZero
		for _, pol := range pols {
			t := pol.Tuple
			cp.polPurpose = append(cp.polPurpose, cp.purposes.Intern(string(t.Purpose)))
			cp.polV = append(cp.polV, int32(t.Visibility))
			cp.polG = append(cp.polG, int32(t.Granularity))
			cp.polR = append(cp.polR, int32(t.Retention))
			if t.Retention > ceil {
				ceil = t.Retention
			}
		}
		cp.polStart = append(cp.polStart, uint32(len(cp.polV)))
		cp.housePurposes = append(cp.housePurposes, hp.PurposesFor(attr))
		cp.retCeil = append(cp.retCeil, ceil)
	}
	return cp
}

// NumAttrs returns the number of policy attributes (ids are 0..NumAttrs-1).
func (cp *CompiledPolicy) NumAttrs() int { return cp.attrs.Len() }

// AttrID resolves an attribute name (canonicalized) to its dense id.
func (cp *CompiledPolicy) AttrID(attr string) (uint32, bool) {
	return cp.attrs.Lookup(privacy.CanonAttr(attr))
}

// AttrName returns the canonical name of attribute id.
func (cp *CompiledPolicy) AttrName(id uint32) string { return cp.attrs.Name(id) }

// Maskable reports whether the policy fits the columnar kernel's per-tuple
// cover masks (no attribute holds more than maxPolicyTuplesPerAttr tuples).
func (cp *CompiledPolicy) Maskable() bool { return cp.maskable }

// RetentionCeiling returns the maximum retention level over the attribute's
// policy tuples, and whether the policy covers the attribute at all — the
// per-column effective retention the sweep enforces (data is kept while any
// purpose still needs it).
func (cp *CompiledPolicy) RetentionCeiling(attr string) (privacy.Level, bool) {
	id, ok := cp.attrs.Lookup(privacy.CanonAttr(attr))
	if !ok {
		return privacy.LevelZero, false
	}
	return cp.retCeil[id], true
}

// CompiledPrefs is one provider's effective preference tuples flattened
// into parallel columns in the reference enumeration order: attributes in
// id (= sorted) order; within an attribute, explicit tuples in insertion
// order followed by Sec. 5 implicit zeros in sorted house-purpose order.
// Tuples that can never pair with a policy tuple (uncovered attribute or
// purpose) are dropped at compile time — they contribute nothing in the
// reference walk either.
//
// A CompiledPrefs is immutable once published (the owning store installs a
// freshly compiled value on every mutation) and valid only against the
// Assessor whose CompiledPolicy it was compiled from; AssessRow checks that
// identity and falls back to the reference path on a stale or nil value.
type CompiledPrefs struct {
	Provider  string
	Threshold float64
	// PrefsVersion is the registration counter the columns were compiled
	// from, stamped by the owning store (internal/ppdb) under its shard
	// lock; with the policy identity below it versions the compiled row the
	// same way the ledger keys its memoized reports.
	PrefsVersion uint64

	policy *CompiledPolicy // compile-time policy identity

	// Hot columns, one entry per effective preference tuple.
	attrID []uint32  // dense attribute id (indexes the policy's columns)
	prefV  []int32   // visibility level
	prefG  []int32   // granularity level
	prefR  []int32   // retention level
	sVal   []float64 // s_i^a (value sensitivity) resolved per purpose
	sV     []float64 // s_i^a[V]
	sG     []float64 // s_i^a[G]
	sR     []float64 // s_i^a[R]
	// cover is the purpose cover mask: bit j set means this tuple is
	// comparable (Eq. 13, under the assessor's matcher) with the j-th policy
	// tuple of its attribute's range. Computed once here so the kernel does
	// no purpose matching at all.
	cover []uint64
	// implicit records whether the tuple was synthesized by the Sec. 5 rule.
	implicit []bool
	// purpose is the cold column: the tuple's purpose string, needed only
	// when a conflict is materialized into a PairConflict.
	purpose []privacy.Purpose
}

// Len returns the number of compiled effective preference tuples.
func (c *CompiledPrefs) Len() int { return len(c.attrID) }

// CurrentFor reports whether the columns were compiled against a's policy —
// the validity check AssessRow applies before trusting them.
func (c *CompiledPrefs) CurrentFor(a *Assessor) bool {
	return c != nil && c.policy == a.compiled
}

// Compile flattens one provider's preferences into the columnar layout for
// this assessor's policy. It returns nil when the policy is not maskable
// (see maxPolicyTuplesPerAttr); callers treat a nil CompiledPrefs as "use
// the reference path". The result references p's strings but never p
// itself, so later mutations of p do not corrupt the columns as long as the
// owning store replaces (rather than edits) registered preferences — the
// convention internal/ppdb already follows.
func (a *Assessor) Compile(p *privacy.Prefs) *CompiledPrefs {
	cp := a.compiled
	if cp == nil || !cp.maskable || p == nil {
		return nil
	}
	m := a.opts.Matcher
	if m == nil {
		m = privacy.EqualityMatcher{}
	}
	c := &CompiledPrefs{Provider: p.Provider, Threshold: p.Threshold, policy: cp}
	for id := 0; id < cp.attrs.Len(); id++ {
		attr := cp.attrs.Name(uint32(id))
		start, end := cp.polStart[id], cp.polStart[id+1]
		if start == end {
			continue
		}
		explicit := len(p.ForAttribute(attr))
		for idx, pref := range a.effectivePrefs(p, attr) {
			var mask uint64
			for j := start; j < end; j++ {
				if m.Covers(pref.Tuple.Purpose, privacy.Purpose(cp.purposes.Name(cp.polPurpose[j]))) {
					mask |= 1 << (j - start)
				}
			}
			if mask == 0 {
				continue // never comparable; contributes nothing (Eq. 13)
			}
			sens := p.Sensitivity(attr, pref.Tuple.Purpose)
			c.attrID = append(c.attrID, uint32(id))
			c.prefV = append(c.prefV, int32(pref.Tuple.Visibility))
			c.prefG = append(c.prefG, int32(pref.Tuple.Granularity))
			c.prefR = append(c.prefR, int32(pref.Tuple.Retention))
			c.sVal = append(c.sVal, sens.Value)
			c.sV = append(c.sV, sens.Visibility)
			c.sG = append(c.sG, sens.Granularity)
			c.sR = append(c.sR, sens.Retention)
			c.cover = append(c.cover, mask)
			// EffectiveFor returns explicit tuples first, then synthesized
			// zeros for house purposes no explicit tuple covers; a
			// synthesized purpose can never equal an explicit one (equality
			// implies coverage under every Matcher), so position alone
			// decides the reference's ImplicitZero flag.
			c.implicit = append(c.implicit, idx >= explicit)
			c.purpose = append(c.purpose, pref.Tuple.Purpose)
		}
	}
	return c
}
