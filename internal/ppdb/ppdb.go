// Package ppdb is the privacy-preserving database prototype the paper calls
// for in Sec. 10: a relational store whose reads are bound to a purpose and
// a requester visibility class, whose answers are degraded to the
// granularity the house policy grants, whose cells expire per the policy's
// retention levels, and whose conformance to provider preferences is
// continuously auditable (α-PPDB certification, Def. 3).
//
// The paper's model is audit-oriented — it quantifies the mismatch between
// policy and preferences. The PPDB adds the enforcement half: the policy is
// also a ceiling on what queries can return, so the stated policy and the
// practiced policy coincide (the transparency requirement of Sec. 1).
package ppdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/generalize"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// Instrumentation (DESIGN.md §10): the paper's headline population
// quantities as live gauges, refreshed on every mutation that can move
// them. One server process holds one live DB; with several DBs in one
// process (tests), the last mutator wins.
var (
	mProviders = metrics.Default.Gauge("ppdb_providers",
		"registered data providers (the population size N)")
	mPW = metrics.Default.Gauge("ppdb_pw",
		"current P(W), the fraction of providers with at least one violation (Def. 2); ledger-backed DBs only")
	mPDefault = metrics.Default.Gauge("ppdb_pdefault",
		"current P(Default), the fraction of providers whose severity exceeds their threshold (Def. 5); ledger-backed DBs only")
)

// publishGaugesLocked refreshes the population gauges from the ledger
// aggregates (O(1)). Without a ledger only the provider count is
// published — recomputing P(W) per mutation would be the O(N) cost
// DisableIncremental opted out of.
func (d *DB) publishGaugesLocked() {
	mProviders.Set(float64(len(d.providers)))
	if d.ledger == nil {
		return
	}
	sum := d.ledger.Summary()
	mPW.Set(sum.PW)
	mPDefault.Set(sum.PDefault)
}

// rowMeta tracks per-row provenance: who provided it and when.
type rowMeta struct {
	provider string
	inserted time.Time
	// expired marks attribute cells already nulled by retention sweeps.
	expired map[string]bool
}

// tableMeta is the PPDB bookkeeping for one registered table.
type tableMeta struct {
	table       *relational.Table
	providerCol string
	rows        map[relational.RowID]*rowMeta
}

// DB is the privacy-preserving database.
type DB struct {
	mu sync.RWMutex

	rdb    *relational.Database
	scales privacy.Scales

	policy   *privacy.HousePolicy
	attrSens privacy.AttributeSensitivities
	opts     core.Options

	providers map[string]*privacy.Prefs
	tables    map[string]*tableMeta

	hierarchies map[string]generalize.Hierarchy
	retention   RetentionSchedule

	now   time.Time
	audit *Audit

	policyLog []PolicyChange

	// assessor is the cached assessor for (policy, attrSens, opts); it is
	// rebuilt only by SetPolicy, so the full-recompute fallback paths never
	// re-validate and reconstruct one per call.
	assessor *core.Assessor
	// ledger is the incremental violation view (nil when
	// Config.DisableIncremental is set); it is constructed once and
	// self-locking, and every provider/policy mutation keeps it current.
	ledger *ledger.Ledger
	// policyVersion counts SetPolicy transitions; prefsVersion is a
	// monotonic counter stamped onto each provider registration. Together
	// they key the ledger's memoized rows.
	policyVersion uint64
	prefsVersion  uint64
}

// PolicyChange records one policy version transition for the audit trail
// (the frequently-changing-policies concern of Secs. 1 and 10).
type PolicyChange struct {
	At       time.Time
	From, To string
	// DeltaPW and DeltaPDefault are the population-level consequences
	// measured at switch time.
	DeltaPW, DeltaPDefault float64
}

// Config configures a new PPDB.
type Config struct {
	// Policy is the house policy HP. Required.
	Policy *privacy.HousePolicy
	// AttrSens is the house Σ vector; nil means all 1.
	AttrSens privacy.AttributeSensitivities
	// Scales for level validation and rendering; zero fields default.
	Scales privacy.Scales
	// Options for the violation assessor.
	Options core.Options
	// Hierarchies supply granularity degradation per attribute; attributes
	// without one are suppressed entirely when the policy grants less than
	// full granularity.
	Hierarchies map[string]generalize.Hierarchy
	// Retention maps retention levels to durations; nil means
	// DefaultRetentionSchedule.
	Retention RetentionSchedule
	// Start is the initial simulated time; zero means a fixed epoch.
	Start time.Time
	// DisableIncremental turns off the violation ledger: certification,
	// self-audits and policy what-ifs fall back to full recomputation over
	// all providers. Assessment results are identical either way; this
	// exists for A/B verification and write-heavy workloads that never
	// certify.
	DisableIncremental bool
}

// New builds a PPDB.
func New(cfg Config) (*DB, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("ppdb: config needs a policy")
	}
	scales := cfg.Scales
	if scales.Visibility == nil {
		scales.Visibility = privacy.DefaultVisibility
	}
	if scales.Granularity == nil {
		scales.Granularity = privacy.DefaultGranularity
	}
	if scales.Retention == nil {
		scales.Retention = privacy.DefaultRetention
	}
	if err := cfg.Policy.Validate(scales); err != nil {
		return nil, err
	}
	if err := cfg.AttrSens.Validate(); err != nil {
		return nil, err
	}
	ret := cfg.Retention
	if ret == nil {
		ret = DefaultRetentionSchedule(scales.Retention)
	}
	if err := ret.Validate(scales.Retention); err != nil {
		return nil, err
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	hier := make(map[string]generalize.Hierarchy, len(cfg.Hierarchies))
	for a, h := range cfg.Hierarchies {
		hier[strings.ToLower(a)] = h
	}
	assessor, err := core.NewAssessor(cfg.Policy, cfg.AttrSens, cfg.Options)
	if err != nil {
		return nil, err
	}
	d := &DB{
		rdb:           relational.NewDatabase(),
		scales:        scales,
		policy:        cfg.Policy,
		attrSens:      cfg.AttrSens,
		opts:          cfg.Options,
		providers:     make(map[string]*privacy.Prefs),
		tables:        make(map[string]*tableMeta),
		hierarchies:   hier,
		retention:     ret,
		now:           start,
		audit:         newAudit(),
		assessor:      assessor,
		policyVersion: 1,
	}
	if !cfg.DisableIncremental {
		led, err := ledger.New(assessor, d.policyVersion)
		if err != nil {
			return nil, err
		}
		d.ledger = led
	}
	d.publishGaugesLocked() // no lock needed: d is not yet shared
	return d, nil
}

// Now returns the simulated clock.
func (d *DB) Now() time.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.now
}

// Advance moves the simulated clock forward and returns the new time.
// Negative durations are rejected.
func (d *DB) Advance(by time.Duration) (time.Time, error) {
	if by < 0 {
		return time.Time{}, fmt.Errorf("ppdb: cannot advance clock by negative duration %s", by)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = d.now.Add(by)
	return d.now, nil
}

// Policy returns the current house policy.
func (d *DB) Policy() *privacy.HousePolicy {
	d.mu.RLock()
	defer d.mu.RUnlock()
	//lint:ignore lockcheck HousePolicy is immutable by convention; SetPolicy swaps the pointer, never mutates in place
	return d.policy
}

// PolicyLog returns the recorded policy transitions.
func (d *DB) PolicyLog() []PolicyChange {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PolicyChange, len(d.policyLog))
	copy(out, d.policyLog)
	return out
}

// Audit exposes the access/violation log.
func (d *DB) Audit() *Audit { return d.audit }

// RegisterTable creates a table whose rows each belong to one data provider,
// identified by providerCol (paper assumption 5: one tuple per provider per
// table; the PPDB enforces provider existence, not uniqueness, so the
// one-to-many extension the paper mentions also works).
func (d *DB) RegisterTable(name string, schema *relational.Schema, providerCol string) error {
	providerCol = strings.ToLower(strings.TrimSpace(providerCol))
	if _, ok := schema.ColumnIndex(providerCol); !ok {
		return fmt.Errorf("ppdb: schema for %q has no provider column %q", name, providerCol)
	}
	tab, err := d.rdb.CreateTable(name, schema)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tables[tab.Name()] = &tableMeta{
		table:       tab,
		providerCol: providerCol,
		rows:        make(map[relational.RowID]*rowMeta),
	}
	return nil
}

// RegisterProvider records a provider's preferences. Re-registering replaces
// the previous preferences (providers may revise them). Each registration
// bumps the provider's prefs version and applies an O(1) delta to the
// violation ledger.
func (d *DB) RegisterProvider(p *privacy.Prefs) error {
	if p == nil {
		return fmt.Errorf("ppdb: nil preferences")
	}
	if err := p.Validate(d.scales); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.registerLocked(p)
	return nil
}

// registerLocked stores validated preferences, stamping a fresh prefs
// version and upserting the ledger row.
func (d *DB) registerLocked(p *privacy.Prefs) {
	key := strings.ToLower(p.Provider)
	d.providers[key] = p
	d.prefsVersion++
	if d.ledger != nil {
		d.ledger.Upsert(key, p, d.prefsVersion)
	}
	d.publishGaugesLocked()
}

// RegisterProviders records a batch of providers atomically: every
// preference set is validated before any is stored, and the ledger rows are
// computed across a bounded worker pool — the cold-build path Load and the
// HTTP bulk upload use.
func (d *DB) RegisterProviders(ps []*privacy.Prefs) error {
	for i, p := range ps {
		if p == nil {
			return fmt.Errorf("ppdb: nil preferences at index %d", i)
		}
		if err := p.Validate(d.scales); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	items := make([]ledger.Item, 0, len(ps))
	for _, p := range ps {
		key := strings.ToLower(p.Provider)
		d.providers[key] = p
		d.prefsVersion++
		items = append(items, ledger.Item{Key: key, Prefs: p, Version: d.prefsVersion})
	}
	if d.ledger != nil {
		d.ledger.UpsertBatch(items)
	}
	d.publishGaugesLocked()
	return nil
}

// Provider looks up registered preferences.
func (d *DB) Provider(name string) (*privacy.Prefs, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.providers[strings.ToLower(name)]
	return p, ok
}

// Providers returns all registered preferences, sorted by provider key so
// reports and persisted artifacts derived from it are stable across runs.
func (d *DB) Providers() []*privacy.Prefs {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.populationLocked()
}

// populationLocked snapshots the provider set sorted by canonical key —
// the one iteration order every assessment path shares, so float sums are
// reproducible run to run.
func (d *DB) populationLocked() []*privacy.Prefs {
	keys := make([]string, 0, len(d.providers))
	for k := range d.providers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*privacy.Prefs, 0, len(keys))
	for _, k := range keys {
		out = append(out, d.providers[k])
	}
	return out
}

// RemoveProvider deletes a provider's preferences and all of their rows —
// the mechanics of a default (Def. 4): the provider leaves and contributes
// zero information.
func (d *DB) RemoveProvider(name string) int {
	key := strings.ToLower(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.providers, key)
	if d.ledger != nil {
		d.ledger.Remove(key)
	}
	removed := 0
	for _, tm := range d.tables {
		for id, meta := range tm.rows {
			if meta.provider == key {
				tm.table.Delete(id)
				delete(tm.rows, id)
				removed++
			}
		}
	}
	d.publishGaugesLocked()
	return removed
}

// Insert stores a row for a registered provider, stamping provenance with
// the simulated clock. The provider must have been registered first — the
// PPDB will not hold data it cannot audit.
func (d *DB) Insert(table, provider string, row relational.Row) (relational.RowID, error) {
	key := strings.ToLower(provider)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.providers[key]; !ok {
		return 0, fmt.Errorf("ppdb: provider %q is not registered", provider)
	}
	tm, ok := d.tables[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("ppdb: table %q is not registered", table)
	}
	pi, _ := tm.table.Schema().ColumnIndex(tm.providerCol)
	if pi < len(row) {
		if s, ok := row[pi].AsText(); !ok || !strings.EqualFold(s, provider) {
			return 0, fmt.Errorf("ppdb: row provider column %s does not match provider %q", row[pi], provider)
		}
	}
	id, err := tm.table.Insert(row)
	if err != nil {
		return 0, err
	}
	tm.rows[id] = &rowMeta{provider: key, inserted: d.now, expired: map[string]bool{}}
	return id, nil
}

// TableLen returns the number of live rows in a registered table.
func (d *DB) TableLen(table string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	tm, ok := d.tables[strings.ToLower(table)]
	if !ok {
		return 0
	}
	return tm.table.Len()
}

// SetPolicy swaps the house policy, measuring the before/after population
// impact and appending to the policy log. The returned what-if deltas let
// callers decide whether to notify providers. With the ledger enabled the
// "before" numbers are read from the running aggregates in O(1) and the
// swap triggers one cold rebuild across a bounded worker pool; the
// fallback path recomputes both sides over the sorted population.
func (d *DB) SetPolicy(next *privacy.HousePolicy) (PolicyChange, error) {
	if next == nil {
		return PolicyChange{}, fmt.Errorf("ppdb: nil policy")
	}
	if err := next.Validate(d.scales); err != nil {
		return PolicyChange{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	after, err := core.NewAssessor(next, d.attrSens, d.opts)
	if err != nil {
		return PolicyChange{}, err
	}
	change := PolicyChange{
		At:   d.now,
		From: d.policy.Name,
		To:   next.Name,
	}
	if d.ledger != nil {
		before := d.ledger.Summary()
		d.policyVersion++
		d.ledger.Rebuild(after, d.policyVersion)
		afterSum := d.ledger.Summary()
		change.DeltaPW = afterSum.PW - before.PW
		change.DeltaPDefault = afterSum.PDefault - before.PDefault
	} else {
		d.policyVersion++
		pop := d.populationLocked()
		bRep := d.assessor.AssessPopulation(pop)
		aRep := after.AssessPopulation(pop)
		change.DeltaPW = aRep.PW - bRep.PW
		change.DeltaPDefault = aRep.PDefault - bRep.PDefault
	}
	d.assessor = after
	d.policy = next
	d.policyLog = append(d.policyLog, change)
	d.publishGaugesLocked()
	return change, nil
}
