// Package lockcheckdata is a golden-file fixture for the lockcheck
// checker: each want annotation asserts a finding whose message contains
// the quoted substring on that line.
package lockcheckdata

import "sync"

// Counter guards its state with a mutex.
type Counter struct {
	mu    sync.Mutex
	n     int
	hits  map[string]int
	label string // never mutated by a method: immutable, lock not required
}

// New builds a counter; constructor writes do not count as mutation.
func New(label string) *Counter {
	return &Counter{hits: map[string]int{}, label: label}
}

// Add locks correctly.
func (c *Counter) Add(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.hits[k]++
}

// Peek reads guarded state without the lock.
func (c *Counter) Peek() int {
	return c.n // want "accesses guarded field"
}

// Label reads an immutable field: no lock needed, no finding.
func (c *Counter) Label() string { return c.label }

// Hits leaks the guarded map out of the critical section.
func (c *Counter) Hits() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits // want "escapes"
}

// HitsCopy returns a copy: no finding.
func (c *Counter) HitsCopy() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.hits))
	for k, v := range c.hits {
		out[k] = v
	}
	return out
}

// PeekRacy documents a deliberately unlocked read; the directive keeps the
// checker quiet.
func (c *Counter) PeekRacy() int {
	//lint:ignore lockcheck fixture: approximate reads are acceptable for monitoring
	return c.n
}

// reset is unexported: assumed to run under the caller's lock, no finding.
func (c *Counter) reset() {
	c.n = 0
	c.hits = map[string]int{}
}

// SelfLocked has its own mutex, so returning a pointer to it is a safe
// handoff.
type SelfLocked struct {
	mu sync.Mutex
	v  int
}

// Touch mutates the inner value so the checker sees it as guarded state.
func (s *SelfLocked) Touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v++
}

// Registry hands out self-locked cells.
type Registry struct {
	mu   sync.Mutex
	cell *SelfLocked
}

// Swap installs a new cell.
func (r *Registry) Swap(c *SelfLocked) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cell = c
}

// Cell returns the self-locking cell: safe handoff, no finding.
func (r *Registry) Cell() *SelfLocked {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cell
}
