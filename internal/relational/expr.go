package relational

import (
	"fmt"
	"strings"
)

// Env resolves column references during expression evaluation. Names may be
// qualified ("t.col") or bare ("col"); bare names must be unambiguous.
type Env interface {
	Col(name string) (Value, error)
}

// MapEnv is a simple Env over a map; keys should be lower-case.
type MapEnv map[string]Value

// Col implements Env.
func (m MapEnv) Col(name string) (Value, error) {
	if v, ok := m[strings.ToLower(name)]; ok {
		return v, nil
	}
	return Null(), fmt.Errorf("relational: unknown column %q", name)
}

// Expr is a node of the expression AST.
type Expr interface {
	// Eval computes the expression's value in env.
	Eval(env Env) (Value, error)
	// String renders the expression in SQL-like syntax.
	String() string
}

// Literal is a constant value.
type Literal struct{ Val Value }

// Eval implements Expr.
func (l Literal) Eval(Env) (Value, error) { return l.Val, nil }

// String implements Expr.
func (l Literal) String() string { return l.Val.String() }

// ColRef references a column by (possibly qualified) name.
type ColRef struct{ Name string }

// Eval implements Expr.
func (c ColRef) Eval(env Env) (Value, error) { return env.Col(c.Name) }

// String implements Expr.
func (c ColRef) String() string { return c.Name }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpLike: "LIKE",
}

// String names the operator.
func (op BinOp) String() string {
	if n, ok := binOpNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// String implements Expr.
func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Eval implements Expr. NULL operands propagate: any comparison or
// arithmetic with NULL yields NULL; AND/OR use three-valued shortcuts.
func (b Binary) Eval(env Env) (Value, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogic(env)
	}
	l, err := b.L.Eval(env)
	if err != nil {
		return Null(), err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	switch b.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, err := Compare(l, r)
		if err != nil {
			return Null(), fmt.Errorf("%w in %s", err, b)
		}
		switch b.Op {
		case OpEq:
			return Bool(c == 0), nil
		case OpNe:
			return Bool(c != 0), nil
		case OpLt:
			return Bool(c < 0), nil
		case OpLe:
			return Bool(c <= 0), nil
		case OpGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(b.Op, l, r)
	case OpLike:
		ls, ok1 := l.AsText()
		rs, ok2 := r.AsText()
		if !ok1 || !ok2 {
			return Null(), fmt.Errorf("relational: LIKE needs text operands in %s", b)
		}
		return Bool(likeMatch(ls, rs)), nil
	default:
		return Null(), fmt.Errorf("relational: unknown operator in %s", b)
	}
}

func (b Binary) evalLogic(env Env) (Value, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return Null(), err
	}
	lb, lok := l.AsBool()
	if !lok && !l.IsNull() {
		return Null(), fmt.Errorf("relational: %s needs boolean operands in %s", b.Op, b)
	}
	// Short circuits.
	if lok {
		if b.Op == OpAnd && !lb {
			return Bool(false), nil
		}
		if b.Op == OpOr && lb {
			return Bool(true), nil
		}
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return Null(), err
	}
	rb, rok := r.AsBool()
	if !rok && !r.IsNull() {
		return Null(), fmt.Errorf("relational: %s needs boolean operands in %s", b.Op, b)
	}
	switch {
	case lok && rok:
		if b.Op == OpAnd {
			return Bool(lb && rb), nil
		}
		return Bool(lb || rb), nil
	case rok: // l is NULL
		if b.Op == OpAnd && !rb {
			return Bool(false), nil
		}
		if b.Op == OpOr && rb {
			return Bool(true), nil
		}
	}
	return Null(), nil
}

func evalArith(op BinOp, l, r Value) (Value, error) {
	li, lInt := l.AsInt()
	ri, rInt := r.AsInt()
	if lInt && rInt {
		switch op {
		case OpAdd:
			return Int(li + ri), nil
		case OpSub:
			return Int(li - ri), nil
		case OpMul:
			return Int(li * ri), nil
		case OpDiv:
			if ri == 0 {
				return Null(), fmt.Errorf("relational: division by zero")
			}
			return Int(li / ri), nil
		case OpMod:
			if ri == 0 {
				return Null(), fmt.Errorf("relational: modulo by zero")
			}
			return Int(li % ri), nil
		default:
			return Null(), fmt.Errorf("relational: bad arithmetic operator %s", op)
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Null(), fmt.Errorf("relational: arithmetic needs numeric operands, got %s and %s", l.Kind(), r.Kind())
	}
	switch op {
	case OpAdd:
		return Float(lf + rf), nil
	case OpSub:
		return Float(lf - rf), nil
	case OpMul:
		return Float(lf * rf), nil
	case OpDiv:
		//lint:ignore floatcmp SQL division is undefined only at exactly zero; a tolerance would reject tiny legitimate divisors
		if rf == 0 {
			return Null(), fmt.Errorf("relational: division by zero")
		}
		return Float(lf / rf), nil
	case OpMod:
		return Null(), fmt.Errorf("relational: %% needs integer operands")
	default:
		return Null(), fmt.Errorf("relational: bad arithmetic operator %s", op)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-sensitive.
func likeMatch(s, pattern string) bool {
	return likeRec([]rune(s), []rune(pattern))
}

func likeRec(s, p []rune) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// Unary applies NOT or arithmetic negation.
type Unary struct {
	Neg bool // true: -x; false: NOT x
	X   Expr
}

// String implements Expr.
func (u Unary) String() string {
	if u.Neg {
		return fmt.Sprintf("(-%s)", u.X)
	}
	return fmt.Sprintf("(NOT %s)", u.X)
}

// Eval implements Expr.
func (u Unary) Eval(env Env) (Value, error) {
	v, err := u.X.Eval(env)
	if err != nil {
		return Null(), err
	}
	if v.IsNull() {
		return Null(), nil
	}
	if u.Neg {
		if i, ok := v.AsInt(); ok {
			return Int(-i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return Float(-f), nil
		}
		return Null(), fmt.Errorf("relational: cannot negate %s", v.Kind())
	}
	b, ok := v.AsBool()
	if !ok {
		return Null(), fmt.Errorf("relational: NOT needs a boolean, got %s", v.Kind())
	}
	return Bool(!b), nil
}

// IsNull tests x IS [NOT] NULL.
type IsNull struct {
	Not bool
	X   Expr
}

// String implements Expr.
func (n IsNull) String() string {
	if n.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

// Eval implements Expr.
func (n IsNull) Eval(env Env) (Value, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return Null(), err
	}
	return Bool(v.IsNull() != n.Not), nil
}

// In tests membership of X in a literal list.
type In struct {
	Not  bool
	X    Expr
	List []Expr
}

// String implements Expr.
func (in In) String() string {
	items := make([]string, len(in.List))
	for i, e := range in.List {
		items[i] = e.String()
	}
	op := "IN"
	if in.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", in.X, op, strings.Join(items, ", "))
}

// Eval implements Expr.
func (in In) Eval(env Env) (Value, error) {
	x, err := in.X.Eval(env)
	if err != nil {
		return Null(), err
	}
	if x.IsNull() {
		return Null(), nil
	}
	for _, e := range in.List {
		v, err := e.Eval(env)
		if err != nil {
			return Null(), err
		}
		if Equal(x, v) {
			return Bool(!in.Not), nil
		}
	}
	return Bool(in.Not), nil
}

// Truthy evaluates e as a predicate: NULL and false are both false.
func Truthy(e Expr, env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	return ok && b, nil
}
