package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/ppdb"
	"repro/internal/privacy"
	"repro/internal/relational"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	hp := privacy.NewHousePolicy("v1")
	hp.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	db, err := ppdb.New(ppdb.Config{Policy: hp})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		t.Fatal(err)
	}
	p := privacy.NewPrefs("maria", 50)
	p.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	p.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	if err := db.RegisterProvider(p); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", "maria", relational.Row{relational.Text("maria"), relational.Float(61.5)}); err != nil {
		t.Fatal(err)
	}
	srv, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func do(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestNewNilDB(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil db should fail")
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodPost, "/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT provider, weight FROM t"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0] != "maria" || out.Rows[0][1] != "61.5" {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestQueryDenied(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodPost, "/query",
		`{"requester":"ads","purpose":"marketing","visibility":2,"sql":"SELECT weight FROM t"}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "no policy tuple") {
		t.Errorf("body = %s", rec.Body)
	}
}

func TestQueryBadRequests(t *testing.T) {
	srv := testServer(t)
	if rec := do(t, srv, http.MethodPost, "/query", "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPost, "/query",
		`{"purpose":"care","visibility":2,"sql":"DELETE FROM t"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("non-SELECT status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodGet, "/query", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", rec.Code)
	}
}

func TestCertifyEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/certify?alpha=0.5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var cert struct {
		Alpha       float64 `json:"Alpha"`
		IsAlphaPPDB bool    `json:"IsAlphaPPDB"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Alpha != 0.5 || !cert.IsAlphaPPDB {
		t.Errorf("cert = %+v (body %s)", cert, rec.Body)
	}
	if rec := do(t, srv, http.MethodGet, "/certify?alpha=bogus", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad alpha status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodGet, "/certify?alpha=2", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range alpha status = %d", rec.Code)
	}
}

// TestCertifySummaryEndpoint exercises the O(1) aggregate certification
// served from the violation ledger.
func TestCertifySummaryEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/certify/summary?alpha=0.5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var sum struct {
		Alpha         float64 `json:"Alpha"`
		N             int     `json:"N"`
		PolicyName    string  `json:"PolicyName"`
		PolicyVersion uint64  `json:"PolicyVersion"`
		IsAlphaPPDB   bool    `json:"IsAlphaPPDB"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Alpha != 0.5 || sum.N != 1 || sum.PolicyName != "v1" || sum.PolicyVersion != 1 || !sum.IsAlphaPPDB {
		t.Errorf("summary = %+v (body %s)", sum, rec.Body)
	}
	// No per-provider rows in the summary payload.
	if strings.Contains(rec.Body.String(), "Providers") {
		t.Error("summary must not materialize per-provider rows")
	}
	if rec := do(t, srv, http.MethodGet, "/certify/summary?alpha=bogus", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad alpha status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPost, "/certify/summary", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/policy", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `policy "v1"`) {
		t.Fatalf("GET /policy = %d %s", rec.Code, rec.Body)
	}
	// PUT a widened policy (DSL).
	newPolicy := `policy "v2" {
	  attr provider { tuple purpose=care visibility=house granularity=specific retention=year }
	  attr weight { tuple purpose=care visibility=third-party granularity=specific retention=year }
	}`
	rec = do(t, srv, http.MethodPut, "/policy", newPolicy)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT /policy = %d %s", rec.Code, rec.Body)
	}
	var change ppdb.PolicyChange
	if err := json.Unmarshal(rec.Body.Bytes(), &change); err != nil {
		t.Fatal(err)
	}
	if change.From != "v1" || change.To != "v2" || change.DeltaPW <= 0 {
		t.Errorf("change = %+v", change)
	}
	// Errors.
	if rec := do(t, srv, http.MethodPut, "/policy", "junk"); rec.Code != http.StatusBadRequest {
		t.Errorf("junk policy status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPut, "/policy", `provider "x" threshold 5 { }`); rec.Code != http.StatusBadRequest {
		t.Errorf("policyless PUT status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodDelete, "/policy", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /policy status = %d", rec.Code)
	}
}

func TestProvidersEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/providers", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "maria") {
		t.Fatalf("GET /providers = %d %s", rec.Code, rec.Body)
	}
	dsl := `provider "omar" threshold 15 {
	  attr weight { tuple purpose=care visibility=house granularity=specific retention=year }
	}`
	rec = do(t, srv, http.MethodPost, "/providers", dsl)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"registered": 1`) {
		t.Fatalf("POST /providers = %d %s", rec.Code, rec.Body)
	}
	rec = do(t, srv, http.MethodGet, "/providers", "")
	if !strings.Contains(rec.Body.String(), "omar") {
		t.Errorf("omar missing: %s", rec.Body)
	}
	if rec := do(t, srv, http.MethodPost, "/providers", `policy "p" { }`); rec.Code != http.StatusBadRequest {
		t.Errorf("providerless POST status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPost, "/providers", "junk"); rec.Code != http.StatusBadRequest {
		t.Errorf("junk POST status = %d", rec.Code)
	}
}

func TestAuditAndSweepEndpoints(t *testing.T) {
	srv := testServer(t)
	// Generate one denied access for the log.
	do(t, srv, http.MethodPost, "/query",
		`{"purpose":"marketing","visibility":2,"sql":"SELECT weight FROM t"}`)
	rec := do(t, srv, http.MethodGet, "/audit", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "marketing") {
		t.Fatalf("GET /audit = %d %s", rec.Code, rec.Body)
	}
	rec = do(t, srv, http.MethodPost, "/sweep", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /sweep = %d %s", rec.Code, rec.Body)
	}
	var sweep ppdb.SweepReport
	if err := json.Unmarshal(rec.Body.Bytes(), &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.CellsExpired != 0 || sweep.RowsDeleted != 0 {
		t.Errorf("fresh sweep = %+v", sweep)
	}
	if rec := do(t, srv, http.MethodPost, "/audit", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /audit status = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodGet, "/sweep", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep status = %d", rec.Code)
	}
}

func TestLoadEndpoint(t *testing.T) {
	srv := testServer(t)
	// Register the provider named in the CSV first.
	dsl := `provider "omar" threshold 15 {
	  attr weight { tuple purpose=care visibility=house granularity=specific retention=year }
	}`
	if rec := do(t, srv, http.MethodPost, "/providers", dsl); rec.Code != http.StatusOK {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	csvBody := "provider,weight\nomar,92.5\n"
	rec := do(t, srv, http.MethodPost, "/load?table=t", csvBody)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"loaded": 1`) {
		t.Fatalf("load = %d %s", rec.Code, rec.Body)
	}
	// Unknown provider in the CSV fails.
	rec = do(t, srv, http.MethodPost, "/load?table=t", "provider,weight\nstranger,1\n")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown provider load = %d %s", rec.Code, rec.Body)
	}
	// Missing table param.
	if rec := do(t, srv, http.MethodPost, "/load", csvBody); rec.Code != http.StatusBadRequest {
		t.Errorf("missing table = %d", rec.Code)
	}
	// Unregistered table.
	if rec := do(t, srv, http.MethodPost, "/load?table=nope", csvBody); rec.Code != http.StatusBadRequest {
		t.Errorf("bad table = %d", rec.Code)
	}
	// Wrong method.
	if rec := do(t, srv, http.MethodGet, "/load?table=t", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /load = %d", rec.Code)
	}
}

func TestSelfServiceEndpoints(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/self/audit?provider=maria", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"Provider": "maria"`) {
		t.Fatalf("self audit = %d %s", rec.Code, rec.Body)
	}
	rec = do(t, srv, http.MethodGet, "/self/data?provider=maria", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "61.5") {
		t.Fatalf("self data = %d %s", rec.Code, rec.Body)
	}
	// Unknown provider → 404; missing param → 400; wrong method → 405.
	if rec := do(t, srv, http.MethodGet, "/self/audit?provider=zoe", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown provider audit = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodGet, "/self/data", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("missing provider = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPost, "/self/audit?provider=maria", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST self audit = %d", rec.Code)
	}
}

// --- lifecycle hardening ---

func TestHealthEndpoints(t *testing.T) {
	srv := testServer(t)
	if rec := do(t, srv, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz = %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, srv, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"ready"`) {
		t.Errorf("readyz = %d %s", rec.Code, rec.Body)
	}
	srv.SetReady(false)
	if rec := do(t, srv, http.MethodGet, "/readyz", ""); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), `"draining"`) {
		t.Errorf("draining readyz = %d %s", rec.Code, rec.Body)
	}
	srv.SetReady(true)
	if rec := do(t, srv, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
		t.Errorf("re-readied readyz = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPost, "/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d", rec.Code)
	}
}

// TestPanicRecovery is the acceptance criterion: a handler panic (injected
// via internal/fault) yields a JSON 500 and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	defer fault.Reset()
	var logged strings.Builder
	db := testServer(t).db
	srv, err := NewWith(db, Options{Logger: log.New(&logged, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	fault.ArmPanic("httpapi.handler")
	rec := do(t, srv, http.MethodGet, "/certify?alpha=0.5", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d %s", rec.Code, rec.Body)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil ||
		body.Error.Code != "internal" || body.Error.Message == "" {
		t.Errorf("panic response is not the JSON error envelope: %s", rec.Body)
	}
	if !strings.Contains(logged.String(), "httpapi.handler") || !strings.Contains(logged.String(), "goroutine") {
		t.Errorf("panic log missing site or stack: %q", logged.String())
	}
	// The server keeps serving once the fault is disarmed.
	fault.Reset()
	if rec := do(t, srv, http.MethodGet, "/certify?alpha=0.5", ""); rec.Code != http.StatusOK {
		t.Errorf("after panic, certify = %d %s", rec.Code, rec.Body)
	}
}

func TestInjectedHandlerError(t *testing.T) {
	defer fault.Reset()
	srv := testServer(t)
	fault.ArmError("httpapi.handler", nil)
	if rec := do(t, srv, http.MethodGet, "/certify", ""); rec.Code != http.StatusInternalServerError {
		t.Errorf("injected error = %d %s", rec.Code, rec.Body)
	}
	fault.Reset()
	if rec := do(t, srv, http.MethodGet, "/certify", ""); rec.Code != http.StatusOK {
		t.Errorf("after reset = %d", rec.Code)
	}
}

// TestLoadShedding caps in-flight requests at one, parks a request inside
// the handler by withholding half its body, and checks the next request is
// shed with a JSON 503 — while /healthz still answers.
func TestLoadShedding(t *testing.T) {
	db := testServer(t).db
	srv, err := NewWith(db, Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"purpose":"care","visibility":2,"sql":"SELECT weight FROM t"}`
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}

	// The parked request occupies the only slot; a second request must be
	// shed. Poll briefly: the first request needs to reach ServeHTTP.
	deadline := time.Now().Add(5 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/certify?alpha=0.5")
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(string(payload), "capacity") || resp.Header.Get("Retry-After") == "" {
				t.Errorf("shed response missing envelope or Retry-After: %s", payload)
			}
			shed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !shed {
		t.Fatal("server never shed load with the only slot occupied")
	}
	// Probes bypass the cap.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under load = %d", resp.StatusCode)
	}
	// Release the parked request; the slot frees and service resumes.
	if _, err := io.WriteString(conn, body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/certify?alpha=0.5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the parked request completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAlphaValidation rejects NaN, ±Inf and out-of-range α with a 400 on
// both certification endpoints.
func TestAlphaValidation(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/certify", "/certify/summary"} {
		for _, alpha := range []string{"NaN", "nan", "+Inf", "-Inf", "Infinity", "-0.1", "1.5", "1e300"} {
			rec := do(t, srv, http.MethodGet, path+"?alpha="+alpha, "")
			if rec.Code != http.StatusBadRequest {
				t.Errorf("%s?alpha=%s = %d, want 400 (%s)", path, alpha, rec.Code, rec.Body)
			}
		}
		// The boundary values are legal.
		for _, alpha := range []string{"0", "1", "0.25"} {
			rec := do(t, srv, http.MethodGet, path+"?alpha="+alpha, "")
			if rec.Code != http.StatusOK {
				t.Errorf("%s?alpha=%s = %d, want 200 (%s)", path, alpha, rec.Code, rec.Body)
			}
		}
	}
}

// TestOversizeBodies413 checks that tripping http.MaxBytesReader yields a
// clean JSON 413 naming the limit, on every body-accepting endpoint.
func TestOversizeBodies413(t *testing.T) {
	srv := testServer(t)
	check := func(method, path, body string) {
		t.Helper()
		rec := do(t, srv, method, path, body)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s %s = %d, want 413 (%.120s)", method, path, rec.Code, rec.Body)
		}
		var envelope errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil ||
			envelope.Error.Code != "payload_too_large" ||
			!strings.Contains(envelope.Error.Detail, "limit is") {
			t.Errorf("%s %s 413 body not the JSON envelope: %s", method, path, rec.Body)
		}
	}
	over1M := strings.Repeat("x", 1<<20+1)
	check(http.MethodPut, "/policy", over1M)
	check(http.MethodPost, "/providers", over1M)
	check(http.MethodPost, "/load?table=t", "provider,weight\n"+strings.Repeat("x", 8<<20))
}
