package repro_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/economics"
	"repro/internal/fault"
	"repro/internal/generalize"
	"repro/internal/httpapi"
	"repro/internal/policydsl"
	"repro/internal/population"
	"repro/internal/ppdb"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// TestCorpusFilesParse keeps the shipped DSL corpora loadable.
func TestCorpusFilesParse(t *testing.T) {
	for _, path := range []string{"examples/corpus/clinic.dsl", "examples/corpus/clinic-v2.dsl"} {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		doc, err := policydsl.Parse(string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if doc.Policy == nil {
			t.Errorf("%s: no policy", path)
		}
	}
}

// TestEndToEndLifecycle drives the full pipeline: parse a corpus, stand up a
// PPDB, serve purpose-bound queries, certify, widen the policy, watch
// violations and defaults appear, enforce the defaults, and re-certify.
func TestEndToEndLifecycle(t *testing.T) {
	src, err := os.ReadFile("examples/corpus/clinic.dsl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}

	weightH, err := generalize.NewNumericHierarchy(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ppdb.New(ppdb.Config{
		Policy:      doc.Policy,
		AttrSens:    doc.AttrSens,
		Hierarchies: map[string]generalize.Hierarchy{"weight": weightH},
	})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "condition", Type: relational.TypeText},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("records", schema, "provider"); err != nil {
		t.Fatal(err)
	}
	rows := map[string]relational.Row{
		"maria": {relational.Text("maria"), relational.Text("asthma"), relational.Float(61.5)},
		"omar":  {relational.Text("omar"), relational.Text("diabetes"), relational.Float(92)},
		"ada":   {relational.Text("ada"), relational.Text("flu"), relational.Float(70)},
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("records", p.Provider, rows[p.Provider]); err != nil {
			t.Fatal(err)
		}
	}

	// Care query at house class sees exact data. The corpus policy does not
	// cover the provider-identity column, so the query touches only the
	// governed attributes.
	res, err := db.Query(ppdb.AccessRequest{
		Requester: "dr", Purpose: "care", Visibility: 2,
		SQL: "SELECT condition, weight FROM records ORDER BY weight",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if w, _ := res.Rows[0][1].AsFloat(); w != 61.5 { // maria is lightest
		t.Errorf("care weight = %v", res.Rows[0][1])
	}
	// Identity reads are refused: the policy does not cover "provider".
	if _, err := db.Query(ppdb.AccessRequest{
		Requester: "dr", Purpose: "care", Visibility: 2,
		SQL: "SELECT provider FROM records",
	}); err == nil {
		t.Fatal("uncovered identity column must be denied")
	}

	// Research on weight is not in the corpus policy → denied.
	if _, err := db.Query(ppdb.AccessRequest{
		Requester: "lab", Purpose: "research", Visibility: 3,
		SQL: "SELECT weight FROM records",
	}); err == nil {
		t.Fatal("research on weight must be denied")
	}

	// Certification: omar never consented to research on condition →
	// implicit zero → violated and would default.
	cert, err := db.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Report.ViolatedCount != 1 || len(cert.WouldDefault) != 1 || cert.WouldDefault[0] != "omar" {
		t.Fatalf("cert = %+v", cert.Report)
	}
	if !cert.IsAlphaPPDB {
		t.Error("P(W)=1/3 ≤ 0.5 should certify")
	}

	// Enforce defaults: omar leaves with his data.
	gone, removed, err := db.EnforceDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(gone) != 1 || removed != 1 || db.TableLen("records") != 2 {
		t.Fatalf("defaults: gone=%v removed=%d left=%d", gone, removed, db.TableLen("records"))
	}

	// Re-certify: clean.
	cert, err = db.Certify(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.IsAlphaPPDB {
		t.Error("after enforcement the DB should be a 0-PPDB")
	}

	// Retention: everything expires after its year.
	if _, err := db.Advance(400 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	sweep, err := db.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if db.TableLen("records") != 0 {
		t.Errorf("after sweep %d rows remain (report %+v)", db.TableLen("records"), sweep)
	}

	// Audit trail recorded one allowed and two denied accesses.
	recs := db.Audit().Records()
	if len(recs) != 3 {
		t.Fatalf("audit = %+v", recs)
	}
	if !recs[0].Allowed || recs[1].Allowed || recs[2].Allowed {
		t.Errorf("audit dispositions wrong: %+v", recs)
	}
}

// TestEndToEndExpansionEconomics couples a DSL-defined policy with a
// generated population and checks the Eq. 31 arithmetic end to end.
func TestEndToEndExpansionEconomics(t *testing.T) {
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "condition", Sensitivity: 5, Purposes: []privacy.Purpose{"care"}},
		},
	}, 202)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(600))

	hp := privacy.NewHousePolicy("v1")
	hp.Add("condition", privacy.Tuple{Purpose: "care", Visibility: 1, Granularity: 1, Retention: 1})

	sc := &economics.Scenario{
		BasePolicy:  hp,
		AttrSens:    gen.AttributeSensitivities(),
		BaseUtility: 10,
	}
	points, err := sc.Run(pop, []economics.Step{
		economics.WidenStep("condition", privacy.DimVisibility, 2),
		economics.WidenStep("condition", privacy.DimRetention, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		// Eq. 31 cross-check: Justified ⇔ UtilityFuture > UtilityCurrent ⇔
		// accumulated T > BreakEvenT (when NFuture > 0).
		accT := p.PerProviderU - sc.BaseUtility
		if p.NFuture > 0 {
			if got, want := p.Justified, accT > p.BreakEvenT; got != want {
				t.Errorf("point %d: Justified=%v but T=%g vs break-even %g", i, got, accT, p.BreakEvenT)
			}
		}
	}
}

// TestDSLRenderIsStable ensures the shipped corpus round-trips through
// Render (so users can regenerate their corpora from parsed state).
func TestDSLRenderIsStable(t *testing.T) {
	src, err := os.ReadFile("examples/corpus/clinic.dsl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	rendered := policydsl.Render(doc)
	doc2, err := policydsl.Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, rendered)
	}
	if !doc.Policy.Equal(doc2.Policy) || len(doc.Providers) != len(doc2.Providers) {
		t.Error("render round-trip lost information")
	}
	if !strings.Contains(rendered, "clinic-v1") {
		t.Error("rendered corpus missing policy name")
	}
}

// TestAssessorAgreesWithPPDBCertify pins the audit path (core) and the
// enforcement path (ppdb) to the same numbers.
func TestAssessorAgreesWithPPDBCertify(t *testing.T) {
	src, err := os.ReadFile("examples/corpus/clinic.dsl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := core.NewAssessor(doc.Policy, doc.AttrSens, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct := assessor.AssessPopulation(doc.Providers)

	db, err := ppdb.New(ppdb.Config{Policy: doc.Policy, AttrSens: doc.AttrSens})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	cert, err := db.Certify(1)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Report.PW != direct.PW || cert.Report.PDefault != direct.PDefault ||
		cert.Report.TotalViolations != direct.TotalViolations {
		t.Errorf("paths disagree: core %+v vs ppdb %+v", direct, cert.Report)
	}
}

// TestEndToEndCrashRecovery drives the durability layer through the whole
// stack: certify a PPDB, snapshot it, crash a subsequent save mid-rotation
// (via internal/fault), reload from the surviving generation, and serve
// the recovered database over the hardened HTTP layer.
func TestEndToEndCrashRecovery(t *testing.T) {
	defer fault.Reset()
	src, err := os.ReadFile("examples/corpus/clinic.dsl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ppdb.New(ppdb.Config{Policy: doc.Policy, AttrSens: doc.AttrSens})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	certBefore, err := db.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	// The next save dies between retiring the old generation and
	// publishing the new one — the worst crash window.
	if _, err := db.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	fault.ArmCrash("persist.rename.live")
	if err := db.Save(dir); !fault.IsCrash(err) {
		t.Fatalf("armed save returned %v, want simulated crash", err)
	}
	fault.Reset()

	db2, err := ppdb.Load(dir, ppdb.Config{})
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	certAfter, err := db2.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if certAfter.Report.PW != certBefore.Report.PW ||
		certAfter.Report.TotalViolations != certBefore.Report.TotalViolations {
		t.Errorf("recovered certification %+v != pre-crash %+v", certAfter.Report, certBefore.Report)
	}

	// The recovered DB serves traffic through the hardened handler.
	api, err := httpapi.New(db2)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz after recovery = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/certify/summary?alpha=0.5", nil)
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "IsAlphaPPDB") {
		t.Errorf("certify after recovery = %d %s", rec.Code, rec.Body)
	}
}
