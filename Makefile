# Verification loop for the reproduction (see DESIGN.md §6).

.PHONY: all build vet test race bench experiments cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments -run all

cover:
	go test -cover ./...
