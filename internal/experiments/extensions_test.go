package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestGameExperiment(t *testing.T) {
	r, err := Game(800, 2011, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WithoutIncent) != 5 {
		t.Fatalf("strategies without incentives = %d", len(r.WithoutIncent))
	}
	if len(r.WithIncent) != 25 {
		t.Fatalf("strategies with incentives = %d", len(r.WithIncent))
	}
	// Exactly one equilibrium per solve.
	countBest := func(rows []GameRow) int {
		n := 0
		for _, row := range rows {
			if row.Best {
				n++
			}
		}
		return n
	}
	if countBest(r.WithoutIncent) != 1 || countBest(r.WithIncent) != 1 {
		t.Error("each solve must mark exactly one equilibrium")
	}
	// Incentives weakly improve the house optimum (κ > 0 only adds
	// strategies).
	if r.PayoffGain < 0 {
		t.Errorf("payoff gain = %g, want ≥ 0", r.PayoffGain)
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "equilibrium") {
		t.Error("game output missing equilibrium marker")
	}
}

func TestLegacyExperiment(t *testing.T) {
	r, err := Legacy(2000, 41, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	history, heldOut := 0, 0
	for _, row := range r.Rows {
		if row.Observed {
			history++
		} else {
			heldOut++
		}
		if row.Predicted < 0 || row.Predicted > 1 {
			t.Errorf("prediction out of range: %+v", row)
		}
	}
	if history != 5 || heldOut != 4 {
		t.Errorf("history/held-out = %d/%d", history, heldOut)
	}
	if r.WorstHeldOutError > 0.15 {
		t.Errorf("worst held-out error = %g, want < 0.15", r.WorstHeldOutError)
	}
	// Severity indexes must be non-decreasing along the widening ladder.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Severity < r.Rows[i-1].Severity-1e-9 {
			t.Errorf("severity index decreased at %s", r.Rows[i].Policy)
		}
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "held-out") {
		t.Error("legacy output incomplete")
	}
}

func TestLegacyErrors(t *testing.T) {
	if _, err := Legacy(100, 1, 0); err == nil {
		t.Error("zero sample should fail")
	}
	if _, err := Legacy(100, 1, 101); err == nil {
		t.Error("oversized sample should fail")
	}
}

// TestXMLParity pins the Sec. 10 XML extension to the relational model on
// flat documents.
func TestXMLParity(t *testing.T) {
	r, err := XMLParity(500, 2011)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllAgree {
		for _, row := range r.Rows {
			if !row.Agree {
				t.Errorf("disagreement for %s: flat %g vs hier %g",
					row.Provider, row.FlatViolation, row.HierViolation)
			}
		}
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "parity: true") {
		t.Errorf("output = %s", buf.String())
	}
}

func TestDefaultConfigs(t *testing.T) {
	cfg := DefaultExpansionConfig()
	if cfg.N != 10000 || cfg.Steps != 8 || cfg.BaseUtility != 10 {
		t.Errorf("DefaultExpansionConfig = %+v", cfg)
	}
	taus := DefaultTrialCounts()
	if len(taus) != 5 || taus[0] != 10 || taus[4] != 100000 {
		t.Errorf("DefaultTrialCounts = %v", taus)
	}
	alphas := DefaultAlphas()
	if len(alphas) != 5 || alphas[0] != 0.01 {
		t.Errorf("DefaultAlphas = %v", alphas)
	}
}

func TestXMLParityFprintDisagreement(t *testing.T) {
	r := &XMLParityResult{N: 2, AllAgree: false, Rows: []XMLParityRow{
		{Provider: "ok", FlatViolation: 1, HierViolation: 1, Agree: true},
		{Provider: "bad", FlatViolation: 1, HierViolation: 2, Agree: false},
	}}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "disagreements: 1") || !strings.Contains(out, "bad") {
		t.Errorf("output = %s", out)
	}
	if strings.Contains(out, "\nok ") {
		t.Error("agreeing providers should not be listed")
	}
}
