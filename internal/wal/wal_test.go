package wal

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// fastOpts keeps unit tests off the default 2ms flush timer.
func fastOpts(dir string) Options {
	return Options{Dir: dir, SyncEvery: 1, SyncInterval: time.Millisecond}
}

func mustAppend(t *testing.T, l *Log, typ byte, data string) uint64 {
	t.Helper()
	lsn, err := l.Append(Record{Type: typ, Data: []byte(data)})
	if err != nil {
		t.Fatalf("Append(%q): %v", data, err)
	}
	return lsn
}

type replayed struct {
	lsn  uint64
	typ  byte
	data string
}

func replayAll(t *testing.T, l *Log, from uint64) []replayed {
	t.Helper()
	var got []replayed
	n, err := l.Replay(from, func(lsn uint64, rec Record) error {
		got = append(got, replayed{lsn, rec.Type, string(rec.Data)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	if n != len(got) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(got))
	}
	return got
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := []replayed{
		{1, 1, "alpha"},
		{2, 2, ""},
		{3, 1, strings.Repeat("x", 4096)},
		{4, 7, "{\"json\":true}"},
	}
	for _, w := range want {
		if lsn := mustAppend(t, l, w.typ, w.data); lsn != w.lsn {
			t.Fatalf("append LSN = %d, want %d", lsn, w.lsn)
		}
	}
	if got := l.LastLSN(); got != 4 {
		t.Errorf("LastLSN = %d", got)
	}
	if got := l.DurableLSN(); got != 4 {
		t.Errorf("DurableLSN = %d (SyncEvery=1 should have committed each append)", got)
	}
	check := func(l *Log) {
		t.Helper()
		got := replayAll(t, l, 0)
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	check(l) // replay over the live log
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 4 {
		t.Errorf("reopened LastLSN = %d", got)
	}
	check(l2) // replay after recovery
	// Appends continue from the recovered position.
	if lsn := mustAppend(t, l2, 1, "five"); lsn != 5 {
		t.Errorf("post-recovery LSN = %d, want 5", lsn)
	}
}

func TestWALReplayFrom(t *testing.T) {
	l, err := Open(fastOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, 1, fmt.Sprintf("r%d", i))
	}
	got := replayAll(t, l, 3)
	if len(got) != 2 || got[0].lsn != 4 || got[1].lsn != 5 {
		t.Fatalf("Replay(3) = %+v, want LSNs 4,5", got)
	}
	if got := replayAll(t, l, 5); len(got) != 0 {
		t.Errorf("Replay(5) = %+v, want empty", got)
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts(dir)
	opts.SegmentBytes = 256 // rotate every few records
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 1; i <= n; i++ {
		mustAppend(t, l, 1, strings.Repeat("p", 64))
	}
	if sc := l.SegmentCount(); sc < 3 {
		t.Fatalf("SegmentCount = %d, want several at a 256-byte threshold", sc)
	}
	if got := replayAll(t, l, 0); len(got) != n || got[n-1].lsn != n {
		t.Fatalf("replay across segments: %d records, last LSN %d", len(got), got[len(got)-1].lsn)
	}
	// Truncation drops whole obsolete segments but never the open one,
	// and everything past the cutoff survives.
	before := l.SegmentCount()
	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	if after := l.SegmentCount(); after >= before || after < 1 {
		t.Errorf("TruncateBefore: segments %d -> %d", before, after)
	}
	got := replayAll(t, l, 20)
	if len(got) != n-20 || got[0].lsn > 21 {
		t.Errorf("post-truncate Replay(20): %d records, first LSN %d", len(got), got[0].lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery agrees after the truncation.
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != n {
		t.Errorf("recovered LastLSN = %d, want %d", got, n)
	}
}

// TestWALTornTailShortWrite injects a silently truncated final append and
// requires recovery to drop exactly that record, warn, and count it.
func TestWALTornTailShortWrite(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "good-one")
	mustAppend(t, l, 1, "good-two")
	fault.ArmShortWrite("wal.append", 5) // frame loses all but 5 bytes
	mustAppend(t, l, 1, "torn-record")
	fault.Disarm("wal.append")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	opts := fastOpts(dir)
	opts.Logger = log.New(&warn, "", 0)
	trunc0 := mTailTruncated.Value()
	l2, err := Open(opts)
	if err != nil {
		t.Fatalf("Open over a torn tail must succeed, got %v", err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 2 {
		t.Errorf("recovered LastLSN = %d, want 2 (torn record dropped)", got)
	}
	got := replayAll(t, l2, 0)
	if len(got) != 2 || got[1].data != "good-two" {
		t.Errorf("recovered records = %+v", got)
	}
	if d := mTailTruncated.Value() - trunc0; d != 1 {
		t.Errorf("wal_tail_truncated_total advanced by %d, want 1", d)
	}
	if !strings.Contains(warn.String(), "tail_truncated") {
		t.Errorf("no tail_truncated warning logged; log output: %q", warn.String())
	}
	// The truncated position is reusable: the next append takes LSN 3 and
	// survives another cycle.
	if lsn := mustAppend(t, l2, 1, "after"); lsn != 3 {
		t.Errorf("post-truncation LSN = %d, want 3", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := replayAll(t, l3, 0); len(got) != 3 || got[2].data != "after" {
		t.Errorf("second recovery = %+v", got)
	}
}

// TestWALTornTailFlipByte injects single-byte corruption into the final
// append; the CRC catches it and recovery truncates from there.
func TestWALTornTailFlipByte(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "intact")
	fault.ArmFlipByte("wal.append", frameOverhead+3) // flip inside the payload
	mustAppend(t, l, 1, "corrupt")
	fault.Disarm("wal.append")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	trunc0 := mTailTruncated.Value()
	l2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatalf("Open over a CRC-failing tail must succeed, got %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2, 0)
	if len(got) != 1 || got[0].data != "intact" {
		t.Errorf("recovered records = %+v", got)
	}
	if d := mTailTruncated.Value() - trunc0; d != 1 {
		t.Errorf("wal_tail_truncated_total advanced by %d, want 1", d)
	}
}

// TestWALMidLogCorruptionFails flips a byte in a *non-final* segment on
// disk: that is not crash debris, and Open must refuse rather than skip
// acknowledged records.
func TestWALMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts(dir)
	opts.SegmentBytes = 128
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, l, 1, strings.Repeat("m", 48))
	}
	if l.SegmentCount() < 2 {
		t.Fatal("need at least two segments for the test")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) < 2 {
		t.Fatalf("glob: %v (%d files)", err, len(names))
	}
	first := names[0] // glob sorts; lowest base LSN
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+frameOverhead+2] ^= 0xFF
	if err := os.WriteFile(first, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("Open accepted mid-log corruption in a non-final segment")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("error %q does not name the CRC failure", err)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SyncEvery: 16, SyncInterval: 500 * time.Microsecond}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	lsns := make([][]uint64, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := l.Append(Record{Type: 1, Data: []byte(fmt.Sprintf("w%d.%d", g, i))})
				if err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
				lsns[g] = append(lsns[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	// Every writer saw strictly increasing LSNs, the set is dense, and
	// every acknowledged append is durable.
	seen := map[uint64]bool{}
	for g, ls := range lsns {
		for i, lsn := range ls {
			if i > 0 && lsn <= ls[i-1] {
				t.Fatalf("writer %d: LSN %d after %d", g, lsn, ls[i-1])
			}
			if seen[lsn] {
				t.Fatalf("duplicate LSN %d", lsn)
			}
			seen[lsn] = true
		}
	}
	if len(seen) != writers*each {
		t.Fatalf("%d distinct LSNs, want %d", len(seen), writers*each)
	}
	if got := l.DurableLSN(); got != uint64(writers*each) {
		t.Errorf("DurableLSN = %d, want %d", got, writers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != writers*each {
		t.Errorf("recovered %d records, want %d", len(got), writers*each)
	}
}

func TestWALEnsureFloor(t *testing.T) {
	dir := t.TempDir()
	// Fresh directory with a checkpoint floor: FirstLSN lines the first
	// segment up past the checkpointed history.
	opts := fastOpts(dir)
	opts.FirstLSN = 101
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if lsn := mustAppend(t, l, 1, "first"); lsn != 101 {
		t.Errorf("FirstLSN append = %d, want 101", lsn)
	}
	// A floor at or below the current position is a no-op.
	if err := l.EnsureFloor(50); err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 101 {
		t.Errorf("EnsureFloor(50) moved LastLSN to %d", got)
	}
	// A floor ahead of a non-empty segment rotates, leaving a legal gap.
	if err := l.EnsureFloor(200); err != nil {
		t.Fatal(err)
	}
	if lsn := mustAppend(t, l, 1, "after-gap"); lsn != 201 {
		t.Errorf("post-floor append = %d, want 201", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The gap survives recovery.
	l2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2, 0)
	if len(got) != 2 || got[0].lsn != 101 || got[1].lsn != 201 {
		t.Fatalf("recovered records = %+v", got)
	}
	// Replay from inside the gap sees only the later record.
	if got := replayAll(t, l2, 150); len(got) != 1 || got[0].lsn != 201 {
		t.Errorf("Replay(150) = %+v", got)
	}
	// Floor over an *empty* open segment replaces it instead of leaving a
	// zero-record file behind.
	segs0 := l2.SegmentCount()
	if err := l2.EnsureFloor(300); err != nil {
		t.Fatal(err)
	}
	if got := l2.SegmentCount(); got != segs0 {
		// rotation path would add one; replacement keeps the count
		t.Logf("segment count after empty-floor: %d (was %d)", got, segs0)
	}
	if lsn := mustAppend(t, l2, 1, "third"); lsn != 301 {
		t.Errorf("append after empty-segment floor = %d, want 301", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := replayAll(t, l3, 0); len(got) != 3 || got[2].lsn != 301 {
		t.Errorf("final recovery = %+v", got)
	}
}

// TestWALCrashSites arms a simulated crash at each WAL fault site in turn
// and requires (a) the operation to surface an IsCrash error and (b)
// recovery over the debris to retain every previously acknowledged record.
func TestWALCrashSites(t *testing.T) {
	for _, site := range []string{"wal.append", "wal.fsync", "wal.rotate"} {
		t.Run(site, func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			opts := fastOpts(dir)
			if site == "wal.rotate" {
				opts.SegmentBytes = 64 // force a rotation attempt quickly
			}
			l, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			acked := uint64(0)
			for i := 0; i < 3; i++ {
				acked = mustAppend(t, l, 1, strings.Repeat("a", 40))
			}
			fault.ArmCrash(site)
			_, err = l.Append(Record{Type: 1, Data: []byte(strings.Repeat("b", 40))})
			if !fault.IsCrash(err) {
				t.Fatalf("append through armed %s = %v, want IsCrash", site, err)
			}
			// The log is wedged: nothing more is accepted.
			if _, err := l.Append(Record{Type: 1, Data: []byte("late")}); err == nil {
				t.Error("append after a crash succeeded")
			}
			fault.Reset()
			// Abandon l (the process "died"); recover from disk.
			l2, err := Open(fastOpts(dir))
			if err != nil {
				t.Fatalf("recovery after %s crash: %v", site, err)
			}
			defer l2.Close()
			// Every acknowledged record survives; the unacknowledged one may
			// or may not, depending on where the crash hit.
			if got := l2.LastLSN(); got < acked || got > acked+1 {
				t.Errorf("recovered LastLSN = %d, want %d or %d", got, acked, acked+1)
			}
			got := replayAll(t, l2, 0)
			for i := 0; i < int(acked); i++ {
				if got[i].data != strings.Repeat("a", 40) {
					t.Errorf("acknowledged record %d corrupted: %q", i+1, got[i].data)
				}
			}
		})
	}
}

func TestWALTruncateAndReplayFaultSites(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	opts := fastOpts(dir)
	opts.SegmentBytes = 64
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, l, 1, strings.Repeat("t", 40))
	}
	fault.ArmError("wal.checkpoint.truncate", nil)
	segs := l.SegmentCount()
	if err := l.TruncateBefore(9); err == nil {
		t.Error("TruncateBefore through armed site succeeded")
	}
	if got := l.SegmentCount(); got != segs {
		t.Errorf("failed truncation removed segments: %d -> %d", segs, got)
	}
	fault.ArmError("wal.replay", nil)
	if _, err := l.Replay(0, func(uint64, Record) error { return nil }); err == nil {
		t.Error("Replay through armed site succeeded")
	}
	fault.Reset()
	// Both operations work once disarmed, and no records were lost.
	if err := l.TruncateBefore(9); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l, 9); len(got) != 1 || got[0].lsn != 10 {
		t.Errorf("post-fault replay = %+v", got)
	}
}

// TestWALFsyncErrorWedges: a real (non-crash) fsync failure must wedge the
// log — acknowledging later appends after losing one would reorder history.
func TestWALFsyncErrorWedges(t *testing.T) {
	defer fault.Reset()
	l, err := Open(fastOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, 1, "ok")
	fault.ArmError("wal.fsync", io.ErrShortWrite)
	if _, err := l.Append(Record{Type: 1, Data: []byte("lost")}); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	fault.Disarm("wal.fsync")
	if _, err := l.Append(Record{Type: 1, Data: []byte("after")}); err == nil {
		t.Error("log accepted an append after wedging")
	}
	if err := l.Sync(); err == nil {
		t.Error("Sync on a wedged log reported success")
	}
}

func TestWALClosedOperationsFail(t *testing.T) {
	l, err := Open(fastOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "x")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if _, err := l.Append(Record{Type: 1}); err != ErrClosed {
		t.Errorf("Append on closed = %v", err)
	}
	if err := l.TruncateBefore(1); err != ErrClosed {
		t.Errorf("TruncateBefore on closed = %v", err)
	}
	if _, err := l.Replay(0, nil); err != ErrClosed {
		t.Errorf("Replay on closed = %v", err)
	}
}
