// Per-datum enforcement lookups over the compiled columns (DESIGN.md §15):
// the query executor (internal/query) resolves each disclosed cell to one
// (attribute, policy tuple) coordinate at plan time, then asks here for the
// most restrictive covering preference levels per row. Both lookups are
// id-indexed walks over the flattened columns of compile.go — no map
// iteration and no purpose matching on the hot path (the cover masks
// precomputed at registration already encode Eq. 13 comparability) — with
// the reference preference walk as the fallback for stale or unmaskable
// compilations, mirroring AssessRow's dispatch.
package core

import (
	"sort"

	"repro/internal/privacy"
)

// PolicyTupleRef locates the single policy tuple governing one
// (attribute, purpose) coordinate: the attribute's dense id, the tuple's
// offset within the attribute's policy range (the bit position preference
// cover masks are keyed on), and the tuple itself.
type PolicyTupleRef struct {
	Attr   string // canonical attribute name
	AttrID uint32
	Index  uint32 // offset within the attribute's policy range
	Tuple  privacy.Tuple
}

// FindPolicyTuple resolves the governing policy tuple for an
// (attribute, purpose) pair under the assessor's matcher semantics: an
// exact-purpose tuple wins first (in policy insertion order), then — with a
// lattice matcher — the first tuple whose stated purpose covers the
// requested one. This is the plan-time gate: no tuple means the purpose is
// unstated for the attribute and the access must be refused outright.
func (a *Assessor) FindPolicyTuple(attr string, pr privacy.Purpose) (PolicyTupleRef, bool) {
	cp := a.compiled
	id, ok := cp.AttrID(attr)
	if !ok {
		return PolicyTupleRef{}, false
	}
	pr = pr.Normalize()
	start, end := cp.polStart[id], cp.polStart[id+1]
	for j := start; j < end; j++ {
		if privacy.Purpose(cp.purposes.Name(cp.polPurpose[j])) == pr {
			return cp.tupleRef(id, j), true
		}
	}
	if m := a.opts.Matcher; m != nil {
		for j := start; j < end; j++ {
			if m.Covers(privacy.Purpose(cp.purposes.Name(cp.polPurpose[j])), pr) {
				return cp.tupleRef(id, j), true
			}
		}
	}
	return PolicyTupleRef{}, false
}

// tupleRef materializes the ref for policy column j of attribute id.
func (cp *CompiledPolicy) tupleRef(id, j uint32) PolicyTupleRef {
	return PolicyTupleRef{
		Attr:   cp.attrs.Name(id),
		AttrID: id,
		Index:  j - cp.polStart[id],
		Tuple: privacy.Tuple{
			Purpose:     privacy.Purpose(cp.purposes.Name(cp.polPurpose[j])),
			Visibility:  privacy.Level(cp.polV[j]),
			Granularity: privacy.Level(cp.polG[j]),
			Retention:   privacy.Level(cp.polR[j]),
		},
	}
}

// PrefBinding is the per-datum preference constraint at one policy
// coordinate: along each ordered dimension, the minimum level over the
// provider's preference tuples comparable (Eq. 13) with the policy tuple,
// plus the binding tuple itself so an enforcement decision can be traced to
// its violating (pref, policy) pair. Found is false when no preference
// tuple covers the coordinate (only possible with implicit zeros disabled
// or a purpose outside the provider's stated set) — the policy alone then
// bounds the disclosure.
type PrefBinding struct {
	Found   bool
	V, G, R privacy.Level
	// VPref/GPref/RPref are the preference tuples that set each minimum
	// (the first in reference enumeration order on ties).
	VPref, GPref, RPref privacy.Tuple
	// VImplicit/GImplicit/RImplicit mark binding tuples synthesized by the
	// Sec. 5 implicit-zero rule.
	VImplicit, GImplicit, RImplicit bool
}

// BindingFor computes the preference binding for provider p at policy
// coordinate ref. When c is current for this assessor the walk is the
// columnar fast path — a binary search into the attribute's run plus a
// cover-mask test per tuple; otherwise the reference effective-preference
// walk is used. Both paths enumerate tuples in the same order, so the
// binding (including tie-broken binding tuples) is identical.
func (a *Assessor) BindingFor(p *privacy.Prefs, c *CompiledPrefs, ref PolicyTupleRef) PrefBinding {
	if c.CurrentFor(a) && ref.Index < maxPolicyTuplesPerAttr {
		return c.binding(ref)
	}
	return a.bindingReference(p, ref)
}

// binding is the columnar fast path: fold per-dimension minima over the
// attribute's compiled tuples whose cover mask includes the policy tuple.
func (c *CompiledPrefs) binding(ref PolicyTupleRef) PrefBinding {
	var b PrefBinding
	bit := uint64(1) << ref.Index
	lo := sort.Search(len(c.attrID), func(i int) bool { return c.attrID[i] >= ref.AttrID })
	for i := lo; i < len(c.attrID) && c.attrID[i] == ref.AttrID; i++ {
		if c.cover[i]&bit == 0 {
			continue
		}
		tup := privacy.Tuple{
			Purpose:     c.purpose[i],
			Visibility:  privacy.Level(c.prefV[i]),
			Granularity: privacy.Level(c.prefG[i]),
			Retention:   privacy.Level(c.prefR[i]),
		}
		b.fold(tup, c.implicit[i])
	}
	return b
}

// bindingReference is the fallback: the same fold over the reference
// effective-preference enumeration (explicit tuples in insertion order,
// then implicit zeros in sorted house-purpose order).
func (a *Assessor) bindingReference(p *privacy.Prefs, ref PolicyTupleRef) PrefBinding {
	var b PrefBinding
	if p == nil {
		return b
	}
	m := a.opts.Matcher
	if m == nil {
		m = privacy.EqualityMatcher{}
	}
	explicit := len(p.ForAttribute(ref.Attr))
	for idx, pref := range a.effectivePrefs(p, ref.Attr) {
		if !m.Covers(pref.Tuple.Purpose, ref.Tuple.Purpose) {
			continue
		}
		b.fold(pref.Tuple, idx >= explicit)
	}
	return b
}

// fold accumulates one covering preference tuple into the binding, keeping
// strict minima so the first tuple in enumeration order wins ties.
func (b *PrefBinding) fold(tup privacy.Tuple, implicit bool) {
	if !b.Found {
		*b = PrefBinding{
			Found: true,
			V:     tup.Visibility, G: tup.Granularity, R: tup.Retention,
			VPref: tup, GPref: tup, RPref: tup,
			VImplicit: implicit, GImplicit: implicit, RImplicit: implicit,
		}
		return
	}
	if tup.Visibility < b.V {
		b.V, b.VPref, b.VImplicit = tup.Visibility, tup, implicit
	}
	if tup.Granularity < b.G {
		b.G, b.GPref, b.GImplicit = tup.Granularity, tup, implicit
	}
	if tup.Retention < b.R {
		b.R, b.RPref, b.RImplicit = tup.Retention, tup, implicit
	}
}
