package whatif

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/economics"
	"repro/internal/privacy"
)

// ShadowVersionBit marks shadow policy versions: a candidate evaluated by
// the engine carries the live policy version with this bit set. Live policy
// versions are small monotonic counters, so the two namespaces are disjoint
// — a shadow version can never equal a live one, and therefore can never
// satisfy a ledger's (policyVersion, prefsVersion) memo key.
const ShadowVersionBit = uint64(1) << 63

// Engine evaluates one candidate diff against provider populations. It is
// immutable after NewEngine and safe for concurrent Evaluate calls.
type Engine struct {
	live   *core.Assessor
	shadow *core.Assessor
	req    *Request

	policyName    string
	proposedName  string
	policyVersion uint64
	shadowVersion uint64

	affectedAttrs []string        // sorted attributes the diff touches
	affectedSet   map[string]bool // same set, for membership tests
	// allAffected is the global fallback: the diff changes the conflict
	// structure an *empty* preference set sees on some affected attribute
	// (implicit-zero conflicts, Sec. 5), so no provider can be proven
	// unaffected and everyone is re-assessed under the shadow policy.
	allAffected bool
}

// NewEngine validates the request, compiles the candidate diff into a
// shadow assessor, and decides the reuse strategy. live must be the
// assessor the provider snapshots were compiled against (internal/ppdb's
// cached one) — the columnar fast path keys on assessor identity.
// policyVersion is the live policy version the shadow version derives from.
func NewEngine(live *core.Assessor, attrSens privacy.AttributeSensitivities, opts core.Options,
	policyVersion uint64, req *Request, sc privacy.Scales) (*Engine, error) {
	if live == nil {
		return nil, fmt.Errorf("whatif: nil live assessor")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	livePolicy := live.Policy()
	proposedName := req.Name
	if proposedName == "" {
		proposedName = livePolicy.Name + "+whatif"
	}
	shadowPolicy, shadowSens, affected, err := ApplyDiff(livePolicy, attrSens, &req.Diff, proposedName, sc)
	if err != nil {
		return nil, err
	}
	shadow, err := core.NewAssessor(shadowPolicy, shadowSens, opts)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		live:          live,
		shadow:        shadow,
		req:           req,
		policyName:    livePolicy.Name,
		proposedName:  proposedName,
		policyVersion: policyVersion,
		shadowVersion: policyVersion | ShadowVersionBit,
		affectedAttrs: affected,
		affectedSet:   make(map[string]bool, len(affected)),
	}
	for _, a := range affected {
		e.affectedSet[a] = true
	}
	e.allAffected = !e.genericConflictsUnchanged()
	return e, nil
}

// genericConflictsUnchanged implements the exactness rule behind
// affected-set pruning. A provider who touches no affected attribute (no
// explicit preference tuples, no σ elements) is assessed on each affected
// attribute exactly like the empty preference set: unit sensitivities and,
// under the Sec. 5 rule, one implicit zero tuple per house purpose. So the
// provider's report is provably unchanged by the diff iff the empty set's
// pair conflicts on every affected attribute are identical under the live
// and shadow assessors. When they differ — the diff widened a tuple past
// zero, added a purpose, or rescaled Σ where overshoot exists — every
// preference-less provider's violation amount moves, and only a global
// re-assessment is exact.
func (e *Engine) genericConflictsUnchanged() bool {
	empty := privacy.NewPrefs("", 0)
	liveRep := e.live.AssessProvider(empty)
	shadowRep := e.shadow.AssessProvider(empty)
	byAttr := func(rep core.ProviderReport) map[string][]core.PairConflict {
		m := map[string][]core.PairConflict{}
		for _, pc := range rep.Pairs {
			m[pc.Attribute] = append(m[pc.Attribute], pc)
		}
		return m
	}
	livePairs, shadowPairs := byAttr(liveRep), byAttr(shadowRep)
	for _, a := range e.affectedAttrs {
		if !reflect.DeepEqual(livePairs[a], shadowPairs[a]) {
			return false
		}
	}
	return true
}

// ShadowVersion returns the candidate's shadow policy version.
func (e *Engine) ShadowVersion() uint64 { return e.shadowVersion }

// AffectedAttributes returns the sorted attribute set the diff touches.
func (e *Engine) AffectedAttributes() []string { return e.affectedAttrs }

// GlobalFallback reports whether the engine must re-assess every provider.
func (e *Engine) GlobalFallback() bool { return e.allAffected }

// ShardSource is one shard's immutable provider snapshot: parallel slices
// in ascending key order. Compiled rows may be nil (providers whose prefs
// did not compile take the reference path); the slice itself may also be
// nil when no compiled forms exist.
type ShardSource struct {
	Keys     []string
	Prefs    []*privacy.Prefs
	Compiled []*core.CompiledPrefs
}

// Memo looks up a memoized live report for shards[shard].Keys[i], returning
// ok=false when none is current. Implementations must return reports keyed
// on the live (policy, prefs) version — internal/ppdb wires this to the
// incremental ledger. A nil Memo always misses.
type Memo func(shard, i int) (core.ProviderReport, bool)

// shardEval is one shard's evaluation output, merged after the fan-out.
type shardEval struct {
	cur, shd []core.ProviderReport
	affected int
	reused   int
	memoHits int
	// per affected-attribute segment tallies, indexed like affectedAttrs
	segProviders []int
	segDefCur    []int
	segDefShd    []int
}

// Evaluate assesses the candidate against the provider population in
// shards, reusing memoized live reports where offered and re-assessing
// under the shadow policy only the providers the diff can affect. It reads
// the snapshots and writes nothing anywhere.
func (e *Engine) Evaluate(shards []ShardSource, memo Memo) *Response {
	evals := make([]shardEval, len(shards))
	core.FanOut(len(shards), len(shards), func(si int) {
		src := shards[si]
		ev := &evals[si]
		n := len(src.Keys)
		ev.cur = make([]core.ProviderReport, n)
		ev.shd = make([]core.ProviderReport, n)
		ev.segProviders = make([]int, len(e.affectedAttrs))
		ev.segDefCur = make([]int, len(e.affectedAttrs))
		ev.segDefShd = make([]int, len(e.affectedAttrs))
		var sc core.Scratch
		for i := 0; i < n; i++ {
			p := src.Prefs[i]
			cur, hit := core.ProviderReport{}, false
			if memo != nil {
				cur, hit = memo(si, i)
			}
			if hit {
				ev.memoHits++
			} else {
				var compiled *core.CompiledPrefs
				if src.Compiled != nil {
					compiled = src.Compiled[i]
				}
				cur = e.live.AssessRow(p, compiled, &sc)
			}
			ev.cur[i] = cur

			touched := e.allAffected
			for _, a := range e.affectedAttrs {
				if p.TouchesAttribute(a) {
					touched = true
					break
				}
			}
			var shd core.ProviderReport
			if touched {
				// Shadow assessments always take the reference path: the
				// compiled columns were built against the live policy and the
				// shadow policy is evaluated once per candidate, not per
				// certification — compiling every provider against it would
				// cost more than it saves.
				shd = e.shadow.AssessProvider(p)
				ev.affected++
			} else {
				shd = cur
				ev.reused++
			}
			ev.shd[i] = shd

			if e.req.Detail {
				for k, a := range e.affectedAttrs {
					if !p.TouchesAttribute(a) {
						continue
					}
					ev.segProviders[k]++
					if cur.Defaults {
						ev.segDefCur[k]++
					}
					if shd.Defaults {
						ev.segDefShd[k]++
					}
				}
			}
		}
	})

	// P-way merge into the global ascending key order, so both population
	// totals are float-summed in the canonical certification order and the
	// current summary is bit-identical to a full certification.
	total := 0
	for _, ev := range evals {
		total += len(ev.cur)
	}
	curRows := make([]core.ProviderReport, 0, total)
	shdRows := make([]core.ProviderReport, 0, total)
	cursors := make([]int, len(shards))
	for len(curRows) < total {
		best := -1
		for si := range shards {
			if cursors[si] >= len(shards[si].Keys) {
				continue
			}
			if best < 0 || shards[si].Keys[cursors[si]] < shards[best].Keys[cursors[best]] {
				best = si
			}
		}
		curRows = append(curRows, evals[best].cur[cursors[best]])
		shdRows = append(shdRows, evals[best].shd[cursors[best]])
		cursors[best]++
	}

	cur := core.AssemblePopulation(curRows)
	shd := core.AssemblePopulation(shdRows)

	resp := &Response{
		PolicyName:         e.policyName,
		PolicyVersion:      e.policyVersion,
		ProposedName:       e.proposedName,
		ShadowVersion:      e.shadowVersion,
		Current:            summaryOf(cur),
		Proposed:           summaryOf(shd),
		DeltaPW:            shd.PW - cur.PW,
		DeltaPDefault:      shd.PDefault - cur.PDefault,
		NCurrent:           cur.N - cur.DefaultCount,
		NFuture:            shd.N - shd.DefaultCount,
		U:                  e.req.U,
		T:                  e.req.T,
		AffectedAttributes: e.affectedAttrs,
		GlobalFallback:     e.allAffected,
	}
	for _, ev := range evals {
		resp.Affected += ev.affected
		resp.MemoReused += ev.reused
	}

	if be := economics.BreakEvenT(e.req.U, resp.NCurrent, resp.NFuture); !math.IsInf(be, 1) {
		resp.BreakEvenT = &be
	}
	resp.Justified = economics.Justified(e.req.U, e.req.T, resp.NCurrent, resp.NFuture)
	switch {
	case resp.NFuture >= resp.NCurrent:
		resp.Verdict = VerdictFree
	case resp.Justified:
		resp.Verdict = VerdictJustified
	default:
		resp.Verdict = VerdictUnjustified
	}

	if e.req.Detail {
		resp.Segments = make([]Segment, len(e.affectedAttrs))
		for k, a := range e.affectedAttrs {
			seg := Segment{Attribute: a}
			for _, ev := range evals {
				seg.Providers += ev.segProviders[k]
				seg.DefaultsCurrent += ev.segDefCur[k]
				seg.DefaultsProposed += ev.segDefShd[k]
			}
			resp.Segments[k] = seg
		}
	}
	return resp
}

func summaryOf(rep core.PopulationReport) Summary {
	return Summary{
		N:               rep.N,
		ViolatedCount:   rep.ViolatedCount,
		DefaultCount:    rep.DefaultCount,
		TotalViolations: rep.TotalViolations,
		PW:              rep.PW,
		PDefault:        rep.PDefault,
	}
}

// EvaluateOffline runs a what-if against an in-memory population with no
// store, ledger or memoization — the cmd/whatif path. The population is
// evaluated in ascending case-folded provider order, the same canonical
// order internal/ppdb certifies in, so offline and online responses for the
// same state are identical.
func EvaluateOffline(policy *privacy.HousePolicy, attrSens privacy.AttributeSensitivities,
	opts core.Options, pop []*privacy.Prefs, req *Request) (*Response, error) {
	live, err := core.NewAssessor(policy, attrSens, opts)
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(live, attrSens, opts, 0, req, privacy.DefaultScales())
	if err != nil {
		return nil, err
	}
	sorted := make([]*privacy.Prefs, len(pop))
	copy(sorted, pop)
	sort.SliceStable(sorted, func(i, j int) bool {
		return strings.ToLower(sorted[i].Provider) < strings.ToLower(sorted[j].Provider)
	})
	src := ShardSource{
		Keys:     make([]string, len(sorted)),
		Prefs:    sorted,
		Compiled: make([]*core.CompiledPrefs, len(sorted)),
	}
	for i, p := range sorted {
		src.Keys[i] = strings.ToLower(p.Provider)
		src.Compiled[i] = live.Compile(p)
	}
	return e.Evaluate([]ShardSource{src}, nil), nil
}
