package relational

import (
	"strings"
	"testing"
)

func personSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "ID", Type: TypeInt, PrimaryKey: true},
		{Name: "Name", Type: TypeText, NotNull: true},
		{Name: "Weight", Type: TypeFloat},
		{Name: "Active", Type: TypeBool},
	})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := personSchema(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.ColumnIndex("WEIGHT"); !ok || i != 2 {
		t.Errorf("ColumnIndex(WEIGHT) = %d, %v", i, ok)
	}
	if _, ok := s.ColumnIndex("missing"); ok {
		t.Error("missing column should not resolve")
	}
	if s.PrimaryKey() != 0 {
		t.Errorf("PrimaryKey = %d", s.PrimaryKey())
	}
	if !s.Column(0).NotNull {
		t.Error("primary key must be implicitly NOT NULL")
	}
	if s.Column(1).Name != "name" {
		t.Error("column names must be canonicalized to lower case")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema([]Column{{Name: "", Type: TypeInt}}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema([]Column{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeText}}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewSchema([]Column{
		{Name: "a", Type: TypeInt, PrimaryKey: true},
		{Name: "b", Type: TypeInt, PrimaryKey: true},
	}); err == nil {
		t.Error("two primary keys should fail")
	}
}

func TestCheckRow(t *testing.T) {
	s := personSchema(t)
	row, err := s.CheckRow(Row{Int(1), Text("alice"), Int(70), Bool(true)})
	if err != nil {
		t.Fatalf("CheckRow: %v", err)
	}
	// Int widened to float for the FLOAT column.
	if row[2].Kind() != KindFloat {
		t.Errorf("weight kind = %s, want float", row[2].Kind())
	}
	// NULL allowed in nullable columns.
	if _, err := s.CheckRow(Row{Int(2), Text("bob"), Null(), Null()}); err != nil {
		t.Errorf("nullable NULLs rejected: %v", err)
	}
	// Arity mismatch.
	if _, err := s.CheckRow(Row{Int(1)}); err == nil {
		t.Error("short row should fail")
	}
	// NOT NULL violation.
	if _, err := s.CheckRow(Row{Int(1), Null(), Null(), Null()}); err == nil {
		t.Error("NULL in NOT NULL column should fail")
	}
	// Type mismatch.
	if _, err := s.CheckRow(Row{Text("x"), Text("y"), Null(), Null()}); err == nil {
		t.Error("text in INT column should fail")
	}
	if _, err := s.CheckRow(Row{Int(1), Text("y"), Text("heavy"), Null()}); err == nil {
		t.Error("text in FLOAT column should fail")
	}
}

func TestParseColType(t *testing.T) {
	ok := map[string]ColType{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float": TypeFloat, "REAL": TypeFloat, "double": TypeFloat,
		"text": TypeText, "VARCHAR": TypeText, "string": TypeText, "char": TypeText,
		"bool": TypeBool, "BOOLEAN": TypeBool,
	}
	for in, want := range ok {
		got, err := ParseColType(in)
		if err != nil || got != want {
			t.Errorf("ParseColType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseColType("blob"); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestSchemaString(t *testing.T) {
	s := personSchema(t)
	str := s.String()
	for _, want := range []string{"id INT PRIMARY KEY", "name TEXT NOT NULL", "weight FLOAT", "active BOOL"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
