#!/bin/sh
# CI gate: the full `make check` chain (gofmt, go vet, ppdblint, build,
# tests), the fault-injection/crash-matrix suite, the WAL durability suite,
# and a race pass over the concurrency-bearing packages — the PPDB
# prototype, the relational engine, the ledger, the write-ahead log (group
# commit runs a background flusher against concurrent appenders), the fault
# registry (global armed-site state hit from request goroutines), the
# hardened HTTP layer (in-flight semaphore, readiness flag), the enforced
# query engine (read-side snapshots raced against store mutation) and the
# metrics registry every one of them publishes to.
set -eu

cd "$(dirname "$0")/.."

make check
make faults
make faults-wal

# The race package list is derived from `go list`, not hand-maintained:
# a rename or deletion of any gated package fails here loudly instead of
# silently shrinking the race surface. Both the match regex and the
# expected count derive from the one name list below, so adding a package
# is a one-word change.
race_names='ledger ppdb relational fault httpapi metrics wal query whatif'
race_re="internal/($(echo "$race_names" | tr ' ' '|'))\$"
want=$(echo "$race_names" | wc -w | tr -d ' ')
race_pkgs=$(go list ./... | grep -E "$race_re" || true)
count=$(printf '%s' "$race_pkgs" | grep -c . || true)
if [ "$count" -ne "$want" ]; then
	echo "ci.sh: race list matched $count packages, want $want — a gated package moved or vanished:" >&2
	printf '%s\n' "$race_pkgs" >&2
	exit 1
fi
# shellcheck disable=SC2086 # the list is newline-separated package paths
go test -race $race_pkgs

# Shard-sweep race pass: the shard-count equivalence suite exercises every
# cross-shard fan-out/merge path (bulk ingest, rebuild, snapshot render) at
# 1/2/8 shards, and the sharded enforced-query test races concurrent
# QueryEnforced snapshots against registration, inserts and policy swaps.
# GOMAXPROCS=4 gives the race detector real interleavings of the per-shard
# goroutines even on single-core runners.
GOMAXPROCS=4 go test -race -run 'Shard|LedgerCertifyEquivalence' ./internal/ppdb ./internal/ledger
