// Package population synthesizes data-provider populations for the model's
// simulation programme (the paper's Sec. 10 future work: "producing a
// simulation using a sample dataset to show that our model has the
// properties claimed"). Providers are drawn from Westin-style privacy
// segments — fundamentalists, pragmatists, unconcerned — with per-segment
// preference, sensitivity and default-threshold distributions, and matching
// synthetic microdata rows for the relational substrate.
package population

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator. It is
// reproducible across platforms and Go releases (unlike math/rand's default
// source ordering guarantees) and satisfies core.IntnSource.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator; any seed (including 0) is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// next64 advances splitmix64.
func (r *RNG) next64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next64() }

// Intn returns a uniform int in [0, n). It panics for n ≤ 0, mirroring
// math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("population: Intn argument must be positive")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.next64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next64()>>11) / float64(1<<53)
}

// Range returns a uniform float in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normal deviate with the given mean and standard deviation
// (Box-Muller; one value per call for simplicity).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	//lint:ignore floatcmp Box-Muller only breaks at exactly zero (log 0); a tolerance would bias the tail
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normal deviate whose underlying normal has the given
// mu and sigma. Useful for heavy-tailed quantities such as default
// thresholds v_i.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Bern returns true with probability p.
func (r *RNG) Bern(p float64) bool { return r.Float64() < p }

// Pick selects an index according to non-negative weights (they need not sum
// to 1). It panics on an empty or all-zero weight vector.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("population: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("population: weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// ClampInt bounds v into [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
