package policydsl

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/privacy"
)

// Render produces DSL text for a document; Parse(Render(doc)) is equivalent
// to doc (levels render as scale names where possible).
func Render(doc *Document) string {
	var b strings.Builder
	sc := doc.Scales
	if sc.Visibility == nil {
		sc = privacy.DefaultScales()
	}
	levelName := func(d privacy.Dimension, l privacy.Level) string {
		s := sc.For(d)
		if s != nil && s.Contains(l) {
			return s.Name(l)
		}
		return fmt.Sprintf("%d", int(l))
	}
	writeTuple := func(indent string, t privacy.Tuple) {
		fmt.Fprintf(&b, "%stuple purpose=%s visibility=%s granularity=%s retention=%s\n",
			indent, t.Purpose,
			levelName(privacy.DimVisibility, t.Visibility),
			levelName(privacy.DimGranularity, t.Granularity),
			levelName(privacy.DimRetention, t.Retention))
	}

	if doc.Policy != nil {
		fmt.Fprintf(&b, "policy %q {\n", doc.Policy.Name)
		for _, attr := range doc.Policy.Attributes() {
			fmt.Fprintf(&b, "  attr %s {\n", attr)
			for _, e := range doc.Policy.ForAttribute(attr) {
				writeTuple("    ", e.Tuple)
			}
			b.WriteString("  }\n")
		}
		attrs := make([]string, 0, len(doc.AttrSens))
		for a := range doc.AttrSens {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			fmt.Fprintf(&b, "  sensitivity %s %g\n", a, doc.AttrSens[a])
		}
		b.WriteString("}\n")
	}

	for _, prov := range doc.Providers {
		fmt.Fprintf(&b, "\nprovider %q threshold %g {\n", prov.Provider, prov.Threshold)
		for _, attr := range providerAttrs(prov) {
			fmt.Fprintf(&b, "  attr %s {\n", attr)
			// Render the per-attribute default sensitivity when it is not
			// the unit default.
			purposes := map[privacy.Purpose]bool{}
			for _, e := range prov.ForAttribute(attr) {
				purposes[e.Tuple.Purpose] = true
			}
			for _, k := range prov.SensitivityKeys() {
				if k.Attribute == attr && k.Purpose != "" {
					purposes[k.Purpose] = true
				}
			}
			if s := prov.Sensitivity(attr, ""); s != privacy.UnitSensitivity {
				fmt.Fprintf(&b, "    sens value=%g v=%g g=%g r=%g\n",
					s.Value, s.Visibility, s.Granularity, s.Retention)
			}
			// Per-purpose overrides that differ from the default.
			def := prov.Sensitivity(attr, "")
			prs := make([]string, 0, len(purposes))
			for pr := range purposes {
				prs = append(prs, string(pr))
			}
			sort.Strings(prs)
			for _, pr := range prs {
				if s := prov.Sensitivity(attr, privacy.Purpose(pr)); s != def {
					fmt.Fprintf(&b, "    sens purpose=%s value=%g v=%g g=%g r=%g\n",
						pr, s.Value, s.Visibility, s.Granularity, s.Retention)
				}
			}
			for _, e := range prov.ForAttribute(attr) {
				writeTuple("    ", e.Tuple)
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// providerAttrs returns the sorted union of a provider's tuple-bearing and
// sensitivity-bearing attributes: an attribute can carry a σ element with
// no explicit tuples (it still weighs implicit-zero conflicts), and both
// encoders must render it or the element is lost on the round trip.
func providerAttrs(prov *privacy.Prefs) []string {
	attrs := prov.Attributes()
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		seen[a] = true
	}
	for _, k := range prov.SensitivityKeys() {
		if !seen[k.Attribute] {
			seen[k.Attribute] = true
			attrs = append(attrs, k.Attribute)
		}
	}
	sort.Strings(attrs)
	return attrs
}

// JSON interchange types. Levels are numeric; the scales give them meaning.

// TupleJSON is a privacy tuple in interchange form.
type TupleJSON struct {
	Purpose     string `json:"purpose"`
	Visibility  int    `json:"visibility"`
	Granularity int    `json:"granularity"`
	Retention   int    `json:"retention"`
}

// PolicyJSON is a house policy in interchange form.
type PolicyJSON struct {
	Name   string                 `json:"name"`
	Tuples map[string][]TupleJSON `json:"tuples"` // attribute → tuples
	Sens   map[string]float64     `json:"sensitivity,omitempty"`
}

// SensJSON is a σ element in interchange form.
type SensJSON struct {
	Purpose     string  `json:"purpose,omitempty"` // empty = attribute default
	Value       float64 `json:"value"`
	Visibility  float64 `json:"v"`
	Granularity float64 `json:"g"`
	Retention   float64 `json:"r"`
}

// ProviderJSON is one provider's preferences in interchange form.
type ProviderJSON struct {
	Name      string                 `json:"name"`
	Threshold float64                `json:"threshold"`
	Tuples    map[string][]TupleJSON `json:"tuples"`
	Sens      map[string][]SensJSON  `json:"sens,omitempty"`
}

// DocumentJSON is the whole corpus in interchange form.
type DocumentJSON struct {
	Policy    *PolicyJSON    `json:"policy,omitempty"`
	Providers []ProviderJSON `json:"providers,omitempty"`
}

func tupleToJSON(t privacy.Tuple) TupleJSON {
	return TupleJSON{
		Purpose:     string(t.Purpose),
		Visibility:  int(t.Visibility),
		Granularity: int(t.Granularity),
		Retention:   int(t.Retention),
	}
}

func tupleFromJSON(j TupleJSON) privacy.Tuple {
	return privacy.Tuple{
		Purpose:     privacy.Purpose(j.Purpose).Normalize(),
		Visibility:  privacy.Level(j.Visibility),
		Granularity: privacy.Level(j.Granularity),
		Retention:   privacy.Level(j.Retention),
	}
}

// PolicyToJSON converts a house policy (plus the house Σ vector, which may
// be nil) to interchange form. Exported for the persistence layers — the
// snapshot corpus and the WAL's policy records share this codec.
func PolicyToJSON(hp *privacy.HousePolicy, sens privacy.AttributeSensitivities) *PolicyJSON {
	pj := &PolicyJSON{Name: hp.Name, Tuples: map[string][]TupleJSON{}}
	for _, e := range hp.Entries() {
		pj.Tuples[e.Attribute] = append(pj.Tuples[e.Attribute], tupleToJSON(e.Tuple))
	}
	if len(sens) > 0 {
		pj.Sens = map[string]float64(sens)
	}
	return pj
}

// PolicyFromJSON rebuilds a house policy (and Σ vector) from interchange
// form, validated against sc.
func PolicyFromJSON(pj *PolicyJSON, sc privacy.Scales) (*privacy.HousePolicy, privacy.AttributeSensitivities, error) {
	hp := privacy.NewHousePolicy(pj.Name)
	attrs := make([]string, 0, len(pj.Tuples))
	for a := range pj.Tuples {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		for _, tj := range pj.Tuples[a] {
			hp.Add(a, tupleFromJSON(tj))
		}
	}
	sens := privacy.AttributeSensitivities{}
	for a, v := range pj.Sens {
		sens.Set(a, v)
	}
	if err := hp.Validate(sc); err != nil {
		return nil, nil, err
	}
	return hp, sens, nil
}

// ProviderToJSON converts one provider's preferences to interchange form.
func ProviderToJSON(prov *privacy.Prefs) ProviderJSON {
	vj := ProviderJSON{
		Name:      prov.Provider,
		Threshold: prov.Threshold,
		Tuples:    map[string][]TupleJSON{},
		Sens:      map[string][]SensJSON{},
	}
	for _, e := range prov.Entries() {
		vj.Tuples[e.Attribute] = append(vj.Tuples[e.Attribute], tupleToJSON(e.Tuple))
	}
	for _, attr := range providerAttrs(prov) {
		if s := prov.Sensitivity(attr, ""); s != privacy.UnitSensitivity {
			vj.Sens[attr] = append(vj.Sens[attr], SensJSON{
				Value: s.Value, Visibility: s.Visibility,
				Granularity: s.Granularity, Retention: s.Retention,
			})
		}
		def := prov.Sensitivity(attr, "")
		purposes := map[privacy.Purpose]bool{}
		for _, e := range prov.ForAttribute(attr) {
			purposes[e.Tuple.Purpose] = true
		}
		for _, k := range prov.SensitivityKeys() {
			if k.Attribute == attr && k.Purpose != "" {
				purposes[k.Purpose] = true
			}
		}
		prs := make([]string, 0, len(purposes))
		for pr := range purposes {
			prs = append(prs, string(pr))
		}
		sort.Strings(prs)
		for _, pr := range prs {
			if s := prov.Sensitivity(attr, privacy.Purpose(pr)); s != def {
				vj.Sens[attr] = append(vj.Sens[attr], SensJSON{
					Purpose: pr,
					Value:   s.Value, Visibility: s.Visibility,
					Granularity: s.Granularity, Retention: s.Retention,
				})
			}
		}
	}
	if len(vj.Sens) == 0 {
		vj.Sens = nil
	}
	return vj
}

// ProviderFromJSON rebuilds one provider's preferences from interchange
// form, validated against sc.
func ProviderFromJSON(pj ProviderJSON, sc privacy.Scales) (*privacy.Prefs, error) {
	prov := privacy.NewPrefs(pj.Name, pj.Threshold)
	attrs := make([]string, 0, len(pj.Tuples))
	for a := range pj.Tuples {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		for _, tj := range pj.Tuples[a] {
			prov.Add(a, tupleFromJSON(tj))
		}
	}
	for a, sl := range pj.Sens {
		for _, sj := range sl {
			s := privacy.Sensitivity{
				Value: sj.Value, Visibility: sj.Visibility,
				Granularity: sj.Granularity, Retention: sj.Retention,
			}
			if sj.Purpose == "" {
				prov.SetSensitivity(a, s)
			} else {
				prov.SetPurposeSensitivity(a, privacy.Purpose(sj.Purpose), s)
			}
		}
	}
	if err := prov.Validate(sc); err != nil {
		return nil, err
	}
	return prov, nil
}

// MarshalJSON encodes the document.
func MarshalJSON(doc *Document) ([]byte, error) {
	out := DocumentJSON{}
	if doc.Policy != nil {
		out.Policy = PolicyToJSON(doc.Policy, doc.AttrSens)
	}
	for _, prov := range doc.Providers {
		out.Providers = append(out.Providers, ProviderToJSON(prov))
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON decodes a document and validates it against the default
// scales.
func UnmarshalJSON(data []byte) (*Document, error) {
	var in DocumentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("policydsl: %w", err)
	}
	doc := &Document{Scales: privacy.DefaultScales(), AttrSens: privacy.AttributeSensitivities{}}
	if in.Policy != nil {
		hp, sens, err := PolicyFromJSON(in.Policy, doc.Scales)
		if err != nil {
			return nil, err
		}
		doc.Policy = hp
		doc.AttrSens = sens
	}
	for _, pj := range in.Providers {
		prov, err := ProviderFromJSON(pj, doc.Scales)
		if err != nil {
			return nil, err
		}
		doc.Providers = append(doc.Providers, prov)
	}
	return doc, nil
}
