// Package generalize provides value-generalization hierarchies — the
// concrete machinery behind the taxonomy's granularity dimension — plus the
// release-time anonymity baselines the paper's related-work section
// contrasts with (k-anonymity via full-domain generalization, l-diversity).
//
// A Hierarchy maps a value to progressively coarser forms. Level 0 is the
// exact value ("specific" on the granularity scale); the highest level is
// full suppression ("none"). The PPDB uses hierarchies to degrade query
// answers to the granularity a policy allows; the k-anonymity search uses
// them to anonymize a release.
package generalize

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/relational"
)

// Hierarchy generalizes values of one attribute. Implementations must be
// deterministic: the same value at the same level always yields the same
// output, so equivalence classes are well defined.
type Hierarchy interface {
	// Levels returns the number of generalization levels, ≥ 1. Level 0 is
	// the identity; Levels()-1 is full suppression.
	Levels() int
	// Generalize maps v to its form at the given level. Values outside the
	// hierarchy's domain are suppressed. NULL passes through unchanged.
	Generalize(v relational.Value, level int) relational.Value
}

// Suppressed is the output of full suppression.
var Suppressed = relational.Text("*")

// clampLevel bounds lv into [0, max].
func clampLevel(lv, max int) int {
	if lv < 0 {
		return 0
	}
	if lv > max {
		return max
	}
	return lv
}

// NumericHierarchy generalizes numbers into progressively wider ranges.
// Level 0 is the value itself; level k (1 ≤ k < Levels-1) buckets into
// ranges of Width × Factor^(k-1); the last level suppresses. Bucket labels
// render as "[lo-hi)".
type NumericHierarchy struct {
	// Width is the bucket width at level 1. Must be > 0.
	Width float64
	// Factor multiplies the width per additional level. Must be > 1.
	Factor float64
	// Depth is the number of range levels (excluding identity and
	// suppression). Total Levels = Depth + 2.
	Depth int
}

// NewNumericHierarchy validates and returns a numeric hierarchy.
func NewNumericHierarchy(width, factor float64, depth int) (*NumericHierarchy, error) {
	if width <= 0 {
		return nil, fmt.Errorf("generalize: width %g must be positive", width)
	}
	if factor <= 1 {
		return nil, fmt.Errorf("generalize: factor %g must exceed 1", factor)
	}
	if depth < 1 {
		return nil, fmt.Errorf("generalize: depth %d must be at least 1", depth)
	}
	return &NumericHierarchy{Width: width, Factor: factor, Depth: depth}, nil
}

// Levels implements Hierarchy.
func (h *NumericHierarchy) Levels() int { return h.Depth + 2 }

// Generalize implements Hierarchy.
func (h *NumericHierarchy) Generalize(v relational.Value, level int) relational.Value {
	if v.IsNull() {
		return v
	}
	level = clampLevel(level, h.Levels()-1)
	if level == 0 {
		return v
	}
	if level == h.Levels()-1 {
		return Suppressed
	}
	f, ok := v.AsFloat()
	if !ok {
		return Suppressed
	}
	w := h.Width * math.Pow(h.Factor, float64(level-1))
	lo := math.Floor(f/w) * w
	return relational.Text(formatRange(lo, lo+w))
}

func formatRange(lo, hi float64) string {
	return fmt.Sprintf("[%s-%s)", trimFloat(lo), trimFloat(hi))
}

func trimFloat(f float64) string {
	//lint:ignore floatcmp rendering decision: only exactly-integral floats print without a fraction
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// CategoryHierarchy generalizes categorical values through an explicit tree:
// each value maps to its parent, parents to grandparents, and so on up to a
// root. Level k replaces a value by its k'th ancestor (staying at the root);
// the final level suppresses.
type CategoryHierarchy struct {
	parent map[string]string
	depth  int
}

// NewCategoryHierarchy builds a hierarchy from child → parent edges. The
// depth is the longest chain length; cycles are rejected.
func NewCategoryHierarchy(parents map[string]string) (*CategoryHierarchy, error) {
	norm := make(map[string]string, len(parents))
	for c, p := range parents {
		norm[strings.ToLower(c)] = strings.ToLower(p)
	}
	depth := 0
	for c := range norm {
		d := 0
		seen := map[string]bool{c: true}
		cur := c
		for {
			p, ok := norm[cur]
			if !ok {
				break
			}
			if seen[p] {
				return nil, fmt.Errorf("generalize: cycle through %q", p)
			}
			seen[p] = true
			cur = p
			d++
		}
		if d > depth {
			depth = d
		}
	}
	if depth == 0 {
		return nil, fmt.Errorf("generalize: hierarchy has no edges")
	}
	return &CategoryHierarchy{parent: norm, depth: depth}, nil
}

// Levels implements Hierarchy: identity + depth ancestor levels +
// suppression.
func (h *CategoryHierarchy) Levels() int { return h.depth + 2 }

// Generalize implements Hierarchy.
func (h *CategoryHierarchy) Generalize(v relational.Value, level int) relational.Value {
	if v.IsNull() {
		return v
	}
	level = clampLevel(level, h.Levels()-1)
	if level == 0 {
		return v
	}
	if level == h.Levels()-1 {
		return Suppressed
	}
	s, ok := v.AsText()
	if !ok {
		return Suppressed
	}
	cur := strings.ToLower(s)
	for i := 0; i < level; i++ {
		p, ok := h.parent[cur]
		if !ok {
			break // at (or past) the root: stay
		}
		cur = p
	}
	return relational.Text(cur)
}

// SuppressionHierarchy has exactly two levels: the value and "*". It models
// attributes with no meaningful intermediate granularity (identifiers).
type SuppressionHierarchy struct{}

// Levels implements Hierarchy.
func (SuppressionHierarchy) Levels() int { return 2 }

// Generalize implements Hierarchy.
func (SuppressionHierarchy) Generalize(v relational.Value, level int) relational.Value {
	if v.IsNull() || level <= 0 {
		return v
	}
	return Suppressed
}

// RoundingHierarchy generalizes numbers by rounding to multiples: level k
// rounds to the nearest multiple of Steps[k-1]; the final level suppresses.
// This models the paper's weight example — "a weight range rather than the
// actual weight" — when ranges should stay numeric.
type RoundingHierarchy struct {
	Steps []float64 // increasing positive step sizes
}

// NewRoundingHierarchy validates step sizes (positive, increasing).
func NewRoundingHierarchy(steps ...float64) (*RoundingHierarchy, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("generalize: need at least one step")
	}
	prev := 0.0
	for _, s := range steps {
		if s <= prev {
			return nil, fmt.Errorf("generalize: steps must be positive and increasing, got %v", steps)
		}
		prev = s
	}
	return &RoundingHierarchy{Steps: steps}, nil
}

// Levels implements Hierarchy.
func (h *RoundingHierarchy) Levels() int { return len(h.Steps) + 2 }

// Generalize implements Hierarchy.
func (h *RoundingHierarchy) Generalize(v relational.Value, level int) relational.Value {
	if v.IsNull() {
		return v
	}
	level = clampLevel(level, h.Levels()-1)
	if level == 0 {
		return v
	}
	if level == h.Levels()-1 {
		return Suppressed
	}
	f, ok := v.AsFloat()
	if !ok {
		return Suppressed
	}
	step := h.Steps[level-1]
	return relational.Float(math.Round(f/step) * step)
}
