package hierdata

import (
	"strings"
	"testing"

	"repro/internal/privacy"
)

const patientXML = `
<patient>
  <name>Maria</name>
  <contact>
    <email>maria@example.com</email>
    <phone>555-0101</phone>
  </contact>
  <vitals>
    <weight>61.5</weight>
    <condition>asthma</condition>
  </vitals>
</patient>`

func TestParseXML(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(patientXML))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "patient" || len(doc.Children) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	contact := doc.Children[1]
	if contact.Name != "contact" || len(contact.Children) != 2 {
		t.Fatalf("contact = %+v", contact)
	}
	if contact.Children[0].Value != "maria@example.com" {
		t.Errorf("email = %q", contact.Children[0].Value)
	}
	// Structural nodes carry no value.
	if doc.Value != "" || contact.Value != "" {
		t.Error("structural nodes must not carry data")
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"<unclosed>",
		"plaintext",
	}
	for _, src := range bad {
		if _, err := ParseXML(strings.NewReader(src)); err == nil {
			t.Errorf("ParseXML(%q) should fail", src)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	if got := Path("Patient", "Contact", "Email"); got != "/patient/contact/email" {
		t.Errorf("Path = %q", got)
	}
	if got := normPath("patient//contact/"); got != "/patient/contact" {
		t.Errorf("normPath = %q", got)
	}
	if !isPrefix("/a", "/a/b") || !isPrefix("/a", "/a") || !isPrefix("/", "/a/b") {
		t.Error("isPrefix false negatives")
	}
	if isPrefix("/a/b", "/a") || isPrefix("/a", "/ab") {
		t.Error("isPrefix false positives")
	}
}

func TestPolicyResolveLongestPrefix(t *testing.T) {
	pol := NewPathPolicy("v1")
	pol.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	pol.Add("/patient/contact", privacy.Tuple{Purpose: "care", Visibility: 1, Granularity: 3, Retention: 2})

	// Subtree inheritance.
	tp, ok := pol.Resolve("/patient/vitals/weight", "care")
	if !ok || tp.Visibility != 2 {
		t.Errorf("inherited tuple = %v, %v", tp, ok)
	}
	// Override wins on the contact subtree.
	tp, ok = pol.Resolve("/patient/contact/email", "care")
	if !ok || tp.Visibility != 1 || tp.Retention != 2 {
		t.Errorf("override tuple = %v, %v", tp, ok)
	}
	// Unknown purpose.
	if _, ok := pol.Resolve("/patient/contact/email", "ads"); ok {
		t.Error("unknown purpose should not resolve")
	}
	// Purposes listing.
	prs := pol.Purposes("/patient/contact/email")
	if len(prs) != 1 || prs[0] != "care" {
		t.Errorf("purposes = %v", prs)
	}
}

func TestPrefsResolveAndSensitivity(t *testing.T) {
	prefs := NewPathPrefs("maria", 50)
	prefs.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	prefs.Add("/patient/contact", privacy.Tuple{Purpose: "care", Visibility: 0, Granularity: 1, Retention: 1})
	prefs.SetSensitivity("/patient", privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 1, Retention: 1})
	prefs.SetSensitivity("/patient/contact", privacy.Sensitivity{Value: 5, Visibility: 5, Granularity: 5, Retention: 5})

	tp, explicit := prefs.Resolve("/patient/vitals/weight", "care")
	if !explicit || tp.Visibility != 2 {
		t.Errorf("inherited pref = %v, %v", tp, explicit)
	}
	tp, explicit = prefs.Resolve("/patient/contact/phone", "care")
	if !explicit || tp.Visibility != 0 {
		t.Errorf("override pref = %v, %v", tp, explicit)
	}
	// No coverage → implicit zero.
	tp, explicit = prefs.Resolve("/patient/vitals/weight", "ads")
	if explicit || tp != privacy.ZeroTuple("ads") {
		t.Errorf("implicit zero = %v, %v", tp, explicit)
	}
	if s := prefs.Sensitivity("/patient/contact/email"); s.Value != 5 {
		t.Errorf("contact sensitivity = %v", s)
	}
	if s := prefs.Sensitivity("/patient/vitals/weight"); s.Value != 1 {
		t.Errorf("vitals sensitivity = %v", s)
	}
	if s := prefs.Sensitivity("/other"); s != privacy.UnitSensitivity {
		t.Errorf("uncovered sensitivity = %v", s)
	}
}

func TestAssessDocument(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(patientXML))
	if err != nil {
		t.Fatal(err)
	}
	// Policy: care over the whole record; research additionally reads
	// vitals with third-party visibility.
	pol := NewPathPolicy("v1")
	pol.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	pol.Add("/patient/vitals", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})

	// Maria accepts care everywhere but research only at visibility 2 on
	// vitals; contact data is extra sensitive.
	prefs := NewPathPrefs("maria", 30)
	prefs.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	prefs.Add("/patient/vitals", privacy.Tuple{Purpose: "research", Visibility: 2, Granularity: 2, Retention: 3})
	prefs.SetSensitivity("/patient", privacy.Sensitivity{Value: 1, Visibility: 2, Granularity: 1, Retention: 1})

	a := &Assessor{Policy: pol, PathSens: map[string]float64{"/patient/vitals": 4}}
	rep, err := a.AssessDocument(doc, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated {
		t.Fatal("research visibility overshoot must violate")
	}
	// Two vitals leaves (weight, condition), each: diff v = 1 × Σ 4 × s 1 ×
	// s[V] 2 = 8 → total 16.
	if rep.Violation != 16 {
		t.Errorf("Violation = %g, want 16", rep.Violation)
	}
	if rep.Defaults {
		t.Error("16 ≤ 30: maria stays")
	}
	if len(rep.Leaves) != 2 {
		t.Fatalf("leaves = %+v", rep.Leaves)
	}
	for _, l := range rep.Leaves {
		if l.Purpose != "research" || l.ImplicitZero {
			t.Errorf("leaf = %+v", l)
		}
		if !strings.HasPrefix(l.Path, "/patient/vitals/") {
			t.Errorf("leaf path = %q", l.Path)
		}
	}
}

func TestAssessDocumentImplicitZero(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(patientXML))
	if err != nil {
		t.Fatal(err)
	}
	pol := NewPathPolicy("v1")
	pol.Add("/patient/contact", privacy.Tuple{Purpose: "ads", Visibility: 3, Granularity: 3, Retention: 4})

	// Provider consented to nothing: both contact leaves trip implicit zero.
	prefs := NewPathPrefs("omar", 5)
	a := &Assessor{Policy: pol}
	rep, err := a.AssessDocument(doc, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated || !rep.Defaults {
		t.Fatalf("rep = %+v", rep)
	}
	if len(rep.Leaves) != 2 {
		t.Fatalf("leaves = %+v", rep.Leaves)
	}
	for _, l := range rep.Leaves {
		if !l.ImplicitZero {
			t.Errorf("leaf should be implicit zero: %+v", l)
		}
		// Overshoot (3+3+4) = 10 with unit weights and Σ = 1.
		if l.Conf != 10 {
			t.Errorf("leaf conf = %g, want 10", l.Conf)
		}
	}
}

func TestAssessDocumentClean(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(patientXML))
	if err != nil {
		t.Fatal(err)
	}
	pol := NewPathPolicy("v1")
	pol.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 1, Granularity: 1, Retention: 1})
	prefs := NewPathPrefs("ada", 10)
	prefs.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 4, Granularity: 3, Retention: 5})
	a := &Assessor{Policy: pol}
	rep, err := a.AssessDocument(doc, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated || rep.Violation != 0 || rep.Defaults || len(rep.Leaves) != 0 {
		t.Errorf("clean report = %+v", rep)
	}
}

func TestAssessorErrors(t *testing.T) {
	a := &Assessor{}
	if _, err := a.AssessDocument(&Node{Name: "x"}, NewPathPrefs("p", 1)); err == nil {
		t.Error("nil policy should fail")
	}
	a.Policy = NewPathPolicy("v")
	if _, err := a.AssessDocument(nil, NewPathPrefs("p", 1)); err == nil {
		t.Error("nil document should fail")
	}
	if _, err := a.AssessDocument(&Node{Name: "x"}, nil); err == nil {
		t.Error("nil prefs should fail")
	}
}
