package main

import (
	"os"
	"path/filepath"
	"testing"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunWhatIf(t *testing.T) {
	silenceStdout(t)
	cur := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	prop := filepath.Join("..", "..", "examples", "corpus", "clinic-v2.dsl")
	if err := run(cur, prop, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRunWhatIfErrors(t *testing.T) {
	silenceStdout(t)
	cur := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	if err := run("", cur, 10); err == nil {
		t.Error("missing -current should fail")
	}
	if err := run(cur, "", 10); err == nil {
		t.Error("missing -proposed should fail")
	}
	if err := run("nope.dsl", cur, 10); err == nil {
		t.Error("missing current file should fail")
	}
	if err := run(cur, "nope.dsl", 10); err == nil {
		t.Error("missing proposed file should fail")
	}
	// Proposed without a policy block.
	tmp := filepath.Join(t.TempDir(), "noprov.dsl")
	if err := os.WriteFile(tmp, []byte(`provider "a" threshold 5 { }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cur, tmp, 10); err == nil {
		t.Error("policyless proposal should fail")
	}
	if err := run(tmp, cur, 10); err == nil {
		t.Error("current without policy+providers should fail")
	}
}
