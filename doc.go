// Package repro is a from-scratch Go reproduction of "Quantifying Privacy
// Violations" (Banerjee, Karimi Adl, Wu & Barker, Secure Data Management
// workshop at VLDB 2011, LNCS 6933): the four-dimensional privacy taxonomy,
// the violation / severity / default model (Defs. 1-5, Eqs. 12-16, 25-31),
// an α-PPDB prototype over a from-scratch relational engine, and the full
// experiment suite. See README.md for the tour and DESIGN.md for the
// system inventory and experiment index.
package repro
