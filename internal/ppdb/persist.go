package ppdb

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/policydsl"
	"repro/internal/relational"
)

// Persistence instrumentation (DESIGN.md §10): wall-clock histograms for
// the crash-safe save and the manifest-verified load, an error counter
// for failed saves, and a counter for loads that had to fall back to the
// previous generation — the signal that the newest snapshot was torn.
var (
	mSaveSeconds = metrics.Default.Histogram("ppdb_snapshot_save_seconds",
		"duration of successful crash-safe snapshot saves", metrics.DefBuckets)
	mLoadSeconds = metrics.Default.Histogram("ppdb_snapshot_load_seconds",
		"duration of successful snapshot loads (including fallbacks)", metrics.DefBuckets)
	mSaveErrors = metrics.Default.Counter("ppdb_snapshot_save_errors_total",
		"snapshot saves that failed (the live generation is untouched)")
	mLoadFallbacks = metrics.Default.Counter("ppdb_snapshot_load_fallbacks_total",
		"loads that fell back to the previous generation because the newest was unusable")
)

// Durability: Save writes the PPDB's full logical state — policy, provider
// preferences, attribute sensitivities, table schemas, rows with provenance,
// and the simulated clock — into a directory of human-readable artifacts:
//
//	corpus.dsl            the policy + providers in the DSL
//	state.json            clock and table registry
//	tables/<t>.schema.sql CREATE TABLE statement
//	tables/<t>.csv        rows (header + data)
//	tables/<t>.meta.csv   per-row provenance (provider, inserted), row-aligned
//	MANIFEST.json         format version + SHA-256 of every artifact above
//
// Crash safety (DESIGN.md §9): Save never touches the live snapshot in
// place. It renders every artifact in memory, stages them into <dir>.tmp
// (fsyncing each file and the staged directories), and only then rotates
// generations: the current <dir> is renamed to <dir>.prev (replacing the
// previous generation) and the staging directory is renamed over <dir>.
// A crash at any instant therefore leaves at least one complete,
// manifest-verifiable generation on disk.
//
// Load rebuilds a DB from such a directory. It verifies the manifest —
// format version, presence and SHA-256 of every artifact — before parsing
// a byte, rejects torn or corrupted snapshots with a diagnostic naming the
// offending artifact, and falls back to <dir>.prev when <dir> is unusable.
// Runtime-only configuration (generalization hierarchies, retention
// schedule, assessor options) is supplied by the caller's Config, whose
// Policy field is ignored in favour of the saved one.
//
// Failure sites in the save path are registered with internal/fault
// ("persist.write.<artifact>", "persist.sync.dir", "persist.prune.prev",
// "persist.rename.prev", "persist.rename.live", "persist.sync.parent");
// the crash-matrix test arms each in turn and proves recovery.

// FormatVersion is the snapshot format Save writes. Version 2 added the
// manifest's walLSN checkpoint field; Load also accepts version 1
// (walLSN 0 — the whole WAL replays over it).
const FormatVersion = 2

// minFormatVersion is the oldest snapshot format Load accepts.
const minFormatVersion = 1

const (
	manifestName = "MANIFEST.json"
	tmpSuffix    = ".tmp"
	prevSuffix   = ".prev"
)

// manifestJSON indexes a snapshot generation: every artifact with its
// SHA-256, so Load can prove the generation complete and untorn before
// trusting any of it.
type manifestJSON struct {
	FormatVersion int       `json:"formatVersion"`
	SavedAt       time.Time `json:"savedAt"`
	// WALLSN is the checkpoint: the highest WAL LSN whose effects this
	// snapshot is guaranteed to contain. Recovery replays the log from
	// here. Zero for DBs saved without an attached WAL.
	WALLSN uint64            `json:"walLSN,omitempty"`
	Files  map[string]string `json:"files"` // rel path → SHA-256 hex
}

// stateJSON is the serialized registry.
type stateJSON struct {
	Now    time.Time            `json:"now"`
	Tables map[string]tableJSON `json:"tables"`
}

type tableJSON struct {
	ProviderCol string `json:"providerCol"`
}

// Save atomically replaces the snapshot at dir with the database's current
// state, keeping the displaced generation at <dir>.prev. On error the
// snapshot at dir (if any) is untouched.
//
//lint:deterministic snapshot bytes must be identical across runs and shard counts
func (d *DB) Save(dir string) error {
	_, err := d.save(dir)
	return err
}

// save is Save returning the WAL checkpoint LSN it recorded in the
// manifest (0 with no WAL attached) — Checkpoint uses it to decide how far
// the log can be truncated.
//
// The recorded LSN is read *before* the state is rendered: any mutation
// with LSN ≤ it completed its apply (append and apply share a critical
// section) before rendering began, so its effects are in the snapshot;
// mutations racing the render have higher LSNs and are replayed over the
// snapshot on recovery — harmlessly, because every WAL record is
// idempotent.
func (d *DB) save(dir string) (uint64, error) {
	//lint:ignore determinism[wall-clock start feeds only the save-duration metric, never snapshot bytes]
	start := time.Now()
	d.mu.RLock()
	var lsn uint64
	if d.wal != nil {
		lsn = d.wal.LastLSN()
	}
	artifacts, savedAt, err := d.renderLocked()
	d.mu.RUnlock()
	if err == nil {
		err = writeSnapshot(dir, artifacts, savedAt, lsn)
	}
	if err != nil {
		mSaveErrors.Inc()
		return 0, err
	}
	mSaveSeconds.Observe(time.Since(start).Seconds())
	return lsn, nil
}

// renderLocked serializes the full state into artifact bytes keyed by
// snapshot-relative path. Pure rendering — no IO — so the read lock is
// held only as long as the state is being walked. Providers render in
// global sorted key order and each table renders independently (one
// goroutine per table, capped at the shard fan-out width), so the bytes
// are deterministic run to run and identical for every shard count.
func (d *DB) renderLocked() (map[string][]byte, time.Time, error) {
	artifacts := map[string][]byte{}

	// Corpus: policy + providers (+ Σ).
	doc := &policydsl.Document{
		Policy:   d.policy,
		AttrSens: d.attrSens,
		Scales:   d.scales,
	}
	_, doc.Providers = d.sortedProvidersShared()
	artifacts["corpus.dsl"] = []byte(policydsl.Render(doc))

	state := stateJSON{Now: d.now, Tables: map[string]tableJSON{}}
	// Tables in sorted name order so the artifact renders are deterministic
	// run to run (map iteration order is not).
	tableNames := make([]string, 0, len(d.tables))
	for n := range d.tables {
		tableNames = append(tableNames, n)
	}
	sort.Strings(tableNames)
	type tableRender struct {
		schema, data, meta []byte
		err                error
	}
	renders := make([]tableRender, len(tableNames))
	core.FanOut(len(tableNames), len(d.shards), func(i int) {
		name := tableNames[i]
		tm := d.tables[name]

		schemaSQL := fmt.Sprintf("CREATE TABLE %s (%s)", name, tm.table.Schema())
		renders[i].schema = []byte(schemaSQL + "\n")

		var dataBuf, metaBuf strings.Builder
		metaWriter := csv.NewWriter(&metaBuf)
		if err := metaWriter.Write([]string{"provider", "inserted"}); err != nil {
			renders[i].err = err
			return
		}
		// Rows in scan (insertion) order so meta lines align.
		var scanErr error
		rowsOut := &relational.Result{}
		schema := tm.table.Schema()
		cols := make([]string, schema.Len())
		for j := range cols {
			cols[j] = schema.Column(j).Name
		}
		rowsOut.Columns = cols
		tm.table.Scan(func(id relational.RowID, row relational.Row) bool {
			meta, ok := tm.rows[id]
			if !ok {
				scanErr = fmt.Errorf("ppdb: row %d of %s has no provenance", id, name)
				return false
			}
			rowsOut.Rows = append(rowsOut.Rows, row)
			if err := metaWriter.Write([]string{meta.provider, meta.inserted.Format(time.RFC3339Nano)}); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			renders[i].err = scanErr
			return
		}
		metaWriter.Flush()
		if err := metaWriter.Error(); err != nil {
			renders[i].err = err
			return
		}
		if err := relational.ExportCSV(rowsOut, &dataBuf); err != nil {
			renders[i].err = fmt.Errorf("ppdb: save rows %s: %w", name, err)
			return
		}
		renders[i].data = []byte(dataBuf.String())
		renders[i].meta = []byte(metaBuf.String())
	})
	for i, name := range tableNames {
		if renders[i].err != nil {
			return nil, time.Time{}, renders[i].err
		}
		state.Tables[name] = tableJSON{ProviderCol: d.tables[name].providerCol}
		artifacts[filepath.Join("tables", name+".schema.sql")] = renders[i].schema
		artifacts[filepath.Join("tables", name+".csv")] = renders[i].data
		artifacts[filepath.Join("tables", name+".meta.csv")] = renders[i].meta
	}
	stateBytes, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return nil, time.Time{}, err
	}
	artifacts["state.json"] = append(stateBytes, '\n')
	return artifacts, d.now, nil
}

// writeSnapshot stages the artifacts into <dir>.tmp, fsyncs everything,
// then rotates generations: <dir> → <dir>.prev, <dir>.tmp → <dir>. A
// simulated crash (fault.IsCrash) aborts with zero cleanup so tests see
// exactly the debris a real crash would leave.
func writeSnapshot(dir string, artifacts map[string][]byte, savedAt time.Time, walLSN uint64) (err error) {
	tmp, prev := dir+tmpSuffix, dir+prevSuffix
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("ppdb: save: clear staging: %w", err)
	}
	defer func() {
		if err != nil && !fault.IsCrash(err) {
			// The save failed cleanly: tear down the staging debris. The
			// live snapshot and previous generation are what matter.
			//lint:ignore errflow best-effort staging cleanup after a failed save
			os.RemoveAll(tmp)
		}
	}()
	if err = os.MkdirAll(filepath.Join(tmp, "tables"), 0o755); err != nil {
		return fmt.Errorf("ppdb: save: stage: %w", err)
	}

	man := manifestJSON{FormatVersion: FormatVersion, SavedAt: savedAt, WALLSN: walLSN, Files: map[string]string{}}
	rels := make([]string, 0, len(artifacts))
	for rel := range artifacts {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		if err = writeArtifact(tmp, rel, artifacts[rel]); err != nil {
			return err
		}
		sum := sha256.Sum256(artifacts[rel])
		man.Files[rel] = hex.EncodeToString(sum[:])
	}
	manBytes, merr := json.MarshalIndent(man, "", "  ")
	if merr != nil {
		return merr
	}
	if err = writeArtifact(tmp, manifestName, append(manBytes, '\n')); err != nil {
		return err
	}
	if err = fault.Point("persist.sync.dir"); err != nil {
		return err
	}
	if err = syncDirs(filepath.Join(tmp, "tables"), tmp); err != nil {
		return err
	}

	// Rotation. Crash windows and their recovery:
	//   before rename(dir, prev): dir is the intact old generation;
	//   between the renames:      dir is gone, prev is the old generation
	//                             — Load falls back to prev;
	//   after rename(tmp, dir):   dir is the new generation, prev the old.
	if _, statErr := os.Stat(dir); statErr == nil {
		if err = fault.Point("persist.prune.prev"); err != nil {
			return err
		}
		if err = os.RemoveAll(prev); err != nil {
			return fmt.Errorf("ppdb: save: prune previous generation: %w", err)
		}
		if err = fault.Point("persist.rename.prev"); err != nil {
			return err
		}
		if err = os.Rename(dir, prev); err != nil {
			return fmt.Errorf("ppdb: save: retire current generation: %w", err)
		}
	}
	if err = fault.Point("persist.rename.live"); err != nil {
		return err
	}
	if err = os.Rename(tmp, dir); err != nil {
		return fmt.Errorf("ppdb: save: publish snapshot: %w", err)
	}
	if err = fault.Point("persist.sync.parent"); err != nil {
		return err
	}
	return syncDirs(filepath.Dir(dir))
}

// writeArtifact writes one staged file and fsyncs it. The bytes pass
// through a fault.WritePoint: a simulated crash at the site leaves a torn
// file — half the bytes — and a short-write/flip-byte arming lands
// silently corrupted data, so recovery and manifest verification are
// tested against real debris.
func writeArtifact(root, rel string, data []byte) error {
	path := filepath.Join(root, rel)
	data, ferr := fault.WritePoint("persist.write."+rel, data)
	if ferr != nil {
		if fault.IsCrash(ferr) {
			//lint:ignore errflow simulating a torn write; the crash error is what propagates
			os.WriteFile(path, data, 0o644)
		}
		return ferr
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ppdb: save %s: %w", rel, err)
	}
	if _, err := f.Write(data); err != nil {
		//lint:ignore errflow the write error is the diagnosis; close is cleanup
		f.Close()
		return fmt.Errorf("ppdb: save %s: %w", rel, err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errflow the sync error is the diagnosis; close is cleanup
		f.Close()
		return fmt.Errorf("ppdb: sync %s: %w", rel, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ppdb: close %s: %w", rel, err)
	}
	return nil
}

// syncDirs fsyncs directories so the staged entries (and later the rename)
// are durable, not just the file contents.
func syncDirs(dirs ...string) error {
	for _, dir := range dirs {
		f, err := os.Open(dir)
		if err != nil {
			return fmt.Errorf("ppdb: sync dir %s: %w", dir, err)
		}
		serr := f.Sync()
		cerr := f.Close()
		if serr != nil {
			return fmt.Errorf("ppdb: sync dir %s: %w", dir, serr)
		}
		if cerr != nil {
			return fmt.Errorf("ppdb: sync dir %s: %w", dir, cerr)
		}
	}
	return nil
}

// Load rebuilds a DB from a snapshot directory written by Save. The newest
// generation at dir is manifest-verified before any of it is parsed; if it
// is missing, torn, or corrupted, Load falls back to the previous
// generation at <dir>.prev. cfg supplies the runtime-only configuration
// (hierarchies, retention, options, scales); its Policy and Start fields
// are ignored — the saved policy and clock win.
func Load(dir string, cfg Config) (*DB, error) {
	start := time.Now()
	db, err := loadSnapshot(dir, cfg)
	if err == nil {
		mLoadSeconds.Observe(time.Since(start).Seconds())
		return db, nil
	}
	prev := dir + prevSuffix
	if _, statErr := os.Stat(filepath.Join(prev, manifestName)); statErr != nil {
		return nil, err
	}
	mLoadFallbacks.Inc()
	db, prevErr := loadSnapshot(prev, cfg)
	if prevErr != nil {
		return nil, fmt.Errorf("ppdb: load: snapshot unusable (%v); previous generation also unusable: %w", err, prevErr)
	}
	mLoadSeconds.Observe(time.Since(start).Seconds())
	return db, nil
}

// verifySnapshot reads the manifest and every artifact it lists, checking
// format version and SHA-256s. It returns the verified artifact bytes (so
// the loader only ever parses content the manifest vouches for) plus the
// manifest itself, whose walLSN anchors WAL replay.
func verifySnapshot(dir string) (map[string][]byte, manifestJSON, error) {
	var man manifestJSON
	manBytes, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, man, fmt.Errorf("ppdb: load %s: no readable manifest (torn, pre-manifest, or not a snapshot): %w", dir, err)
	}
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, man, fmt.Errorf("ppdb: load %s: corrupt manifest: %w", dir, err)
	}
	if man.FormatVersion < minFormatVersion || man.FormatVersion > FormatVersion {
		return nil, man, fmt.Errorf("ppdb: load %s: snapshot format %d, this build reads formats %d-%d", dir, man.FormatVersion, minFormatVersion, FormatVersion)
	}
	for _, required := range []string{"corpus.dsl", "state.json"} {
		if _, ok := man.Files[required]; !ok {
			return nil, man, fmt.Errorf("ppdb: load %s: manifest lists no %s", dir, required)
		}
	}
	arts := make(map[string][]byte, len(man.Files))
	rels := make([]string, 0, len(man.Files))
	for rel := range man.Files {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		data, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			return nil, man, fmt.Errorf("ppdb: load %s: artifact %s listed in manifest is unreadable: %w", dir, rel, err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != man.Files[rel] {
			return nil, man, fmt.Errorf("ppdb: load %s: artifact %s is torn or corrupted (sha256 %s, manifest says %s)", dir, rel, got, man.Files[rel])
		}
		arts[rel] = data
	}
	return arts, man, nil
}

// loadSnapshot verifies and parses one generation.
func loadSnapshot(dir string, cfg Config) (*DB, error) {
	arts, man, err := verifySnapshot(dir)
	if err != nil {
		return nil, err
	}
	artifact := func(rel string) ([]byte, error) {
		data, ok := arts[rel]
		if !ok {
			return nil, fmt.Errorf("ppdb: load %s: artifact %s is not listed in the manifest", dir, rel)
		}
		return data, nil
	}

	corpusBytes, err := artifact("corpus.dsl")
	if err != nil {
		return nil, err
	}
	doc, err := policydsl.Parse(string(corpusBytes))
	if err != nil {
		return nil, fmt.Errorf("ppdb: load corpus: %w", err)
	}
	if doc.Policy == nil {
		return nil, fmt.Errorf("ppdb: saved corpus has no policy")
	}
	stateBytes, err := artifact("state.json")
	if err != nil {
		return nil, err
	}
	var state stateJSON
	if err := json.Unmarshal(stateBytes, &state); err != nil {
		return nil, fmt.Errorf("ppdb: load state: %w", err)
	}

	cfg.Policy = doc.Policy
	if len(doc.AttrSens) > 0 {
		cfg.AttrSens = doc.AttrSens
	}
	cfg.Start = state.Now
	db, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Bulk registration: one cold ledger build fanned out across the
	// worker pool instead of N serial upserts.
	if err := db.RegisterProviders(doc.Providers); err != nil {
		return nil, err
	}

	names := make([]string, 0, len(state.Tables))
	for n := range state.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		tj := state.Tables[name]
		schemaSQL, err := artifact(filepath.Join("tables", name+".schema.sql"))
		if err != nil {
			return nil, err
		}
		st, err := relational.Parse(string(schemaSQL))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load schema %s: %w", name, err)
		}
		create, ok := st.(relational.CreateTableStmt)
		if !ok {
			return nil, fmt.Errorf("ppdb: schema file for %s is not a CREATE TABLE", name)
		}
		schema, err := relational.NewSchema(create.Cols)
		if err != nil {
			return nil, err
		}
		if err := db.RegisterTable(name, schema, tj.ProviderCol); err != nil {
			return nil, err
		}

		dataBytes, err := artifact(filepath.Join("tables", name+".csv"))
		if err != nil {
			return nil, err
		}
		rows, err := relational.ReadCSV(schema, strings.NewReader(string(dataBytes)))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load rows %s: %w", name, err)
		}
		metaBytes, err := artifact(filepath.Join("tables", name+".meta.csv"))
		if err != nil {
			return nil, err
		}
		metaRecords, err := csv.NewReader(strings.NewReader(string(metaBytes))).ReadAll()
		if err != nil {
			return nil, fmt.Errorf("ppdb: load provenance %s: %w", name, err)
		}
		if len(metaRecords) != len(rows)+1 {
			return nil, fmt.Errorf("ppdb: provenance for %s has %d records for %d rows", name, len(metaRecords), len(rows))
		}
		for i, row := range rows {
			parts := metaRecords[i+1]
			if len(parts) != 2 {
				return nil, fmt.Errorf("ppdb: bad provenance record %d for %s", i+2, name)
			}
			inserted, err := time.Parse(time.RFC3339Nano, parts[1])
			if err != nil {
				return nil, fmt.Errorf("ppdb: bad provenance time for %s row %d: %w", name, i+1, err)
			}
			id, err := db.Insert(name, parts[0], row)
			if err != nil {
				return nil, fmt.Errorf("ppdb: reload %s row %d: %w", name, i+1, err)
			}
			db.mu.Lock()
			db.tables[name].rows[id].inserted = inserted
			db.mu.Unlock()
		}
	}
	// Remember the snapshot's WAL high-water mark: AttachWAL replays only
	// records after it.
	db.loadedLSN = man.WALLSN
	return db, nil
}
