package population

// Segment is a privacy-attitude cluster in the style of Westin's indexes
// (compiled in Kumaraguru & Cranor's survey, the paper's reference [11]).
// Each segment parameterises how its members state preferences, weigh
// sensitivities and tolerate violations before defaulting.
type Segment struct {
	// Name labels the segment.
	Name string
	// Weight is the segment's population proportion (weights need not sum
	// to 1; they are normalized when picking).
	Weight float64

	// PrefMean/PrefStd describe explicit preference levels as a fraction of
	// each ordered dimension's scale maximum: a member's stated level is
	// round(Norm(PrefMean, PrefStd) × max), clamped to the scale.
	// Privacy-strict segments sit low; unconcerned segments sit high.
	PrefMean, PrefStd float64

	// ExpressProb is the chance the member states an explicit preference for
	// a given (attribute, purpose); otherwise the Sec. 5 implicit-zero rule
	// applies during assessment.
	ExpressProb float64

	// ValueSensMean/Std and DimSensMean/Std parameterise the sensitivity
	// element σ_i^j (Eq. 11): value weight and per-dimension weights are
	// Norm draws floored at zero.
	ValueSensMean, ValueSensStd float64
	DimSensMean, DimSensStd     float64

	// ThresholdMu/Sigma parameterise the default threshold v_i as a
	// log-normal (heavy upper tail: some members tolerate a lot).
	ThresholdMu, ThresholdSigma float64
}

// Westin's canonical three segments with the proportions reported in
// Kumaraguru & Cranor (2005): roughly a quarter fundamentalists, a majority
// of pragmatists, and a small unconcerned group.
var (
	// Fundamentalists state strict preferences, weigh violations heavily and
	// default early.
	Fundamentalist = Segment{
		Name: "fundamentalist", Weight: 0.25,
		PrefMean: 0.25, PrefStd: 0.15, ExpressProb: 0.95,
		ValueSensMean: 3.0, ValueSensStd: 1.0,
		DimSensMean: 3.0, DimSensStd: 1.0,
		ThresholdMu: 2.5, ThresholdSigma: 0.6, // median v_i ≈ 12
	}
	// Pragmatists trade privacy for benefit: moderate preferences,
	// sensitivities and thresholds.
	Pragmatist = Segment{
		Name: "pragmatist", Weight: 0.57,
		PrefMean: 0.55, PrefStd: 0.20, ExpressProb: 0.85,
		ValueSensMean: 1.5, ValueSensStd: 0.7,
		DimSensMean: 1.5, DimSensStd: 0.7,
		ThresholdMu: 3.7, ThresholdSigma: 0.7, // median v_i ≈ 40
	}
	// Unconcerned members state loose preferences (often none), weigh
	// violations lightly and rarely default.
	Unconcerned = Segment{
		Name: "unconcerned", Weight: 0.18,
		PrefMean: 0.85, PrefStd: 0.15, ExpressProb: 0.7,
		ValueSensMean: 0.6, ValueSensStd: 0.3,
		DimSensMean: 0.6, DimSensStd: 0.3,
		ThresholdMu: 5.0, ThresholdSigma: 0.8, // median v_i ≈ 148
	}
)

// WestinSegments returns the three canonical segments.
func WestinSegments() []Segment {
	return []Segment{Fundamentalist, Pragmatist, Unconcerned}
}
