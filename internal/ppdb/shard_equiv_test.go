package ppdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/population"
)

// shardSweepCounts are the shard configurations the equivalence sweep
// runs: serial, a small power of two, and more shards than providers per
// shard is comfortable with — exercising empty and skewed shards.
var shardSweepCounts = []int{1, 2, 8}

// buildShardedDB drives one full mutation history — bulk build, serial
// adds, self-service edits, removals, a policy swap — against a DB with
// the given shard count and returns it.
func buildShardedDB(t *testing.T, seed uint64, shards int) *DB {
	t.Helper()
	gen := equivGenerator(t, seed)
	pop := population.PrefsOf(gen.Generate(200))
	db, err := New(Config{Policy: equivPolicy("v1", 2), AttrSens: gen.AttributeSensitivities(), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterProviders(pop[:150]); err != nil {
		t.Fatal(err)
	}
	for _, p := range pop[150:] {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	edits := population.PrefsOf(equivGenerator(t, seed+7000).Generate(200))
	for i, p := range edits {
		if i%5 == 0 {
			if err := db.UpdatePreferences(p.Provider, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, p := range pop {
		if i%17 == 0 {
			if _, err := db.RemoveProvider(p.Provider); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := db.SetPolicy(equivPolicy("v2", 3)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestShardCountCertifyEquivalence is the shard-count sweep of the ledger
// equivalence suite: the same mutation history at 1, 2 and 8 shards must
// produce byte-identical Certify and CertifyFull output — sharding is a
// storage layout, not an observable behavior. Within each count the
// incremental ledger must also still match the full recompute.
func TestShardCountCertifyEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 2011} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			var baseline []byte
			for _, shards := range shardSweepCounts {
				db := buildShardedDB(t, seed, shards)
				if got := db.ShardCount(); got != shards {
					t.Fatalf("ShardCount() = %d, want %d", got, shards)
				}
				requireCertEquiv(t, db, 0.25, fmt.Sprintf("shards=%d", shards))
				cert, err := db.Certify(0.25)
				if err != nil {
					t.Fatal(err)
				}
				out := mustJSON(t, cert)
				if baseline == nil {
					baseline = out // shards=1: the serial oracle
					continue
				}
				if !bytes.Equal(out, baseline) {
					t.Errorf("shards=%d certification diverges from serial\nserial:  %.300s\nsharded: %.300s",
						shards, baseline, out)
				}
			}
		})
	}
}

// TestShardSnapshotByteCompat saves the same database state at every
// sweep shard count and requires every artifact — providers, policy,
// tables, MANIFEST.json — to be byte-identical: the snapshot format
// (FormatVersion 1) has no notion of shards, and a snapshot written by a
// sharded server must load anywhere.
func TestShardSnapshotByteCompat(t *testing.T) {
	read := func(t *testing.T, dir string) map[string][]byte {
		t.Helper()
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = b
		}
		return files
	}

	var baseline map[string][]byte
	for _, shards := range shardSweepCounts {
		db := buildShardedDB(t, 42, shards)
		dir := filepath.Join(t.TempDir(), "snap")
		if err := db.Save(dir); err != nil {
			t.Fatalf("shards=%d: Save: %v", shards, err)
		}
		files := read(t, dir)
		if baseline == nil {
			baseline = files
			if len(baseline) == 0 {
				t.Fatal("empty snapshot")
			}
			continue
		}
		if len(files) != len(baseline) {
			t.Errorf("shards=%d: %d artifacts, serial wrote %d", shards, len(files), len(baseline))
		}
		for name, want := range baseline {
			got, ok := files[name]
			if !ok {
				t.Errorf("shards=%d: artifact %s missing", shards, name)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d: artifact %s differs from the serial snapshot", shards, name)
			}
		}
	}
}

// TestShardSnapshotRoundTrip loads a snapshot written by a sharded DB into
// DBs of different shard counts and requires certification to survive the
// trip unchanged.
func TestShardSnapshotRoundTrip(t *testing.T) {
	src := buildShardedDB(t, 7, 8)
	want, err := src.Certify(0.25)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardSweepCounts {
		db, err := Load(dir, Config{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: Load: %v", shards, err)
		}
		got, err := db.Certify(0.25)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
			t.Errorf("shards=%d: certification changed across save/load", shards)
		}
		requireCertEquiv(t, db, 0.25, fmt.Sprintf("loaded shards=%d", shards))
	}
}

// TestShardConfigValidation pins the Config.Shards contract: 0 defaults to
// one shard per CPU, negatives are rejected.
func TestShardConfigValidation(t *testing.T) {
	gen := equivGenerator(t, 1)
	if _, err := New(Config{Policy: equivPolicy("v1", 2), AttrSens: gen.AttributeSensitivities(), Shards: -1}); err == nil {
		t.Error("negative shard count must be rejected")
	}
	db, err := New(Config{Policy: equivPolicy("v1", 2), AttrSens: gen.AttributeSensitivities()})
	if err != nil {
		t.Fatal(err)
	}
	if db.ShardCount() < 1 {
		t.Errorf("default ShardCount() = %d", db.ShardCount())
	}
}
