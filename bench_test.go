// Benchmark harness: one benchmark per paper artifact (see the experiment
// index in DESIGN.md) plus scaling and ablation benches for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/generalize"
	"repro/internal/hierdata"
	"repro/internal/policydsl"
	"repro/internal/population"
	"repro/internal/ppdb"
	"repro/internal/privacy"
	"repro/internal/relational"
	"repro/internal/wal"
	"repro/internal/whatif"
)

// BenchmarkTable1 regenerates the Sec. 8 worked example (E1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if !r.Matches() {
			b.Fatal("Table 1 reproduction diverged")
		}
	}
}

// BenchmarkFigure1 regenerates the violation-geometry cases (E2).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(experiments.Figure1()); got != 11 {
			b.Fatalf("cases = %d", got)
		}
	}
}

// BenchmarkFigure2 runs the notation walk-through on a live PPDB (E3).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpansion runs the Sec. 9 utility trade-off sweep (E4).
func BenchmarkExpansion(b *testing.B) {
	cfg := experiments.ExpansionConfig{N: 2000, Seed: 2011, BaseUtility: 10, StepUtility: 2, Steps: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Expansion(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Optimal < 0 {
			b.Fatal("no optimum")
		}
	}
}

// BenchmarkAccumulation runs the violation-accumulation series (E5).
func BenchmarkAccumulation(b *testing.B) {
	cfg := experiments.ExpansionConfig{N: 2000, Seed: 2011, BaseUtility: 10, StepUtility: 2, Steps: 6}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Accumulation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimator runs the Defs. 2/5 estimator convergence ladder (E6).
func BenchmarkEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Estimator(1000, 5, []int{10, 100, 1000, 10000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlphaPPDB runs the α-certification sweep (E7).
func BenchmarkAlphaPPDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AlphaSweep(1000, 3, 5, experiments.DefaultAlphas()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineContrast runs the internal-vs-external risk contrast (E8).
func BenchmarkBaselineContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BaselineContrast(300, 11, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the model-variant study.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(500, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scaling micro-benches ---

// benchPopulation builds a reusable assessor + population of size n.
func benchPopulation(b *testing.B, n int) (*core.Assessor, []*privacy.Prefs) {
	b.Helper()
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 99)
	if err != nil {
		b.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(n))
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	a, err := core.NewAssessor(hp, gen.AttributeSensitivities(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return a, pop
}

// BenchmarkAssessPopulation measures P(W)/P(Default)/Violations computation
// throughput at three population sizes.
func BenchmarkAssessPopulation(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		a, pop := benchPopulation(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := a.AssessPopulation(pop)
				if rep.N != n {
					b.Fatal("wrong N")
				}
			}
		})
	}
}

// benchCertifyDB builds a PPDB with n registered providers for the
// certification benches (the ledger is built once by RegisterProviders).
func benchCertifyDB(b *testing.B, n int) *ppdb.DB {
	b.Helper()
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 99)
	if err != nil {
		b.Fatal(err)
	}
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	db, err := ppdb.New(ppdb.Config{Policy: hp, AttrSens: gen.AttributeSensitivities()})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterProviders(population.PrefsOf(gen.Generate(n))); err != nil {
		b.Fatal(err)
	}
	return db
}

// certifyBenchSizes are the populations the certification benches run at;
// scripts/bench.sh records both in BENCH_certify.json.
var certifyBenchSizes = []int{1000, 100000}

// BenchmarkCertifyCold measures the seed full-recompute certification path
// (CertifyFull): every provider is re-assessed on every call, O(N).
func BenchmarkCertifyCold(b *testing.B) {
	for _, n := range certifyBenchSizes {
		db := benchCertifyDB(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cert, err := db.CertifyFull(0.1)
				if err != nil {
					b.Fatal(err)
				}
				if cert.Report.N != n {
					b.Fatal("wrong N")
				}
			}
		})
	}
}

// BenchmarkCertifyIncremental measures the ledger path after a
// single-provider preference edit: each iteration applies one self-service
// edit (an O(1) delta to the ledger) and certifies from the materialized
// rows — no population re-assessment.
func BenchmarkCertifyIncremental(b *testing.B) {
	for _, n := range certifyBenchSizes {
		db := benchCertifyDB(b, n)
		// Two preference variants for one provider, alternated so every
		// iteration is a real state change, never a memoization hit.
		variants := make([]*privacy.Prefs, 2)
		for v := range variants {
			p := privacy.NewPrefs("provider-0000", 5)
			lv := privacy.Level(v) // 0 → violated, 1 → still violated, differently
			p.Add("weight", privacy.Tuple{Purpose: "service", Visibility: lv, Granularity: lv, Retention: lv})
			p.Add("income", privacy.Tuple{Purpose: "service", Visibility: lv, Granularity: lv, Retention: lv})
			variants[v] = p
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.UpdatePreferences("provider-0000", variants[i%2]); err != nil {
					b.Fatal(err)
				}
				cert, err := db.Certify(0.1)
				if err != nil {
					b.Fatal(err)
				}
				if cert.Report.N != n {
					b.Fatal("wrong N")
				}
			}
		})
	}
}

// benchShardCounts are the shard widths the sharding benches sweep:
// serial, a fixed 4 (the ISSUE's reference point), and one per CPU —
// deduplicated, since CI boxes range from 1 to many cores.
func benchShardCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// benchShardedDB builds a PPDB with n providers over s shards.
func benchShardedDB(b *testing.B, n, s int) *ppdb.DB {
	b.Helper()
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 99)
	if err != nil {
		b.Fatal(err)
	}
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	db, err := ppdb.New(ppdb.Config{Policy: hp, AttrSens: gen.AttributeSensitivities(), Shards: s})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterProviders(population.PrefsOf(gen.Generate(n))); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkCertifyColdShards measures the cold full-recompute certification
// at each shard count: the fan-out width follows the shard count, so on a
// multi-core box shards-4 should approach a 4x speedup over shards-1 while
// producing byte-identical output (see TestShardCountCertifyEquivalence).
func BenchmarkCertifyColdShards(b *testing.B) {
	const n = 100000
	for _, s := range benchShardCounts() {
		db := benchShardedDB(b, n, s)
		b.Run("shards="+itoa(s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cert, err := db.CertifyFull(0.1)
				if err != nil {
					b.Fatal(err)
				}
				if cert.Report.N != n {
					b.Fatal("wrong N")
				}
			}
		})
	}
}

// BenchmarkBulkIngestShards measures atomic bulk registration
// (RegisterProviders: validate, store, assess, build the ledger) at each
// shard count. The population is generated once outside the timer.
func BenchmarkBulkIngestShards(b *testing.B) {
	const n = 100000
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 99)
	if err != nil {
		b.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(n))
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	for _, s := range benchShardCounts() {
		b.Run("shards="+itoa(s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db, err := ppdb.New(ppdb.Config{Policy: hp, AttrSens: gen.AttributeSensitivities(), Shards: s})
				if err != nil {
					b.Fatal(err)
				}
				if err := db.RegisterProviders(pop); err != nil {
					b.Fatal(err)
				}
				if db.NumProviders() != n {
					b.Fatal("wrong count")
				}
			}
		})
	}
}

// BenchmarkIngestDurable measures single-provider upsert throughput with
// durability on the line: no WAL at all, then a WAL attached at three
// group-commit batch sizes (Options.SyncEvery). Writers run under
// b.RunParallel because group commit is a concurrency optimisation — a lone
// writer pays each fsync (or flusher tick) alone, while GOMAXPROCS writers
// share one fsync per batch, so the batch>1 modes should close most of the
// gap to wal=off as parallelism rises. Recorded in BENCH_certify.json by
// scripts/bench.sh; gated by scripts/benchgate.sh.
func BenchmarkIngestDurable(b *testing.B) {
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 99)
	if err != nil {
		b.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(4096))
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	modes := []struct {
		name      string
		durable   bool
		syncEvery int
	}{
		{"wal=off", false, 0},
		{"wal=batch1", true, 1},
		{"wal=batch16", true, 16},
		{"wal=batch64", true, 64},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			db, err := ppdb.New(ppdb.Config{Policy: hp, AttrSens: gen.AttributeSensitivities()})
			if err != nil {
				b.Fatal(err)
			}
			if m.durable {
				if _, err := db.AttachWAL(wal.Options{
					Dir:          b.TempDir(),
					SyncEvery:    m.syncEvery,
					SyncInterval: 2 * time.Millisecond,
				}); err != nil {
					b.Fatal(err)
				}
			}
			var (
				next     atomic.Uint64
				errMu    sync.Mutex
				firstErr error
			)
			// Enough concurrent writers that the batch thresholds actually
			// trigger early group commits: with only GOMAXPROCS writers,
			// pending never reaches 64 and every mode just waits out the
			// flusher tick.
			b.SetParallelism(32)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					p := pop[int(next.Add(1))%len(pop)]
					if err := db.RegisterProvider(p); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			})
			b.StopTimer()
			if firstErr != nil {
				b.Fatal(firstErr)
			}
			if m.durable {
				if err := db.CloseWAL(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCertifySummary measures the O(1) aggregate-only certification.
func BenchmarkCertifySummary(b *testing.B) {
	db := benchCertifyDB(b, 100000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, err := db.CertifySummary(0.1)
		if err != nil {
			b.Fatal(err)
		}
		if sum.N != 100000 {
			b.Fatal("wrong N")
		}
	}
}

// BenchmarkEstimatePW measures the trial-based Def. 2 estimator.
func BenchmarkEstimatePW(b *testing.B) {
	a, pop := benchPopulation(b, 1000)
	rng := population.NewRNG(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.EstimatePW(pop, 10000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLSelect measures the relational engine's filtered scan.
func BenchmarkSQLSelect(b *testing.B) {
	db := relational.NewDatabase()
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, grp INT, val FLOAT)")
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{{Name: "x", Sensitivity: 1, Purposes: []privacy.Purpose{"p"}}},
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	_ = gen
	tab, _ := db.Table("t")
	for i := 0; i < 10000; i++ {
		if _, err := tab.Insert(relational.Row{
			relational.Int(int64(i)), relational.Int(int64(i % 100)), relational.Float(float64(i) * 1.5),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("SELECT grp, COUNT(*) AS n, AVG(val) AS m FROM t WHERE val > 100 GROUP BY grp ORDER BY n DESC LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatal("wrong result")
		}
	}
}

// BenchmarkKAnonSearch measures the full-domain lattice search baseline.
func BenchmarkKAnonSearch(b *testing.B) {
	schema, err := population.MicrodataSchema()
	if err != nil {
		b.Fatal(err)
	}
	table, err := relational.NewTable("m", schema)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"p"}}},
	}, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := table.Insert(gen.MicrodataRow(sizeName(i))); err != nil {
			b.Fatal(err)
		}
	}
	ageH, _ := generalize.NewNumericHierarchy(10, 2, 3)
	cityH, _ := generalize.NewCategoryHierarchy(map[string]string{
		"calgary": "west", "edmonton": "west", "vancouver": "west",
		"toronto": "east", "montreal": "east", "west": "canada", "east": "canada",
	})
	an, err := generalize.NewAnonymizer(table, map[string]generalize.Hierarchy{"age": ageH, "city": cityH}, "condition")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := an.SearchK(4)
		if err != nil {
			b.Fatal(err)
		}
		if !rel.IsKAnonymous(4) {
			b.Fatal("not anonymous")
		}
	}
}

// --- ablation benches (design choices from DESIGN.md §5) ---

// BenchmarkImplicitZero contrasts assessment with and without the Sec. 5
// implicit-zero rule.
func BenchmarkImplicitZero(b *testing.B) {
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
		},
	}, 17)
	if err != nil {
		b.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(1000))
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("weight", privacy.Tuple{Purpose: "analytics", Visibility: 2, Granularity: 2, Retention: 2})
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"with-rule", core.Options{}},
		{"without-rule", core.Options{DisableImplicitZero: true}},
	} {
		a, err := core.NewAssessor(hp, gen.AttributeSensitivities(), variant.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.AssessPopulation(pop)
			}
		})
	}
}

// BenchmarkPurposeLattice contrasts equality matching with lattice matching.
func BenchmarkPurposeLattice(b *testing.B) {
	lattice := privacy.NewLattice()
	if err := lattice.AddEdge("service", "service-analytics"); err != nil {
		b.Fatal(err)
	}
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
		},
	}, 23)
	if err != nil {
		b.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(1000))
	hp := privacy.NewHousePolicy("bench")
	hp.Add("weight", privacy.Tuple{Purpose: "service-analytics", Visibility: 2, Granularity: 2, Retention: 2})
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"equality", core.Options{}},
		{"lattice", core.Options{Matcher: lattice}},
	} {
		a, err := core.NewAssessor(hp, gen.AttributeSensitivities(), variant.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.AssessPopulation(pop)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return itoa(n/1000) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkGame runs the Stackelberg policy game (E9).
func BenchmarkGame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Game(500, 2011, 2)
		if err != nil {
			b.Fatal(err)
		}
		if r.PayoffGain < 0 {
			b.Fatal("incentives regressed the optimum")
		}
	}
}

// BenchmarkLegacy runs the Sec. 10 default-estimation study (E10).
func BenchmarkLegacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Legacy(1000, 41, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierdataAssess measures the XML-extension assessor on a
// moderately deep document.
func BenchmarkHierdataAssess(b *testing.B) {
	doc, err := hierdata.ParseXML(strings.NewReader(`
<patient>
  <name>M</name>
  <contact><email>m@x</email><phone>5</phone></contact>
  <vitals><weight>61</weight><condition>a</condition><bp>120</bp></vitals>
  <billing><card>4111</card><balance>12</balance></billing>
</patient>`))
	if err != nil {
		b.Fatal(err)
	}
	pol := hierdata.NewPathPolicy("v1")
	pol.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	pol.Add("/patient/vitals", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	prefs := hierdata.NewPathPrefs("m", 40)
	prefs.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	a := &hierdata.Assessor{Policy: pol, PathSens: map[string]float64{"/patient/vitals": 4}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.AssessDocument(doc, prefs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSLParse measures policy-corpus parsing throughput.
func BenchmarkDSLParse(b *testing.B) {
	src, err := os.ReadFile("examples/corpus/clinic.dsl")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := policydsl.Parse(string(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetentionSweep measures the PPDB retention sweeper over 2k rows.
func BenchmarkRetentionSweep(b *testing.B) {
	hp := privacy.NewHousePolicy("p")
	hp.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	db, err := ppdb.New(ppdb.Config{Policy: hp})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		name := "p" + itoa(i)
		p := privacy.NewPrefs(name, 100)
		if err := db.RegisterProvider(p); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Insert("t", name, relational.Row{
			relational.Text(name), relational.Float(float64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Sweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXMLParity runs the flat/hierarchical parity check (E11).
func BenchmarkXMLParity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.XMLParity(300, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllAgree {
			b.Fatal("parity broken")
		}
	}
}

// benchQueryDB builds a PPDB with n one-row providers for the enforced
// query benches. In the violating population every third provider caps
// weight visibility below the request class (row suppressed) and every
// fifth caps granularity (cell generalized), so enforcement does real work
// on a large fraction of the scan; the clean population conforms end to
// end and measures the pure per-datum check overhead.
func benchQueryDB(b *testing.B, n int, violating bool) *ppdb.DB {
	b.Helper()
	hp := privacy.NewHousePolicy("bench-query")
	hp.Add("provider", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 3, Retention: 5})
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 3, Retention: 5})
	db, err := ppdb.New(ppdb.Config{Policy: hp})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		b.Fatal(err)
	}
	prefs := make([]*privacy.Prefs, 0, n)
	for i := 0; i < n; i++ {
		name := "q" + itoa(i)
		p := privacy.NewPrefs(name, 100)
		p.Add("provider", privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 3, Retention: 5})
		v, g := privacy.Level(4), privacy.Level(3)
		if violating {
			switch {
			case i%3 == 0:
				v = 1 // below the request class: row suppressed
			case i%5 == 0:
				g = 1 // below the policy grant: cell generalized
			}
		}
		p.Add("weight", privacy.Tuple{Purpose: "service", Visibility: v, Granularity: g, Retention: 5})
		prefs = append(prefs, p)
	}
	if err := db.RegisterProviders(prefs); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Insert("t", "q"+itoa(i), relational.Row{
			relational.Text("q" + itoa(i)), relational.Float(float64(i) + 0.5),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkQueryEnforced measures the per-datum enforcement hot path
// (DESIGN.md §15): a full-scan SELECT over 10k/100k rows, against a clean
// population and one where enforcement suppresses or degrades roughly half
// the rows. The per-row cost is two compiled binding lookups (binary
// search + cover-mask test); ns/op is recorded in BENCH_certify.json and
// gated by scripts/benchgate.sh.
func BenchmarkQueryEnforced(b *testing.B) {
	for _, mode := range []struct {
		name      string
		violating bool
	}{{"clean", false}, {"violating", true}} {
		for _, n := range []int{10000, 100000} {
			db := benchQueryDB(b, n, mode.violating)
			req := ppdb.EnforcedQuery{
				Requester: "bench", Purpose: "service", Visibility: 2,
				SQL: "SELECT provider, weight FROM t",
			}
			b.Run(mode.name+"/"+sizeName(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := db.QueryEnforced(req)
					if err != nil {
						b.Fatal(err)
					}
					if mode.violating && res.Stats.RowsSuppressed == 0 {
						b.Fatal("violating population produced no suppressions")
					}
					if res.Stats.RowsScanned != n {
						b.Fatal("scan did not cover the table")
					}
				}
			})
		}
	}
}

// BenchmarkWhatIfStorm measures concurrent POST /v1/whatif evaluation —
// the shadow-policy read path under storm load, zero live-state mutation.
// The population splits 90/10: every provider states preferences on
// "common", every tenth also on "rare". With implicit zeros disabled the
// narrow diff (retarget rare) re-assesses only the 10% slice and serves
// the rest from memoized live reports, while the full diff (retarget
// common) re-assesses everyone; the gap between the two sub-benches is
// the price the memo-reuse invariant saves.
func BenchmarkWhatIfStorm(b *testing.B) {
	const n = 100000
	hp := privacy.NewHousePolicy("bench")
	hp.Add("common", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("rare", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: 1})
	pop := make([]*privacy.Prefs, 0, n)
	for i := 0; i < n; i++ {
		p := privacy.NewPrefs("p"+itoa(i), float64(5+i%40))
		p.Add("common", privacy.Tuple{Purpose: "service", Visibility: privacy.Level(1 + i%2), Granularity: 2, Retention: 2})
		if i%10 == 0 {
			p.Add("rare", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: privacy.Level(1 + i%3)})
		}
		pop = append(pop, p)
	}
	diffs := []struct {
		name string
		diff whatif.Diff
	}{
		{"narrow-" + sizeName(n), whatif.Diff{Retarget: []whatif.TupleSpec{
			{Attribute: "rare", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3}}}},
		{"full-" + sizeName(n), whatif.Diff{Retarget: []whatif.TupleSpec{
			{Attribute: "common", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3}}}},
	}
	for _, d := range diffs {
		b.Run(d.name, func(b *testing.B) {
			db, err := ppdb.New(ppdb.Config{
				Policy:   hp,
				AttrSens: privacy.AttributeSensitivities{"common": 2, "rare": 6},
				Options:  core.Options{DisableImplicitZero: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := db.RegisterProviders(pop); err != nil {
				b.Fatal(err)
			}
			req := &whatif.Request{Diff: d.diff, U: 10, T: 1}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := db.WhatIf(req)
					if err != nil {
						b.Fatal(err)
					}
					if resp.Current.N != n || resp.GlobalFallback {
						b.Fatal("unexpected evaluation shape")
					}
				}
			})
		})
	}
}
