package relational

import (
	"fmt"
	"sync"
	"testing"
)

func newPersonTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("people", personSchema(t))
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

func TestTableInsertGet(t *testing.T) {
	tab := newPersonTable(t)
	id, err := tab.Insert(Row{Int(1), Text("alice"), Float(60), Bool(true)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	row, ok := tab.Get(id)
	if !ok || row[1].Display() != "alice" {
		t.Fatalf("Get = %v, %v", row, ok)
	}
	// Returned row is a copy.
	row[1] = Text("mutated")
	row2, _ := tab.Get(id)
	if row2[1].Display() != "alice" {
		t.Error("Get must return a copy")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestPrimaryKeyConstraint(t *testing.T) {
	tab := newPersonTable(t)
	if _, err := tab.Insert(Row{Int(1), Text("a"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{Int(1), Text("b"), Null(), Null()}); err == nil {
		t.Error("duplicate pk should fail")
	}
	id, row, ok := tab.GetByPK(Int(1))
	if !ok || row[1].Display() != "a" {
		t.Fatalf("GetByPK = %v, %v, %v", id, row, ok)
	}
	if _, _, ok := tab.GetByPK(Int(99)); ok {
		t.Error("missing pk should not resolve")
	}
}

func TestScanOrderAndDelete(t *testing.T) {
	tab := newPersonTable(t)
	var ids []RowID
	for i := 0; i < 5; i++ {
		id, err := tab.Insert(Row{Int(int64(i)), Text(fmt.Sprintf("p%d", i)), Null(), Null()})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if !tab.Delete(ids[2]) {
		t.Fatal("Delete failed")
	}
	if tab.Delete(ids[2]) {
		t.Error("double delete should be a no-op returning false")
	}
	var seen []int64
	tab.Scan(func(_ RowID, row Row) bool {
		v, _ := row[0].AsInt()
		seen = append(seen, v)
		return true
	})
	want := []int64{0, 1, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("Scan saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Scan order %v, want %v", seen, want)
		}
	}
	// Early stop.
	count := 0
	tab.Scan(func(RowID, Row) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("Scan early stop visited %d", count)
	}
}

func TestUpdateMaintainsPKIndex(t *testing.T) {
	tab := newPersonTable(t)
	id, _ := tab.Insert(Row{Int(1), Text("a"), Null(), Null()})
	tab.Insert(Row{Int(2), Text("b"), Null(), Null()})

	// Move pk 1 → 3.
	if err := tab.Update(id, Row{Int(3), Text("a"), Null(), Null()}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, _, ok := tab.GetByPK(Int(1)); ok {
		t.Error("old pk should be gone")
	}
	if _, _, ok := tab.GetByPK(Int(3)); !ok {
		t.Error("new pk should resolve")
	}
	// Collision with existing pk 2.
	if err := tab.Update(id, Row{Int(2), Text("a"), Null(), Null()}); err == nil {
		t.Error("pk collision on update should fail")
	}
	// Update of a missing row.
	if err := tab.Update(RowID(999), Row{Int(9), Text("x"), Null(), Null()}); err == nil {
		t.Error("updating missing row should fail")
	}
	// Invalid row.
	if err := tab.Update(id, Row{Int(3), Null(), Null(), Null()}); err == nil {
		t.Error("NOT NULL violation on update should fail")
	}
}

func TestSecondaryIndex(t *testing.T) {
	tab := newPersonTable(t)
	for i := 0; i < 10; i++ {
		name := "odd"
		if i%2 == 0 {
			name = "even"
		}
		if _, err := tab.Insert(Row{Int(int64(i)), Text(name), Null(), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.HasIndex("name") {
		t.Error("no index yet")
	}
	if err := tab.CreateIndex("name"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if !tab.HasIndex("name") {
		t.Error("index should exist")
	}
	if !tab.HasIndex("id") {
		t.Error("pk column counts as indexed")
	}
	if err := tab.CreateIndex("nope"); err == nil {
		t.Error("indexing a missing column should fail")
	}

	ids, err := tab.Lookup("name", Text("even"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("Lookup(even) = %v", ids)
	}
	// Index maintained across insert/update/delete.
	nid, _ := tab.Insert(Row{Int(100), Text("even"), Null(), Null()})
	ids, _ = tab.Lookup("name", Text("even"))
	if len(ids) != 6 {
		t.Fatalf("after insert Lookup(even) = %v", ids)
	}
	row, _ := tab.Get(nid)
	row[1] = Text("odd")
	if err := tab.Update(nid, row); err != nil {
		t.Fatal(err)
	}
	ids, _ = tab.Lookup("name", Text("even"))
	if len(ids) != 5 {
		t.Fatalf("after update Lookup(even) = %v", ids)
	}
	tab.Delete(nid)
	ids, _ = tab.Lookup("name", Text("odd"))
	if len(ids) != 5 {
		t.Fatalf("after delete Lookup(odd) = %v", ids)
	}
	// Lookup without index scans.
	ids, err = tab.Lookup("weight", Null())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		// NULL equals nothing under Equal semantics.
		t.Errorf("Lookup(NULL) = %v, want none", ids)
	}
	if _, err := tab.Lookup("missing", Int(1)); err == nil {
		t.Error("Lookup on missing column should fail")
	}
	// PK lookup path.
	ids, _ = tab.Lookup("id", Int(3))
	if len(ids) != 1 {
		t.Errorf("pk Lookup = %v", ids)
	}
	ids, _ = tab.Lookup("id", Int(999))
	if len(ids) != 0 {
		t.Errorf("missing pk Lookup = %v", ids)
	}
}

func TestDeleteCompaction(t *testing.T) {
	tab := newPersonTable(t)
	var ids []RowID
	for i := 0; i < 100; i++ {
		id, _ := tab.Insert(Row{Int(int64(i)), Text("x"), Null(), Null()})
		ids = append(ids, id)
	}
	for _, id := range ids[:90] {
		tab.Delete(id)
	}
	if tab.Len() != 10 {
		t.Fatalf("Len = %d", tab.Len())
	}
	var count int
	tab.Scan(func(RowID, Row) bool { count++; return true })
	if count != 10 {
		t.Errorf("Scan after compaction saw %d rows", count)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tab := newPersonTable(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := int64(g*1000 + i)
				if _, err := tab.Insert(Row{Int(id), Text("w"), Null(), Null()}); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tab.Scan(func(RowID, Row) bool { return true })
		}
	}()
	wg.Wait()
	if tab.Len() != 400 {
		t.Errorf("Len = %d, want 400", tab.Len())
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable("", personSchema(t)); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewTable("x", nil); err == nil {
		t.Error("nil schema should fail")
	}
}
