package ppdb

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// twoTableDB builds a PPDB with two tables registered in the given order.
// Both tables carry the same provider and policy-covered columns so a
// sweep mutates both.
func twoTableDB(t *testing.T, order []string) *DB {
	t.Helper()

	hp := privacy.NewHousePolicy("sweep-det-v1")
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 2})
	hp.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 2})

	db, err := New(Config{Policy: hp})
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range order {
		schema, err := relational.NewSchema([]relational.Column{
			{Name: "patient", Type: relational.TypeText, PrimaryKey: true},
			{Name: "weight", Type: relational.TypeFloat},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.RegisterTable(name, schema, "patient"); err != nil {
			t.Fatal(err)
		}
	}

	carol := privacy.NewPrefs("carol", 7)
	carol.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 2})
	carol.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 2})
	if err := db.RegisterProvider(carol); err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if _, err := db.Insert(name, "carol",
			relational.Row{relational.Text("carol"), relational.Float(70)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSweepDeterministicAcrossRegistrationOrder drives satellite 1 of the
// lockorder/determinism PR: the sweep's full mutation sequence — and the
// snapshot bytes that follow it — must not depend on the map iteration
// order of the table registry. Registering the same tables in opposite
// orders and sweeping past every retention horizon must yield identical
// reports and byte-identical snapshot artifacts.
func TestSweepDeterministicAcrossRegistrationOrder(t *testing.T) {
	a := twoTableDB(t, []string{"alpha", "beta"})
	b := twoTableDB(t, []string{"beta", "alpha"})

	for _, db := range []*DB{a, b} {
		if _, err := db.Advance(400 * 24 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}

	repA, err := a.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	repB, err := b.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if repA != repB {
		t.Fatalf("sweep reports differ across registration order:\n a=%+v\n b=%+v", repA, repB)
	}
	if repA.CellsExpired == 0 && repA.RowsDeleted == 0 {
		t.Fatal("sweep expired nothing; fixture does not exercise the mutation path")
	}

	a.mu.RLock()
	artsA, _, errA := a.renderLocked()
	a.mu.RUnlock()
	b.mu.RLock()
	artsB, _, errB := b.renderLocked()
	b.mu.RUnlock()
	if errA != nil || errB != nil {
		t.Fatalf("renderLocked: %v / %v", errA, errB)
	}
	if len(artsA) != len(artsB) {
		t.Fatalf("artifact sets differ: %d vs %d files", len(artsA), len(artsB))
	}
	for path, bytesA := range artsA {
		bytesB, ok := artsB[path]
		if !ok {
			t.Errorf("artifact %s missing from second snapshot", path)
			continue
		}
		if !bytes.Equal(bytesA, bytesB) {
			t.Errorf("artifact %s differs across registration order:\n--- a\n%s\n--- b\n%s", path, bytesA, bytesB)
		}
	}
}
