package ppdb

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/population"
	"repro/internal/wal"
)

// walTestOpts are aggressive group-commit settings so tests never wait on
// the 2ms default interval.
func walTestOpts(dir string) wal.Options {
	return wal.Options{Dir: dir, SyncEvery: 1, SyncInterval: time.Millisecond}
}

// walEquivConfig is the DB configuration shared by the WAL recovery tests;
// every incarnation of a database must be built from the same config for
// replay to reconstruct the same state.
func walEquivConfig(t *testing.T, shards int) Config {
	t.Helper()
	gen := equivGenerator(t, 99)
	return Config{Policy: equivPolicy("v1", 2), AttrSens: gen.AttributeSensitivities(), Shards: shards}
}

// buildWALDB drives a full mutation history — batch build, serial adds,
// removals, a policy swap, clock advances and a sweep — against a DB with
// the WAL attached from the start, so every mutation is logged.
func buildWALDB(t *testing.T, walDir string, shards int) *DB {
	t.Helper()
	db, err := New(walEquivConfig(t, shards))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(walTestOpts(walDir)); err != nil {
		t.Fatal(err)
	}
	pop := population.PrefsOf(equivGenerator(t, 99).Generate(120))
	if err := db.RegisterProviders(pop[:80]); err != nil {
		t.Fatal(err)
	}
	for _, p := range pop[80:] {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pop {
		if i%13 == 0 {
			if _, err := db.RemoveProvider(p.Provider); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := db.SetPolicy(equivPolicy("v2", 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Advance(36 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Sweep(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestWALRecoveryFromEmptySnapshot rebuilds a database from nothing but its
// WAL: a fresh DB with the same config attached to the same log must replay
// the full history and certify byte-identically, at every shard count.
func TestWALRecoveryFromEmptySnapshot(t *testing.T) {
	for _, shards := range shardSweepCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			walDir := filepath.Join(t.TempDir(), "wal")
			db := buildWALDB(t, walDir, shards)
			want := mustJSON(t, mustCertify(t, db, 0.25))
			wantLSN := db.WALLastLSN()
			if err := db.CloseWAL(); err != nil {
				t.Fatal(err)
			}

			db2, err := New(walEquivConfig(t, shards))
			if err != nil {
				t.Fatal(err)
			}
			n, err := db2.AttachWAL(walTestOpts(walDir))
			if err != nil {
				t.Fatalf("recovery replay failed: %v", err)
			}
			if n == 0 {
				t.Fatal("replayed no records")
			}
			if got := db2.WALLastLSN(); got != wantLSN {
				t.Errorf("recovered WAL LSN = %d, want %d", got, wantLSN)
			}
			got := mustJSON(t, mustCertify(t, db2, 0.25))
			if !bytes.Equal(got, want) {
				t.Errorf("recovered certification diverges\nwant: %.300s\ngot:  %.300s", want, got)
			}
			requireCertEquiv(t, db2, 0.25, "after WAL-only recovery")
			if err := db2.CloseWAL(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWALRecoveryAfterCheckpoint: a checkpoint moves history into the
// snapshot; recovery loads the snapshot and replays only the tail.
func TestWALRecoveryAfterCheckpoint(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := filepath.Join(t.TempDir(), "snap")
	db := buildWALDB(t, walDir, 2)
	ran, err := db.Checkpoint(snapDir)
	if err != nil || !ran {
		t.Fatalf("checkpoint ran=%v err=%v", ran, err)
	}

	// Post-checkpoint tail: a few upserts and a clock advance.
	tail := population.PrefsOf(equivGenerator(t, 1234).Generate(10))
	for _, p := range tail {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Advance(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, mustCertify(t, db, 0.25))
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, err := Load(snapDir, walEquivConfig(t, 2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	n, err := db2.AttachWAL(walTestOpts(walDir))
	if err != nil {
		t.Fatalf("tail replay failed: %v", err)
	}
	// Exactly the post-checkpoint records: 10 upserts + 1 clock advance.
	if n != 11 {
		t.Errorf("replayed %d records, want the 11 past the checkpoint", n)
	}
	got := mustJSON(t, mustCertify(t, db2, 0.25))
	if !bytes.Equal(got, want) {
		t.Errorf("recovered certification diverges\nwant: %.300s\ngot:  %.300s", want, got)
	}
	if err := db2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestWALCheckpointSkipsUnchanged: a checkpoint with no mutations since the
// last one is a no-op.
func TestWALCheckpointSkipsUnchanged(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := filepath.Join(t.TempDir(), "snap")
	db := buildWALDB(t, walDir, 1)
	defer db.CloseWAL()
	ran, err := db.Checkpoint(snapDir)
	if err != nil || !ran {
		t.Fatalf("first checkpoint ran=%v err=%v", ran, err)
	}
	ran, err = db.Checkpoint(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("checkpoint with unchanged state saved anyway")
	}
	// Any mutation re-arms it — including row-level ones the WAL does not
	// cover, which ride snapshots only.
	if _, err := db.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	ran, err = db.Checkpoint(snapDir)
	if err != nil || !ran {
		t.Fatalf("post-mutation checkpoint ran=%v err=%v", ran, err)
	}
}

// TestWALCheckpointTruncatesSegments: with tiny segments, checkpointing
// prunes WAL history older than the previous checkpoint, and recovery from
// the pruned log still works.
func TestWALCheckpointTruncatesSegments(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := filepath.Join(t.TempDir(), "snap")
	db, err := New(walEquivConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	opts := walTestOpts(walDir)
	opts.SegmentBytes = 512
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	pop := population.PrefsOf(equivGenerator(t, 99).Generate(60))
	for _, p := range pop[:30] {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	if ran, err := db.Checkpoint(snapDir); err != nil || !ran {
		t.Fatalf("checkpoint 1 ran=%v err=%v", ran, err)
	}
	for _, p := range pop[30:] {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	before, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// The second checkpoint prunes everything older than the first one.
	if ran, err := db.Checkpoint(snapDir); err != nil || !ran {
		t.Fatalf("checkpoint 2 ran=%v err=%v", ran, err)
	}
	after, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("checkpoint kept %d segments of %d; expected pruning", len(after), len(before))
	}
	want := mustJSON(t, mustCertify(t, db, 0.25))
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, err := Load(snapDir, walEquivConfig(t, 1))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := db2.AttachWAL(walTestOpts(walDir)); err != nil {
		t.Fatalf("replay over pruned log failed: %v", err)
	}
	got := mustJSON(t, mustCertify(t, db2, 0.25))
	if !bytes.Equal(got, want) {
		t.Error("recovery from pruned WAL diverges")
	}
	if err := db2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestWALAttachTwiceFails pins the attach-once contract.
func TestWALAttachTwiceFails(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := New(walEquivConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(walTestOpts(walDir)); err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	if !db.WALAttached() {
		t.Error("WALAttached() = false after attach")
	}
	if _, err := db.AttachWAL(walTestOpts(walDir)); err == nil {
		t.Error("second AttachWAL succeeded")
	}
}

// mustCertify is Certify with the error folded into the test.
func mustCertify(t *testing.T, db *DB, alpha float64) *Certification {
	t.Helper()
	cert, err := db.Certify(alpha)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}
