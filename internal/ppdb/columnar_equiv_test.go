package ppdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestColumnarKernelMatchesReferenceAcrossShards is the randomized-
// population property test for the columnar certify core (DESIGN.md §13):
// after a full mutation history (bulk build, point registrations,
// self-service edits, removals, a policy swap that recompiles every shard)
// the compiled tuple columns must still agree with the row-oriented
// reference — per provider (identical ProviderReports: conf, dimensions,
// defaults), per certification (byte-identical to a serial AssessProvider
// recompute), and per snapshot (byte-identical artifacts) — at 1, 2 and 8
// shards.
func TestColumnarKernelMatchesReferenceAcrossShards(t *testing.T) {
	readDir := func(t *testing.T, dir string) map[string][]byte {
		t.Helper()
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = b
		}
		return files
	}

	for _, seed := range []uint64{3, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			var baseCert []byte
			var baseSnap map[string][]byte
			for _, shards := range shardSweepCounts {
				db := buildShardedDB(t, seed, shards)

				// (a) Row equivalence: every stored provider must carry
				// current compiled columns (the sweep's policy is maskable),
				// and the kernel's report for them must equal the reference
				// walk field-for-field.
				db.mu.RLock()
				assessor := db.assessor
				snaps := db.snapshotShardsShared()
				db.mu.RUnlock()
				var sc core.Scratch
				checked := 0
				for _, sn := range snaps {
					for j, st := range sn.states {
						if !st.compiled.CurrentFor(assessor) {
							t.Fatalf("shards=%d: provider %s has stale or missing compiled columns", shards, sn.keys[j])
						}
						want := assessor.AssessProvider(st.prefs)
						got := assessor.AssessCompiled(st.compiled, &sc)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("shards=%d: kernel report for %s differs\n got: %+v\nwant: %+v",
								shards, sn.keys[j], got, want)
						}
						checked++
					}
				}
				if checked == 0 {
					t.Fatal("mutation history left an empty population")
				}

				// (b) Certification equivalence: the columnar CertifyFull
				// must be byte-identical to the serial reference oracle
				// (AssessProvider over the sorted population), and the
				// incremental ledger path must match the full recompute.
				ref := assessor.AssessPopulation(db.Providers())
				cert, err := db.CertifyFull(0.25)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mustJSON(t, cert.Report), mustJSON(t, ref)) {
					t.Errorf("shards=%d: columnar certification diverges from the serial reference", shards)
				}
				requireCertEquiv(t, db, 0.25, fmt.Sprintf("columnar shards=%d", shards))

				// (c) Shard-count independence: certification bytes and
				// every snapshot artifact identical at 1, 2 and 8 shards.
				out := mustJSON(t, cert)
				dir := filepath.Join(t.TempDir(), "snap")
				if err := db.Save(dir); err != nil {
					t.Fatalf("shards=%d: Save: %v", shards, err)
				}
				files := readDir(t, dir)
				if baseCert == nil {
					baseCert, baseSnap = out, files
					continue
				}
				if !bytes.Equal(out, baseCert) {
					t.Errorf("shards=%d: certification bytes differ from shards=%d", shards, shardSweepCounts[0])
				}
				if len(files) != len(baseSnap) {
					t.Errorf("shards=%d: %d snapshot artifacts, want %d", shards, len(files), len(baseSnap))
				}
				for name, want := range baseSnap {
					if got, ok := files[name]; !ok || !bytes.Equal(got, want) {
						t.Errorf("shards=%d: snapshot artifact %s differs from shards=%d", shards, name, shardSweepCounts[0])
					}
				}
			}
		})
	}
}
