package ledger

import (
	"testing"

	"repro/internal/population"
)

// TestMetricsCounters pins the instrumentation to the memoization
// semantics: a repeated Upsert with an unchanged version is a hit, a
// version bump is a miss plus a delta apply, a batch counts one miss per
// item, and a policy swap counts one rebuild. Counters live in the shared
// default registry, so the test asserts deltas, not absolutes.
func TestMetricsCounters(t *testing.T) {
	a, gen := testAssessor(t, 11, 2)
	pop := population.PrefsOf(gen.Generate(10))
	l, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := mMemoHits.Value(), mMemoMisses.Value()
	applies0, rebuilds0 := mDeltaApplies.Value(), mRebuilds.Value()

	for i, p := range pop {
		l.Upsert(p.Provider, p, uint64(i+1))
	}
	if got := mMemoMisses.Value() - misses0; got != 10 {
		t.Errorf("first-time upserts: misses moved %d, want 10", got)
	}
	if got := mDeltaApplies.Value() - applies0; got != 10 {
		t.Errorf("first-time upserts: delta applies moved %d, want 10", got)
	}

	// Same versions again: pure memo hits, no new applies.
	for i, p := range pop {
		l.Upsert(p.Provider, p, uint64(i+1))
	}
	if got := mMemoHits.Value() - hits0; got != 10 {
		t.Errorf("repeat upserts: hits moved %d, want 10", got)
	}
	if got := mDeltaApplies.Value() - applies0; got != 10 {
		t.Errorf("repeat upserts grew delta applies to %d, want 10", got)
	}

	// A version bump is a miss + apply.
	l.Upsert(pop[0].Provider, pop[0], 99)
	if got := mMemoMisses.Value() - misses0; got != 11 {
		t.Errorf("version bump: misses moved %d, want 11", got)
	}

	// A batch counts one miss per item; a rebuild counts once.
	batch := make([]Item, 0, len(pop))
	for i, p := range pop {
		batch = append(batch, Item{Key: p.Provider, Prefs: p, Version: uint64(100 + i)})
	}
	l.UpsertBatch(batch)
	if got := mMemoMisses.Value() - misses0; got != 21 {
		t.Errorf("batch: misses moved %d, want 21", got)
	}
	a2, _ := testAssessor(t, 11, 1)
	l.Rebuild(a2, 2)
	if got := mRebuilds.Value() - rebuilds0; got != 1 {
		t.Errorf("rebuilds moved %d, want 1", got)
	}

	// The rows gauge tracks this ledger (last mutator wins process-wide).
	if got := int(mRows.Value()); got != l.Len() {
		t.Errorf("rows gauge = %d, want %d", got, l.Len())
	}
	l.Remove(pop[0].Provider)
	if got := int(mRows.Value()); got != l.Len() {
		t.Errorf("rows gauge after remove = %d, want %d", got, l.Len())
	}
}
