// Package fault is a deterministic fault-injection registry for tests.
//
// Production code marks the places where the outside world can fail —
// a write, a sync, a rename, a handler entry — with a named injection
// site:
//
//	if err := fault.Point("persist.write.state.json"); err != nil { ... }
//
// Tests arm a site to return an error (ArmError), panic (ArmPanic), or
// simulate a hard crash (ArmCrash) and then drive the code under test
// through it. Sites are global process state (one registry per binary),
// so tests that arm anything must `defer fault.Reset()` and must not run
// in parallel with each other.
//
// When nothing is armed and tracing is off, Point is a single atomic
// load — the registry costs nothing in production.
//
// Crash semantics. A simulated crash models the process dying at that
// instant: the armed Point returns an error satisfying IsCrash, and the
// call site must abort immediately *without cleanup*, leaving whatever
// partial state exists on disk exactly as a real crash would. Writers
// additionally leave a torn file behind (see ppdb's persist layer), so
// recovery is exercised against genuine debris rather than a clean
// absence.
//
// Write mutation. Code that persists bytes routes them through
// WritePoint(site, data) instead of a bare Point: disarmed it is the same
// single atomic load, but a site armed with ArmShortWrite or ArmFlipByte
// hands back truncated or byte-flipped data with *no error* — the write
// "succeeds" and the corruption is only discoverable by the reader's
// checksums. The WAL's torn-tail tests are built on this mode.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Mode selects what an armed injection site does when execution reaches it.
type Mode int

const (
	// ModeError makes Point return the armed error.
	ModeError Mode = iota
	// ModePanic makes Point panic with a message naming the site.
	ModePanic
	// ModeCrash makes Point return an error satisfying IsCrash; the call
	// site aborts without cleanup, simulating the process dying there.
	ModeCrash
	// ModeShortWrite makes WritePoint return only the first N bytes of the
	// data, with no error — the write "succeeds" but lands truncated, the
	// debris a power cut leaves behind a pagecache flush.
	ModeShortWrite
	// ModeFlipByte makes WritePoint return the data with the byte at an
	// armed offset inverted — silent media corruption for checksum tests.
	ModeFlipByte
)

// ErrInjected is the error ArmError installs when given a nil error.
var ErrInjected = errors.New("fault: injected error")

// crashError marks a simulated hard crash at a site.
type crashError struct{ site string }

func (e *crashError) Error() string { return "fault: simulated crash at " + e.site }

// IsCrash reports whether err (anywhere in its chain) is a simulated
// hard crash from an armed site.
func IsCrash(err error) bool {
	var ce *crashError
	return errors.As(err, &ce)
}

type arming struct {
	mode Mode
	err  error
	// keep is the byte count a ModeShortWrite site lets through; offset is
	// the byte a ModeFlipByte site inverts (clamped to the data length).
	keep, offset int
}

var (
	// active counts armed sites, plus one while tracing, so the disarmed
	// fast path in Point is a single atomic load with no lock.
	active atomic.Int32

	mu      sync.Mutex
	armed   = map[string]arming{}
	tracing bool
	trace   []string
	seen    map[string]bool
)

// Point is the injection hook production code places at a failure site.
// It returns nil unless the named site is armed: the site's error for
// ModeError, a crash error (IsCrash == true) for ModeCrash; for ModePanic
// it panics. While tracing, every distinct site reached is recorded.
func Point(name string) error {
	if active.Load() == 0 {
		return nil
	}
	return point(name)
}

func point(name string) error {
	mu.Lock()
	if tracing && !seen[name] {
		seen[name] = true
		trace = append(trace, name)
	}
	a, ok := armed[name]
	mu.Unlock()
	if !ok || a.mode == ModeShortWrite || a.mode == ModeFlipByte {
		// Write-mutation modes act only through WritePoint; a plain Point
		// at the same site passes clean.
		return nil
	}
	// An armed site fired: count the trip before the failure propagates
	// (the panic mode never returns). Disarmed runs never reach here, so
	// production traffic pays nothing for the counter.
	metrics.Default.Counter("fault_trips_total",
		"armed fault-injection sites tripped", "site", name).Inc()
	switch a.mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	case ModeCrash:
		return &crashError{site: name}
	default:
		return a.err
	}
}

// WritePoint is the injection hook for code about to write data somewhere
// durable. Disarmed it returns the data unchanged and costs one atomic
// load. Armed, it models the ways a write can go wrong:
//
//   - ModeError: the data is returned unchanged with the armed error; the
//     caller should fail without writing.
//   - ModePanic: panics, as Point does.
//   - ModeCrash: returns the first half of the data plus an IsCrash error;
//     the caller writes that torn prefix and then aborts without cleanup,
//     leaving the debris a real mid-write crash would.
//   - ModeShortWrite: returns only the armed byte count, with no error —
//     the write silently lands truncated.
//   - ModeFlipByte: returns a copy with one byte inverted, no error —
//     silent corruption for checksum-verification tests.
func WritePoint(name string, data []byte) ([]byte, error) {
	if active.Load() == 0 {
		return data, nil
	}
	mu.Lock()
	if tracing && !seen[name] {
		seen[name] = true
		trace = append(trace, name)
	}
	a, ok := armed[name]
	mu.Unlock()
	if !ok {
		return data, nil
	}
	metrics.Default.Counter("fault_trips_total",
		"armed fault-injection sites tripped", "site", name).Inc()
	switch a.mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	case ModeCrash:
		return data[:len(data)/2], &crashError{site: name}
	case ModeShortWrite:
		keep := a.keep
		if keep < 0 {
			keep = 0
		}
		if keep > len(data) {
			keep = len(data)
		}
		return data[:keep], nil
	case ModeFlipByte:
		if len(data) == 0 {
			return data, nil
		}
		off := a.offset
		if off < 0 {
			off = 0
		}
		if off >= len(data) {
			off = len(data) - 1
		}
		out := append([]byte(nil), data...)
		out[off] ^= 0xFF
		return out, nil
	default:
		return data, a.err
	}
}

func arm(name string, a arming) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := armed[name]; !ok {
		active.Add(1)
	}
	armed[name] = a
}

// ArmError makes Point(name) return err (ErrInjected if err is nil).
func ArmError(name string, err error) {
	if err == nil {
		err = ErrInjected
	}
	arm(name, arming{mode: ModeError, err: err})
}

// ArmPanic makes Point(name) panic.
func ArmPanic(name string) { arm(name, arming{mode: ModePanic}) }

// ArmCrash makes Point(name) return a simulated-crash error (IsCrash).
func ArmCrash(name string) { arm(name, arming{mode: ModeCrash}) }

// ArmShortWrite makes WritePoint(name) pass through only the first keep
// bytes, with no error — a silently truncated write.
func ArmShortWrite(name string, keep int) {
	arm(name, arming{mode: ModeShortWrite, keep: keep})
}

// ArmFlipByte makes WritePoint(name) invert the byte at offset (clamped to
// the data) — silent single-byte corruption.
func ArmFlipByte(name string, offset int) {
	arm(name, arming{mode: ModeFlipByte, offset: offset})
}

// Disarm removes the arming for one site; unknown names are a no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := armed[name]; ok {
		delete(armed, name)
		active.Add(-1)
	}
}

// Armed reports whether the named site is currently armed.
func Armed(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := armed[name]
	return ok
}

// Reset disarms every site and stops tracing — the mandatory deferred
// cleanup for any test that arms or traces.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = map[string]arming{}
	tracing = false
	trace, seen = nil, nil
	active.Store(0)
}

// StartTrace begins recording the name of every injection site execution
// reaches, in first-hit order. Tests use a traced clean run to enumerate
// the sites a code path owns, then re-run it with each site armed in turn
// — the crash matrix stays exhaustive as sites are added.
func StartTrace() {
	mu.Lock()
	defer mu.Unlock()
	if !tracing {
		tracing = true
		active.Add(1)
	}
	trace, seen = nil, map[string]bool{}
}

// StopTrace ends tracing and returns the distinct sites reached, in
// first-hit order.
func StopTrace() []string {
	mu.Lock()
	defer mu.Unlock()
	if tracing {
		tracing = false
		active.Add(-1)
	}
	out := trace
	trace, seen = nil, nil
	return out
}
