// XML records example: the Sec. 10 future-work extension to hierarchical
// data. Policies and preferences are attached to document paths with
// subtree inheritance; the same violation/severity/default model runs per
// data-bearing leaf.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/hierdata"
	"repro/internal/privacy"
)

const record = `
<patient>
  <name>Maria Santos</name>
  <contact>
    <email>maria@example.com</email>
    <phone>555-0101</phone>
  </contact>
  <vitals>
    <weight>61.5</weight>
    <condition>asthma</condition>
  </vitals>
  <billing>
    <card>4111-xxxx</card>
  </billing>
</patient>`

func main() {
	doc, err := hierdata.ParseXML(strings.NewReader(record))
	if err != nil {
		log.Fatal(err)
	}

	// House policy: care reads everything; research additionally reads the
	// vitals subtree at third-party visibility; ads wants the contact
	// subtree.
	policy := hierdata.NewPathPolicy("clinic-xml-v2")
	policy.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	policy.Add("/patient/vitals", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	policy.Add("/patient/contact", privacy.Tuple{Purpose: "ads", Visibility: 3, Granularity: 3, Retention: 4})

	// Maria consents to care everywhere and research on vitals at house
	// visibility — but was never asked about ads.
	maria := hierdata.NewPathPrefs("maria", 40)
	maria.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	maria.Add("/patient/vitals", privacy.Tuple{Purpose: "research", Visibility: 2, Granularity: 2, Retention: 3})
	maria.SetSensitivity("/patient", privacy.Sensitivity{Value: 1, Visibility: 2, Granularity: 1, Retention: 1})
	maria.SetSensitivity("/patient/contact", privacy.Sensitivity{Value: 3, Visibility: 3, Granularity: 2, Retention: 2})

	assessor := &hierdata.Assessor{
		Policy: policy,
		PathSens: map[string]float64{
			"/patient/vitals":  4, // health data: most sensitive (Westin)
			"/patient/contact": 3,
			"/patient/billing": 5,
		},
	}
	rep, err := assessor.AssessDocument(doc, maria)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("provider %s: violated=%v Violation=%g threshold=%g defaults=%v\n\n",
		rep.Provider, rep.Violated, rep.Violation, maria.Threshold, rep.Defaults)
	fmt.Println("leaf conflicts:")
	for _, l := range rep.Leaves {
		origin := "explicit preference"
		if l.ImplicitZero {
			origin = "IMPLICIT ZERO (never consented)"
		}
		fmt.Printf("  %-24s purpose=%-8s conf=%-6g %s\n", l.Path, l.Purpose, l.Conf, origin)
	}

	// What changes vs the relational model: move the research grant one
	// level up (whole patient instead of vitals) and watch inheritance pull
	// contact and billing leaves into the violation.
	wide := hierdata.NewPathPolicy("clinic-xml-v3")
	wide.Add("/patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	wide.Add("/patient", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	wide.Add("/patient/contact", privacy.Tuple{Purpose: "ads", Visibility: 3, Granularity: 3, Retention: 4})
	assessor.Policy = wide
	rep2, err := assessor.AssessDocument(doc, maria)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwidening research to the whole subtree: Violation %g → %g, defaults=%v\n",
		rep.Violation, rep2.Violation, rep2.Defaults)
	fmt.Printf("conflicted leaves %d → %d (inheritance reaches name, contact and billing)\n",
		len(rep.Leaves), len(rep2.Leaves))
}
