package experiments

import (
	"fmt"
	"io"

	"repro/internal/privacy"
)

// Figure1Case is one panel of Figure 1: a preference box and a policy point
// over two selected dimensions, with the violation verdict. The paper's
// panels are (a) no violation — policy inside the preference box, (b) a
// violation along one dimension, (c) violations along two dimensions.
type Figure1Case struct {
	Panel       string
	Pref        privacy.Tuple
	Policy      privacy.Tuple
	DimsShown   [2]privacy.Dimension
	ExceededDim []privacy.Dimension
	Violated    bool
}

// Figure1 regenerates the geometry of Figure 1 programmatically: for each
// panel it constructs tuples realizing the depicted containment relation and
// verifies it with the model's own violation test. Beyond the paper's three
// panels it enumerates the full 2^3 containment lattice over (V, G, R) so
// the geometric reading ("violation ⇔ the policy box escapes the preference
// box along some axis") is checked exhaustively.
func Figure1() []Figure1Case {
	const pr = privacy.Purpose("si-sj")
	pref := privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 2, Retention: 2}

	mk := func(panel string, pol privacy.Tuple, dims [2]privacy.Dimension) Figure1Case {
		return Figure1Case{
			Panel:       panel,
			Pref:        pref,
			Policy:      pol,
			DimsShown:   dims,
			ExceededDim: pref.ExceededDims(pol),
			Violated:    pref.ExceededBy(pol),
		}
	}

	cases := []Figure1Case{
		// Panel (a): policy bounded by the preference on both axes.
		mk("a: contained (no violation)",
			privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 2},
			[2]privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity}),
		// Panel (b): policy escapes along one axis (S_i).
		mk("b: one-dimension violation",
			privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: 1, Retention: 2},
			[2]privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity}),
		// Panel (c): policy escapes along both shown axes.
		mk("c: two-dimension violation",
			privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: 3, Retention: 2},
			[2]privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity}),
	}

	// Exhaustive containment lattice over the three ordered dimensions:
	// every subset of axes the policy escapes along.
	axes := privacy.OrderedDimensions
	for mask := 0; mask < 8; mask++ {
		pol := privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1}
		label := "lattice:"
		for bit, d := range axes {
			if mask&(1<<bit) != 0 {
				pol = pol.With(d, pref.Get(d)+1)
				label += " " + d.String()
			}
		}
		if mask == 0 {
			label += " none"
		}
		cases = append(cases, mk(label, pol,
			[2]privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity}))
	}
	return cases
}

// Fprint renders the Figure 1 cases as a table.
func FprintFigure1(w io.Writer, cases []Figure1Case) error {
	fmt.Fprintln(w, "Figure 1 — geometric violation cases (preference box vs policy point)")
	fmt.Fprintln(w)
	rows := make([][]string, 0, len(cases))
	for _, c := range cases {
		dims := ""
		for _, d := range c.ExceededDim {
			if dims != "" {
				dims += ","
			}
			dims += d.String()
		}
		if dims == "" {
			dims = "-"
		}
		rows = append(rows, []string{c.Panel, c.Pref.String(), c.Policy.String(), dims, b(c.Violated)})
	}
	return WriteTable(w, []string{"panel", "preference", "policy", "exceeded dims", "w"}, rows)
}
