// Command whatif compares a current policy corpus against a proposed policy
// — the Sec. 10 "what-if scenario": what would adopting the new policy do to
// P(W), P(Default), and what extra per-provider utility T would the change
// need to generate to pay for the lost providers (Eq. 31)?
//
// The current document supplies the provider population and the current
// policy; the proposed document supplies only a policy (its provider blocks,
// if any, are ignored).
//
// Usage:
//
//	whatif -current corpus.dsl -proposed next-policy.dsl -u 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/economics"
	"repro/internal/policydsl"
)

func main() {
	currentPath := flag.String("current", "", "DSL document with the current policy and providers")
	proposedPath := flag.String("proposed", "", "DSL document with the proposed policy")
	u := flag.Float64("u", 10, "current per-provider utility U")
	flag.Parse()

	if err := run(*currentPath, *proposedPath, *u); err != nil {
		fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
		os.Exit(1)
	}
}

func run(currentPath, proposedPath string, u float64) error {
	if currentPath == "" || proposedPath == "" {
		return fmt.Errorf("both -current and -proposed are required")
	}
	curSrc, err := os.ReadFile(currentPath)
	if err != nil {
		return err
	}
	propSrc, err := os.ReadFile(proposedPath)
	if err != nil {
		return err
	}
	cur, err := policydsl.Parse(string(curSrc))
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	prop, err := policydsl.Parse(string(propSrc))
	if err != nil {
		return fmt.Errorf("proposed: %w", err)
	}
	if cur.Policy == nil || len(cur.Providers) == 0 {
		return fmt.Errorf("current document needs a policy and providers")
	}
	if prop.Policy == nil {
		return fmt.Errorf("proposed document needs a policy")
	}

	w, err := economics.Compare(cur.Policy, prop.Policy, cur.AttrSens, core.Options{}, cur.Providers, u)
	if err != nil {
		return err
	}

	fmt.Printf("what-if: %q → %q over %d providers (U = %g)\n\n", cur.Policy.Name, prop.Policy.Name, w.Current.N, u)
	fmt.Printf("%-22s %12s %12s %12s\n", "", "current", "proposed", "delta")
	fmt.Printf("%-22s %12.4f %12.4f %+12.4f\n", "P(W)", w.Current.PW, w.Proposed.PW, w.DeltaPW)
	fmt.Printf("%-22s %12.4f %12.4f %+12.4f\n", "P(Default)", w.Current.PDefault, w.Proposed.PDefault, w.DeltaPDefault)
	fmt.Printf("%-22s %12g %12g %+12g\n", "Violations (Eq. 16)",
		w.Current.TotalViolations, w.Proposed.TotalViolations,
		w.Proposed.TotalViolations-w.Current.TotalViolations)
	fmt.Printf("%-22s %12d %12d %+12d\n", "defaults",
		w.Current.DefaultCount, w.Proposed.DefaultCount,
		w.Proposed.DefaultCount-w.Current.DefaultCount)
	fmt.Printf("\nbreak-even extra utility per provider (Eq. 31): T > %g\n", w.BreakEvenT)
	if w.DeltaPDefault <= 0 {
		fmt.Println("verdict: the proposal loses no providers — any positive T pays.")
	} else {
		fmt.Printf("verdict: adopt only if the new policy yields more than %g extra utility per provider.\n", w.BreakEvenT)
	}
	return nil
}
