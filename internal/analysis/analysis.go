// Package analysis is a small static-analysis framework over the standard
// library's go/ast, go/parser and go/types — no external module
// dependencies, matching the repo's zero-dep go.mod. It exists because the
// reproduction's correctness rests on invariants the compiler cannot see:
// mutex-guarded shared state in internal/ppdb and internal/relational,
// ε-sensitive severity arithmetic in internal/core and internal/economics
// (Eqs. 12-16 of the paper), two hand-written parsers whose errors must
// never be silently dropped, and — since the store was sharded — a
// whole-program lock order and the byte-determinism of every persisted
// artifact. Each invariant gets a Checker; cmd/ppdblint drives them all
// and gates `make check`.
//
// Checkers come in two shapes: per-package (Run) and whole-program
// (RunProgram), the latter running over the cross-package call graph of
// callgraph.go so lock nesting and reachability cross package boundaries.
//
// Deliberate exceptions are annotated in source with
//
//	//lint:ignore <checker>[,<checker>...] <reason>
//	//lint:ignore <checker>[<reason>][,<checker>[<reason>]...]
//
// which suppresses findings of the named checkers (or "all") on the same
// line and on the line directly below the comment. A reason is mandatory —
// either trailing free text covering the whole directive, or a bracketed
// per-checker reason; an exception without a rationale (or with an empty
// bracketed reason) is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the checker that produced it and a
// human-readable message. Output ordering is deterministic (file, line,
// column, checker, message) so runs are diffable.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// String renders the canonical `file:line: [checker] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Checker, f.Message)
}

// Pass is the per-package view handed to a checker: syntax, type
// information and a Report sink.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	report func(pos token.Pos, msg string)
}

// Report records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ProgramPass is the whole-program view handed to a cross-package checker:
// the call graph plus a Report sink.
type ProgramPass struct {
	Prog   *Program
	report func(pos token.Pos, msg string)
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Checker is one named invariant. Exactly one of Run and RunProgram is
// set: Run inspects a single package, RunProgram the whole load at once.
type Checker struct {
	// Name is the identifier used by -checker selection and lint:ignore.
	Name string
	// Doc is a one-line description for usage output.
	Doc string
	// Run inspects one package and reports findings.
	Run func(*Pass)
	// RunProgram inspects the whole program (cross-package call graph).
	RunProgram func(*ProgramPass)
}

// Checkers returns every registered checker in deterministic order.
func Checkers() []*Checker {
	return []*Checker{
		determinismChecker(),
		enumswitchChecker(),
		errflowChecker(),
		fanoutChecker(),
		floatcmpChecker(),
		lockcheckChecker(),
		lockorderChecker(),
	}
}

// Select resolves a comma-separated checker-name list ("" means all).
func Select(names string) ([]*Checker, error) {
	all := Checkers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := make(map[string]*Checker, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Checker
	seen := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(all))
			for _, k := range all {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("analysis: unknown checker %q (known: %s)", n, strings.Join(known, ", "))
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line     int
	checkers map[string]bool // nil means "all"
	bad      bool            // malformed (missing or empty reason)
}

const ignorePrefix = "//lint:ignore "

// parseIgnoreList splits the checker list of a lint:ignore directive into
// (names, allReasoned, rest): the checker names, whether every name carried
// a non-empty bracketed reason, and the remaining trailing text. A name
// with an empty bracketed reason ("checker[]" or "checker[  ]") poisons the
// parse (ok=false): an exception whose rationale is blank is no exception.
func parseIgnoreList(s string) (names []string, allReasoned bool, rest string, ok bool) {
	allReasoned = true
	i := 0
	for {
		start := i
		for i < len(s) && (isNameRune(s[i])) {
			i++
		}
		if i == start {
			return nil, false, "", false
		}
		names = append(names, s[start:i])
		if i < len(s) && s[i] == '[' {
			close := strings.IndexByte(s[i:], ']')
			if close < 0 {
				return nil, false, "", false
			}
			reason := s[i+1 : i+close]
			if strings.TrimSpace(reason) == "" {
				return nil, false, "", false
			}
			i += close + 1
		} else {
			allReasoned = false
		}
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		break
	}
	if i < len(s) && s[i] != ' ' && s[i] != '\t' {
		return nil, false, "", false
	}
	return names, allReasoned, strings.TrimSpace(s[i:]), true
}

// isNameRune reports whether b may appear in a checker name.
func isNameRune(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_' || b == '-'
}

// parseIgnores extracts lint:ignore directives from one file. Malformed
// directives (no checker list, no reason, or an empty bracketed reason)
// are returned with bad=true so Analyze can surface them instead of
// silently not suppressing.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, strings.TrimSpace(ignorePrefix)) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, strings.TrimSpace(ignorePrefix)))
			line := fset.Position(c.Pos()).Line
			names, allReasoned, trailing, ok := parseIgnoreList(rest)
			if !ok || (!allReasoned && trailing == "") {
				out = append(out, ignoreDirective{line: line, bad: true})
				continue
			}
			d := ignoreDirective{line: line}
			all := false
			for _, n := range names {
				if n == "all" {
					all = true
				}
			}
			if !all {
				d.checkers = map[string]bool{}
				for _, n := range names {
					d.checkers[n] = true
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// matches reports whether the directive suppresses checker findings on line.
func (d ignoreDirective) matches(checker string, line int) bool {
	if d.bad {
		return false
	}
	if line != d.line && line != d.line+1 {
		return false
	}
	return d.checkers == nil || d.checkers[checker]
}

// Analyze runs the checkers over the packages — per-package checkers on
// each package, whole-program checkers once over the combined call graph —
// and returns the surviving findings in deterministic order. lint:ignore
// directives are collected across every loaded file, so a program-level
// finding is suppressible at the line it points into regardless of which
// package's analysis produced it. Malformed lint:ignore directives are
// reported under the pseudo-checker name "lintdirective".
func Analyze(pkgs []*Package, checkers []*Checker) []Finding {
	var raw []Finding
	ignores := map[string][]ignoreDirective{} // filename → directives
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fname := pkg.Fset.Position(f.Pos()).Filename
			for _, d := range parseIgnores(pkg.Fset, f) {
				if d.bad {
					raw = append(raw, Finding{
						File:    fname,
						Line:    d.line,
						Col:     1,
						Checker: "lintdirective",
						Message: "malformed lint:ignore directive: want //lint:ignore <checker>[,<checker>] <reason> (bracketed per-checker reasons must be non-empty)",
					})
					continue
				}
				ignores[fname] = append(ignores[fname], d)
			}
		}
	}

	reporter := func(fset *token.FileSet, name string) func(pos token.Pos, msg string) {
		return func(pos token.Pos, msg string) {
			p := fset.Position(pos)
			raw = append(raw, Finding{
				File:    p.Filename,
				Line:    p.Line,
				Col:     p.Column,
				Checker: name,
				Message: msg,
			})
		}
	}

	var programCheckers []*Checker
	for _, pkg := range pkgs {
		for _, c := range checkers {
			if c.Run == nil {
				continue
			}
			pass := &Pass{
				Fset:   pkg.Fset,
				Files:  pkg.Files,
				Pkg:    pkg.Types,
				Info:   pkg.Info,
				report: reporter(pkg.Fset, c.Name),
			}
			c.Run(pass)
		}
	}
	for _, c := range checkers {
		if c.RunProgram != nil {
			programCheckers = append(programCheckers, c)
		}
	}
	if len(programCheckers) > 0 && len(pkgs) > 0 {
		prog := BuildProgram(pkgs)
		for _, c := range programCheckers {
			pp := &ProgramPass{Prog: prog, report: reporter(prog.Fset, c.Name)}
			c.RunProgram(pp)
		}
	}

	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, d := range ignores[f.File] {
			if d.matches(f.Checker, f.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	return out
}
