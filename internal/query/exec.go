package query

import (
	"sort"

	"repro/internal/core"
	"repro/internal/relational"
)

// rowEnv resolves column references against one disclosed row.
type rowEnv struct {
	plan *plan
	row  relational.Row
}

// Col implements relational.Env over the disclosed view.
func (e rowEnv) Col(name string) (relational.Value, error) {
	if idx, ok := e.plan.env[canonColName(name)]; ok {
		return e.row[idx], nil
	}
	return relational.Null(), &DeniedError{Attribute: name, Reason: "column not resolved at plan time"}
}

func canonColName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// outRow is one surviving row awaiting ordering and windowing.
type outRow struct {
	id    relational.RowID
	keys  []relational.Value
	cells []relational.Value
}

// run executes a validated plan: scan → per-row enforcement (suppress /
// expire / generalize into a disclosed view) → WHERE and ORDER BY over that
// view → OFFSET/LIMIT → projection. Rows are visited in ascending row-id
// order and ties sort by row id, so the answer — and the EXPLAIN trace —
// is deterministic.
func (e *Engine) run(p *plan) (*Result, error) {
	res := &Result{Columns: make([]string, len(p.items))}
	for i, it := range p.items {
		res.Columns[i] = it.name
	}
	res.IndexScan = p.useIdx
	if p.req.Explain {
		res.Explain = newExplain(p)
	}

	var rows []outRow
	bindings := make([]core.PrefBinding, len(p.uses))
	visit := func(id relational.RowID, raw relational.Row) error {
		res.Stats.RowsScanned++
		tr, err := e.enforceRow(p, id, raw, bindings, res)
		if err != nil {
			return err
		}
		if tr != nil {
			rows = append(rows, *tr)
		}
		return nil
	}

	table := p.binding.Table
	if p.useIdx {
		ids, err := table.Lookup(p.idxCol, p.idxVal)
		if err != nil {
			return nil, err
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			raw, ok := table.Get(id)
			if !ok {
				continue
			}
			if err := visit(id, raw); err != nil {
				return nil, err
			}
		}
	} else {
		var scanErr error
		table.Scan(func(id relational.RowID, raw relational.Row) bool {
			scanErr = visit(id, raw)
			return scanErr == nil
		})
		if scanErr != nil {
			return nil, scanErr
		}
	}

	sortRows(rows, p.orderBy)
	lo := p.offset
	if lo > len(rows) {
		lo = len(rows)
	}
	hi := len(rows)
	if p.limit >= 0 && lo+p.limit < hi {
		hi = lo + p.limit
	}
	res.Rows = make([][]relational.Value, 0, hi-lo)
	for _, r := range rows[lo:hi] {
		res.Rows = append(res.Rows, r.cells)
	}
	res.Stats.RowsReturned = len(res.Rows)
	return res, nil
}

// enforceRow applies the four dimensions to one stored row. It returns nil
// when the row is suppressed or fails WHERE over the disclosed view.
func (e *Engine) enforceRow(p *plan, id relational.RowID, raw relational.Row, bindings []core.PrefBinding, res *Result) (*outRow, error) {
	// Provenance: a row the store cannot attribute to a registered provider
	// cannot be checked against anyone's preferences, so it is withheld.
	provider, inserted, ok := e.src.Origin(p.binding.Table.Name(), id)
	if !ok || raw[p.provIdx].IsNull() {
		res.Stats.RowsSuppressed++
		res.Explain.suppress(id, provider, "", nil, "row has no attributable provider")
		return nil, nil
	}
	prefs, compiled, ok := e.src.Provider(provider)
	if !ok {
		res.Stats.RowsSuppressed++
		res.Explain.suppress(id, provider, "", nil, "provider is not registered")
		return nil, nil
	}

	// Visibility: if the requester's class exceeds what any referenced
	// attribute's covering preference admits, disclosing — or even filtering
	// on — the row would violate the provider. The whole row is suppressed.
	suppressed := false
	for i := range p.uses {
		u := &p.uses[i]
		bindings[i] = e.asr.BindingFor(prefs, compiled, u.ref)
		b := &bindings[i]
		if b.Found && p.req.Visibility > b.V {
			suppressed = true
			pref := b.VPref // copy: b aliases the per-query scratch slice
			res.Explain.violation(Trace{
				Row: id, Provider: provider, Column: u.col, Attribute: u.attr,
				Action: ActionSuppress, Dimension: "visibility", Granted: b.V,
				Pref: &pref, PrefImplicit: b.VImplicit, Policy: &u.ref.Tuple,
			})
		}
	}
	if suppressed {
		res.Stats.RowsSuppressed++
		return nil, nil
	}

	// Materialize the disclosed view of the referenced cells: retention
	// refusal first (an expired datum discloses nothing), then granularity
	// degradation to the minimum of policy grant and preference.
	disc := make(relational.Row, len(raw))
	var pending []Trace
	generalized, expired := 0, 0
	for i := range p.uses {
		u := &p.uses[i]
		b := &bindings[i]
		cell := raw[u.idx]
		grantedR := u.ref.Tuple.Retention
		if b.Found && b.R < grantedR {
			grantedR = b.R
		}
		if e.src.Expired(grantedR, inserted) {
			disc[u.idx] = relational.Null()
			if u.projected {
				expired++
				t := Trace{
					Row: id, Provider: provider, Column: u.col, Attribute: u.attr,
					Action: ActionExpire, Dimension: "retention", Granted: grantedR,
					Policy: &u.ref.Tuple,
				}
				if b.Found && b.R < u.ref.Tuple.Retention {
					pref := b.RPref
					t.Pref, t.PrefImplicit = &pref, b.RImplicit
				} else {
					t.Reason = "past the policy's retention window"
				}
				pending = append(pending, t)
			}
			continue
		}
		grantedG := u.ref.Tuple.Granularity
		if b.Found && b.G < grantedG {
			grantedG = b.G
		}
		out := e.src.Generalize(u.attr, cell, grantedG)
		disc[u.idx] = out
		if u.projected && !sameValue(cell, out) {
			generalized++
			t := Trace{
				Row: id, Provider: provider, Column: u.col, Attribute: u.attr,
				Action: ActionGeneralize, Dimension: "granularity", Granted: grantedG,
				Policy: &u.ref.Tuple,
			}
			if b.Found && b.G < u.ref.Tuple.Granularity {
				pref := b.GPref
				t.Pref, t.PrefImplicit = &pref, b.GImplicit
			} else {
				t.Reason = "policy grants partial granularity"
			}
			pending = append(pending, t)
		}
	}

	// WHERE runs over the disclosed view: a predicate a degraded value
	// cannot decide (generalized text vs a numeric bound, an expired NULL)
	// simply does not match — withheld data never drives an answer.
	env := rowEnv{plan: p, row: disc}
	if p.where != nil {
		match, err := relational.Truthy(p.where, env)
		if err != nil || !match {
			return nil, nil
		}
	}
	res.Stats.RowsMatched++
	res.Stats.CellsGeneralized += generalized
	res.Stats.CellsExpired += expired
	res.Explain.violations(pending)

	out := &outRow{id: id, cells: make([]relational.Value, len(p.items))}
	for i, it := range p.items {
		out.cells[i] = disc[p.uses[it.use].idx]
	}
	if len(p.orderBy) > 0 {
		out.keys = make([]relational.Value, len(p.orderBy))
		for i, o := range p.orderBy {
			v, err := o.Expr.Eval(env)
			if err != nil {
				v = relational.Null()
			}
			out.keys[i] = v
		}
	}
	return out, nil
}

// sameValue compares raw and disclosed cells, treating NULL = NULL (the
// degradation check needs identity, not SQL equality).
func sameValue(a, b relational.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return relational.Equal(a, b)
}

// sortRows orders surviving rows by the ORDER BY keys over the disclosed
// view. Values of different kinds order by kind rank (NULL < bool < number
// < text) so mixed generalized/exact columns still sort totally; ties
// fall back to ascending row id for determinism.
func sortRows(rows []outRow, order []relational.OrderItem) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range order {
			c := compareTotal(rows[i].keys[k], rows[j].keys[k])
			if c == 0 {
				continue
			}
			if order[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return rows[i].id < rows[j].id
	})
}

// kindRank buckets values for the total order: NULL, bool, numeric, text.
func kindRank(v relational.Value) int {
	switch v.Kind() {
	case relational.KindNull:
		return 0
	case relational.KindBool:
		return 1
	case relational.KindInt, relational.KindFloat:
		return 2
	default:
		return 3
	}
}

// compareTotal is relational.Compare extended to a total order.
func compareTotal(a, b relational.Value) int {
	ra, rb := kindRank(a), kindRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if ra == 0 {
		return 0
	}
	c, err := relational.Compare(a, b)
	if err != nil {
		return 0
	}
	return c
}
