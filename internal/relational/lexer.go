package relational

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens of the SQL dialect.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/compound punctuation: ( ) , * . = != <> < <= > >= + - / %
)

// token is one lexical unit with its position for error reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL statement.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexSQL tokenizes src, returning all tokens (terminated by tokEOF).
func lexSQL(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos > start {
			// exponent: e[+-]?digits
			save := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
				l.pos = save
				break
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			seenDot = true // treat as float
		}
		break
	}
	text := l.src[start:l.pos]
	if l.pos < len(l.src) && isIdentStart(rune(l.src[l.pos])) {
		return fmt.Errorf("relational: malformed number at offset %d: %q", start, text+string(l.src[l.pos]))
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("relational: unterminated string starting at offset %d", start)
}

func (l *lexer) lexPunct() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		l.pos += 2
		if two == "<>" {
			two = "!="
		}
		l.toks = append(l.toks, token{kind: tokPunct, text: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '.', '=', '<', '>', '+', '-', '/', '%', ';':
		l.pos++
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("relational: unexpected character %q at offset %d", string(c), start)
}
