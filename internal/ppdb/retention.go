package ppdb

import (
	"fmt"
	"time"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// RetentionSchedule maps retention levels to storage durations. The top
// level of the scale means "keep indefinitely" and needs no entry; level 0
// means "never store" (cells are expired by the first sweep).
type RetentionSchedule map[privacy.Level]time.Duration

// DefaultRetentionSchedule interprets the default retention scale
// none < transient < week < month < year < indefinite.
func DefaultRetentionSchedule(scale *privacy.Scale) RetentionSchedule {
	rs := RetentionSchedule{}
	for l := privacy.Level(0); l < scale.Max(); l++ {
		switch scale.Name(l) {
		case "none":
			rs[l] = 0
		case "transient":
			rs[l] = 24 * time.Hour
		case "week":
			rs[l] = 7 * 24 * time.Hour
		case "month":
			rs[l] = 30 * 24 * time.Hour
		case "year":
			rs[l] = 365 * 24 * time.Hour
		default:
			// Unknown intermediate levels get a progression of months.
			rs[l] = time.Duration(l) * 30 * 24 * time.Hour
		}
	}
	return rs
}

// Validate checks the schedule covers every non-top level and is monotone.
func (rs RetentionSchedule) Validate(scale *privacy.Scale) error {
	prev := time.Duration(-1)
	for l := privacy.Level(0); l < scale.Max(); l++ {
		d, ok := rs[l]
		if !ok {
			return fmt.Errorf("ppdb: retention schedule missing level %d (%s)", l, scale.Name(l))
		}
		if d < 0 {
			return fmt.Errorf("ppdb: retention for %s is negative", scale.Name(l))
		}
		if d < prev {
			return fmt.Errorf("ppdb: retention schedule not monotone at %s", scale.Name(l))
		}
		prev = d
	}
	return nil
}

// Expired reports whether a cell inserted at t with retention level l has
// expired by now. The scale's top level never expires.
func (rs RetentionSchedule) Expired(scale *privacy.Scale, l privacy.Level, inserted, now time.Time) bool {
	if l >= scale.Max() {
		return false
	}
	d, ok := rs[l]
	if !ok {
		return false
	}
	return now.Sub(inserted) > d
}

// SweepReport summarizes one retention sweep.
type SweepReport struct {
	At           time.Time
	CellsExpired int
	RowsDeleted  int
}

// Sweep enforces retention: for every stored row, each attribute cell whose
// policy retention (the maximum over the attribute's policy tuples — data
// is kept while any purpose still needs it) has elapsed is nulled out (or
// suppressed when the column is NOT NULL); rows whose policy-covered cells
// have all expired are deleted. Providers' identity columns expire last,
// with their row.
func (d *DB) Sweep() (SweepReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := SweepReport{At: d.now}

	for _, tm := range d.tables {
		schema := tm.table.Schema()
		// Per-column effective retention level under the current policy.
		type colPolicy struct {
			idx     int
			level   privacy.Level
			covered bool
		}
		cols := make([]colPolicy, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			name := schema.Column(i).Name
			cp := colPolicy{idx: i}
			for _, pt := range d.policy.ForAttribute(name) {
				if !cp.covered || pt.Tuple.Retention > cp.level {
					cp.level = pt.Tuple.Retention
				}
				cp.covered = true
			}
			cols[i] = cp
		}

		anyCovered := false
		for _, cp := range cols {
			if cp.covered && schema.Column(cp.idx).Name != tm.providerCol {
				anyCovered = true
			}
		}

		var toDelete []relational.RowID
		for id, meta := range tm.rows {
			row, ok := tm.table.Get(id)
			if !ok {
				continue
			}
			changed := false
			liveCovered := 0
			for _, cp := range cols {
				if !cp.covered {
					continue
				}
				name := schema.Column(cp.idx).Name
				if name == tm.providerCol {
					// Identity expires with the row, not cell-wise.
					continue
				}
				if meta.expired[name] {
					continue
				}
				if d.retention.Expired(d.scales.Retention, cp.level, meta.inserted, d.now) {
					if schema.Column(cp.idx).NotNull {
						row[cp.idx] = relational.Text("*")
					} else {
						row[cp.idx] = relational.Null()
					}
					meta.expired[name] = true
					rep.CellsExpired++
					changed = true
				} else {
					liveCovered++
				}
			}
			// Check the provider column's own retention for row deletion.
			rowExpired := true
			for _, cp := range cols {
				if !cp.covered {
					continue
				}
				name := schema.Column(cp.idx).Name
				if name == tm.providerCol {
					if !d.retention.Expired(d.scales.Retention, cp.level, meta.inserted, d.now) {
						rowExpired = false
					}
					continue
				}
			}
			if anyCovered && liveCovered == 0 && rowExpired {
				toDelete = append(toDelete, id)
				continue
			}
			if changed {
				if err := tm.table.Update(id, row); err != nil {
					return rep, err
				}
			}
		}
		for _, id := range toDelete {
			tm.table.Delete(id)
			delete(tm.rows, id)
			rep.RowsDeleted++
		}
	}
	return rep, nil
}
