package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewProportion(t *testing.T) {
	p := NewProportion(30, 100, 1.96)
	if p.P != 0.3 {
		t.Errorf("P = %g", p.P)
	}
	if p.Lo >= p.P || p.Hi <= p.P {
		t.Errorf("interval [%g, %g] must bracket %g", p.Lo, p.Hi, p.P)
	}
	if p.Lo < 0 || p.Hi > 1 {
		t.Errorf("interval out of [0,1]: [%g, %g]", p.Lo, p.Hi)
	}
	// Wider sample → tighter interval.
	p2 := NewProportion(3000, 10000, 1.96)
	if (p2.Hi - p2.Lo) >= (p.Hi - p.Lo) {
		t.Error("more trials should shrink the interval")
	}
	// Degenerate cases.
	z := NewProportion(0, 0, 1.96)
	if z.P != 0 || z.Lo != 0 || z.Hi != 1 {
		t.Errorf("zero-trials proportion = %+v", z)
	}
	all := NewProportion(10, 10, 1.96)
	if all.P != 1 || all.Hi != 1 {
		t.Errorf("all-hits proportion = %+v", all)
	}
	if !strings.Contains(NewProportion(1, 2, 1.96).String(), "1/2") {
		t.Error("String should mention hits/trials")
	}
}

// Property: the Wilson interval always contains the point estimate and stays
// inside [0, 1].
func TestWilsonIntervalProperty(t *testing.T) {
	f := func(hitsRaw, trialsRaw uint16) bool {
		trials := int(trialsRaw%1000) + 1
		hits := int(hitsRaw) % (trials + 1)
		p := NewProportion(hits, trials, 1.96)
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.P+1e-12 && p.Hi >= p.P-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2, 5})
	if e.Len() != 5 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := map[float64]float64{
		0: 0, 1: 0.2, 1.5: 0.2, 2: 0.6, 3: 0.8, 5: 1, 10: 1,
	}
	for x, want := range cases {
		if got := e.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", x, got, want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("median = %g", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %g", q)
	}
	if q := e.Quantile(1); q != 5 {
		t.Errorf("Quantile(1) = %g", q)
	}
	empty := NewECDF(nil)
	if empty.At(1) != 0 {
		t.Error("empty ECDF At should be 0")
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty ECDF quantile should be NaN")
	}
	// Source slice is copied.
	src := []float64{9, 1}
	e2 := NewECDF(src)
	src[0] = -100
	if e2.Quantile(1) != 9 {
		t.Error("ECDF must copy its input")
	}
}

// Property: ECDF is monotone non-decreasing.
func TestECDFMonotone(t *testing.T) {
	f := func(obs []float64, a, b float64) bool {
		for _, v := range obs {
			if math.IsNaN(v) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		e := NewECDF(obs)
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("mean = %g (n=%d)", s.Mean, s.N)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %g, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 || s.Median != 4 {
		t.Errorf("min/max/median = %g/%g/%g", s.Min, s.Max, s.Median)
	}
	if s.Q1 != 4 || s.Q3 != 5 {
		t.Errorf("quartiles = %g, %g", s.Q1, s.Q3)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	// Constant data: zero variance (no negative sqrt).
	c := Summarize([]float64{3, 3, 3})
	if c.Std != 0 {
		t.Errorf("constant std = %g", c.Std)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d", total)
	}
	if h.Counts[4] == 0 {
		t.Error("max value must land in the last bin")
	}
	if h.MaxCount() < 2 {
		t.Errorf("MaxCount = %d", h.MaxCount())
	}
	if _, err := NewHistogram(nil, 0); err == nil {
		t.Error("nbins = 0 should fail")
	}
	empty, err := NewHistogram(nil, 3)
	if err != nil || empty.MaxCount() != 0 {
		t.Errorf("empty histogram = %+v, %v", empty, err)
	}
	// All-equal observations: width 0, everything in bin 0.
	same, _ := NewHistogram([]float64{5, 5, 5}, 4)
	if same.Counts[0] != 3 {
		t.Errorf("constant histogram = %v", same.Counts)
	}
}
