# A small clinic corpus for cmd/ppdbaudit and cmd/whatif.
policy "clinic-v1" {
  attr condition {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
  }
  sensitivity condition 5
  sensitivity weight 4
}

provider "maria" threshold 80 {
  attr condition {
    sens value=2 v=2 g=2 r=1
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
  }
}

provider "omar" threshold 15 {
  attr condition {
    sens value=4 v=3 g=3 r=2
    tuple purpose=care visibility=house granularity=specific retention=year
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
  }
}

provider "ada" threshold 200 {
  attr condition {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=world granularity=specific retention=indefinite
  }
  attr weight {
    tuple purpose=care visibility=world granularity=specific retention=indefinite
  }
}
