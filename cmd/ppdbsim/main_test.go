package main

import (
	"os"
	"testing"

	"repro/internal/experiments"
)

func TestRunSim(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	cfg := experiments.ExpansionConfig{N: 300, Seed: 7, Steps: 4, BaseUtility: 10, StepUtility: 2}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdsExtraction(t *testing.T) {
	cfg := experiments.ExpansionConfig{N: 200, Seed: 7, Steps: 2, BaseUtility: 10, StepUtility: 2}
	acc, err := experiments.Accumulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := thresholds(acc)
	if len(vals) != 200 {
		t.Fatalf("thresholds = %d", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("quantile extraction must be sorted")
		}
	}
}
