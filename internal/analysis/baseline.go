package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a committed snapshot of accepted findings: CI fails only on
// findings not in the baseline, so a new checker can land before every
// legacy violation is fixed. Entries match on (file, checker, message) —
// line numbers are deliberately excluded so unrelated edits that shift a
// finding do not invalidate the baseline — and carry a count, making the
// match a multiset containment: a file that grows a second identical
// violation is still reported.
type Baseline struct {
	// Findings is sorted by (file, checker, message) for stable diffs.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one accepted finding shape with its multiplicity.
type BaselineEntry struct {
	File    string `json:"file"`
	Checker string `json:"checker"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineKey struct {
	file, checker, message string
}

// NewBaseline aggregates findings into a baseline.
func NewBaseline(findings []Finding) *Baseline {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.File, f.Checker, f.Message}]++
	}
	b := &Baseline{Findings: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{File: k.file, Checker: k.checker, Message: k.message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Checker != c.Checker {
			return a.Checker < c.Checker
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	for _, e := range b.Findings {
		if e.File == "" || e.Checker == "" || e.Count <= 0 {
			return nil, fmt.Errorf("analysis: baseline %s: entry with empty file/checker or non-positive count", path)
		}
	}
	return &b, nil
}

// WriteFile persists the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the findings not absorbed by the baseline: each entry
// absorbs up to Count matching findings per (file, checker, message) key.
func (b *Baseline) Filter(findings []Finding) []Finding {
	budget := map[baselineKey]int{}
	for _, e := range b.Findings {
		budget[baselineKey{e.File, e.Checker, e.Message}] += e.Count
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey{f.File, f.Checker, f.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}
