package ppdb

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/policydsl"
	"repro/internal/privacy"
	"repro/internal/wal"
)

// Write-ahead logging (DESIGN.md §14). Every certification-bearing
// mutation — provider upsert/delete, batch ingest, policy swap, clock
// advance, retention sweep — appends one record to the WAL *before* it is
// applied, under the same lock that serializes the apply, so WAL order
// equals apply order exactly. The durability wait (group commit) happens
// after the locks release, so concurrent mutations share fsyncs.
//
// Replay drives the same public mutation paths the records were logged
// from, while d.wal is still nil (appends are no-ops until AttachWAL arms
// them), and every record is idempotent — an upsert re-registers the same
// preferences, a delete of an absent provider is a no-op, clock records
// carry absolute times — so a record whose effect already reached the
// snapshot replays harmlessly.
//
// Row-level table mutations (Insert, ImportCSV, UpdateOwnRow) are *not*
// WAL-logged: rows ride snapshots only, and rows inserted after the last
// checkpoint are lost on crash. The WAL covers the state certifications
// are computed from. Row paths still bump mutSeq so checkpoints notice
// them.
const (
	walRecUpsert byte = 1 // one provider registration (policydsl.ProviderJSON)
	walRecBatch  byte = 2 // atomic batch registration ([]policydsl.ProviderJSON)
	walRecDelete byte = 3 // provider removal (walDeleteJSON)
	walRecPolicy byte = 4 // policy swap (policydsl.PolicyJSON)
	walRecClock  byte = 5 // clock advance, absolute (walClockJSON)
	walRecSweep  byte = 6 // retention sweep at its clock reading (walSweepJSON)
)

var mRecoverySeconds = metrics.Default.Histogram("ppdb_recovery_seconds",
	"duration of store recovery: snapshot load plus WAL tail replay", metrics.DefBuckets)

type walDeleteJSON struct {
	Provider string `json:"provider"`
}

// walClockJSON carries the absolute post-advance clock, not the delta:
// sweeps decide expirations from the clock, so replay must land on the
// exact same instants regardless of what the snapshot's clock was.
type walClockJSON struct {
	Now time.Time `json:"now"`
}

type walSweepJSON struct {
	At time.Time `json:"at"`
}

// walAppendLocked encodes v and appends it as a WAL record. The caller
// holds the lock that serializes the mutation being logged — the returned
// LSN's position in the log therefore matches the mutation's position in
// the apply order. Returns LSN 0 (and no error) when no WAL is attached.
// On error the caller must abort without applying: a mutation the log
// rejected would vanish on recovery.
func (d *DB) walAppendLocked(typ byte, v any) (uint64, error) {
	if d.wal == nil {
		return 0, nil
	}
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("ppdb: wal encode record type %d: %w", typ, err)
	}
	lsn, err := d.wal.AppendAsync(wal.Record{Type: typ, Data: body})
	if err != nil {
		return 0, fmt.Errorf("ppdb: wal append: %w", err)
	}
	return lsn, nil
}

// walWait blocks until lsn is durable — the commit-wait half of group
// commit, called after every serializing lock has been released. A zero
// lsn (mutation predates AttachWAL, or WAL disabled) waits on nothing.
func (d *DB) walWait(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	d.mu.RLock()
	w := d.wal
	d.mu.RUnlock()
	if w == nil {
		return nil
	}
	return w.WaitDurable(lsn)
}

// AttachWAL opens (or creates) the write-ahead log described by opts,
// replays every record past the checkpoint this DB was loaded from, and
// arms all future mutations to append-before-apply. Call exactly once,
// after New or Load and before the DB serves traffic. Returns the number
// of records replayed.
func (d *DB) AttachWAL(opts wal.Options) (int, error) {
	start := time.Now()
	d.mu.RLock()
	attached := d.wal != nil
	from := d.loadedLSN
	d.mu.RUnlock()
	if attached {
		return 0, fmt.Errorf("ppdb: WAL already attached")
	}
	if opts.FirstLSN == 0 {
		opts.FirstLSN = from + 1
	}
	l, err := wal.Open(opts)
	if err != nil {
		return 0, err
	}
	// A log that ends before the checkpoint can only mean the WAL
	// directory was lost independently of the snapshot; line the next LSN
	// up so positional history stays monotone.
	if err := l.EnsureFloor(from); err != nil {
		//lint:ignore errflow the floor error is the diagnosis; close is cleanup
		l.Close()
		return 0, err
	}
	n, err := l.Replay(from, func(lsn uint64, rec wal.Record) error {
		return d.applyWALRecord(rec)
	})
	if err != nil {
		//lint:ignore errflow the replay error is the diagnosis; close is cleanup
		l.Close()
		return n, fmt.Errorf("ppdb: wal replay: %w", err)
	}
	d.mu.Lock()
	d.wal = l
	d.mu.Unlock()
	d.ckptMu.Lock()
	d.lastCkptLSN = from
	d.ckptMu.Unlock()
	mRecoverySeconds.Observe(time.Since(start).Seconds())
	return n, nil
}

// applyWALRecord replays one record through the public mutation path it
// was logged from. Runs before AttachWAL publishes d.wal, so the replayed
// mutations do not re-append.
//
//lint:deterministic replaying the same records must rebuild identical state on every run
func (d *DB) applyWALRecord(rec wal.Record) error {
	switch rec.Type {
	case walRecUpsert:
		var pj policydsl.ProviderJSON
		if err := json.Unmarshal(rec.Data, &pj); err != nil {
			return fmt.Errorf("ppdb: wal upsert record: %w", err)
		}
		p, err := policydsl.ProviderFromJSON(pj, d.scales)
		if err != nil {
			return fmt.Errorf("ppdb: wal upsert record: %w", err)
		}
		return d.RegisterProvider(p)
	case walRecBatch:
		var pjs []policydsl.ProviderJSON
		if err := json.Unmarshal(rec.Data, &pjs); err != nil {
			return fmt.Errorf("ppdb: wal batch record: %w", err)
		}
		ps := make([]*privacy.Prefs, 0, len(pjs))
		for _, pj := range pjs {
			p, err := policydsl.ProviderFromJSON(pj, d.scales)
			if err != nil {
				return fmt.Errorf("ppdb: wal batch record: %w", err)
			}
			ps = append(ps, p)
		}
		return d.RegisterProviders(ps)
	case walRecDelete:
		var dj walDeleteJSON
		if err := json.Unmarshal(rec.Data, &dj); err != nil {
			return fmt.Errorf("ppdb: wal delete record: %w", err)
		}
		_, err := d.RemoveProvider(dj.Provider)
		return err
	case walRecPolicy:
		var pj policydsl.PolicyJSON
		if err := json.Unmarshal(rec.Data, &pj); err != nil {
			return fmt.Errorf("ppdb: wal policy record: %w", err)
		}
		hp, _, err := policydsl.PolicyFromJSON(&pj, d.scales)
		if err != nil {
			return fmt.Errorf("ppdb: wal policy record: %w", err)
		}
		_, err = d.SetPolicy(hp)
		return err
	case walRecClock:
		var cj walClockJSON
		if err := json.Unmarshal(rec.Data, &cj); err != nil {
			return fmt.Errorf("ppdb: wal clock record: %w", err)
		}
		d.mu.Lock()
		d.now = cj.Now
		d.mu.Unlock()
		return nil
	case walRecSweep:
		var sj walSweepJSON
		if err := json.Unmarshal(rec.Data, &sj); err != nil {
			return fmt.Errorf("ppdb: wal sweep record: %w", err)
		}
		// The clock records preceding this one already landed the clock on
		// sj.At; pin it anyway so the sweep's expiry decisions are exactly
		// the logged ones.
		d.mu.Lock()
		d.now = sj.At
		d.mu.Unlock()
		_, err := d.Sweep()
		return err
	default:
		return fmt.Errorf("ppdb: unknown WAL record type %d", rec.Type)
	}
}

// CloseWAL performs a final group commit and detaches the log. Mutations
// applied after CloseWAL have no WAL coverage — call only on shutdown,
// after the last mutation.
func (d *DB) CloseWAL() error {
	d.mu.Lock()
	w := d.wal
	d.wal = nil
	d.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// WALAttached reports whether a write-ahead log is armed.
func (d *DB) WALAttached() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.wal != nil
}

// WALLastLSN returns the highest LSN the attached log has assigned (the
// snapshot checkpoint LSN when nothing has been appended yet; 0 with no
// WAL).
func (d *DB) WALLastLSN() uint64 {
	d.mu.RLock()
	w := d.wal
	d.mu.RUnlock()
	if w == nil {
		return 0
	}
	return w.LastLSN()
}

// Checkpoint saves a snapshot if state changed since the last save, then
// prunes WAL segments older than the *previous* checkpoint — the retained
// tail always covers the fallback (.prev) generation too, so recovery
// works even when the newest snapshot is torn. Returns whether a save ran.
// Concurrent checkpoints serialize on ckptMu; mutations proceed normally.
func (d *DB) Checkpoint(dir string) (bool, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	seq := d.mutSeq.Load()
	if seq == d.savedSeq.Load() {
		return false, nil
	}
	lsn, err := d.save(dir)
	if err != nil {
		return false, err
	}
	d.savedSeq.Store(seq)
	d.mu.RLock()
	w := d.wal
	d.mu.RUnlock()
	if w == nil {
		return true, nil
	}
	prev := d.lastCkptLSN
	d.lastCkptLSN = lsn
	if err := w.TruncateBefore(prev); err != nil {
		return true, fmt.Errorf("ppdb: checkpoint truncate: %w", err)
	}
	return true, nil
}
