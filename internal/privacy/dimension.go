// Package privacy implements the four-dimensional data-privacy taxonomy of
// Barker et al. that "Quantifying Privacy Violations" (Banerjee, Karimi Adl,
// Wu & Barker, SDM@VLDB 2011) builds on: purpose, visibility, granularity
// and retention. It provides ordered level scales for the three totally
// ordered dimensions (paper assumption 2), a categorical-or-lattice purpose
// dimension (assumption 4), privacy tuples (points in the privacy space),
// house policies, provider preferences and sensitivity vectors (Sec. 6.1).
package privacy

import (
	"fmt"
	"strings"
)

// Dimension identifies one axis of the privacy space. Purpose acts as a
// grouping principle (paper assumption 4); Visibility, Granularity and
// Retention are totally ordered (assumption 2).
type Dimension int

// The four privacy dimensions, in the order the paper introduces them
// (Sec. 4: "There are dim = 4 privacy dimensions").
const (
	DimPurpose Dimension = iota
	DimVisibility
	DimGranularity
	DimRetention
)

// OrderedDimensions lists the three totally ordered dimensions over which
// violations are measured (the dim ∈ {V, G, R} set of Eq. 14).
var OrderedDimensions = [3]Dimension{DimVisibility, DimGranularity, DimRetention}

// String returns the conventional lower-case name of the dimension.
func (d Dimension) String() string {
	switch d {
	case DimPurpose:
		return "purpose"
	case DimVisibility:
		return "visibility"
	case DimGranularity:
		return "granularity"
	case DimRetention:
		return "retention"
	default:
		return fmt.Sprintf("dimension(%d)", int(d))
	}
}

// ParseDimension converts a dimension name (case-insensitive; "v", "g", "r"
// and "pr" abbreviations accepted) into a Dimension.
func ParseDimension(s string) (Dimension, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "purpose", "pr", "p":
		return DimPurpose, nil
	case "visibility", "v":
		return DimVisibility, nil
	case "granularity", "g":
		return DimGranularity, nil
	case "retention", "r":
		return DimRetention, nil
	default:
		return 0, fmt.Errorf("privacy: unknown dimension %q", s)
	}
}

// Level is a point on a totally ordered dimension. Higher levels expose more
// (wider visibility, finer granularity, longer retention). Level 0 is the
// most restrictive value — the implicit preference the paper assigns when a
// provider expressed nothing for a purpose (the ⟨i, a, pr, 0, 0, 0⟩ tuple of
// Sec. 5).
type Level int

// LevelZero is the most restrictive level on every ordered dimension.
const LevelZero Level = 0

// Scale names the levels of one ordered dimension, giving the total order of
// paper assumption 2 a human-readable form. The zero value is not usable;
// construct with NewScale.
type Scale struct {
	dim   Dimension
	names []string
	index map[string]Level
}

// NewScale builds a scale for dim whose levels are named, in increasing
// exposure order, by names. Names must be non-empty and unique
// (case-insensitively).
func NewScale(dim Dimension, names ...string) (*Scale, error) {
	if dim == DimPurpose {
		return nil, fmt.Errorf("privacy: purpose is categorical, not scaled (paper assumption 4)")
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("privacy: scale for %s needs at least one level", dim)
	}
	s := &Scale{
		dim:   dim,
		names: make([]string, len(names)),
		index: make(map[string]Level, len(names)),
	}
	for i, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("privacy: %s scale level %d has an empty name", dim, i)
		}
		key := strings.ToLower(n)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("privacy: %s scale has duplicate level name %q", dim, n)
		}
		s.names[i] = n
		s.index[key] = Level(i)
	}
	return s, nil
}

// MustScale is NewScale that panics on error, for package-level defaults.
func MustScale(dim Dimension, names ...string) *Scale {
	s, err := NewScale(dim, names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dimension reports which dimension the scale describes.
func (s *Scale) Dimension() Dimension { return s.dim }

// Len returns the number of levels on the scale.
func (s *Scale) Len() int { return len(s.names) }

// Max returns the highest (most exposing) level on the scale.
func (s *Scale) Max() Level { return Level(len(s.names) - 1) }

// Level resolves a level name (case-insensitive) to its position.
func (s *Scale) Level(name string) (Level, bool) {
	l, ok := s.index[strings.ToLower(strings.TrimSpace(name))]
	return l, ok
}

// Name returns the name of level l, or a numeric placeholder when l is off
// the scale (levels beyond the scale remain ordered; the model only needs
// the total order).
func (s *Scale) Name(l Level) string {
	if l >= 0 && int(l) < len(s.names) {
		return s.names[l]
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Names returns a copy of the level names in increasing order.
func (s *Scale) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Contains reports whether l is a level on this scale.
func (s *Scale) Contains(l Level) bool { return l >= 0 && int(l) < len(s.names) }

// Default scales. These follow the taxonomy paper's canonical orderings:
// visibility widens from the data owner out to the world; granularity
// sharpens from mere existence up to the exact value; retention lengthens
// from immediate deletion to indefinite storage. Level 0 of each is the
// "reveal nothing" point used by the implicit zero preference.
var (
	// DefaultVisibility: none < owner < house < third-party < world.
	DefaultVisibility = MustScale(DimVisibility, "none", "owner", "house", "third-party", "world")
	// DefaultGranularity: none < existential < partial < specific.
	DefaultGranularity = MustScale(DimGranularity, "none", "existential", "partial", "specific")
	// DefaultRetention: none < transient < week < month < year < indefinite.
	DefaultRetention = MustScale(DimRetention, "none", "transient", "week", "month", "year", "indefinite")
)

// Scales bundles one scale per ordered dimension so policies and preferences
// can be validated and pretty-printed consistently.
type Scales struct {
	Visibility  *Scale
	Granularity *Scale
	Retention   *Scale
}

// DefaultScales returns the canonical taxonomy scales.
func DefaultScales() Scales {
	return Scales{
		Visibility:  DefaultVisibility,
		Granularity: DefaultGranularity,
		Retention:   DefaultRetention,
	}
}

// For returns the scale for an ordered dimension, or nil for purpose.
func (sc Scales) For(d Dimension) *Scale {
	switch d {
	case DimVisibility:
		return sc.Visibility
	case DimGranularity:
		return sc.Granularity
	case DimRetention:
		return sc.Retention
	default:
		return nil
	}
}

// Validate checks that all three ordered scales are present and attached to
// the right dimensions.
func (sc Scales) Validate() error {
	for _, d := range OrderedDimensions {
		s := sc.For(d)
		if s == nil {
			return fmt.Errorf("privacy: missing scale for %s", d)
		}
		if s.Dimension() != d {
			return fmt.Errorf("privacy: scale for %s is attached to %s", d, s.Dimension())
		}
	}
	return nil
}
