// Package analysis is a small static-analysis framework over the standard
// library's go/ast, go/parser and go/types — no external module
// dependencies, matching the repo's zero-dep go.mod. It exists because the
// reproduction's correctness rests on invariants the compiler cannot see:
// mutex-guarded shared state in internal/ppdb and internal/relational,
// ε-sensitive severity arithmetic in internal/core and internal/economics
// (Eqs. 12-16 of the paper), and two hand-written parsers whose errors must
// never be silently dropped. Each invariant gets a Checker; cmd/ppdblint
// drives them all and gates `make check`.
//
// Deliberate exceptions are annotated in source with
//
//	//lint:ignore <checker>[,<checker>...] <reason>
//
// which suppresses findings of the named checkers (or "all") on the same
// line and on the line directly below the comment. The reason is mandatory:
// an exception without a rationale is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the checker that produced it and a
// human-readable message. Output ordering is deterministic (file, line,
// column, checker, message) so runs are diffable.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// String renders the canonical `file:line: [checker] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Checker, f.Message)
}

// Pass is the per-package view handed to a checker: syntax, type
// information and a Report sink.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	report func(pos token.Pos, msg string)
}

// Report records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Checker is one named invariant.
type Checker struct {
	// Name is the identifier used by -checker selection and lint:ignore.
	Name string
	// Doc is a one-line description for usage output.
	Doc string
	// Run inspects one package and reports findings.
	Run func(*Pass)
}

// Checkers returns every registered checker in deterministic order.
func Checkers() []*Checker {
	return []*Checker{
		enumswitchChecker(),
		errflowChecker(),
		floatcmpChecker(),
		lockcheckChecker(),
	}
}

// Select resolves a comma-separated checker-name list ("" means all).
func Select(names string) ([]*Checker, error) {
	all := Checkers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := make(map[string]*Checker, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Checker
	seen := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(all))
			for _, k := range all {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("analysis: unknown checker %q (known: %s)", n, strings.Join(known, ", "))
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line     int
	checkers map[string]bool // nil means "all"
	bad      bool            // malformed (missing reason)
}

const ignorePrefix = "//lint:ignore "

// parseIgnores extracts lint:ignore directives from one file. Malformed
// directives (no checker list or no reason) are returned with bad=true so
// Analyze can surface them instead of silently not suppressing.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, strings.TrimSpace(ignorePrefix)) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, strings.TrimSpace(ignorePrefix)))
			line := fset.Position(c.Pos()).Line
			fields := strings.SplitN(rest, " ", 2)
			if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
				out = append(out, ignoreDirective{line: line, bad: true})
				continue
			}
			d := ignoreDirective{line: line}
			if fields[0] != "all" {
				d.checkers = map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					d.checkers[strings.TrimSpace(n)] = true
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// matches reports whether the directive suppresses checker findings on line.
func (d ignoreDirective) matches(checker string, line int) bool {
	if d.bad {
		return false
	}
	if line != d.line && line != d.line+1 {
		return false
	}
	return d.checkers == nil || d.checkers[checker]
}

// Analyze runs the checkers over each package and returns the surviving
// findings in deterministic order. Malformed lint:ignore directives are
// reported under the pseudo-checker name "lintdirective".
func Analyze(pkgs []*Package, checkers []*Checker) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		var raw []Finding
		var ignores []ignoreDirective
		for _, f := range pkg.Files {
			for _, d := range parseIgnores(pkg.Fset, f) {
				if d.bad {
					pos := pkg.Fset.Position(f.Pos())
					raw = append(raw, Finding{
						File:    pos.Filename,
						Line:    d.line,
						Col:     1,
						Checker: "lintdirective",
						Message: "malformed lint:ignore directive: want //lint:ignore <checker>[,<checker>] <reason>",
					})
					continue
				}
				ignores = append(ignores, d)
			}
		}
		for _, c := range checkers {
			name := c.Name
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
			}
			pass.report = func(pos token.Pos, msg string) {
				p := pkg.Fset.Position(pos)
				raw = append(raw, Finding{
					File:    p.Filename,
					Line:    p.Line,
					Col:     p.Column,
					Checker: name,
					Message: msg,
				})
			}
			c.Run(pass)
		}
		for _, f := range raw {
			suppressed := false
			for _, d := range ignores {
				if d.matches(f.Checker, f.Line) {
					suppressed = true
					break
				}
			}
			if !suppressed {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	return out
}
