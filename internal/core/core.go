// Package core implements the privacy-violation model of "Quantifying
// Privacy Violations" (Banerjee, Karimi Adl, Wu & Barker, SDM@VLDB 2011):
// the violation predicate w_i (Def. 1), the diff / comp / conf severity
// machinery (Eqs. 12-14), per-provider and house-total violation amounts
// (Eqs. 15-16), data-provider default (Def. 4), and the relative-frequency
// probabilities P(W) and P(Default) (Defs. 2 and 5) with the α-PPDB
// predicate (Def. 3).
//
// The package is pure: it consumes privacy.HousePolicy and privacy.Prefs
// values and produces reports. Enforcement against live data lives in
// internal/ppdb; population synthesis in internal/population.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/privacy"
)

// Diff is Eq. 12: the overshoot of a policy level P past a preference level
// p along one ordered dimension, floored at zero.
func Diff(pref, pol privacy.Level) int {
	if pol > pref {
		return int(pol - pref)
	}
	return 0
}

// Comp is Eq. 13: a preference tuple and a policy tuple are comparable iff
// they concern the same attribute and (under the matcher m) the same
// purpose. m nil means the paper's strict purpose equality.
func Comp(prefAttr string, pref privacy.Tuple, polAttr string, pol privacy.Tuple, m privacy.Matcher) bool {
	if m == nil {
		m = privacy.EqualityMatcher{}
	}
	if !sameAttr(prefAttr, polAttr) {
		return false
	}
	return m.Covers(pref.Purpose, pol.Purpose)
}

// sameAttr compares attribute identities case-insensitively, mirroring the
// canonical form used by package privacy.
func sameAttr(a, b string) bool {
	return strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b))
}

// Conf is Eq. 14: the conflict between one preference tuple and one policy
// tuple. When the tuples are comparable, each ordered dimension's overshoot
// diff(p[dim], p'[dim]) is weighted by the attribute sensitivity Σ^a, the
// data-value sensitivity s_i^a, and the dimension sensitivity s_i^a[dim];
// otherwise the conflict is zero.
func Conf(prefAttr string, pref privacy.Tuple, polAttr string, pol privacy.Tuple,
	attrSens float64, sens privacy.Sensitivity, m privacy.Matcher) float64 {
	if !Comp(prefAttr, pref, polAttr, pol, m) {
		return 0
	}
	var total float64
	for _, d := range privacy.OrderedDimensions {
		over := Diff(pref.Get(d), pol.Get(d))
		if over == 0 {
			continue
		}
		total += float64(over) * attrSens * sens.Value * sens.Dim(d)
	}
	return total
}

// Options configures an Assessor. The zero value is the paper's base model.
type Options struct {
	// Matcher decides purpose coverage; nil means strict equality (Eq. 13).
	Matcher privacy.Matcher
	// DisableImplicitZero turns off the Sec. 5 rule that a provider who
	// expressed no preference for a house purpose implicitly prefers
	// ⟨pr, 0, 0, 0⟩. Disabling it is an ablation, not the paper's model.
	DisableImplicitZero bool
}

// Assessor evaluates a house policy against provider preferences. It is
// immutable after construction and safe for concurrent use.
type Assessor struct {
	policy   *privacy.HousePolicy
	attrSens privacy.AttributeSensitivities
	opts     Options
	// compiled is the policy flattened for the columnar kernel (compile.go),
	// built once here so every Compile/AssessCompiled call shares it.
	compiled *CompiledPolicy
}

// NewAssessor builds an assessor for policy hp with house attribute
// sensitivities Σ (nil means Σ^a = 1 for every attribute). The policy is
// flattened for the columnar kernel at construction, so hp must not be
// mutated afterwards (the immutable-by-convention rule internal/ppdb
// already imposes: policy changes swap the pointer via SetPolicy).
func NewAssessor(hp *privacy.HousePolicy, attrSens privacy.AttributeSensitivities, opts Options) (*Assessor, error) {
	if hp == nil {
		return nil, fmt.Errorf("core: nil house policy")
	}
	if err := attrSens.Validate(); err != nil {
		return nil, err
	}
	return &Assessor{
		policy:   hp,
		attrSens: attrSens,
		opts:     opts,
		compiled: compilePolicy(hp, attrSens),
	}, nil
}

// Policy returns the policy being assessed.
func (a *Assessor) Policy() *privacy.HousePolicy { return a.policy }

// effectivePrefs returns the provider's preference tuples for one attribute,
// including implicit zero tuples for uncovered house purposes.
func (a *Assessor) effectivePrefs(p *privacy.Prefs, attr string) []privacy.PrefTuple {
	return p.EffectiveFor(attr, a.policy.PurposesFor(attr), a.opts.Matcher, !a.opts.DisableImplicitZero)
}

// Violated computes w_i (Def. 1): whether some comparable
// (preference, policy) tuple pair has the policy strictly exceeding the
// preference along visibility, granularity or retention.
func (a *Assessor) Violated(p *privacy.Prefs) bool {
	for _, attr := range a.policy.Attributes() {
		pols := a.policy.ForAttribute(attr)
		for _, pref := range a.effectivePrefs(p, attr) {
			for _, pol := range pols {
				if Comp(pref.Attribute, pref.Tuple, pol.Attribute, pol.Tuple, a.opts.Matcher) &&
					pref.Tuple.ExceededBy(pol.Tuple) {
					return true
				}
			}
		}
	}
	return false
}

// DimensionViolation records the overshoot along one dimension of one
// comparable tuple pair.
type DimensionViolation struct {
	Dimension privacy.Dimension
	PrefLevel privacy.Level
	PolLevel  privacy.Level
	Overshoot int     // Diff(PrefLevel, PolLevel), always > 0 in reports
	Severity  float64 // Overshoot × Σ^a × s_i^a × s_i^a[dim]
}

// PairConflict is the full account of one comparable (preference, policy)
// tuple pair with a positive conflict.
type PairConflict struct {
	Attribute    string
	Purpose      privacy.Purpose
	Pref, Policy privacy.Tuple
	ImplicitZero bool // the preference was synthesized by the Sec. 5 rule
	Dims         []DimensionViolation
	Conf         float64 // Eq. 14 for this pair
}

// ProviderReport is the per-provider assessment: w_i, Violation_i (Eq. 15),
// default_i (Def. 4) and the contributing pair conflicts.
type ProviderReport struct {
	Provider  string
	Violated  bool    // w_i
	Violation float64 // Violation_i
	Threshold float64 // v_i
	Defaults  bool    // default_i = Violation_i > v_i
	Pairs     []PairConflict
}

// AssessProvider produces the complete report for one provider, walking
// every (preference, policy) tuple pair as Eq. 15 prescribes.
func (a *Assessor) AssessProvider(p *privacy.Prefs) ProviderReport {
	rep := ProviderReport{Provider: p.Provider, Threshold: p.Threshold}
	for _, attr := range a.policy.Attributes() {
		pols := a.policy.ForAttribute(attr)
		explicit := map[privacy.Purpose]bool{}
		for _, e := range p.ForAttribute(attr) {
			explicit[e.Tuple.Purpose] = true
		}
		for _, pref := range a.effectivePrefs(p, attr) {
			sens := p.Sensitivity(attr, pref.Tuple.Purpose)
			for _, pol := range pols {
				if !Comp(pref.Attribute, pref.Tuple, pol.Attribute, pol.Tuple, a.opts.Matcher) {
					continue
				}
				pc := PairConflict{
					Attribute:    attr,
					Purpose:      pol.Tuple.Purpose,
					Pref:         pref.Tuple,
					Policy:       pol.Tuple,
					ImplicitZero: !explicit[pref.Tuple.Purpose],
				}
				attrS := a.attrSens.Get(attr)
				for _, d := range privacy.OrderedDimensions {
					over := Diff(pref.Tuple.Get(d), pol.Tuple.Get(d))
					if over == 0 {
						continue
					}
					sev := float64(over) * attrS * sens.Value * sens.Dim(d)
					pc.Dims = append(pc.Dims, DimensionViolation{
						Dimension: d,
						PrefLevel: pref.Tuple.Get(d),
						PolLevel:  pol.Tuple.Get(d),
						Overshoot: over,
						Severity:  sev,
					})
					pc.Conf += sev
				}
				if len(pc.Dims) > 0 {
					rep.Violated = true
					rep.Violation += pc.Conf
					rep.Pairs = append(rep.Pairs, pc)
				}
			}
		}
	}
	rep.Defaults = rep.Violation > rep.Threshold
	return rep
}

// AssessOne is the stable per-provider entry point for incremental
// maintainers (internal/ledger): one provider in, one immutable report out.
// The report must not be mutated by callers — memoizing layers hand the
// same row to many readers. Semantically identical to AssessProvider.
func (a *Assessor) AssessOne(p *privacy.Prefs) ProviderReport {
	return a.AssessProvider(p)
}

// Severity computes Violation_i (Eq. 15) alone.
func (a *Assessor) Severity(p *privacy.Prefs) float64 {
	return a.AssessProvider(p).Violation
}

// Defaults computes default_i (Def. 4) alone.
func (a *Assessor) Defaults(p *privacy.Prefs) bool {
	return a.AssessProvider(p).Defaults
}

// PopulationReport aggregates a whole provider population: P(W) (Def. 2),
// P(Default) (Def. 5), the house total Violations (Eq. 16), and per-provider
// reports.
type PopulationReport struct {
	N               int
	ViolatedCount   int     // Σ_i w_i
	DefaultCount    int     // Σ_i default_i
	TotalViolations float64 // Eq. 16
	PW              float64 // Def. 2, exact: Σ w_i / N
	PDefault        float64 // Def. 5, exact: Σ default_i / N
	Providers       []ProviderReport
}

// AssessPopulation evaluates every provider and aggregates. An empty
// population yields zero probabilities.
func (a *Assessor) AssessPopulation(pop []*privacy.Prefs) PopulationReport {
	rows := make([]ProviderReport, 0, len(pop))
	for _, p := range pop {
		rows = append(rows, a.AssessOne(p))
	}
	return AssemblePopulation(rows)
}

// AssemblePopulation aggregates precomputed per-provider rows into a
// PopulationReport without re-assessing anyone — the report-assembly path
// for materialized rows (internal/ledger). The float total is summed in
// slice order, so feeding it the same rows in the same order as a direct
// AssessPopulation yields bit-identical results. The rows slice is
// retained as Providers, not copied.
//
//lint:deterministic assembly order defines the canonical float-sum order
func AssemblePopulation(rows []ProviderReport) PopulationReport {
	rep := PopulationReport{N: len(rows), Providers: rows}
	for i := range rows {
		if rows[i].Violated {
			rep.ViolatedCount++
		}
		if rows[i].Defaults {
			rep.DefaultCount++
		}
		rep.TotalViolations += rows[i].Violation
	}
	if rep.N > 0 {
		rep.PW = float64(rep.ViolatedCount) / float64(rep.N)
		rep.PDefault = float64(rep.DefaultCount) / float64(rep.N)
	}
	return rep
}

// IsAlphaPPDB is Def. 3: the database is an α-PPDB when P(W) ≤ α.
func IsAlphaPPDB(pw, alpha float64) bool { return pw <= alpha }

// MinAlpha returns the smallest α for which the population is an α-PPDB —
// exactly its P(W).
func (a *Assessor) MinAlpha(pop []*privacy.Prefs) float64 {
	return a.AssessPopulation(pop).PW
}

// ViolatedDimensionsHistogram tallies, across a population, how many
// providers are violated along each ordered dimension (a provider counts
// once per dimension regardless of how many pairs overshoot it). This
// regenerates the Figure 1 taxonomy of none / single-dimension /
// multi-dimension violations at population scale.
func (a *Assessor) ViolatedDimensionsHistogram(pop []*privacy.Prefs) map[privacy.Dimension]int {
	hist := make(map[privacy.Dimension]int, len(privacy.OrderedDimensions))
	for _, p := range pop {
		rep := a.AssessProvider(p)
		seen := map[privacy.Dimension]bool{}
		for _, pc := range rep.Pairs {
			for _, dv := range pc.Dims {
				seen[dv.Dimension] = true
			}
		}
		for d := range seen {
			hist[d]++
		}
	}
	return hist
}

// TopViolated returns the k providers with the largest Violation_i, ordered
// descending (ties by provider name for determinism). Useful in audits.
func (a *Assessor) TopViolated(pop []*privacy.Prefs, k int) []ProviderReport {
	reps := make([]ProviderReport, 0, len(pop))
	for _, p := range pop {
		reps = append(reps, a.AssessProvider(p))
	}
	sort.Slice(reps, func(i, j int) bool {
		//lint:ignore floatcmp a sort comparator needs a strict weak order; a tolerance would make "equal" intransitive
		if reps[i].Violation != reps[j].Violation {
			return reps[i].Violation > reps[j].Violation
		}
		return reps[i].Provider < reps[j].Provider
	})
	if k > len(reps) {
		k = len(reps)
	}
	return reps[:k]
}
