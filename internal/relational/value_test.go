package relational

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Error("Null wrong")
	}
	if v, ok := Int(42).AsInt(); !ok || v != 42 {
		t.Error("Int wrong")
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Error("Float wrong")
	}
	if v, ok := Int(3).AsFloat(); !ok || v != 3 {
		t.Error("Int should coerce to float")
	}
	if v, ok := Text("hi").AsText(); !ok || v != "hi" {
		t.Error("Text wrong")
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Error("Bool wrong")
	}
	if _, ok := Text("x").AsInt(); ok {
		t.Error("AsInt on text should fail")
	}
	if _, ok := Bool(true).AsFloat(); ok {
		t.Error("AsFloat on bool should fail")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":   Null(),
		"42":     Int(42),
		"2.5":    Float(2.5),
		"'a''b'": Text("a'b"),
		"TRUE":   Bool(true),
		"FALSE":  Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind(), got, want)
		}
	}
	if Text("x").Display() != "x" {
		t.Error("Display should not quote text")
	}
}

func TestCompare(t *testing.T) {
	mustCmp := func(a, b Value, want int) {
		t.Helper()
		got, err := Compare(a, b)
		if err != nil {
			t.Errorf("Compare(%s, %s): %v", a, b, err)
			return
		}
		if got != want {
			t.Errorf("Compare(%s, %s) = %d, want %d", a, b, got, want)
		}
	}
	mustCmp(Int(1), Int(2), -1)
	mustCmp(Int(2), Int(2), 0)
	mustCmp(Int(3), Int(2), 1)
	mustCmp(Int(1), Float(1.5), -1)
	mustCmp(Float(2.5), Int(2), 1)
	mustCmp(Float(2), Int(2), 0)
	mustCmp(Text("a"), Text("b"), -1)
	mustCmp(Bool(false), Bool(true), -1)
	mustCmp(Bool(true), Bool(true), 0)

	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Error("comparing NULL should error")
	}
	if _, err := Compare(Int(1), Text("1")); err == nil {
		t.Error("comparing int with text should error")
	}
	if _, err := Compare(Bool(true), Text("t")); err == nil {
		t.Error("comparing bool with text should error")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(1), Float(1)) {
		t.Error("Int(1) should equal Float(1)")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL never equals NULL")
	}
	if Equal(Int(1), Text("1")) {
		t.Error("kind mismatch should be unequal")
	}
}

func TestKeyDistinguishesKinds(t *testing.T) {
	if Int(1).key() == Text("1").key() {
		t.Error("Int(1) and Text(\"1\") must hash differently")
	}
	if Int(1).key() != Float(1).key() {
		t.Error("Int(1) and Float(1) are Compare-equal and must hash equal")
	}
	if Bool(true).key() == Bool(false).key() {
		t.Error("booleans must hash differently")
	}
	if Null().key() == Int(0).key() {
		t.Error("NULL must hash differently from 0")
	}
}

// Property: Compare is antisymmetric and consistent with Equal on integers.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, err1 := Compare(Int(a), Int(b))
		c2, err2 := Compare(Int(b), Int(a))
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2 && (c1 == 0) == Equal(Int(a), Int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
