package ppdb

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// readTree maps every file under dir (recursively) to its bytes, keyed by
// slash-separated relative path.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	tree := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		tree[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("readTree %s: %v", dir, err)
	}
	return tree
}

func sameTree(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// saveSites enumerates every fault-injection site a full generation
// rotation passes through, by tracing a clean save over an existing
// snapshot. The crash matrix iterates this list, so new sites added to
// the persist path are covered automatically.
func saveSites(t *testing.T) []string {
	t.Helper()
	defer fault.Reset()
	db := clinicDB(t)
	scratch := filepath.Join(t.TempDir(), "scratch")
	if err := db.Save(scratch); err != nil {
		t.Fatal(err)
	}
	fault.StartTrace()
	if err := db.Save(scratch); err != nil {
		t.Fatal(err)
	}
	return fault.StopTrace()
}

// TestCrashMatrixSaveRecovery is the acceptance criterion for the
// durability tentpole: for every injection site in the save path, kill the
// save mid-flight at that site and prove that Load still recovers a
// generation whose bytes are identical to the snapshot that existed before
// the crash.
func TestCrashMatrixSaveRecovery(t *testing.T) {
	sites := saveSites(t)
	if len(sites) < 10 {
		t.Fatalf("suspiciously few persist injection sites: %v", sites)
	}
	for _, site := range sites {
		site := site
		t.Run(site, func(t *testing.T) {
			defer fault.Reset()
			db := clinicDB(t)
			dir := filepath.Join(t.TempDir(), "snap")
			if err := db.Save(dir); err != nil {
				t.Fatal(err)
			}
			gen1 := readTree(t, dir)

			// Mutate so the crashed save would have written different
			// bytes, then crash it at the site under test.
			if _, err := db.Advance(24 * time.Hour); err != nil {
				t.Fatal(err)
			}
			fault.ArmCrash(site)
			err := db.Save(dir)
			if !fault.IsCrash(err) {
				t.Fatalf("save with %s armed returned %v, want a simulated crash", site, err)
			}
			fault.Reset()

			// Recovery: Load must succeed on whatever the crash left.
			db2, err := Load(dir, Config{})
			if err != nil {
				t.Fatalf("recovery after crash at %s failed: %v", site, err)
			}
			if got, want := len(db2.Providers()), len(db.Providers()); got != want {
				t.Errorf("recovered %d providers, want %d", got, want)
			}

			// The pre-crash generation survived byte-identical: either
			// still live at dir, or retired to dir.prev by a crash that
			// landed mid-rotation (or post-publish, for the final sites).
			liveOK := dirExists(dir) && sameTree(gen1, readTree(t, dir))
			prevOK := dirExists(dir+prevSuffix) && sameTree(gen1, readTree(t, dir+prevSuffix))
			if !liveOK && !prevOK {
				t.Errorf("crash at %s destroyed the previous generation: live match %v, prev match %v", site, liveOK, prevOK)
			}
		})
	}
}

func dirExists(dir string) bool {
	info, err := os.Stat(dir)
	return err == nil && info.IsDir()
}

// TestCrashedSaveThenCleanSave proves crash debris does not poison the
// next save: a clean Save after a crashed one publishes normally.
func TestCrashedSaveThenCleanSave(t *testing.T) {
	defer fault.Reset()
	db := clinicDB(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	fault.ArmCrash("persist.rename.live")
	if err := db.Save(dir); !fault.IsCrash(err) {
		t.Fatalf("armed save returned %v", err)
	}
	fault.Reset()
	if err := db.Save(dir); err != nil {
		t.Fatalf("clean save after crash: %v", err)
	}
	if _, err := Load(dir, Config{}); err != nil {
		t.Fatalf("load after recovery save: %v", err)
	}
}

// TestSaveInjectedErrorCleansStaging: a non-crash failure (the disk says
// no) leaves the live snapshot alone and removes the staging directory.
func TestSaveInjectedErrorCleansStaging(t *testing.T) {
	defer fault.Reset()
	db := clinicDB(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	gen1 := readTree(t, dir)
	fault.ArmError("persist.write.state.json", nil)
	if err := db.Save(dir); err == nil {
		t.Fatal("armed save succeeded")
	}
	fault.Reset()
	if dirExists(dir + tmpSuffix) {
		t.Error("failed save left the staging directory behind")
	}
	if !sameTree(gen1, readTree(t, dir)) {
		t.Error("failed save disturbed the live snapshot")
	}
}

// TestLoadCorruptedSnapshots hand-corrupts saved directories and demands a
// descriptive error for each wound — never a panic, never a half-loaded DB.
func TestLoadCorruptedSnapshots(t *testing.T) {
	save := func(t *testing.T) string {
		t.Helper()
		db := clinicDB(t)
		dir := filepath.Join(t.TempDir(), "snap")
		if err := db.Save(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	expectLoadError := func(t *testing.T, dir string, wantSubstr ...string) {
		t.Helper()
		db, err := Load(dir, Config{})
		if err == nil {
			t.Fatal("corrupted snapshot loaded")
		}
		if db != nil {
			t.Fatal("error return carried a half-loaded DB")
		}
		for _, w := range wantSubstr {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("error %q does not mention %q", err, w)
			}
		}
	}

	t.Run("truncated state.json", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, "state.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		expectLoadError(t, dir, "state.json", "torn or corrupted")
	})

	t.Run("missing meta.csv", func(t *testing.T) {
		dir := save(t)
		if err := os.Remove(filepath.Join(dir, "tables", "patients.meta.csv")); err != nil {
			t.Fatal(err)
		}
		expectLoadError(t, dir, "patients.meta.csv", "unreadable")
	})

	t.Run("checksum mismatch", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, "corpus.dsl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectLoadError(t, dir, "corpus.dsl", "torn or corrupted")
	})

	t.Run("missing manifest", func(t *testing.T) {
		dir := save(t)
		if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
			t.Fatal(err)
		}
		expectLoadError(t, dir, "manifest")
	})

	t.Run("wrong format version", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var man manifestJSON
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatal(err)
		}
		man.FormatVersion = 99
		out, err := json.Marshal(man)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		expectLoadError(t, dir, "format 99")
	})
}

// TestLoadFallsBackToPreviousGeneration: when the newest generation is
// corrupted but <dir>.prev verifies, Load serves the previous generation.
func TestLoadFallsBackToPreviousGeneration(t *testing.T) {
	db := clinicDB(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	gen1Now := db.Now()
	if _, err := db.Advance(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the live generation; the rotation left gen 1 at .prev.
	if err := os.WriteFile(filepath.Join(dir, "state.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(dir, Config{})
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if !db2.Now().Equal(gen1Now) {
		t.Errorf("fallback clock = %v, want generation-1 clock %v", db2.Now(), gen1Now)
	}
	// With both generations wounded the error names both failures.
	if err := os.WriteFile(filepath.Join(dir+prevSuffix, "state.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, Config{}); err == nil || !strings.Contains(err.Error(), "previous generation") {
		t.Errorf("double-corruption error = %v", err)
	}
}
