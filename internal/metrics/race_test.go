package metrics

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRaceRegistry hammers get-or-create, every instrument kind, and both
// exposition writers from many goroutines at once. Run under -race (the CI
// race pass includes this package) it proves the registry is safe to share
// between request handlers and the scrape path.
func TestRaceRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("reqs_total", "r", "route", fmt.Sprintf("/r%d", i%3)).Inc()
				g := r.Gauge("inflight", "g")
				g.Inc()
				r.Histogram("lat_seconds", "h", []float64{0.001, 0.1, 1}).Observe(float64(i%7) / 10)
				g.Dec()
				if i%50 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					if err := r.WriteJSON(io.Discard); err != nil {
						t.Errorf("WriteJSON: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for _, route := range []string{"/r0", "/r1", "/r2"} {
		total += r.Counter("reqs_total", "r", "route", route).Value()
	}
	if want := uint64(workers * iters); total != want {
		t.Errorf("counted %d increments, want %d", total, want)
	}
	if h := r.Histogram("lat_seconds", "h", []float64{0.001, 0.1, 1}); h.Snapshot().Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Snapshot().Count, workers*iters)
	}
	if g := r.Gauge("inflight", "g").Value(); g > 1e-9 || g < -1e-9 {
		t.Errorf("inflight gauge = %g, want 0", g)
	}
}
