// Package stats provides the estimation utilities the model's empirical
// programme needs: relative-frequency proportions with confidence intervals
// (the τ(A)/τ estimators of Defs. 2 and 5), empirical CDFs (the Sec. 10
// default-distribution construction), and summary statistics / histograms
// for reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Proportion is a relative-frequency estimate τ(A)/τ with a Wilson score
// interval.
type Proportion struct {
	Hits   int
	Trials int
	P      float64
	Lo, Hi float64 // Wilson interval bounds at the requested confidence
}

// NewProportion computes the estimate and its Wilson interval. z is the
// normal quantile for the desired confidence (1.96 ≈ 95%). Zero trials
// yield a degenerate [0, 1] interval.
func NewProportion(hits, trials int, z float64) Proportion {
	p := Proportion{Hits: hits, Trials: trials, Lo: 0, Hi: 1}
	if trials <= 0 {
		return p
	}
	p.P = float64(hits) / float64(trials)
	n := float64(trials)
	z2 := z * z
	denom := 1 + z2/n
	center := (p.P + z2/(2*n)) / denom
	half := z * math.Sqrt(p.P*(1-p.P)/n+z2/(4*n*n)) / denom
	p.Lo = math.Max(0, center-half)
	p.Hi = math.Min(1, center+half)
	return p
}

// String renders "p [lo, hi] (hits/trials)".
func (p Proportion) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", p.P, p.Lo, p.Hi, p.Hits, p.Trials)
}

// ECDF is an empirical cumulative distribution function over observed
// values — the construction Sec. 10 proposes for the number of defaults as
// the house widens its policy.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the observations.
func NewECDF(obs []float64) *ECDF {
	s := make([]float64, len(obs))
	copy(s, obs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of observations.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns F(x) = fraction of observations ≤ x; 0 for an empty ECDF.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q'th quantile (0 ≤ q ≤ 1) by the nearest-rank rule;
// NaN for an empty ECDF.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank]
}

// Summary holds standard descriptive statistics.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	Q1, Q3    float64
}

// Summarize computes a Summary; the zero Summary is returned for no data.
func Summarize(obs []float64) Summary {
	if len(obs) == 0 {
		return Summary{}
	}
	e := NewECDF(obs)
	var sum, sumSq float64
	for _, v := range obs {
		sum += v
		sumSq += v * v
	}
	n := float64(len(obs))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(obs),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    e.sorted[0],
		Max:    e.sorted[len(e.sorted)-1],
		Median: e.Quantile(0.5),
		Q1:     e.Quantile(0.25),
		Q3:     e.Quantile(0.75),
	}
}

// Histogram bins observations into nbins equal-width buckets over
// [min, max]; values at max land in the last bin.
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram. nbins must be positive; an empty
// observation set yields all-zero counts over [0, 1].
func NewHistogram(obs []float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: nbins %d must be positive", nbins)
	}
	h := &Histogram{Counts: make([]int, nbins), Min: 0, Max: 1}
	if len(obs) == 0 {
		return h, nil
	}
	h.Min, h.Max = obs[0], obs[0]
	for _, v := range obs {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	width := (h.Max - h.Min) / float64(nbins)
	for _, v := range obs {
		var bin int
		if width > 0 {
			bin = int((v - h.Min) / width)
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		h.Counts[bin]++
	}
	return h, nil
}

// MaxCount returns the largest bin count (for scaling ASCII plots).
func (h *Histogram) MaxCount() int {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	return max
}
