package relational

import (
	"strings"
	"testing"
)

// fixtureDB builds a small clinic database used across SQL tests.
func fixtureDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	stmts := []string{
		`CREATE TABLE patients (
			id INT PRIMARY KEY,
			name TEXT NOT NULL,
			age INT,
			weight FLOAT,
			city TEXT
		)`,
		`CREATE TABLE visits (
			id INT PRIMARY KEY,
			patient_id INT NOT NULL,
			reason TEXT
		)`,
		`INSERT INTO patients (id, name, age, weight, city) VALUES
			(1, 'alice', 34, 61.5, 'calgary'),
			(2, 'bob', 51, 92.0, 'calgary'),
			(3, 'carol', 28, 55.0, 'edmonton'),
			(4, 'dave', 45, NULL, 'calgary'),
			(5, 'erin', 34, 70.5, 'edmonton')`,
		`INSERT INTO visits (id, patient_id, reason) VALUES
			(10, 1, 'checkup'),
			(11, 1, 'flu'),
			(12, 2, 'checkup'),
			(13, 3, 'injury')`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("fixture %q: %v", s[:20], err)
		}
	}
	return db
}

func TestSelectBasic(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT name, age FROM patients WHERE age > 30 ORDER BY age DESC, name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Fatalf("Columns = %v", res.Columns)
	}
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r[0].Display()
	}
	want := []string{"bob", "dave", "alice", "erin"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestSelectStar(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT * FROM patients WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Display() != "carol" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT name, weight / 2.2 AS weight_lbs_ish FROM patients WHERE weight IS NOT NULL ORDER BY name LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[1] != "weight_lbs_ish" {
		t.Errorf("alias column = %v", res.Columns)
	}
	f, _ := res.Rows[0][1].AsFloat()
	if f < 27 || f > 29 {
		t.Errorf("computed value = %v", f)
	}
}

func TestSelectLimitOffset(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT id FROM patients ORDER BY id LIMIT 2 OFFSET 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	a, _ := res.Rows[0][0].AsInt()
	b, _ := res.Rows[1][0].AsInt()
	if a != 3 || b != 4 {
		t.Errorf("got %d, %d", a, b)
	}
	// Offset past end.
	res, err = db.Query("SELECT id FROM patients ORDER BY id OFFSET 99")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("offset past end = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query(`
		SELECT p.name, v.reason
		FROM patients p JOIN visits v ON p.id = v.patient_id
		WHERE p.city = 'calgary'
		ORDER BY v.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Display() != "alice" || res.Rows[2][1].Display() != "checkup" {
		t.Errorf("rows = %v", res.Rows)
	}
	// INNER JOIN spelling.
	res2, err := db.Query(`SELECT p.name FROM patients p INNER JOIN visits v ON p.id = v.patient_id ORDER BY v.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 4 {
		t.Errorf("inner join rows = %d", len(res2.Rows))
	}
}

func TestJoinAmbiguousColumn(t *testing.T) {
	db := fixtureDB(t)
	// "id" exists in both tables → bare reference must error.
	_, err := db.Query(`SELECT id FROM patients p JOIN visits v ON p.id = v.patient_id`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestAggregates(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT COUNT(*), COUNT(weight), SUM(age), AVG(weight), MIN(age), MAX(age) FROM patients")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if n, _ := row[0].AsInt(); n != 5 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if n, _ := row[1].AsInt(); n != 4 { // dave's weight is NULL
		t.Errorf("COUNT(weight) = %v", row[1])
	}
	if s, _ := row[2].AsInt(); s != 192 {
		t.Errorf("SUM(age) = %v", row[2])
	}
	if avg, _ := row[3].AsFloat(); avg < 69.7 || avg > 69.8 {
		t.Errorf("AVG(weight) = %v", row[3])
	}
	if mn, _ := row[4].AsInt(); mn != 28 {
		t.Errorf("MIN(age) = %v", row[4])
	}
	if mx, _ := row[5].AsInt(); mx != 51 {
		t.Errorf("MAX(age) = %v", row[5])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query(`
		SELECT city, COUNT(*) AS n, AVG(age) AS mean_age
		FROM patients
		GROUP BY city
		HAVING COUNT(*) >= 2
		ORDER BY city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Display() != "calgary" {
		t.Errorf("first group = %v", res.Rows[0])
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 3 {
		t.Errorf("calgary count = %v", res.Rows[0][1])
	}
	if n, _ := res.Rows[1][1].AsInt(); n != 2 {
		t.Errorf("edmonton count = %v", res.Rows[1][1])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT COUNT(*), SUM(age), MIN(age) FROM patients WHERE age > 999")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("COUNT over empty = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Errorf("SUM/MIN over empty should be NULL: %v", res.Rows[0])
	}
}

func TestUpdateDelete(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Exec("UPDATE patients SET age = age + 1 WHERE city = 'calgary'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Errorf("Affected = %d, want 3", res.Affected)
	}
	q, _ := db.Query("SELECT age FROM patients WHERE id = 1")
	if a, _ := q.Rows[0][0].AsInt(); a != 35 {
		t.Errorf("age after update = %d", a)
	}

	res, err = db.Exec("DELETE FROM patients WHERE city = 'edmonton'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Errorf("deleted = %d, want 2", res.Affected)
	}
	q, _ = db.Query("SELECT COUNT(*) FROM patients")
	if n, _ := q.Rows[0][0].AsInt(); n != 3 {
		t.Errorf("remaining = %d", n)
	}
}

func TestInsertDefaultsAndMultiRow(t *testing.T) {
	db := fixtureDB(t)
	// Column subset: unnamed columns become NULL.
	if _, err := db.Exec("INSERT INTO patients (id, name) VALUES (6, 'fred')"); err != nil {
		t.Fatal(err)
	}
	q, _ := db.Query("SELECT age FROM patients WHERE id = 6")
	if !q.Rows[0][0].IsNull() {
		t.Errorf("unspecified column should be NULL: %v", q.Rows[0][0])
	}
	// Full-row insert without column list.
	if _, err := db.Exec("INSERT INTO patients VALUES (7, 'gina', 20, 58.0, 'calgary')"); err != nil {
		t.Fatal(err)
	}
	// Arity mismatch.
	if _, err := db.Exec("INSERT INTO patients (id, name) VALUES (8)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Unknown column.
	if _, err := db.Exec("INSERT INTO patients (id, nope) VALUES (9, 1)"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestDDL(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Exec("CREATE TABLE t (a INT PRIMARY KEY, b TEXT NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS t (a INT)"); err != nil {
		t.Errorf("IF NOT EXISTS should succeed: %v", err)
	}
	if _, err := db.Exec("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Error("dropping missing table should fail")
	}
	if _, err := db.Exec("DROP TABLE IF EXISTS t"); err != nil {
		t.Errorf("IF EXISTS should succeed: %v", err)
	}
	names := db.TableNames()
	if len(names) != 0 {
		t.Errorf("TableNames = %v", names)
	}
}

func TestParseErrors(t *testing.T) {
	db := fixtureDB(t)
	bad := []string{
		"",
		"SELEC * FROM patients",
		"SELECT FROM patients",
		"SELECT * FROM",
		"SELECT * FROM patients WHERE",
		"SELECT * FROM patients LIMIT -1",
		"INSERT INTO patients",
		"CREATE TABLE x (a BLOB)",
		"SELECT * FROM patients; SELECT 1",
		"SELECT 'unterminated FROM patients",
		"SELECT * FROM patients WHERE a ~ 1",
		"UPDATE patients",
		"DELETE patients",
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("%q should fail to parse/execute", s)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := fixtureDB(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT nope FROM patients",
		"UPDATE nope SET a = 1",
		"UPDATE patients SET nope = 1",
		"DELETE FROM nope",
		"INSERT INTO nope VALUES (1)",
		"SELECT * FROM patients JOIN nope ON 1 = 1",
		"SELECT *, COUNT(*) FROM patients",
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("%q should fail", s)
		}
	}
	if _, err := db.Query("UPDATE patients SET age = 1"); err == nil {
		t.Error("Query must reject non-SELECT")
	}
}

func TestMustExecPanics(t *testing.T) {
	db := NewDatabase()
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on error")
		}
	}()
	db.MustExec("SELECT * FROM missing")
}

func TestQualifiedColumnsSingleTable(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT patients.name FROM patients WHERE patients.id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Display() != "bob" {
		t.Errorf("row = %v", res.Rows)
	}
	// Alias-qualified.
	res, err = db.Query("SELECT p.name FROM patients AS p WHERE p.id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Display() != "bob" {
		t.Errorf("row = %v", res.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT city, COUNT(*) AS n FROM patients GROUP BY city ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Display() != "calgary" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := fixtureDB(t)
	// Group by a computed decade.
	res, err := db.Query("SELECT age / 10 AS decade, COUNT(*) AS n FROM patients GROUP BY age / 10 ORDER BY decade")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // decades 2,3,4,5
		t.Fatalf("rows = %v", res.Rows)
	}
	if d, _ := res.Rows[1][0].AsInt(); d != 3 {
		t.Errorf("second decade = %v", res.Rows[1])
	}
	if n, _ := res.Rows[1][1].AsInt(); n != 2 { // alice 34, erin 34
		t.Errorf("decade-3 count = %v", res.Rows[1][1])
	}
}

func TestLineComments(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT id -- trailing comment\nFROM patients -- another\nWHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}
