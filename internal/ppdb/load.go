package ppdb

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/relational"
)

// ImportCSV bulk-loads CSV microdata into a registered table through the
// PPDB's provenance path: each row's provider column identifies the data
// provider, who must already be registered (the PPDB refuses data it cannot
// audit). It returns the number of rows stored; on error, rows before the
// failure remain stored.
func (d *DB) ImportCSV(table string, r io.Reader) (int, error) {
	d.mu.RLock()
	tm, ok := d.tables[strings.ToLower(table)]
	d.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("ppdb: table %q is not registered", table)
	}
	schema := tm.table.Schema()
	rows, err := relational.ReadCSV(schema, r)
	if err != nil {
		return 0, err
	}
	pi, _ := schema.ColumnIndex(tm.providerCol)
	n := 0
	for i, row := range rows {
		provider, ok := row[pi].AsText()
		if !ok {
			return n, fmt.Errorf("ppdb: csv row %d has no provider identity", i+1)
		}
		if _, err := d.Insert(table, provider, row); err != nil {
			return n, fmt.Errorf("ppdb: csv row %d: %w", i+1, err)
		}
		n++
	}
	return n, nil
}
