// Package metrics is a zero-dependency, race-safe metrics registry for the
// α-PPDB service: counters, gauges, and fixed-bucket histograms, exposed in
// the Prometheus text format (and JSON) over GET /metrics.
//
// The paper's headline quantities — P(W) (Def. 2), P(Default) (Def. 5) and
// the population size N — are operator-facing numbers: a certification is a
// statement about the *current* policy and population, so an α-PPDB under
// live traffic should have them scrapeable continuously, not only on demand
// via /certify. This package carries those gauges plus the request, ledger,
// persistence, and fault-injection instrumentation around them (DESIGN.md
// §10 documents every metric name).
//
// Usage is get-or-create, keyed by metric name plus an alternating
// key/value label list:
//
//	reqs := metrics.Default.Counter("httpapi_requests_total",
//	        "requests served", "route", "/certify", "class", "2xx")
//	reqs.Inc()
//
// Identical (name, labels) pairs return the identical instrument, so call
// sites need no registration ceremony; hot paths hoist the returned pointer
// into a package variable and pay one atomic op per event. Misuse —
// re-registering a name as a different kind, odd label lists, malformed
// names — panics at the call site: instruments are static program text, so
// a bad one is a bug, not an input.
//
// Counters and gauges are lock-free atomics; histograms take a private
// mutex per observation. The registry mutex is held only during
// get-or-create and exposition walks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the instrument families a registry can hold.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefBuckets are the default latency buckets in seconds: 100µs to 10s,
// roughly logarithmic — wide enough for an in-memory assessment at the
// bottom and a 100k-provider cold rebuild or snapshot fsync at the top.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64. Lock-free.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a float64 that can move both ways. Lock-free (the float is
// stored as its IEEE-754 bits in an atomic uint64).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative d subtracts) via a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Observations
// take a private mutex so (buckets, sum, count) stay mutually consistent.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // immutable after construction
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. v ≤ le
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state. Counts
// are per-bucket (non-cumulative); exposition cumulates.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the +Inf bucket is implicit
	Counts []uint64  // len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot returns a consistent copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	s := HistogramSnapshot{Bounds: h.bounds, Counts: counts, Sum: h.sum, Count: h.count}
	h.mu.Unlock()
	return s
}

// series is one (label set → instrument) row of a family.
type series struct {
	labels  []Label // sorted by name
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64          // histograms only
	series map[string]*series // keyed by rendered label string
}

// Registry holds metric families. Safe for concurrent use; the zero value
// is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry the instrumented packages (httpapi,
// ledger, ppdb, fault) publish into; /metrics serves it unless the server
// was built with an explicit Options.Metrics.
var Default = NewRegistry()

// NewRegistry builds an empty registry. Tests use private registries for
// deterministic assertions; production shares Default.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), creating it on first
// use. labels alternate key, value. Panics on malformed names or labels,
// or if name is already registered as a different kind.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.get(name, help, KindCounter, nil, labels).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.get(name, help, KindGauge, nil, labels).gauge
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given ascending upper bounds (nil means DefBuckets). Every
// series of one name shares the first registration's bounds; re-registering
// with different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.get(name, help, KindHistogram, bounds, labels).hist
}

// get is the get-or-create core shared by the three instrument kinds.
func (r *Registry) get(name, help string, kind Kind, bounds []float64, kv []string) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	labels := parseLabels(name, kv)
	key := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		if kind == KindHistogram {
			f.bounds = checkBounds(name, bounds)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s is a %s, requested as %s", name, f.kind, kind))
	}
	if kind == KindHistogram && !sameBounds(f.bounds, checkBounds(name, bounds)) {
		panic(fmt.Sprintf("metrics: %s re-registered with different buckets", name))
	}
	s, ok := f.series[key]
	if ok {
		return s
	}
	s = &series{labels: labels}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	f.series[key] = s
	return s
}

// checkBounds validates histogram bounds (defaulting nil) and returns the
// slice to share across the family.
func checkBounds(name string, bounds []float64) []float64 {
	if bounds == nil {
		return DefBuckets
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly ascending at index %d", name, i))
		}
	}
	return bounds
}

// sameBounds compares bound slices by exact bit pattern — the check is for
// identical registration, not numeric closeness.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// parseLabels validates an alternating key/value list and returns it
// sorted by key.
func parseLabels(metric string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s given odd label list %q", metric, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			panic(fmt.Sprintf("metrics: %s has invalid label name %q", metric, kv[i]))
		}
		labels = append(labels, Label{Name: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	for i := 1; i < len(labels); i++ {
		if labels[i].Name == labels[i-1].Name {
			panic(fmt.Sprintf("metrics: %s repeats label %q", metric, labels[i].Name))
		}
	}
	return labels
}

// renderLabels builds the canonical series key from sorted labels. %q
// escaping keeps a value containing ',' or '"' from colliding with
// another label set's rendering.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b []byte
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Name...)
		b = append(b, '=')
		b = append(b, fmt.Sprintf("%q", l.Value)...)
	}
	return string(b)
}

// validName accepts Prometheus metric/label names:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
