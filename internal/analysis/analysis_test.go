package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantAnn is one `// want "substring"` annotation in a testdata fixture:
// the golden tests require exactly one finding whose message contains
// substr at that file and line, and no findings anywhere else.
type wantAnn struct {
	file    string // base name
	line    int
	substr  string
	matched bool
}

// parseWants scans a fixture source file for want annotations.
func parseWants(t *testing.T, path string) []*wantAnn {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	base := filepath.Base(path)
	var out []*wantAnn
	for i, line := range strings.Split(string(data), "\n") {
		_, rest, ok := strings.Cut(line, `// want "`)
		if !ok {
			continue
		}
		substr, _, ok := strings.Cut(rest, `"`)
		if !ok || substr == "" {
			t.Fatalf("%s:%d: malformed want annotation", base, i+1)
		}
		out = append(out, &wantAnn{file: base, line: i + 1, substr: substr})
	}
	return out
}

// TestCheckersGolden runs each checker over its fixture package under
// testdata/src and matches the findings against the fixtures' want
// annotations. Lines carrying a lint:ignore directive have no want
// annotation, so a suppression failure surfaces as an unexpected finding.
func TestCheckersGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	cases := []struct {
		checker string
		fixture string
	}{
		{"lockcheck", "lockcheckdata"},
		{"floatcmp", "floatcmpdata"},
		{"enumswitch", "enumswitchdata"},
		{"errflow", "errflowdata"},
		{"lockorder", "lockorderdata"},
		{"determinism", "determinismdata"},
		{"fanout", "fanoutdata"},
	}
	for _, tc := range cases {
		t.Run(tc.checker, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			pkgs, err := loader.Load([]string{dir})
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			checkers, err := Select(tc.checker)
			if err != nil {
				t.Fatalf("Select(%s): %v", tc.checker, err)
			}
			findings := Analyze(pkgs, checkers)

			var wants []*wantAnn
			ignores := 0
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					path := loader.fset.Position(f.Pos()).Filename
					wants = append(wants, parseWants(t, path)...)
					src, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("reading fixture: %v", err)
					}
					ignores += strings.Count(string(src), "//lint:ignore "+tc.checker)
				}
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations", tc.fixture)
			}
			if ignores == 0 {
				t.Errorf("fixture %s demonstrates no //lint:ignore %s suppression", tc.fixture, tc.checker)
			}

			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if !w.matched && w.file == filepath.Base(f.File) && w.line == f.Line && strings.Contains(f.Message, w.substr) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: missing finding containing %q", w.file, w.line, w.substr)
				}
			}
		})
	}

	t.Run("cleandata", func(t *testing.T) {
		pkgs, err := loader.Load([]string{filepath.Join("testdata", "src", "cleandata")})
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if findings := Analyze(pkgs, Checkers()); len(findings) != 0 {
			for _, f := range findings {
				t.Errorf("unexpected finding: %s", f)
			}
		}
	})
}

// TestAnalyzeDeterministic verifies that finding order is stable across
// runs and sorted by position.
func TestAnalyzeDeterministic(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs := []string{
		filepath.Join("testdata", "src", "errflowdata"),
		filepath.Join("testdata", "src", "floatcmpdata"),
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	first := Analyze(pkgs, Checkers())
	if len(first) == 0 {
		t.Fatal("expected findings from the fixture packages")
	}
	for run := 0; run < 3; run++ {
		again := Analyze(pkgs, Checkers())
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, want %d", run, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d: finding %d differs: %s vs %s", run, i, again[i], first[i])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("findings out of order: %s before %s", a, b)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Checkers()) {
		t.Fatalf("Select(\"\") = %d checkers, err %v; want all %d", len(all), err, len(Checkers()))
	}
	two, err := Select("floatcmp, errflow")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "errflow" {
		t.Fatalf("Select kept %v, want [floatcmp errflow]", two)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(nosuch) succeeded, want error")
	}
}

// TestIgnoreDirectives exercises parseIgnores on synthetic sources:
// well-formed directives suppress on their own line and the next, the
// "all" wildcard covers every checker, and malformed directives are
// flagged rather than silently honored.
func TestIgnoreDirectives(t *testing.T) {
	const src = `package p

//lint:ignore floatcmp tolerances do not apply here
var a = 1

//lint:ignore floatcmp,errflow two checkers one reason
var b = 2

//lint:ignore all everything is fine
var c = 3

//lint:ignore errflow
var d = 4
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := parseIgnores(fset, f)
	if len(ds) != 4 {
		t.Fatalf("parsed %d directives, want 4", len(ds))
	}
	if !ds[0].matches("floatcmp", ds[0].line) || !ds[0].matches("floatcmp", ds[0].line+1) {
		t.Error("directive should match its own line and the next")
	}
	if ds[0].matches("floatcmp", ds[0].line+2) {
		t.Error("directive should not reach two lines down")
	}
	if ds[0].matches("errflow", ds[0].line+1) {
		t.Error("directive should only match its named checker")
	}
	if !ds[1].matches("floatcmp", ds[1].line+1) || !ds[1].matches("errflow", ds[1].line+1) {
		t.Error("comma list should match both named checkers")
	}
	if !ds[2].matches("lockcheck", ds[2].line+1) {
		t.Error("all wildcard should match any checker")
	}
	if !ds[3].bad {
		t.Error("directive without a reason should be flagged as malformed")
	}
	if ds[3].matches("errflow", ds[3].line+1) {
		t.Error("malformed directive must not suppress anything")
	}
}

// TestIgnoreBracketedReasons exercises the per-checker bracketed-reason
// grammar: non-empty bracketed reasons satisfy the reason requirement,
// empty ones poison the directive, and mixed lists still require either a
// trailing reason or a bracket on every name.
func TestIgnoreBracketedReasons(t *testing.T) {
	const src = `package p

//lint:ignore floatcmp[sentinel zero is assigned, never computed]
var a = 1

//lint:ignore floatcmp[assigned zero],errflow[best-effort probe]
var b = 2

//lint:ignore floatcmp[]
var c = 3

//lint:ignore floatcmp[   ]
var d = 4

//lint:ignore floatcmp[reasoned],errflow
var e = 5

//lint:ignore floatcmp[reasoned],errflow trailing reason covers the bare name
var f = 6
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := parseIgnores(fset, file)
	if len(ds) != 6 {
		t.Fatalf("parsed %d directives, want 6", len(ds))
	}
	if ds[0].bad || !ds[0].matches("floatcmp", ds[0].line+1) {
		t.Error("single bracketed reason should suppress its checker")
	}
	if ds[1].bad || !ds[1].matches("floatcmp", ds[1].line+1) || !ds[1].matches("errflow", ds[1].line+1) {
		t.Error("per-checker bracketed reasons should suppress both checkers")
	}
	if !ds[2].bad {
		t.Error("empty bracketed reason should be flagged as malformed")
	}
	if !ds[3].bad {
		t.Error("whitespace-only bracketed reason should be flagged as malformed")
	}
	if !ds[4].bad {
		t.Error("bare name alongside a bracketed one still needs a trailing reason")
	}
	if ds[5].bad || !ds[5].matches("errflow", ds[5].line+1) {
		t.Error("trailing reason should cover bare names in a mixed list")
	}
}

// TestAnalyzeReportsEmptyBracketReason verifies the malformed directive
// surfaces as a lintdirective finding through the full Analyze path.
func TestAnalyzeReportsEmptyBracketReason(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

//lint:ignore errflow[]
var X = 1
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{dir})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings := Analyze(pkgs, Checkers())
	if len(findings) != 1 || findings[0].Checker != "lintdirective" {
		t.Fatalf("findings = %v, want one lintdirective finding", findings)
	}
	if !strings.Contains(findings[0].Message, "non-empty") {
		t.Errorf("message %q does not explain the empty-reason rule", findings[0].Message)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "x.go", Line: 7, Col: 3, Checker: "floatcmp", Message: "m"}
	if got, want := f.String(), "x.go:7: [floatcmp] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestLoaderRejectsBadPattern(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.Load([]string{"testdata/no/such/dir"}); err == nil {
		t.Fatal("Load of a missing directory succeeded, want error")
	}
}

// TestWildcardSkipsTestdata ensures ./... expansion never descends into
// testdata (the fixtures contain deliberate violations).
func TestWildcardSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load(./...) found no packages")
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, string(filepath.Separator)+"testdata"+string(filepath.Separator)) ||
			strings.HasSuffix(p.Dir, string(filepath.Separator)+"testdata") {
			t.Errorf("wildcard expansion descended into %s", p.Dir)
		}
	}
}

// BenchmarkAnalyzeFixtures times a full load+analyze cycle over one
// fixture package, the unit of work `make check` repeats per package.
func BenchmarkAnalyzeFixtures(b *testing.B) {
	loader, err := NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "floatcmpdata")
	pkgs, err := loader.Load([]string{dir})
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Analyze(pkgs, Checkers()); len(findings) == 0 {
			b.Fatal("expected findings")
		}
	}
}
