package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "reqs", "route", "/x")
	b := r.Counter("requests_total", "reqs", "route", "/x")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("requests_total", "reqs", "route", "/y")
	if a == other {
		t.Fatal("different labels must return distinct counters")
	}
	a.Inc()
	a.Add(2)
	if a.Value() != 3 {
		t.Errorf("counter = %d, want 3", a.Value())
	}
	if other.Value() != 0 {
		t.Errorf("sibling series moved: %d", other.Value())
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "", "x", "1", "y", "2")
	b := r.Counter("c", "", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order must not create a new series")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "")
	g.Set(4)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); math.Abs(got-2) > 1e-12 {
		t.Errorf("gauge = %g, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le semantics: 1 falls in the le=1 bucket, 1.5 in le=2, 10 in +Inf.
	want := []uint64{2, 1, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 4 || math.Abs(s.Sum-13) > 1e-12 {
		t.Errorf("count=%d sum=%g, want 4 and 13", s.Count, s.Sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	assertPanics(t, "kind mismatch", func() { r.Gauge("m", "") })
	assertPanics(t, "bad name", func() { r.Counter("9bad", "") })
	assertPanics(t, "odd labels", func() { r.Counter("ok", "", "route") })
	assertPanics(t, "bad label name", func() { r.Counter("ok", "", "bad-label", "v") })
	assertPanics(t, "dup label", func() { r.Counter("ok", "", "a", "1", "a", "2") })
	r.Histogram("h", "", []float64{1, 2})
	assertPanics(t, "bucket mismatch", func() { r.Histogram("h", "", []float64{1, 3}) })
	assertPanics(t, "descending buckets", func() { r.Histogram("h2", "", []float64{2, 1}) })
	assertPanics(t, "empty buckets", func() { r.Histogram("h3", "", []float64{}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests served", "route", "/a", "class", "2xx").Add(3)
	r.Gauge("pw", "P(W)").Set(0.25)
	r.Histogram("lat_seconds", "latency", []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests served",
		"# TYPE reqs_total counter",
		`reqs_total{class="2xx",route="/a"} 3`,
		"# TYPE pw gauge",
		"pw 0.25",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 0`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.5",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: families sorted by name.
	if strings.Index(out, "# TYPE lat_seconds") > strings.Index(out, "# TYPE pw") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped: %s", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", "route", "/a").Add(2)
	r.Histogram("lat", "", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels    []Label  `json:"labels"`
				Value     *float64 `json:"value"`
				Histogram *struct {
					Buckets []struct {
						LE    string `json:"le"`
						Count uint64 `json:"count"`
					} `json:"buckets"`
					Count uint64 `json:"count"`
				} `json:"histogram"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, b.String())
	}
	if len(doc.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(doc.Families))
	}
	lat, reqs := doc.Families[0], doc.Families[1]
	if lat.Name != "lat" || reqs.Name != "reqs_total" {
		t.Fatalf("family order: %s, %s", lat.Name, reqs.Name)
	}
	if *reqs.Series[0].Value != 2 {
		t.Errorf("counter value = %g", *reqs.Series[0].Value)
	}
	h := lat.Series[0].Histogram
	if h == nil || h.Count != 1 || len(h.Buckets) != 2 || h.Buckets[1].LE != "+Inf" {
		t.Errorf("histogram JSON wrong: %+v", h)
	}
	// JSON buckets are cumulative.
	if h.Buckets[0].Count != 1 || h.Buckets[1].Count != 1 {
		t.Errorf("buckets not cumulative: %+v", h.Buckets)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(url, accept string) (int, string, string) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ct, body := get(srv.URL, "")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "c 1") {
		t.Errorf("text scrape: %d %s %q", code, ct, body)
	}
	code, ct, body = get(srv.URL+"?format=json", "")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") || !strings.Contains(body, `"families"`) {
		t.Errorf("json scrape: %d %s %q", code, ct, body)
	}
	if code, ct, _ = get(srv.URL, "application/json"); code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("accept negotiation: %d %s", code, ct)
	}
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestDefaultRegistryExists(t *testing.T) {
	// Default is shared process state: only prove it is usable.
	c := Default.Counter("metrics_selftest_total", "package self-test")
	before := c.Value()
	c.Inc()
	if c.Value() != before+1 {
		t.Error("default registry counter did not move")
	}
}
