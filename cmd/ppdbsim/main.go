// Command ppdbsim simulates a data-collection house over a synthetic Westin
// population: generate providers, run a policy-expansion sweep (Sec. 9) and
// report the utility trade-off, violation accumulation and the default-
// threshold distribution (Sec. 10's estimation programme).
//
// Usage:
//
//	ppdbsim -n 10000 -seed 2011 -steps 8 -u 10 -t 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 10000, "population size")
	seed := flag.Uint64("seed", 2011, "generator seed")
	steps := flag.Int("steps", 8, "widening steps")
	u := flag.Float64("u", 10, "base per-provider utility U")
	t := flag.Float64("t", 2, "extra utility T per widening step")
	flag.Parse()

	cfg := experiments.ExpansionConfig{
		N: *n, Seed: *seed, Steps: *steps, BaseUtility: *u, StepUtility: *t,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ppdbsim: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg experiments.ExpansionConfig) error {
	exp, err := experiments.Expansion(cfg)
	if err != nil {
		return err
	}
	if err := exp.Fprint(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(strings.Repeat("=", 78))
	fmt.Println()

	acc, err := experiments.Accumulation(cfg)
	if err != nil {
		return err
	}
	if err := acc.Fprint(os.Stdout); err != nil {
		return err
	}

	// The Sec. 10 CDF: fraction of providers whose default threshold lies
	// below a ladder of violation levels.
	fmt.Println()
	fmt.Println("default-threshold ECDF (Sec. 10): F(v) = fraction with v_i ≤ v")
	rows := [][]string{}
	for _, v := range []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000} {
		rows = append(rows, []string{
			fmt.Sprintf("%g", v),
			fmt.Sprintf("%.4f", acc.ThresholdECDF.At(v)),
		})
	}
	if err := experiments.WriteTable(os.Stdout, []string{"v", "F(v)"}, rows); err != nil {
		return err
	}

	hist, err := stats.NewHistogram(thresholds(acc), 12)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("threshold histogram:")
	width := (hist.Max - hist.Min) / float64(len(hist.Counts))
	for i, c := range hist.Counts {
		bar := ""
		if hist.MaxCount() > 0 {
			bar = strings.Repeat("#", c*50/hist.MaxCount())
		}
		lo := hist.Min + float64(i)*width
		fmt.Printf("%10.1f | %-50s %d\n", lo, bar, c)
	}
	return nil
}

// thresholds re-extracts the v_i sample from the accumulation result's ECDF
// via quantiles (the ECDF owns the sorted sample).
func thresholds(acc *experiments.AccumulationResult) []float64 {
	n := acc.ThresholdECDF.Len()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		out = append(out, acc.ThresholdECDF.Quantile(q))
	}
	return out
}
