package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestTable1Golden is the repository's headline check: the reproduction
// matches the paper's published Table 1 numbers exactly.
func TestTable1Golden(t *testing.T) {
	r := Table1()
	if !r.Matches() {
		t.Fatalf("Table 1 reproduction diverges from the paper: %+v", r)
	}
	if r.PW != 2.0/3.0 {
		t.Errorf("P(W) = %g", r.PW)
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Alice", "Ted", "Bob", "60", "80", "0.3333"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Cases(t *testing.T) {
	cases := Figure1()
	if len(cases) != 3+8 {
		t.Fatalf("cases = %d, want 11", len(cases))
	}
	// Panels a/b/c have 0/1/2 exceeded dimensions respectively.
	if len(cases[0].ExceededDim) != 0 || cases[0].Violated {
		t.Errorf("panel a = %+v", cases[0])
	}
	if len(cases[1].ExceededDim) != 1 || !cases[1].Violated {
		t.Errorf("panel b = %+v", cases[1])
	}
	if len(cases[2].ExceededDim) != 2 || !cases[2].Violated {
		t.Errorf("panel c = %+v", cases[2])
	}
	// Lattice cases: violated iff the mask is non-empty, and the exceeded
	// set matches the mask size.
	for i, c := range cases[3:] {
		if got := len(c.ExceededDim); got != popcount(i) {
			t.Errorf("lattice case %d: exceeded %d dims, want %d", i, got, popcount(i))
		}
		if c.Violated != (i != 0) {
			t.Errorf("lattice case %d: violated = %v", i, c.Violated)
		}
	}
	var buf bytes.Buffer
	if err := FprintFigure1(&buf, cases); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "two-dimension") {
		t.Error("Figure 1 output incomplete")
	}
}

func popcount(v int) int {
	c := 0
	for v != 0 {
		c += v & 1
		v >>= 1
	}
	return c
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"HP^weight", "ProviderPref_t1^weight", "P(W)", "P(Default)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 output missing %q", want)
		}
	}
	// t2's strict preferences must register a violation against the wider
	// house policy, and the partial-granularity degradation must show a
	// range for weight.
	if !strings.Contains(out, "[") {
		t.Error("expected generalized weight ranges in the research view")
	}
}

func TestExpansionShape(t *testing.T) {
	cfg := ExpansionConfig{N: 1500, Seed: 2011, BaseUtility: 10, StepUtility: 2, Steps: 8}
	r, err := Expansion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != cfg.Steps+1 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Paper's qualitative claim (Sec. 9): the optimum is interior — some
	// widening pays, unbounded widening does not.
	if r.Optimal <= 0 {
		t.Errorf("optimal step = %d, want > 0 (some widening should pay)", r.Optimal)
	}
	last := r.Points[len(r.Points)-1]
	best := r.Points[r.Optimal]
	if last.UtilityFuture >= best.UtilityFuture {
		t.Errorf("utility should decline past the optimum: last %g ≥ best %g",
			last.UtilityFuture, best.UtilityFuture)
	}
	// N_future is non-increasing.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].NFuture > r.Points[i-1].NFuture {
			t.Errorf("NFuture grew at step %d", i)
		}
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "optimal") {
		t.Error("expansion output missing optimal marker")
	}
}

func TestAccumulation(t *testing.T) {
	cfg := ExpansionConfig{N: 1000, Seed: 7, BaseUtility: 10, StepUtility: 2, Steps: 6}
	r, err := Accumulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CumulativeDefaults) != len(r.Points) {
		t.Fatal("series length mismatch")
	}
	// Cumulative defaults are non-decreasing and eventually positive.
	for i := 1; i < len(r.CumulativeDefaults); i++ {
		if r.CumulativeDefaults[i] < r.CumulativeDefaults[i-1] {
			t.Error("cumulative defaults decreased")
		}
	}
	if r.CumulativeDefaults[len(r.CumulativeDefaults)-1] == 0 {
		t.Error("aggressive widening should cause defaults")
	}
	// The threshold ECDF covers the population.
	if r.ThresholdECDF.Len() != cfg.N {
		t.Errorf("ECDF over %d thresholds", r.ThresholdECDF.Len())
	}
	if r.ThresholdSummary.Median <= 0 {
		t.Error("thresholds must be positive")
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorConvergence(t *testing.T) {
	r, err := Estimator(1000, 5, []int{10, 1000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExactPW <= 0 || r.ExactPW >= 1 {
		t.Fatalf("exact P(W) = %g should be interior", r.ExactPW)
	}
	// Error at τ=100000 should be small and the CI should cover the truth.
	last := r.Points[len(r.Points)-1]
	if last.ErrPW > 0.01 {
		t.Errorf("estimator error at τ=100k = %g", last.ErrPW)
	}
	if r.ExactPW < last.PW.Lo-0.01 || r.ExactPW > last.PW.Hi+0.01 {
		t.Errorf("truth %g outside CI [%g, %g]", r.ExactPW, last.PW.Lo, last.PW.Hi)
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaSweep(t *testing.T) {
	r, err := AlphaSweep(1000, 3, 5, DefaultAlphas())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// P(W) non-decreasing in policy width.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].PW < r.Points[i-1].PW-1e-12 {
			t.Errorf("P(W) decreased at width %d", i)
		}
	}
	// Verdict consistency: certified at α implies certified at any larger α.
	for _, p := range r.Points {
		for i := 1; i < len(r.Alphas); i++ {
			if p.Verdicts[r.Alphas[i-1]] && !p.Verdicts[r.Alphas[i]] {
				t.Errorf("verdicts inconsistent at width %d", p.PolicyWidth)
			}
		}
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineContrast(t *testing.T) {
	r, err := BaselineContrast(400, 11, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	// Internal metrics respond to widening…
	if last.PW <= first.PW {
		t.Errorf("P(W) should rise with widening: %g → %g", first.PW, last.PW)
	}
	// …while the release metrics are constant (the release happened once).
	for _, p := range r.Points {
		if p.KAnonK != first.KAnonK || math.Abs(p.PrecisionLoss-first.PrecisionLoss) > 1e-12 {
			t.Error("release-time metrics must not change with policy widening")
		}
	}
	if first.KAnonK < r.K {
		t.Errorf("release k = %d below requested %d", first.KAnonK, r.K)
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations(800, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := r.Rows[0]
	noImplicit := r.Rows[1]
	lattice := r.Rows[2]
	unweighted := r.Rows[3]
	// Removing the implicit-zero rule can only reduce violations.
	if noImplicit.PW > base.PW {
		t.Errorf("no-implicit-zero P(W) %g > base %g", noImplicit.PW, base.PW)
	}
	// Lattice matching lets a general consent cover the new specialized
	// purpose, so it can only reduce (or keep) P(W).
	if lattice.PW > base.PW {
		t.Errorf("lattice P(W) %g > base %g", lattice.PW, base.PW)
	}
	// Unit weighting preserves the violation predicate (w_i) but changes
	// severity: PW is unchanged, Violations differ.
	if unweighted.PW != base.PW {
		t.Errorf("unit weighting must not change P(W): %g vs %g", unweighted.PW, base.PW)
	}
	if unweighted.TotalViolations == base.TotalViolations {
		t.Error("unit weighting should change total severity")
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing rule line")
	}
}
