#!/bin/sh
# Benchmark regression gate: re-runs the certification benches and compares
# ns/op against the recorded baseline in BENCH_certify.json. Any benchmark
# slower than baseline by more than BENCH_TOLERANCE percent (default 25)
# fails the gate, as does a baseline benchmark that no longer runs. A delta
# table is always printed. Wired as `make benchgate`; CI runs it as a
# non-blocking job because shared runners have noisy clocks.
#
# BENCHTIME overrides -benchtime (e.g. BENCHTIME=10x for a quick run).
# After an intentional performance change, re-record with `make bench`.
set -eu

cd "$(dirname "$0")/.."

baseline=BENCH_certify.json
if [ ! -f "$baseline" ]; then
	echo "benchgate: $baseline missing — record a baseline with 'make bench'" >&2
	exit 1
fi

# The pattern names every gated bench explicitly, including the sharding
# benches (CertifyColdShards/BulkIngestShards run one sub-bench per shard
# count), the durable-ingest benches (IngestDurable runs one sub-bench
# per WAL group-commit mode) and the enforced-query benches (QueryEnforced
# runs clean and violating populations at 10k/100k rows); each sub-bench
# is compared against its own baseline entry.
out=$(go test -run '^$' -bench '^Benchmark(Certify(Cold|ColdShards|Incremental|Summary)|BulkIngestShards|IngestDurable|QueryEnforced|WhatIfStorm)' \
	-benchtime "${BENCHTIME:-1s}" -timeout 30m .)
printf '%s\n' "$out"
echo

printf '%s\n' "$out" | awk -v tol="${BENCH_TOLERANCE:-25}" '
NR == FNR {
	# Baseline lines look like
	# {"name": "BenchmarkCertifyCold/1k", "ns_per_op": 2778438, "allocs_per_op": 12},
	# — only ns_per_op is gated; allocs_per_op is recorded for inspection.
	if (match($0, /"name": "[^"]+"/)) {
		name = substr($0, RSTART + 9, RLENGTH - 10)
		if (match($0, /"ns_per_op": [0-9.]+/))
			base[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
	}
	next
}
/^Benchmark(Certify|BulkIngest|Ingest|Query|WhatIf)/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	cur[name] = $3 + 0
	seen[++n] = name
}
END {
	fail = 0
	printf "%-36s %16s %16s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta"
	for (i = 1; i <= n; i++) {
		name = seen[i]
		if (!(name in base)) {
			printf "%-36s %16s %16.1f %9s\n", name, "(new)", cur[name], "-"
			continue
		}
		d = (cur[name] - base[name]) / base[name] * 100
		flag = (d > tol) ? "  REGRESSION" : ""
		if (d > tol) fail = 1
		printf "%-36s %16.1f %16.1f %+8.1f%%%s\n", name, base[name], cur[name], d, flag
		delete base[name]
	}
	for (name in base) {
		printf "%-36s %16.1f %16s %9s  VANISHED\n", name, base[name], "-", "-"
		fail = 1
	}
	if (fail) {
		printf "benchgate: FAIL (tolerance %s%%)\n", tol
		exit 1
	}
	printf "benchgate: OK (tolerance %s%%)\n", tol
}' "$baseline" -
