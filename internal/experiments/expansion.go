package experiments

import (
	"fmt"
	"io"

	"repro/internal/economics"
	"repro/internal/population"
	"repro/internal/privacy"
	"repro/internal/stats"
)

// ExpansionConfig parameterises the Sec. 9 trade-off experiment.
type ExpansionConfig struct {
	N           int     // population size
	Seed        uint64  // generator seed
	BaseUtility float64 // U per provider
	StepUtility float64 // T gained per widening step
	Steps       int     // number of widening steps
}

// DefaultExpansionConfig is the headline setting: 10k Westin providers,
// U = 10, T = 2 per step, widening each ordered dimension in rotation.
func DefaultExpansionConfig() ExpansionConfig {
	return ExpansionConfig{N: 10000, Seed: 2011, BaseUtility: 10, StepUtility: 2, Steps: 8}
}

// ExpansionResult is the Sec. 9 series plus the optimum.
type ExpansionResult struct {
	Config  ExpansionConfig
	Points  []economics.Point
	Optimal int // index into Points with maximal future utility
	// Segments records the population composition for context.
	Segments map[string]int
}

// expansionPopulation builds the Westin population and base policy shared by
// the expansion-style experiments.
func expansionPopulation(n int, seed uint64) ([]population.Provider, privacy.AttributeSensitivities, *privacy.HousePolicy, error) {
	const pr = privacy.Purpose("service")
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{pr}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{pr}},
			{Name: "age", Sensitivity: 1, Purposes: []privacy.Purpose{pr}},
		},
	}, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	providers := gen.Generate(n)
	hp := privacy.NewHousePolicy("v0")
	for _, attr := range []string{"weight", "income", "age"} {
		hp.Add(attr, privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})
	}
	return providers, gen.AttributeSensitivities(), hp, nil
}

// Expansion runs the Sec. 9 experiment: a fixed Westin population, a narrow
// base policy, and a sequence of one-level widenings (rotating through
// visibility, granularity, retention). Each step adds StepUtility per
// provider; defaulted providers leave. The result exhibits the paper's
// qualitative claim: utility first rises with widening, then falls as
// defaults accumulate — the house is "strictly limited in how much it can
// expand its privacy policies and economically benefit".
func Expansion(cfg ExpansionConfig) (*ExpansionResult, error) {
	providers, sigma, hp, err := expansionPopulation(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)

	dims := []privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity, privacy.DimRetention}
	steps := make([]economics.Step, cfg.Steps)
	for i := range steps {
		steps[i] = economics.WidenAllStep(dims[i%len(dims)], cfg.StepUtility)
	}
	sc := &economics.Scenario{BasePolicy: hp, AttrSens: sigma, BaseUtility: cfg.BaseUtility}
	points, err := sc.Run(pop, steps)
	if err != nil {
		return nil, err
	}
	return &ExpansionResult{
		Config:   cfg,
		Points:   points,
		Optimal:  economics.OptimalStep(points),
		Segments: population.SegmentCounts(providers),
	}, nil
}

// Fprint renders the expansion series.
func (r *ExpansionResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "Sec. 9 / Eqs. 25-31 — policy expansion trade-off (N=%d, U=%g, T=%g/step)\n",
		r.Config.N, r.Config.BaseUtility, r.Config.StepUtility)
	fmt.Fprintf(w, "population: %v\n\n", r.Segments)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		mark := ""
		if p.Step == r.Optimal {
			mark = "<- optimal"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Step), p.Label,
			f(p.PW), f(p.PDefault),
			fmt.Sprintf("%d", p.NFuture),
			f(p.UtilityFuture), f(p.BreakEvenT), b(p.Justified), mark,
		})
	}
	return WriteTable(w, []string{
		"step", "move", "P(W)", "P(Default)", "N_future",
		"Utility_future", "break-even T", "justified", "",
	}, rows)
}

// AccumulationResult is E5: the violation-accumulation view of the same
// sweep — total Violations (Eq. 16), cumulative defaults, and the empirical
// CDF of provider default thresholds that Sec. 10 proposes estimating.
type AccumulationResult struct {
	Config ExpansionConfig
	Points []economics.Point
	// CumulativeDefaults[i] is the total number of providers lost up to and
	// including step i.
	CumulativeDefaults []int
	// ThresholdECDF is the distribution of v_i in the starting population.
	ThresholdECDF *stats.ECDF
	// ThresholdSummary summarizes v_i.
	ThresholdSummary stats.Summary
}

// Accumulation runs the widening sweep and reports the accumulation series.
func Accumulation(cfg ExpansionConfig) (*AccumulationResult, error) {
	providers, sigma, hp, err := expansionPopulation(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)
	thresholds := make([]float64, len(pop))
	for i, p := range pop {
		thresholds[i] = p.Threshold
	}

	dims := []privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity, privacy.DimRetention}
	steps := make([]economics.Step, cfg.Steps)
	for i := range steps {
		steps[i] = economics.WidenAllStep(dims[i%len(dims)], cfg.StepUtility)
	}
	sc := &economics.Scenario{BasePolicy: hp, AttrSens: sigma, BaseUtility: cfg.BaseUtility}
	points, err := sc.Run(pop, steps)
	if err != nil {
		return nil, err
	}
	res := &AccumulationResult{
		Config:           cfg,
		Points:           points,
		ThresholdECDF:    stats.NewECDF(thresholds),
		ThresholdSummary: stats.Summarize(thresholds),
	}
	lost := 0
	for _, p := range points {
		lost = cfg.N - p.NFuture
		res.CumulativeDefaults = append(res.CumulativeDefaults, lost)
	}
	return res, nil
}

// Fprint renders the accumulation series.
func (r *AccumulationResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E5 — violation accumulation and default CDF (N=%d)\n", r.Config.N)
	fmt.Fprintf(w, "threshold v_i: median=%.1f mean=%.1f q1=%.1f q3=%.1f\n\n",
		r.ThresholdSummary.Median, r.ThresholdSummary.Mean, r.ThresholdSummary.Q1, r.ThresholdSummary.Q3)
	rows := make([][]string, 0, len(r.Points))
	for i, p := range r.Points {
		var meanViolation float64
		if p.NCurrent > 0 {
			meanViolation = p.TotalViolations / float64(maxInt(1, r.Config.N-r.CumulativeDefaults[maxInt(0, i-1)]))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Step),
			f(p.TotalViolations),
			f(meanViolation),
			fmt.Sprintf("%d", r.CumulativeDefaults[i]),
			f(float64(r.CumulativeDefaults[i]) / float64(r.Config.N)),
		})
	}
	return WriteTable(w, []string{
		"step", "Violations (Eq. 16)", "mean Violation_i", "cum defaults", "default frac",
	}, rows)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
