package ppdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/generalize"
	"repro/internal/privacy"
	"repro/internal/relational"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := clinicDB(t)
	// Move the clock so the saved timestamp is distinctive, then save.
	if _, err := db.Advance(10 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Expected artifacts exist.
	for _, f := range []string{
		"corpus.dsl", "state.json",
		filepath.Join("tables", "patients.schema.sql"),
		filepath.Join("tables", "patients.csv"),
		filepath.Join("tables", "patients.meta.csv"),
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}

	// Reload with the same runtime config (hierarchies matter for reads).
	weightH, _ := generalize.NewNumericHierarchy(5, 2, 2)
	db2, err := Load(dir, Config{
		Hierarchies: map[string]generalize.Hierarchy{"weight": weightH},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clock restored.
	if !db2.Now().Equal(db.Now()) {
		t.Errorf("clock = %v, want %v", db2.Now(), db.Now())
	}
	// Providers restored with preferences intact.
	if len(db2.Providers()) != 2 {
		t.Fatalf("providers = %d", len(db2.Providers()))
	}
	bob, ok := db2.Provider("bob")
	if !ok || bob.Threshold != 5 {
		t.Errorf("bob = %+v", bob)
	}
	if bob.Sensitivity("weight", "care").Value != 2 {
		t.Errorf("bob sensitivity lost: %v", bob.Sensitivity("weight", "care"))
	}
	// Rows restored.
	if db2.TableLen("patients") != 2 {
		t.Fatalf("rows = %d", db2.TableLen("patients"))
	}
	// Policy behaviour identical: certification matches the original.
	c1, err := db.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := db2.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Report.PW != c2.Report.PW || c1.Report.TotalViolations != c2.Report.TotalViolations {
		t.Errorf("certification mismatch: %+v vs %+v", c1.Report, c2.Report)
	}
	// Queries behave the same, including granularity degradation.
	res, err := db2.Query(AccessRequest{
		Purpose: "research", Visibility: 3,
		SQL: "SELECT weight FROM patients ORDER BY weight",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Display(); got[0] != '[' {
		t.Errorf("degradation lost after reload: %q", got)
	}
	// Retention provenance preserved: advancing past a year from the
	// ORIGINAL insert time expires the rows.
	db2.Advance(360 * 24 * time.Hour) // 10 + 360 = 370 days since insert
	rep, err := db2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsDeleted != 2 {
		t.Errorf("sweep after reload deleted %d rows (insert times lost?)", rep.RowsDeleted)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir(), Config{}); err == nil {
		t.Error("empty directory should fail")
	}
	// Corrupted corpus.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "corpus.dsl"), []byte("junk"), 0o644)
	if _, err := Load(dir, Config{}); err == nil {
		t.Error("bad corpus should fail")
	}
	// Valid corpus, missing state.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "corpus.dsl"),
		[]byte(`policy "p" { attr x { tuple purpose=q visibility=0 granularity=0 retention=0 } }`), 0o644)
	if _, err := Load(dir2, Config{}); err == nil {
		t.Error("missing state.json should fail")
	}
	// Bad state JSON.
	os.WriteFile(filepath.Join(dir2, "state.json"), []byte("{"), 0o644)
	if _, err := Load(dir2, Config{}); err == nil {
		t.Error("bad state.json should fail")
	}
	// Mismatched provenance count.
	db := clinicDB(t)
	dir3 := t.TempDir()
	if err := db.Save(dir3); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir3, "tables", "patients.meta.csv"),
		[]byte("provider,inserted\n"), 0o644)
	if _, err := Load(dir3, Config{}); err == nil {
		t.Error("provenance mismatch should fail")
	}
}

func TestSaveIsDeterministicOnDisk(t *testing.T) {
	db := clinicDB(t)
	dir1, dir2 := t.TempDir(), t.TempDir()
	if err := db.Save(dir1); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir2); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"corpus.dsl", "state.json", filepath.Join("tables", "patients.csv")} {
		a, err := os.ReadFile(filepath.Join(dir1, f))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, f))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between saves", f)
		}
	}
}

func TestSaveLoadWithNullsAndQuotes(t *testing.T) {
	hp := privacy.NewHousePolicy("p")
	hp.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("note", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	db, err := New(Config{Policy: hp})
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "note", Type: relational.TypeText},
	})
	db.RegisterTable("t", schema, "provider")
	p := privacy.NewPrefs("a", 10)
	db.RegisterProvider(p)
	db.Insert("t", "a", relational.Row{relational.Text("a"), relational.Text(`tricky, "quoted" text`)})
	q := privacy.NewPrefs("b", 10)
	db.RegisterProvider(q)
	db.Insert("t", "b", relational.Row{relational.Text("b"), relational.Null()})

	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db2.ProviderView("a")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Values[1].Display() != `tricky, "quoted" text` {
		t.Errorf("quoted text = %q", rows[0].Values[1].Display())
	}
	rows, _ = db2.ProviderView("b")
	if !rows[0].Values[1].IsNull() {
		t.Errorf("NULL lost: %v", rows[0].Values[1])
	}
}
