package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
	"repro/internal/stats"
)

// EstimatorPoint is one row of E6: the trial-based estimate of P(W) and
// P(Default) at a given trial count τ, against the exact values.
type EstimatorPoint struct {
	Trials      int
	PW          stats.Proportion
	PDefault    stats.Proportion
	ErrPW       float64 // |estimate − exact|
	ErrPDefault float64
}

// EstimatorResult is the convergence series of the Defs. 2/5 relative-
// frequency estimators.
type EstimatorResult struct {
	N             int
	ExactPW       float64
	ExactPDefault float64
	Points        []EstimatorPoint
}

// Estimator runs the E6 convergence study: a Westin population under a
// moderately widened policy, estimated at geometrically growing τ.
func Estimator(n int, seed uint64, trialCounts []int) (*EstimatorResult, error) {
	providers, sigma, hp, err := expansionPopulation(n, seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)
	// Widen once along each dimension so both probabilities are interior.
	wide := hp.WidenAll("v1", privacy.DimVisibility, 1).
		WidenAll("v2", privacy.DimGranularity, 1)
	assessor, err := core.NewAssessor(wide, sigma, core.Options{})
	if err != nil {
		return nil, err
	}
	exact := assessor.AssessPopulation(pop)
	res := &EstimatorResult{N: n, ExactPW: exact.PW, ExactPDefault: exact.PDefault}
	rng := population.NewRNG(seed + 1)
	for _, tau := range trialCounts {
		pw, err := assessor.EstimatePW(pop, tau, rng)
		if err != nil {
			return nil, err
		}
		pd, err := assessor.EstimatePDefault(pop, tau, rng)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, EstimatorPoint{
			Trials:      tau,
			PW:          stats.NewProportion(pw.Hits, pw.Trials, 1.96),
			PDefault:    stats.NewProportion(pd.Hits, pd.Trials, 1.96),
			ErrPW:       math.Abs(pw.P - exact.PW),
			ErrPDefault: math.Abs(pd.P - exact.PDefault),
		})
	}
	return res, nil
}

// DefaultTrialCounts is the τ ladder used by the bench and CLI.
func DefaultTrialCounts() []int { return []int{10, 100, 1000, 10000, 100000} }

// Fprint renders the convergence table.
func (r *EstimatorResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E6 — relative-frequency estimator convergence (Defs. 2 & 5; N=%d)\n", r.N)
	fmt.Fprintf(w, "exact: P(W)=%.4f  P(Default)=%.4f\n\n", r.ExactPW, r.ExactPDefault)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Trials),
			fmt.Sprintf("%.4f", p.PW.P), fmt.Sprintf("%.4f", p.ErrPW),
			fmt.Sprintf("[%.3f,%.3f]", p.PW.Lo, p.PW.Hi),
			fmt.Sprintf("%.4f", p.PDefault.P), fmt.Sprintf("%.4f", p.ErrPDefault),
			fmt.Sprintf("[%.3f,%.3f]", p.PDefault.Lo, p.PDefault.Hi),
		})
	}
	return WriteTable(w, []string{
		"τ", "P̂(W)", "|err|", "95% CI", "P̂(Default)", "|err|", "95% CI",
	}, rows)
}
