package relational

import (
	"strings"
	"testing"
)

func TestInSubquerySelect(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query(`
		SELECT name FROM patients
		WHERE id IN (SELECT patient_id FROM visits WHERE reason = 'checkup')
		ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Display() != "alice" || res.Rows[1][0].Display() != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestNotInSubquery(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query(`
		SELECT name FROM patients
		WHERE id NOT IN (SELECT patient_id FROM visits)
		ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	// dave and erin never visited.
	if len(res.Rows) != 2 || res.Rows[0][0].Display() != "dave" || res.Rows[1][0].Display() != "erin" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInSubqueryEmptyResult(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query(`SELECT name FROM patients WHERE id IN (SELECT patient_id FROM visits WHERE reason = 'nothing')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInSubqueryInUpdateAndDelete(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Exec(`UPDATE patients SET age = age + 100 WHERE id IN (SELECT patient_id FROM visits WHERE reason = 'flu')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("updated %d", res.Affected)
	}
	q, _ := db.Query("SELECT age FROM patients WHERE id = 1")
	if a, _ := q.Rows[0][0].AsInt(); a != 134 {
		t.Errorf("age = %d", a)
	}

	res, err = db.Exec(`DELETE FROM patients WHERE id NOT IN (SELECT patient_id FROM visits)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Errorf("deleted %d", res.Affected)
	}
}

func TestInSubqueryNestedAndAggregated(t *testing.T) {
	db := fixtureDB(t)
	// Subquery with its own aggregation: patients from the busiest city.
	res, err := db.Query(`
		SELECT name FROM patients
		WHERE city IN (
			SELECT city FROM patients GROUP BY city ORDER BY COUNT(*) DESC LIMIT 1
		)
		ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // calgary has 3 patients
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInSubqueryErrors(t *testing.T) {
	db := fixtureDB(t)
	// Multi-column subquery.
	if _, err := db.Query(`SELECT name FROM patients WHERE id IN (SELECT id, name FROM patients)`); err == nil ||
		!strings.Contains(err.Error(), "exactly one column") {
		t.Errorf("multi-column subquery error = %v", err)
	}
	// Subquery against a missing table.
	if _, err := db.Query(`SELECT name FROM patients WHERE id IN (SELECT x FROM nope)`); err == nil {
		t.Error("missing subquery table should fail")
	}
	// Unterminated subquery.
	if _, err := db.Query(`SELECT name FROM patients WHERE id IN (SELECT id FROM visits`); err == nil {
		t.Error("unterminated subquery should fail")
	}
}
