package game

import (
	"math"
	"testing"

	"repro/internal/population"
	"repro/internal/privacy"
)

// fixture: three providers with violations 0 / 60 / 80 under the wide
// policy (the Table 1 trio) and none under the narrow policy.
func fixture(t *testing.T) (*Game, *privacy.HousePolicy, *privacy.HousePolicy) {
	t.Helper()
	const pr = privacy.Purpose("research")
	narrow := privacy.NewHousePolicy("narrow")
	narrow.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 1, Retention: 1})
	wide := privacy.NewHousePolicy("wide")
	wide.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 2, Retention: 2})

	sigma := privacy.AttributeSensitivities{}
	sigma.Set("weight", 4)

	mk := func(name string, g, r privacy.Level, thresh float64, s privacy.Sensitivity) *privacy.Prefs {
		p := privacy.NewPrefs(name, thresh)
		p.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: g, Retention: r})
		p.SetSensitivity("weight", s)
		return p
	}
	alice := mk("alice", 3, 5, 10, privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1})
	ted := mk("ted", 1, 4, 50, privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 5, Retention: 2})
	bob := mk("bob", 1, 1, 100, privacy.Sensitivity{Value: 4, Visibility: 1, Granularity: 3, Retention: 2})

	g, err := New(Config{AttrSens: sigma, BaseUtility: 10, ToleranceGain: 1},
		[]*privacy.Prefs{alice, ted, bob})
	if err != nil {
		t.Fatal(err)
	}
	return g, narrow, wide
}

func TestPlayNarrowPolicy(t *testing.T) {
	g, narrow, _ := fixture(t)
	out, err := g.Play(HouseStrategy{Policy: narrow, ExtraUtility: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Participants != 3 || out.Defectors != 0 {
		t.Errorf("narrow outcome = %+v", out)
	}
	if out.HousePayoff != 30 {
		t.Errorf("payoff = %g", out.HousePayoff)
	}
}

func TestPlayWidePolicyNoIncentive(t *testing.T) {
	g, _, wide := fixture(t)
	out, err := g.Play(HouseStrategy{Policy: wide, ExtraUtility: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Violations 0/60/80 vs thresholds 10/50/100: ted defects.
	if out.Participants != 2 || out.Defectors != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	if out.HousePayoff != 2*(10+5) {
		t.Errorf("payoff = %g", out.HousePayoff)
	}
	for _, r := range out.Responses {
		if r.Provider == "ted" && r.Participates {
			t.Error("ted should defect")
		}
	}
}

func TestIncentiveBuysParticipation(t *testing.T) {
	g, _, wide := fixture(t)
	// Ted's gap is 60 − 50 = 10; incentive 10 (κ=1) keeps him.
	out, err := g.Play(HouseStrategy{Policy: wide, ExtraUtility: 5, Incentive: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.Participants != 3 {
		t.Fatalf("outcome = %+v", out)
	}
	// Payoff: 3 × (10 + 5 − 10) = 15 < 30 without ted — paying everyone to
	// keep one provider can be a bad deal; Solve should see that.
	if out.HousePayoff != 15 {
		t.Errorf("payoff = %g", out.HousePayoff)
	}
}

func TestSolveStackelberg(t *testing.T) {
	g, narrow, wide := fixture(t)
	strategies := []HouseStrategy{
		{Policy: narrow, ExtraUtility: 0},
		{Policy: wide, ExtraUtility: 5},
		{Policy: wide, ExtraUtility: 5, Incentive: 10},
	}
	eq, err := g.Solve(strategies)
	if err != nil {
		t.Fatal(err)
	}
	if len(eq.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(eq.Outcomes))
	}
	// Payoffs: 30, 30, 15 — tie prefers the earlier (narrow) strategy.
	if eq.Best.Strategy.Policy.Name != "narrow" {
		t.Errorf("equilibrium = %s (payoff %g)", eq.Best.Strategy, eq.Best.HousePayoff)
	}
	// With a higher T the wide policy wins despite losing ted.
	strategies[1].ExtraUtility = 8
	eq, err = g.Solve(strategies)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Best.Strategy.Policy.Name != "wide" || eq.Best.Strategy.Incentive != 0 {
		t.Errorf("equilibrium = %s", eq.Best.Strategy)
	}
}

func TestOptimalIncentive(t *testing.T) {
	g, _, wide := fixture(t)
	// With T = 20 the house earns a lot per provider; buying ted back for 10
	// pays: 3 × (10+20−10) = 60 > 2 × 30 = 60? Equal — prefer cheaper. Try
	// T = 25: 3 × (35−10) = 75 > 2 × 35 = 70.
	out, err := g.OptimalIncentive(HouseStrategy{Policy: wide, ExtraUtility: 25})
	if err != nil {
		t.Fatal(err)
	}
	if out.Participants != 3 {
		t.Fatalf("optimal incentive should retain everyone: %+v", out.Strategy)
	}
	if math.Abs(out.Strategy.Incentive-10) > 1e-6 {
		t.Errorf("incentive = %g, want ≈ 10 (ted's exact gap)", out.Strategy.Incentive)
	}
	// With tiny T, paying is not worth it.
	out, err = g.OptimalIncentive(HouseStrategy{Policy: wide, ExtraUtility: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy.Incentive != 0 || out.Participants != 2 {
		t.Errorf("low-T optimum = %+v", out.Strategy)
	}
}

func TestOptimalIncentiveZeroKappa(t *testing.T) {
	gBase, _, wide := fixture(t)
	g, err := New(Config{AttrSens: privacy.AttributeSensitivities{"weight": 4},
		BaseUtility: 10, ToleranceGain: 0}, gBase.pop)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.OptimalIncentive(HouseStrategy{Policy: wide, ExtraUtility: 25, Incentive: 99})
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy.Incentive != 0 {
		t.Errorf("κ=0 must force zero incentive, got %g", out.Strategy.Incentive)
	}
}

func TestNewAndPlayErrors(t *testing.T) {
	g, narrow, _ := fixture(t)
	if _, err := New(Config{BaseUtility: -1}, g.pop); err == nil {
		t.Error("negative U should fail")
	}
	if _, err := New(Config{ToleranceGain: -1}, g.pop); err == nil {
		t.Error("negative κ should fail")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("empty population should fail")
	}
	if _, err := g.Play(HouseStrategy{}); err == nil {
		t.Error("strategy without policy should fail")
	}
	if _, err := g.Play(HouseStrategy{Policy: narrow, Incentive: -1}); err == nil {
		t.Error("negative incentive should fail")
	}
	if _, err := g.Solve(nil); err == nil {
		t.Error("empty strategy set should fail")
	}
}

func TestIncentiveGrid(t *testing.T) {
	_, narrow, _ := fixture(t)
	grid := IncentiveGrid(HouseStrategy{Policy: narrow, ExtraUtility: 3}, []float64{0, 1, 2})
	if len(grid) != 3 || grid[2].Incentive != 2 || grid[1].ExtraUtility != 3 {
		t.Errorf("grid = %+v", grid)
	}
}

// TestEquilibriumOnWestinPopulation checks the qualitative Sec. 9 story at
// population scale: with incentives available (κ > 0) the house's optimal
// payoff weakly improves over the no-incentive game.
func TestEquilibriumOnWestinPopulation(t *testing.T) {
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
		},
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(500))
	base := privacy.NewHousePolicy("p0")
	base.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: 1})

	strategies := []HouseStrategy{{Policy: base, ExtraUtility: 0}}
	policy := base
	for i := 1; i <= 4; i++ {
		policy = policy.WidenAll("p"+string(rune('0'+i)), privacy.OrderedDimensions[i%3], 1)
		strategies = append(strategies, HouseStrategy{Policy: policy, ExtraUtility: float64(i) * 2})
	}

	solve := func(kappa float64) float64 {
		t.Helper()
		g, err := New(Config{AttrSens: gen.AttributeSensitivities(), BaseUtility: 10, ToleranceGain: kappa}, pop)
		if err != nil {
			t.Fatal(err)
		}
		var all []HouseStrategy
		for _, s := range strategies {
			if kappa > 0 {
				all = append(all, IncentiveGrid(s, []float64{0, 1, 2, 5, 10})...)
			} else {
				all = append(all, s)
			}
		}
		eq, err := g.Solve(all)
		if err != nil {
			t.Fatal(err)
		}
		return eq.Best.HousePayoff
	}
	without := solve(0)
	with := solve(5)
	if with < without {
		t.Errorf("incentives must weakly improve the house optimum: %g < %g", with, without)
	}
}
