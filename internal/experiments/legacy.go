package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/estimation"
	"repro/internal/population"
	"repro/internal/privacy"
)

// LegacyRow is one policy version with its predicted and actual default
// fractions (E10).
type LegacyRow struct {
	Policy    string
	Severity  float64 // severity index on the survey sample
	Observed  bool    // part of the fitted history vs held out
	Predicted float64
	Actual    float64
	AbsError  float64
}

// LegacyResult is the Sec. 10 estimation study.
type LegacyResult struct {
	N          int
	SampleSize int
	Rows       []LegacyRow
	// WorstHeldOutError is the max |predicted − actual| over held-out
	// policies.
	WorstHeldOutError float64
}

// Legacy runs E10: a hidden Westin population, a ladder of nine policies;
// the even-indexed versions are "history" (their true default fractions are
// observed), the odd ones are held out. A monotone curve is fitted on the
// history's severity indexes (computed on a small survey sample) and used to
// predict the held-out default fractions.
func Legacy(n int, seed uint64, sampleSize int) (*LegacyResult, error) {
	providers, sigma, base, err := expansionPopulation(n, seed)
	if err != nil {
		return nil, err
	}
	hidden := population.PrefsOf(providers)
	if sampleSize <= 0 || sampleSize > len(hidden) {
		return nil, fmt.Errorf("experiments: sample size %d out of range", sampleSize)
	}
	sample := hidden[:sampleSize]

	// Policy ladder starting from the zero policy so severities span the
	// full range.
	zero := privacy.NewHousePolicy("p0")
	for _, e := range base.Entries() {
		zero.Add(e.Attribute, privacy.ZeroTuple(e.Tuple.Purpose))
	}
	policies := []*privacy.HousePolicy{zero}
	hp := zero
	dims := privacy.OrderedDimensions
	for i := 1; i <= 8; i++ {
		hp = hp.WidenAll(fmt.Sprintf("p%d", i), dims[i%3], 1)
		policies = append(policies, hp)
	}

	truth := func(p *privacy.HousePolicy) (float64, error) {
		a, err := core.NewAssessor(p, sigma, core.Options{})
		if err != nil {
			return 0, err
		}
		return a.AssessPopulation(hidden).PDefault, nil
	}

	hist, err := estimation.NewHistory(sigma, core.Options{}, sample)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(policies); i += 2 {
		actual, err := truth(policies[i])
		if err != nil {
			return nil, err
		}
		if err := hist.Observe(policies[i], actual); err != nil {
			return nil, err
		}
	}

	res := &LegacyResult{N: n, SampleSize: sampleSize}
	for i, p := range policies {
		actual, err := truth(p)
		if err != nil {
			return nil, err
		}
		pred, err := hist.Predict(p)
		if err != nil {
			return nil, err
		}
		sev, err := estimation.SeverityIndex(p, sigma, core.Options{}, sample)
		if err != nil {
			return nil, err
		}
		row := LegacyRow{
			Policy:    p.Name,
			Severity:  sev,
			Observed:  i%2 == 0,
			Predicted: pred,
			Actual:    actual,
			AbsError:  math.Abs(pred - actual),
		}
		if !row.Observed && row.AbsError > res.WorstHeldOutError {
			res.WorstHeldOutError = row.AbsError
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fprint renders the prediction table.
func (r *LegacyResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E10 — legacy-system default estimation (Sec. 10; N=%d hidden, survey sample=%d)\n\n",
		r.N, r.SampleSize)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		role := "held-out"
		if row.Observed {
			role = "history"
		}
		rows = append(rows, []string{
			row.Policy, f(row.Severity), role,
			fmt.Sprintf("%.4f", row.Predicted),
			fmt.Sprintf("%.4f", row.Actual),
			fmt.Sprintf("%.4f", row.AbsError),
		})
	}
	if err := WriteTable(w, []string{
		"policy", "severity idx", "role", "predicted P(Default)", "actual", "|err|",
	}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nworst held-out prediction error: %.4f\n", r.WorstHeldOutError)
	return nil
}
