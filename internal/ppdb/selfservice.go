package ppdb

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// Provider self-service: Sec. 1 notes that legislation requires "maintaining
// the ability of the data provider to access and update the information
// solicited from them", and Sec. 2 that transparency should let "data
// providers … continuously monitor the state of their privacy". These
// methods give each provider unmediated access to their own rows, the
// ability to update them, and a personal violation audit against the
// current policy.

// OwnRow is one stored row belonging to a provider.
type OwnRow struct {
	Table   string
	RowID   relational.RowID
	Columns []string
	Values  []relational.Value
}

// ProviderView returns every row the provider has contributed, across all
// registered tables, at full granularity — a provider's right of access is
// not subject to the house policy (they are reading their own data).
func (d *DB) ProviderView(provider string) ([]OwnRow, error) {
	key := strings.ToLower(provider)
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, ok := d.lookupShared(key); !ok {
		return nil, fmt.Errorf("ppdb: provider %q is not registered", provider)
	}
	var out []OwnRow
	for name, tm := range d.tables {
		schema := tm.table.Schema()
		cols := make([]string, schema.Len())
		for i := range cols {
			cols[i] = schema.Column(i).Name
		}
		for id, meta := range tm.rows {
			if meta.provider != key {
				continue
			}
			row, ok := tm.table.Get(id)
			if !ok {
				continue
			}
			out = append(out, OwnRow{Table: name, RowID: id, Columns: cols, Values: row})
		}
	}
	return out, nil
}

// UpdateOwnRow lets a provider correct one of their rows. The row must
// belong to the provider; the provider-identity column cannot be changed.
func (d *DB) UpdateOwnRow(provider, table string, id relational.RowID, row relational.Row) error {
	key := strings.ToLower(provider)
	d.mu.Lock()
	defer d.mu.Unlock()
	tm, ok := d.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("ppdb: table %q is not registered", table)
	}
	meta, ok := tm.rows[id]
	if !ok {
		return fmt.Errorf("ppdb: row %d does not exist in %q", id, table)
	}
	if meta.provider != key {
		return fmt.Errorf("ppdb: row %d in %q does not belong to %q", id, table, provider)
	}
	pi, _ := tm.table.Schema().ColumnIndex(tm.providerCol)
	if pi < len(row) {
		if s, ok := row[pi].AsText(); !ok || !strings.EqualFold(s, provider) {
			return fmt.Errorf("ppdb: cannot reassign row ownership")
		}
	}
	if err := tm.table.Update(id, row); err != nil {
		return err
	}
	d.mutSeq.Add(1)
	return nil
}

// SelfAudit returns the provider's personal violation report against the
// current policy — w_i, Violation_i, default_i and every conflicting tuple
// pair — the "continuously monitor the state of their privacy" capability.
// With the ledger enabled the memoized row is returned in O(1); the
// fallback re-assesses with the cached assessor.
func (d *DB) SelfAudit(provider string) (core.ProviderReport, error) {
	key := strings.ToLower(provider)
	d.mu.RLock()
	st, ok := d.stateShared(key)
	assessor := d.assessor
	if ok && d.ledger != nil {
		if rep, hit := d.ledger.Report(key); hit {
			d.mu.RUnlock()
			return rep, nil
		}
	}
	d.mu.RUnlock()
	if !ok {
		return core.ProviderReport{}, fmt.Errorf("ppdb: provider %q is not registered", provider)
	}
	var sc core.Scratch
	return assessor.AssessRow(st.prefs, st.compiled, &sc), nil
}

// UpdatePreferences lets a provider revise their preference tuples (and
// thereby their violation state) — registration is idempotent, this is the
// explicit self-service spelling. The new preferences must carry the same
// provider identity.
func (d *DB) UpdatePreferences(provider string, prefs *privacy.Prefs) error {
	if prefs == nil {
		return fmt.Errorf("ppdb: nil preferences")
	}
	if !strings.EqualFold(provider, prefs.Provider) {
		return fmt.Errorf("ppdb: preferences are for %q, not %q", prefs.Provider, provider)
	}
	key := strings.ToLower(provider)
	d.mu.RLock()
	_, registered := d.lookupShared(key)
	d.mu.RUnlock()
	if !registered {
		return fmt.Errorf("ppdb: provider %q is not registered", provider)
	}
	return d.RegisterProvider(prefs)
}
