// Package lockorderdata is the lockorder checker fixture: declared-order
// violations (direct and through a call chain), cycles between undeclared
// classes, a correctly ordered pair, and a suppressed inversion.
//
// The declared order is split across directives to exercise merging:
//
//lint:lockorder lockorderdata.A < lockorderdata.B
//lint:lockorder lockorderdata.X < lockorderdata.Y
//lint:lockorder lockorderdata.P < lockorderdata.Q
//lint:lockorder lockorderdata.M < lockorderdata.N
package lockorderdata

import "sync"

// A orders before B.
type A struct {
	mu sync.Mutex
	n  int
}

// B orders after A.
type B struct {
	mu sync.Mutex
	n  int
}

// X orders before Y.
type X struct {
	mu sync.Mutex
	n  int
}

// Y orders after X.
type Y struct {
	mu sync.Mutex
	n  int
}

// P orders before Q.
type P struct {
	mu sync.Mutex
	n  int
}

// Q orders after P.
type Q struct {
	mu sync.Mutex
	n  int
}

// M orders before N.
type M struct {
	mu sync.Mutex
	n  int
}

// N orders after M.
type N struct {
	mu sync.Mutex
	n  int
}

// C has no declared order.
type C struct {
	mu sync.Mutex
	n  int
}

// D has no declared order.
type D struct {
	mu sync.Mutex
	n  int
}

var (
	va A
	vb B
	vx X
	vy Y
	vp P
	vq Q
	vm M
	vn N
	vc C
	vd D
)

// Good nests in the declared order: no finding.
func Good() {
	va.mu.Lock()
	vb.mu.Lock()
	vb.n++
	va.n++
	vb.mu.Unlock()
	va.mu.Unlock()
}

// BadDirect inverts the declared X < Y pair inside one function.
func BadDirect() {
	vy.mu.Lock()
	vx.mu.Lock() // want "lock order violation: lockorderdata.X acquired while holding lockorderdata.Y"
	vx.n++
	vx.mu.Unlock()
	vy.mu.Unlock()
}

// HoldsQ acquires P through a helper while holding Q: the violation is
// inter-procedural and the diagnostic names the call path.
func HoldsQ() {
	vq.mu.Lock()
	defer vq.mu.Unlock()
	lockP() // want "call path: lockorderdata.HoldsQ → lockorderdata.lockP"
	vq.n++
}

func lockP() {
	vp.mu.Lock()
	vp.n++
	vp.mu.Unlock()
}

// CycleCD and CycleDC nest two undeclared classes in opposite orders:
// both edges of the cycle are reported.
func CycleCD() {
	vc.mu.Lock()
	vd.mu.Lock() // want "lock cycle: acquiring lockorderdata.D while holding lockorderdata.C"
	vd.n++
	vd.mu.Unlock()
	vc.mu.Unlock()
}

// CycleDC is the reverse half of the cycle.
func CycleDC() {
	vd.mu.Lock()
	vc.mu.Lock() // want "lock cycle: acquiring lockorderdata.C while holding lockorderdata.D"
	vc.n++
	vc.mu.Unlock()
	vd.mu.Unlock()
}

// SuppressedInversion demonstrates lint:ignore on a deliberate inversion.
func SuppressedInversion() {
	vn.mu.Lock()
	//lint:ignore lockorder fixture: inversion is deliberate to demonstrate suppression
	vm.mu.Lock()
	vm.n++
	vm.mu.Unlock()
	vn.mu.Unlock()
}
