// Package relational is a small in-memory relational database engine: typed
// values, schemas, tables with hash indexes, an expression language and a
// SQL dialect (CREATE TABLE / INSERT / SELECT with joins, grouping and
// ordering / UPDATE / DELETE). It is the storage substrate the paper's model
// operates over — "the data table of private information T = {t_1 … t_n}"
// of Sec. 4 — built from scratch on the standard library.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind int

// Value kinds. Null is the SQL NULL; comparisons with NULL yield NULL-ish
// (false) semantics at the predicate layer.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindText:
		return "text"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text returns a string value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; ok is false for non-integers.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the value as float64, coercing integers; ok is false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsText returns the string payload; ok is false for non-text values.
func (v Value) AsText() (string, bool) { return v.s, v.kind == KindText }

// AsBool returns the boolean payload; ok is false for non-bool values.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// String renders the value in SQL-literal style.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("value(kind=%d)", int(v.kind))
	}
}

// Display renders the value for tabular output (no quoting).
func (v Value) Display() string {
	if v.kind == KindText {
		return v.s
	}
	return v.String()
}

// numeric reports whether the value is int or float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: -1, 0, +1. Integers and floats compare
// numerically; text compares lexicographically; bools false < true. NULL or
// mixed non-numeric kinds are an error.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("relational: cannot compare NULL")
	}
	if a.numeric() && b.numeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			}
			return 0, nil
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("relational: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindText:
		return strings.Compare(a.s, b.s), nil
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("relational: cannot compare %s values", a.kind)
	}
}

// Equal reports whether two values are equal under Compare semantics; NULL
// equals nothing (including NULL), mismatched kinds are unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// key renders a value for index hashing; kind-prefixed so Int(1) and
// Text("1") hash differently while Int(1) and Float(1) collide (they are
// Compare-equal).
func (v Value) key() string {
	if f, ok := v.AsFloat(); ok {
		return "n:" + strconv.FormatFloat(f, 'g', -1, 64)
	}
	switch v.kind {
	case KindNull:
		return "∅"
	case KindText:
		return "t:" + v.s
	case KindBool:
		if v.b {
			return "b:1"
		}
		return "b:0"
	default:
		return "?:" + v.String()
	}
}
