package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFaultDisarmedIsNil(t *testing.T) {
	defer Reset()
	if err := Point("never.armed"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestFaultArmError(t *testing.T) {
	defer Reset()
	ArmError("site.a", nil)
	if err := Point("site.a"); !errors.Is(err, ErrInjected) {
		t.Errorf("default arm = %v, want ErrInjected", err)
	}
	custom := errors.New("disk on fire")
	ArmError("site.a", custom)
	if err := Point("site.a"); !errors.Is(err, custom) {
		t.Errorf("custom arm = %v", err)
	}
	// Other sites are unaffected.
	if err := Point("site.b"); err != nil {
		t.Errorf("unarmed sibling = %v", err)
	}
	Disarm("site.a")
	if err := Point("site.a"); err != nil {
		t.Errorf("after disarm = %v", err)
	}
}

func TestFaultArmPanic(t *testing.T) {
	defer Reset()
	ArmPanic("site.p")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("armed panic site did not panic")
		}
		if s, ok := rec.(string); !ok || !strings.Contains(s, "site.p") {
			t.Errorf("panic value = %v, want the site name", rec)
		}
	}()
	//lint:ignore errflow the call panics; there is no error to receive
	Point("site.p")
}

func TestFaultArmCrash(t *testing.T) {
	defer Reset()
	ArmCrash("site.c")
	err := Point("site.c")
	if !IsCrash(err) {
		t.Fatalf("crash arm = %v, want IsCrash", err)
	}
	if !strings.Contains(err.Error(), "site.c") {
		t.Errorf("crash error %q does not name the site", err)
	}
	// A wrapped crash is still a crash; ordinary errors are not.
	if !IsCrash(fmt.Errorf("save: %w", err)) {
		t.Error("wrapped crash not detected")
	}
	if IsCrash(errors.New("plain")) || IsCrash(nil) {
		t.Error("IsCrash misfires on non-crash errors")
	}
}

func TestFaultWritePointDisarmed(t *testing.T) {
	defer Reset()
	data := []byte("twelve bytes")
	got, err := WritePoint("never.armed", data)
	if err != nil {
		t.Fatalf("disarmed WritePoint returned %v", err)
	}
	if &got[0] != &data[0] || string(got) != string(data) {
		t.Error("disarmed WritePoint must hand back the original bytes untouched")
	}
}

func TestFaultWritePointShortWrite(t *testing.T) {
	defer Reset()
	data := []byte("0123456789")
	ArmShortWrite("w.short", 4)
	got, err := WritePoint("w.short", data)
	if err != nil {
		t.Fatalf("short write returned an error: %v", err)
	}
	if string(got) != "0123" {
		t.Errorf("short write kept %q, want %q", got, "0123")
	}
	// Clamping: keep beyond the data length passes everything, negative
	// keeps nothing.
	ArmShortWrite("w.short", 99)
	if got, _ := WritePoint("w.short", data); string(got) != string(data) {
		t.Errorf("over-length keep = %q", got)
	}
	ArmShortWrite("w.short", -3)
	if got, _ := WritePoint("w.short", data); len(got) != 0 {
		t.Errorf("negative keep = %q, want empty", got)
	}
}

func TestFaultWritePointFlipByte(t *testing.T) {
	defer Reset()
	data := []byte{0x00, 0x11, 0x22, 0x33}
	ArmFlipByte("w.flip", 2)
	got, err := WritePoint("w.flip", data)
	if err != nil {
		t.Fatalf("flip byte returned an error: %v", err)
	}
	if got[2] != 0x22^0xFF {
		t.Errorf("byte 2 = %#x, want %#x", got[2], 0x22^0xFF)
	}
	for _, i := range []int{0, 1, 3} {
		if got[i] != data[i] {
			t.Errorf("byte %d disturbed: %#x", i, got[i])
		}
	}
	if data[2] != 0x22 {
		t.Error("flip mutated the caller's buffer instead of a copy")
	}
	// Out-of-range offsets clamp to the last byte; empty data passes.
	ArmFlipByte("w.flip", 99)
	if got, _ := WritePoint("w.flip", data); got[3] != 0x33^0xFF {
		t.Errorf("clamped flip = %#x", got[3])
	}
	if got, _ := WritePoint("w.flip", nil); len(got) != 0 {
		t.Errorf("flip on empty data = %v", got)
	}
}

func TestFaultWritePointErrorAndCrash(t *testing.T) {
	defer Reset()
	data := []byte("abcdefgh")
	custom := errors.New("disk says no")
	ArmError("w.e", custom)
	got, err := WritePoint("w.e", data)
	if !errors.Is(err, custom) {
		t.Errorf("error arm = %v", err)
	}
	if string(got) != string(data) {
		t.Errorf("error arm mutated data to %q", got)
	}
	ArmCrash("w.c")
	got, err = WritePoint("w.c", data)
	if !IsCrash(err) {
		t.Fatalf("crash arm = %v, want IsCrash", err)
	}
	if string(got) != "abcd" {
		t.Errorf("crash arm tore to %q, want the first half", got)
	}
}

// TestFaultWriteModesInvisibleToPoint: a site armed with a write-mutation
// mode must not fail a plain Point at the same name — the mutation acts
// only on the bytes.
func TestFaultWriteModesInvisibleToPoint(t *testing.T) {
	defer Reset()
	ArmShortWrite("w.mix", 1)
	if err := Point("w.mix"); err != nil {
		t.Errorf("Point on short-write site = %v", err)
	}
	ArmFlipByte("w.mix", 0)
	if err := Point("w.mix"); err != nil {
		t.Errorf("Point on flip-byte site = %v", err)
	}
}

func TestFaultWritePointTraced(t *testing.T) {
	defer Reset()
	StartTrace()
	if _, err := WritePoint("w.traced", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := StopTrace()
	if len(got) != 1 || got[0] != "w.traced" {
		t.Errorf("trace = %v, want [w.traced]", got)
	}
}

func TestFaultTrace(t *testing.T) {
	defer Reset()
	StartTrace()
	for _, name := range []string{"t.one", "t.two", "t.one", "t.three"} {
		if err := Point(name); err != nil {
			t.Fatal(err)
		}
	}
	got := StopTrace()
	want := []string{"t.one", "t.two", "t.three"}
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
	// Tracing stopped: nothing more is recorded.
	if err := Point("t.four"); err != nil {
		t.Fatal(err)
	}
	if again := StopTrace(); len(again) != 0 {
		t.Errorf("after stop, trace = %v", again)
	}
}

func TestFaultReset(t *testing.T) {
	defer Reset()
	ArmError("r.a", nil)
	ArmCrash("r.b")
	StartTrace()
	Reset()
	if Armed("r.a") || Armed("r.b") {
		t.Error("Reset left sites armed")
	}
	if err := Point("r.a"); err != nil {
		t.Errorf("after reset = %v", err)
	}
	if trace := StopTrace(); len(trace) != 0 {
		t.Errorf("after reset, trace = %v", trace)
	}
}

// TestFaultConcurrency drives arms, disarms and hits from many goroutines;
// the -race pass over this package is part of CI.
func TestFaultConcurrency(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("conc.%d", g%4)
			for i := 0; i < 200; i++ {
				ArmError(name, nil)
				//lint:ignore errflow exercising the hit path; the value is irrelevant here
				Point(name)
				Disarm(name)
				//lint:ignore errflow exercising the disarmed fast path
				Point(name)
			}
		}(g)
	}
	wg.Wait()
}
