package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// --- envelope golden tests ---

// TestErrorEnvelopeGolden pins the exact wire shape of the uniform error
// envelope for every error class the dispatcher itself produces: unknown
// route, method mismatch, body cap, bad pagination, and load shed. These
// are golden byte-for-byte comparisons — a drift in field order, indent or
// code vocabulary is an API break.
func TestErrorEnvelopeGolden(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantBody   string
	}{
		{
			name: "unknown route 404", method: http.MethodGet, path: "/nope",
			wantStatus: http.StatusNotFound,
			wantBody: `{
  "error": {
    "code": "not_found",
    "message": "no such route /nope",
    "detail": "see API.md for the /v1 route list"
  }
}
`,
		},
		{
			name: "method mismatch 405", method: http.MethodDelete, path: "/v1/policy",
			wantStatus: http.StatusMethodNotAllowed,
			wantBody: `{
  "error": {
    "code": "method_not_allowed",
    "message": "method DELETE not allowed on /v1/policy",
    "detail": "allowed: GET, PUT"
  }
}
`,
		},
		{
			name: "body cap 413", method: http.MethodPost, path: "/v1/query",
			body:       `{"sql":"` + strings.Repeat("x", maxJSONBody) + `"}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantBody: `{
  "error": {
    "code": "payload_too_large",
    "message": "request body too large",
    "detail": "limit is 1048576 bytes"
  }
}
`,
		},
		{
			name: "bad pagination 400", method: http.MethodGet, path: "/v1/providers?offset=-1",
			wantStatus: http.StatusBadRequest,
			wantBody: `{
  "error": {
    "code": "bad_request",
    "message": "bad offset \"-1\": must be a non-negative integer"
  }
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, srv, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.wantStatus, rec.Body)
			}
			if got := rec.Body.String(); got != tc.wantBody {
				t.Errorf("envelope drifted:\ngot:  %q\nwant: %q", got, tc.wantBody)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
		})
	}
}

// TestShedEnvelopeGolden fills the only in-flight slot by hand (white-box)
// and pins the shed 503's envelope and Retry-After header.
func TestShedEnvelopeGolden(t *testing.T) {
	db := testServer(t).db
	srv, err := NewWith(db, Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.inflight <- struct{}{} // occupy the single slot
	defer func() { <-srv.inflight }()
	rec := do(t, srv, http.MethodGet, "/v1/certify?alpha=0.5", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	want := `{
  "error": {
    "code": "at_capacity",
    "message": "server at capacity, retry shortly"
  }
}
`
	if got := rec.Body.String(); got != want {
		t.Errorf("shed envelope drifted:\ngot:  %q\nwant: %q", got, want)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q", rec.Header().Get("Retry-After"))
	}
	// The probes bypass the cap even while the server is saturated.
	if rec := do(t, srv, http.MethodGet, "/v1/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("saturated /v1/healthz = %d", rec.Code)
	}
}

// --- legacy alias equivalence ---

// TestLegacyAliasEquivalence drives every aliased GET route through both
// spellings and requires byte-identical bodies — the alias is the same
// handler — plus the Deprecation: true header on the legacy path only.
func TestLegacyAliasEquivalence(t *testing.T) {
	srv := testServer(t)
	pairs := []struct{ legacy, canonical string }{
		{"/certify?alpha=0.5", "/v1/certify?alpha=0.5"},
		{"/certify/summary?alpha=0.5", "/v1/certify/summary?alpha=0.5"},
		{"/policy", "/v1/policy"},
		{"/providers", "/v1/providers"},
		{"/audit", "/v1/audit"},
		{"/self/audit?provider=maria", "/v1/self/audit?provider=maria"},
		{"/self/data?provider=maria", "/v1/self/data?provider=maria"},
		{"/healthz", "/v1/healthz"},
		{"/readyz", "/v1/readyz"},
	}
	for _, p := range pairs {
		legacy := do(t, srv, http.MethodGet, p.legacy, "")
		canonical := do(t, srv, http.MethodGet, p.canonical, "")
		if legacy.Code != canonical.Code {
			t.Errorf("%s: status %d vs %d", p.legacy, legacy.Code, canonical.Code)
		}
		if !bytes.Equal(legacy.Body.Bytes(), canonical.Body.Bytes()) {
			t.Errorf("%s: body diverges from %s\nlegacy:    %.200s\ncanonical: %.200s",
				p.legacy, p.canonical, legacy.Body, canonical.Body)
		}
		if got := legacy.Header().Get("Deprecation"); got != "true" {
			t.Errorf("%s: Deprecation header = %q, want \"true\"", p.legacy, got)
		}
		if got := canonical.Header().Get("Deprecation"); got != "" {
			t.Errorf("%s: canonical path must not be deprecated (got %q)", p.canonical, got)
		}
	}
	// Mutating aliases carry the header too.
	rec := do(t, srv, http.MethodPost, "/sweep", "")
	if rec.Code != http.StatusOK || rec.Header().Get("Deprecation") != "true" {
		t.Errorf("POST /sweep = %d, Deprecation = %q", rec.Code, rec.Header().Get("Deprecation"))
	}
	// The batch endpoint is /v1-only by design: no legacy spelling.
	if rec := do(t, srv, http.MethodPost, "/providers/batch", ""); rec.Code != http.StatusNotFound {
		t.Errorf("legacy /providers/batch = %d, want 404", rec.Code)
	}
}

// TestAllowHeader checks the 405 Allow header lists the route table's
// methods, sorted, for both single- and multi-method paths.
func TestAllowHeader(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/v1/policy", "GET, PUT"},
		{http.MethodDelete, "/policy", "GET, PUT"},
		{http.MethodDelete, "/v1/providers", "GET, POST"},
		{http.MethodGet, "/v1/sweep", "POST"},
		{http.MethodGet, "/v1/providers/batch", "POST"},
		{http.MethodPost, "/v1/metrics", "GET"},
	}
	for _, tc := range cases {
		rec := do(t, srv, tc.method, tc.path, "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if got := rec.Header().Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
}

// TestV1BypassRoutes is the regression test for the cap/metrics bypass bug:
// the old dispatcher matched raw legacy path strings, so the /v1 spellings
// of the probes would have been capped and instrumented. The bypass now
// follows the route table.
func TestV1BypassRoutes(t *testing.T) {
	db := testServer(t).db
	srv, err := NewWith(db, Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.inflight <- struct{}{} // saturate: only bypass routes can answer
	defer func() { <-srv.inflight }()
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/metrics", "/healthz", "/readyz", "/metrics"} {
		if rec := do(t, srv, http.MethodGet, path, ""); rec.Code != http.StatusOK {
			t.Errorf("saturated GET %s = %d, want 200 (bypass)", path, rec.Code)
		}
	}
	// A non-bypass route is shed, proving the slot really is occupied.
	if rec := do(t, srv, http.MethodGet, "/v1/certify", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("saturated /v1/certify = %d, want 503", rec.Code)
	}
}

// --- pagination ---

// registerMany registers n providers named p00..p(n-1) through the API.
func registerMany(t *testing.T, srv *Server, n int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `provider "p%02d" threshold 15 {
  attr weight { tuple purpose=care visibility=house granularity=specific retention=year }
}
`, i)
	}
	rec := do(t, srv, http.MethodPost, "/v1/providers/batch", sb.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("batch register = %d %s", rec.Code, rec.Body)
	}
}

func providersPage(t *testing.T, srv *Server, query string) ProvidersPage {
	t.Helper()
	rec := do(t, srv, http.MethodGet, "/v1/providers"+query, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/providers%s = %d %s", query, rec.Code, rec.Body)
	}
	var page ProvidersPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestProvidersPagination walks the paging boundaries of GET /v1/providers:
// defaults, partial pages, offset past the end, limit 0, the hard limit
// cap, and prefix filtering over the globally sorted key list.
func TestProvidersPagination(t *testing.T) {
	srv := testServer(t) // seeds provider "maria"
	registerMany(t, srv, 10)

	// Default page: all 11, sorted, maria first (m < p).
	page := providersPage(t, srv, "")
	if page.Total != 11 || page.Count != 11 || page.Limit != DefaultPageLimit || page.Offset != 0 {
		t.Fatalf("default page = %+v", page)
	}
	if page.Providers[0] != "maria" || page.Providers[1] != "p00" || page.Providers[10] != "p09" {
		t.Errorf("sort order broken: %v", page.Providers)
	}

	// Partial page.
	page = providersPage(t, srv, "?offset=1&limit=3")
	if page.Total != 11 || page.Count != 3 ||
		page.Providers[0] != "p00" || page.Providers[2] != "p02" {
		t.Errorf("offset=1 limit=3 = %+v", page)
	}

	// Last partial page.
	page = providersPage(t, srv, "?offset=9&limit=5")
	if page.Total != 11 || page.Count != 2 || page.Providers[1] != "p09" {
		t.Errorf("tail page = %+v", page)
	}

	// Offset past the end: empty page, total intact, providers is [] not null.
	rec := do(t, srv, http.MethodGet, "/v1/providers?offset=100", "")
	if !strings.Contains(rec.Body.String(), `"providers": []`) {
		t.Errorf("past-the-end page must serialize an empty array: %s", rec.Body)
	}
	page = providersPage(t, srv, "?offset=100")
	if page.Total != 11 || page.Count != 0 {
		t.Errorf("past-the-end page = %+v", page)
	}

	// limit=0 is a count-only probe.
	page = providersPage(t, srv, "?limit=0")
	if page.Total != 11 || page.Count != 0 || page.Limit != 0 {
		t.Errorf("limit=0 page = %+v", page)
	}

	// Over-limit requests are clamped to MaxPageLimit.
	page = providersPage(t, srv, "?limit=999999")
	if page.Limit != MaxPageLimit || page.Count != 11 {
		t.Errorf("clamped page = %+v", page)
	}

	// Prefix filter narrows total and page alike; keys are canonical
	// (lowercase), and the filter follows canonicalization.
	page = providersPage(t, srv, "?prefix=p0&limit=4")
	if page.Total != 10 || page.Count != 4 || page.Providers[0] != "p00" {
		t.Errorf("prefix page = %+v", page)
	}
	page = providersPage(t, srv, "?prefix=P0&limit=4")
	if page.Total != 10 {
		t.Errorf("prefix filtering must canonicalize case: %+v", page)
	}
	page = providersPage(t, srv, "?prefix=zzz")
	if page.Total != 0 || page.Count != 0 {
		t.Errorf("no-match prefix = %+v", page)
	}

	// Malformed paging params are 400s.
	for _, q := range []string{"?offset=-1", "?limit=-1", "?offset=abc", "?limit=1.5"} {
		if rec := do(t, srv, http.MethodGet, "/v1/providers"+q, ""); rec.Code != http.StatusBadRequest {
			t.Errorf("GET /v1/providers%s = %d, want 400", q, rec.Code)
		}
	}
}

// TestAuditPagination exercises paging and requester-prefix filtering on
// the access log.
func TestAuditPagination(t *testing.T) {
	srv := testServer(t)
	// Five accesses from two requester families.
	for i := 0; i < 3; i++ {
		do(t, srv, http.MethodPost, "/v1/query",
			fmt.Sprintf(`{"requester":"dr-%d","purpose":"care","visibility":2,"sql":"SELECT weight FROM t"}`, i))
	}
	for i := 0; i < 2; i++ {
		do(t, srv, http.MethodPost, "/v1/query",
			fmt.Sprintf(`{"requester":"ads-%d","purpose":"marketing","visibility":2,"sql":"SELECT weight FROM t"}`, i))
	}
	get := func(query string) AuditPage {
		t.Helper()
		rec := do(t, srv, http.MethodGet, "/v1/audit"+query, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/audit%s = %d %s", query, rec.Code, rec.Body)
		}
		var page AuditPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	page := get("")
	if page.Total != 5 || page.Count != 5 {
		t.Fatalf("full log = %+v", page)
	}
	// Log order: the dr queries came first.
	if page.Records[0].Requester != "dr-0" || page.Records[4].Requester != "ads-1" {
		t.Errorf("log order broken: %v, %v", page.Records[0].Requester, page.Records[4].Requester)
	}

	page = get("?offset=4&limit=10")
	if page.Total != 5 || page.Count != 1 || page.Records[0].Requester != "ads-1" {
		t.Errorf("tail page = %+v", page)
	}
	page = get("?offset=5")
	if page.Total != 5 || page.Count != 0 {
		t.Errorf("past-the-end = %+v", page)
	}
	page = get("?prefix=ads")
	if page.Total != 2 || page.Count != 2 || page.Records[0].Requester != "ads-0" {
		t.Errorf("prefix page = %+v", page)
	}
	if page.Records[0].Allowed {
		t.Error("marketing access should have been denied")
	}
	page = get("?prefix=dr&offset=1&limit=1")
	if page.Total != 3 || page.Count != 1 || page.Records[0].Requester != "dr-1" {
		t.Errorf("prefix+paging = %+v", page)
	}
	if rec := do(t, srv, http.MethodGet, "/v1/audit?limit=x", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", rec.Code)
	}
}

// --- batch ingest ---

// TestProvidersBatch checks the bulk-ingest endpoint: atomic registration,
// the shard-count field, and batch atomicity on a bad block.
func TestProvidersBatch(t *testing.T) {
	srv := testServer(t)
	dsl := `provider "omar" threshold 15 {
  attr weight { tuple purpose=care visibility=house granularity=specific retention=year }
}
provider "zoe" threshold 20 {
  attr weight { tuple purpose=care visibility=world granularity=specific retention=indefinite }
}`
	rec := do(t, srv, http.MethodPost, "/v1/providers/batch", dsl)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %s", rec.Code, rec.Body)
	}
	var out struct {
		Registered int `json:"registered"`
		Shards     int `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Registered != 2 || out.Shards != srv.db.ShardCount() || out.Shards < 1 {
		t.Errorf("batch response = %+v (shards = %d)", out, srv.db.ShardCount())
	}
	page := providersPage(t, srv, "")
	if page.Total != 3 { // maria + omar + zoe
		t.Errorf("total after batch = %d", page.Total)
	}
	// A providerless document is a 400 and registers nothing.
	if rec := do(t, srv, http.MethodPost, "/v1/providers/batch", `policy "p" { }`); rec.Code != http.StatusBadRequest {
		t.Errorf("providerless batch = %d", rec.Code)
	}
	if got := providersPage(t, srv, "").Total; got != 3 {
		t.Errorf("failed batch must register nothing: total = %d", got)
	}
}
