package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/privacy"
)

func TestEstimatePWConvergence(t *testing.T) {
	a, provs := table1Fixture()
	pop := []*privacy.Prefs{provs["alice"], provs["ted"], provs["bob"]}
	rng := rand.New(rand.NewSource(1))

	est, err := a.EstimatePW(pop, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-2.0/3.0) > 0.02 {
		t.Errorf("estimated P(W) = %g, want ≈ 2/3", est.P)
	}
	if est.Trials != 60000 || est.Hits <= 0 {
		t.Errorf("estimate bookkeeping wrong: %+v", est)
	}

	def, err := a.EstimatePDefault(pop, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(def.P-1.0/3.0) > 0.02 {
		t.Errorf("estimated P(Default) = %g, want ≈ 1/3", def.P)
	}
}

func TestEstimateErrors(t *testing.T) {
	a, provs := table1Fixture()
	pop := []*privacy.Prefs{provs["alice"]}
	rng := rand.New(rand.NewSource(1))

	if _, err := a.EstimatePW(nil, 10, rng); err == nil {
		t.Error("empty population should error")
	}
	if _, err := a.EstimatePW(pop, 0, rng); err == nil {
		t.Error("zero trials should error")
	}
	if _, err := a.EstimatePW(pop, 10, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestEstimateDegenerate(t *testing.T) {
	a, provs := table1Fixture()
	rng := rand.New(rand.NewSource(7))

	// All-violated population estimates exactly 1.
	pop := []*privacy.Prefs{provs["ted"], provs["bob"]}
	est, err := a.EstimatePW(pop, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est.P != 1 {
		t.Errorf("all-violated estimate = %g, want 1", est.P)
	}
	// All-clean population estimates exactly 0.
	pop = []*privacy.Prefs{provs["alice"]}
	est, err = a.EstimatePW(pop, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est.P != 0 {
		t.Errorf("clean estimate = %g, want 0", est.P)
	}
}
