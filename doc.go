// Package repro is a from-scratch Go reproduction of "Quantifying Privacy
// Violations" (Banerjee, Karimi Adl, Wu & Barker, Secure Data Management
// workshop at VLDB 2011, LNCS 6933): the four-dimensional privacy taxonomy,
// the violation / severity / default model (Defs. 1-5, Eqs. 12-16, 25-31),
// an α-PPDB prototype over a from-scratch relational engine, and the full
// experiment suite.
//
// Commands: cmd/experiments regenerates every table and figure,
// cmd/ppdbaudit audits a policy/preference corpus, cmd/ppdbsim runs the
// Westin-population expansion simulation, cmd/whatif prices a policy
// change (Eq. 31), cmd/ppdbserver serves the PPDB over HTTP, and
// cmd/ppdblint runs the repo-specific static-analysis suite that gates
// `make check` (e.g. `ppdblint -checker lockcheck ./internal/ppdb/...`).
//
// See README.md for the tour and DESIGN.md for the system inventory,
// experiment index and the static-analysis invariants (§7).
package repro
