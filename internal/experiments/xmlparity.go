package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/hierdata"
	"repro/internal/population"
	"repro/internal/privacy"
)

// XMLParityRow compares one provider's assessment in the flat relational
// model and in the hierarchical extension with single-level paths.
type XMLParityRow struct {
	Provider      string
	FlatViolation float64
	HierViolation float64
	Agree         bool
}

// XMLParityResult is E11: when documents are flat (every attribute a direct
// child of the root) the hierarchical extension must reduce exactly to the
// relational model — severity, violation flag and default flag all agree.
// This is the correctness anchor for the Sec. 10 XML extension.
type XMLParityResult struct {
	N        int
	Rows     []XMLParityRow
	AllAgree bool
}

// XMLParity generates a Westin population, assesses each provider flat
// (core.Assessor) and hierarchically (one ⟨/root/attr⟩ path per attribute),
// and reports agreement.
func XMLParity(n int, seed uint64) (*XMLParityResult, error) {
	const pr = privacy.Purpose("service")
	attrs := []string{"weight", "income"}
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: attrs[0], Sensitivity: 4, Purposes: []privacy.Purpose{pr}},
			{Name: attrs[1], Sensitivity: 5, Purposes: []privacy.Purpose{pr}},
		},
	}, seed)
	if err != nil {
		return nil, err
	}
	providers := gen.Generate(n)
	sigma := gen.AttributeSensitivities()

	// Flat policy and its path mirror.
	flat := privacy.NewHousePolicy("flat")
	pathPol := hierdata.NewPathPolicy("paths")
	pathSens := map[string]float64{}
	for _, a := range attrs {
		t := privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 2, Retention: 2}
		flat.Add(a, t)
		pathPol.Add("/rec/"+a, t)
		pathSens["/rec/"+a] = sigma.Get(a)
	}
	flatAssessor, err := core.NewAssessor(flat, sigma, core.Options{})
	if err != nil {
		return nil, err
	}
	hierAssessor := &hierdata.Assessor{Policy: pathPol, PathSens: pathSens}

	// One flat document shared by everyone (values are irrelevant to the
	// model; only presence matters).
	doc, err := hierdata.ParseXML(strings.NewReader(
		"<rec><weight>70</weight><income>50000</income></rec>"))
	if err != nil {
		return nil, err
	}

	res := &XMLParityResult{N: n, AllAgree: true}
	for _, p := range providers {
		flatRep := flatAssessor.AssessProvider(p.Prefs)

		// Mirror the provider's preferences onto paths.
		pp := hierdata.NewPathPrefs(p.Prefs.Provider, p.Prefs.Threshold)
		for _, a := range attrs {
			for _, e := range p.Prefs.ForAttribute(a) {
				pp.Add("/rec/"+a, e.Tuple)
			}
			pp.SetSensitivity("/rec/"+a, p.Prefs.Sensitivity(a, pr))
		}
		hierRep, err := hierAssessor.AssessDocument(doc, pp)
		if err != nil {
			return nil, err
		}
		row := XMLParityRow{
			Provider:      p.Prefs.Provider,
			FlatViolation: flatRep.Violation,
			HierViolation: hierRep.Violation,
			Agree: math.Abs(flatRep.Violation-hierRep.Violation) < 1e-9 &&
				flatRep.Violated == hierRep.Violated &&
				flatRep.Defaults == hierRep.Defaults,
		}
		if !row.Agree {
			res.AllAgree = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fprint summarizes the parity check (per-provider rows only on
// disagreement).
func (r *XMLParityResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E11 — flat/hierarchical parity (N=%d): the XML extension with\n", r.N)
	fmt.Fprintln(w, "single-level paths must reduce to the relational model exactly.")
	disagreements := 0
	for _, row := range r.Rows {
		if !row.Agree {
			disagreements++
		}
	}
	fmt.Fprintf(w, "\nproviders compared: %d, disagreements: %d → parity: %v\n",
		len(r.Rows), disagreements, r.AllAgree)
	if disagreements > 0 {
		rows := [][]string{}
		for _, row := range r.Rows {
			if !row.Agree {
				rows = append(rows, []string{row.Provider, f(row.FlatViolation), f(row.HierViolation)})
			}
		}
		return WriteTable(w, []string{"provider", "flat Violation_i", "hier Violation_i"}, rows)
	}
	return nil
}
