package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/privacy"
)

// TestFindPolicyTuple pins the plan-time gate semantics: exact-purpose
// tuples win in insertion order, a lattice matcher only widens the search
// after every exact candidate missed, and unknown attributes or unstated
// purposes resolve to nothing.
func TestFindPolicyTuple(t *testing.T) {
	hp := privacy.NewHousePolicy("hp").
		Add("email", privacy.Tuple{Purpose: "sharing", Visibility: 4, Granularity: 3, Retention: 5}).
		Add("email", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 3}).
		Add("income", privacy.Tuple{Purpose: "research", Visibility: 1, Granularity: 1, Retention: 2})

	lat := privacy.NewLattice()
	if err := lat.AddEdge("sharing", "bulk-sharing"); err != nil {
		t.Fatal(err)
	}

	eq, err := NewAssessor(hp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cov, err := NewAssessor(hp, nil, Options{Matcher: lat})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("exact match in insertion order", func(t *testing.T) {
		ref, ok := eq.FindPolicyTuple("email", "service")
		if !ok {
			t.Fatal("expected a tuple for (email, service)")
		}
		if ref.Attr != "email" || ref.Index != 1 || ref.Tuple.Purpose != "service" || ref.Tuple.Visibility != 2 {
			t.Fatalf("wrong ref: %+v", ref)
		}
	})

	t.Run("normalizes attribute and purpose", func(t *testing.T) {
		ref, ok := eq.FindPolicyTuple("email", " Service ")
		if !ok || ref.Tuple.Purpose != "service" {
			t.Fatalf("normalized lookup failed: ok=%v ref=%+v", ok, ref)
		}
	})

	t.Run("equality matcher does not widen", func(t *testing.T) {
		if _, ok := eq.FindPolicyTuple("email", "bulk-sharing"); ok {
			t.Fatal("equality matcher must not cover bulk-sharing via sharing")
		}
	})

	t.Run("lattice matcher falls back to covering tuple", func(t *testing.T) {
		ref, ok := cov.FindPolicyTuple("email", "bulk-sharing")
		if !ok {
			t.Fatal("lattice matcher should cover bulk-sharing via sharing")
		}
		if ref.Tuple.Purpose != "sharing" || ref.Index != 0 {
			t.Fatalf("expected the sharing tuple, got %+v", ref)
		}
	})

	t.Run("exact still wins under a lattice", func(t *testing.T) {
		ref, ok := cov.FindPolicyTuple("email", "sharing")
		if !ok || ref.Tuple.Purpose != "sharing" {
			t.Fatalf("exact tuple should win: ok=%v ref=%+v", ok, ref)
		}
	})

	t.Run("unknown attribute", func(t *testing.T) {
		if _, ok := eq.FindPolicyTuple("ssn", "service"); ok {
			t.Fatal("unknown attribute must not resolve")
		}
	})

	t.Run("unstated purpose", func(t *testing.T) {
		if _, ok := cov.FindPolicyTuple("income", "service"); ok {
			t.Fatal("purpose the policy never states must not resolve")
		}
	})
}

// TestBindingForMatchesReference is the randomized property test for the
// per-datum lookup: at every resolvable (attribute, purpose) coordinate the
// columnar fast path must produce a binding identical — minima, binding
// tuples and implicit flags — to the reference preference walk, across
// seeds, matchers and the implicit-zero ablation.
func TestBindingForMatchesReference(t *testing.T) {
	attrs := []string{"income", "weight", "Email", " Address "}
	extraAttrs := append(append([]string(nil), attrs...), "uncovered")
	purposes := []privacy.Purpose{"service", "marketing", "research", "Sharing"}
	extraPurposes := append(append([]privacy.Purpose(nil), purposes...), "unused")

	lat := privacy.NewLattice()
	if err := lat.AddEdge("marketing", "sharing"); err != nil {
		t.Fatal(err)
	}
	if err := lat.AddEdge("service", "research"); err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 42, 2011, 20260809} {
		for _, opts := range []Options{
			{},
			{DisableImplicitZero: true},
			{Matcher: lat},
		} {
			name := fmt.Sprintf("seed=%d/implicit=%v/lattice=%v", seed, !opts.DisableImplicitZero, opts.Matcher != nil)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				hp := randomPolicy(rng, attrs, purposes)
				a, err := NewAssessor(hp, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 100; i++ {
					p := randomPrefs(rng, fmt.Sprintf("p%03d", i), extraAttrs, extraPurposes)
					c := a.Compile(p)
					if c == nil {
						t.Fatal("Compile returned nil for a maskable policy")
					}
					for _, attr := range extraAttrs {
						for _, pr := range extraPurposes {
							ref, ok := a.FindPolicyTuple(attr, pr)
							if !ok {
								continue
							}
							want := a.bindingReference(p, ref)
							got := a.BindingFor(p, c, ref)
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("provider %d (%s, %s): binding differs\n got: %+v\nwant: %+v",
									i, attr, pr, got, want)
							}
							// A nil compilation must fall back to the same answer.
							if fb := a.BindingFor(p, nil, ref); !reflect.DeepEqual(fb, want) {
								t.Fatalf("provider %d (%s, %s): nil-compiled fallback differs", i, attr, pr)
							}
						}
					}
				}
			})
		}
	}
}

// TestBindingForDispatch covers the fast-path guards: a compilation built
// under a different policy must not be trusted, and a policy coordinate
// beyond the cover-mask width must use the reference walk.
func TestBindingForDispatch(t *testing.T) {
	hp := privacy.NewHousePolicy("hp").
		Add("email", privacy.Tuple{Purpose: "service", Visibility: 3, Granularity: 2, Retention: 4})
	a, err := NewAssessor(hp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := privacy.NewPrefs("alice", 10).
		Add("email", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: 2})
	ref, ok := a.FindPolicyTuple("email", "service")
	if !ok {
		t.Fatal("policy tuple not found")
	}
	want := a.bindingReference(p, ref)
	if !want.Found || want.V != 1 {
		t.Fatalf("reference binding unexpected: %+v", want)
	}

	// A compilation from a different assessor (different policy pointer) is
	// stale; BindingFor must ignore it and still answer correctly.
	hp2 := privacy.NewHousePolicy("hp2").
		Add("email", privacy.Tuple{Purpose: "service", Visibility: 3, Granularity: 2, Retention: 4})
	a2, err := NewAssessor(hp2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := a2.Compile(p)
	if got := a.BindingFor(p, stale, ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("stale compiled binding differs\n got: %+v\nwant: %+v", got, want)
	}

	// An index past the mask width forces the reference walk even with a
	// current compilation.
	wide := ref
	wide.Index = maxPolicyTuplesPerAttr
	cur := a.Compile(p)
	if got := a.BindingFor(p, cur, wide); !reflect.DeepEqual(got, a.bindingReference(p, wide)) {
		t.Fatal("wide-index binding must match the reference walk")
	}

	// No preferences at all: the binding reports Found=false and the policy
	// alone bounds the disclosure.
	if b := a.BindingFor(nil, nil, ref); b.Found {
		t.Fatalf("nil prefs must yield an empty binding, got %+v", b)
	}
}
