package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV decodes CSV data (with a header row) into typed rows matching the
// schema. Header names are matched to schema columns case-insensitively; all
// schema columns must be present. Cell text is converted to the column's
// declared type; empty cells become NULL.
func ReadCSV(schema *Schema, r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relational: csv header: %w", err)
	}
	// Map schema column → csv column.
	pos := make([]int, schema.Len())
	for i := range pos {
		pos[i] = -1
	}
	for ci, name := range header {
		if i, ok := schema.ColumnIndex(name); ok {
			pos[i] = ci
		}
	}
	for i, p := range pos {
		if p < 0 {
			return nil, fmt.Errorf("relational: csv is missing column %q", schema.Column(i).Name)
		}
	}
	var rows []Row
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, fmt.Errorf("relational: csv line %d: %w", line, err)
		}
		row := make(Row, schema.Len())
		for i := range row {
			cell := record[pos[i]]
			v, err := parseCell(cell, schema.Column(i).Type)
			if err != nil {
				return rows, fmt.Errorf("relational: csv line %d column %q: %w", line, schema.Column(i).Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ImportCSV loads CSV data (with a header row) into an existing table via
// ReadCSV. It returns the number of rows inserted.
func ImportCSV(t *Table, r io.Reader) (int, error) {
	rows, err := ReadCSV(t.Schema(), r)
	if err != nil {
		return 0, err
	}
	for i, row := range rows {
		if _, err := t.Insert(row); err != nil {
			return i, fmt.Errorf("relational: csv row %d: %w", i+1, err)
		}
	}
	return len(rows), nil
}

// parseCell converts CSV text to a typed value; empty text is NULL.
func parseCell(cell string, ct ColType) (Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return Null(), nil
	}
	switch ct {
	case TypeInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("bad integer %q", cell)
		}
		return Int(n), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Null(), fmt.Errorf("bad float %q", cell)
		}
		return Float(f), nil
	case TypeBool:
		switch strings.ToLower(cell) {
		case "true", "t", "1", "yes":
			return Bool(true), nil
		case "false", "f", "0", "no":
			return Bool(false), nil
		default:
			return Null(), fmt.Errorf("bad boolean %q", cell)
		}
	default:
		return Text(cell), nil
	}
}

// ExportCSV writes a query Result as CSV with a header row.
func ExportCSV(res *Result, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(res.Columns); err != nil {
		return fmt.Errorf("relational: csv export: %w", err)
	}
	record := make([]string, len(res.Columns))
	for _, row := range res.Rows {
		for i, v := range row {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.Display()
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relational: csv export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportTableCSV writes an entire table as CSV in insertion order.
func ExportTableCSV(t *Table, w io.Writer) error {
	schema := t.Schema()
	cols := make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Column(i).Name
	}
	res := &Result{Columns: cols}
	t.Scan(func(_ RowID, row Row) bool {
		res.Rows = append(res.Rows, row)
		return true
	})
	return ExportCSV(res, w)
}
