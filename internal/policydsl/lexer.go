// Package policydsl parses and renders a small text language for declaring
// house policies, attribute sensitivities and provider preferences — the
// concrete syntax that makes the model's inputs auditable artifacts rather
// than code. A JSON binding is also provided for interchange.
//
// Example document:
//
//	policy "clinic-v1" {
//	  attr weight {
//	    tuple purpose=care visibility=house granularity=specific retention=year
//	  }
//	  sensitivity weight 4
//	}
//
//	provider "alice" threshold 50 {
//	  attr weight {
//	    sens value=1 v=1 g=2 r=1
//	    tuple purpose=care visibility=world granularity=specific retention=indefinite
//	  }
//	}
//
// Level values may be scale names (on the document's scales, default
// taxonomy scales) or bare integers.
package policydsl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tLBrace
	tRBrace
	tEquals
)

type tok struct {
	kind tokKind
	text string
	line int
}

func (t tok) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tLBrace:
		return "{"
	case tRBrace:
		return "}"
	case tEquals:
		return "="
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func lex(src string) ([]tok, error) {
	var toks []tok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, tok{tLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, tok{tRBrace, "}", line})
			i++
		case c == '=':
			toks = append(toks, tok{tEquals, "=", line})
			i++
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("policydsl: line %d: unterminated string", line)
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("policydsl: line %d: unterminated string", line)
			}
			toks = append(toks, tok{tString, b.String(), line})
			i = j + 1
		case isNumStart(c):
			j := i
			for j < len(src) && (isDigit(src[j]) || src[j] == '.' || src[j] == '-' || src[j] == '+' || src[j] == 'e' || src[j] == 'E') {
				j++
			}
			toks = append(toks, tok{tNumber, src[i:j], line})
			i = j
		case isIdentRune(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			toks = append(toks, tok{tIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("policydsl: line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, tok{kind: tEOF, line: line})
	return toks, nil
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isNumStart(c byte) bool { return isDigit(c) || c == '-' || c == '+' }

// isIdentRune admits letters, digits, '_' and '-' (purpose and scale names
// like "third-party" and "email-marketing" are single identifiers).
func isIdentRune(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
