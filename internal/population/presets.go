package population

import "repro/internal/privacy"

// Attribute-sensitivity presets grounded in the survey literature the paper
// cites (Sec. 6.1): Westin ranks financial and health information most
// sensitive; Kobsa ranks financial / purchase-related / online behaviour /
// religion / politics / occupation above preferences, demographics and
// lifestyle. Values are on a 1-5 integer scale as Eq. 10 suggests
// ("sensitivity values (defined as an integer number)").
const (
	SensMinimal  = 1.0 // preferences, lifestyle
	SensLow      = 2.0 // demographics
	SensModerate = 3.0 // occupation, online behaviour
	SensHigh     = 4.0 // purchase history, political/religious affiliation
	SensCritical = 5.0 // financial, health
)

// WestinKobsaSensitivities returns the house-side Σ vector for the named
// attribute classes. Unknown attributes keep the package default of 1.
func WestinKobsaSensitivities() privacy.AttributeSensitivities {
	as := privacy.AttributeSensitivities{}
	for attr, v := range map[string]float64{
		// Westin's top tier.
		"income":    SensCritical,
		"salary":    SensCritical,
		"balance":   SensCritical,
		"card":      SensCritical,
		"condition": SensCritical,
		"diagnosis": SensCritical,
		"weight":    SensHigh, // health-adjacent (the paper's Σ^Weight = 4)
		// Kobsa's upper-middle tier.
		"purchases":  SensHigh,
		"religion":   SensHigh,
		"party":      SensHigh,
		"browsing":   SensModerate,
		"location":   SensModerate,
		"occupation": SensModerate,
		// Lower tiers.
		"age":        SensLow,
		"city":       SensLow,
		"gender":     SensLow,
		"lifestyle":  SensMinimal,
		"preference": SensMinimal,
	} {
		as.Set(attr, v)
	}
	return as
}
