package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/privacy"
)

func TestDiff(t *testing.T) {
	cases := []struct {
		pref, pol privacy.Level
		want      int
	}{
		{0, 0, 0}, {2, 2, 0}, {3, 1, 0}, {1, 3, 2}, {0, 5, 5},
	}
	for _, c := range cases {
		if got := Diff(c.pref, c.pol); got != c.want {
			t.Errorf("Diff(%d, %d) = %d, want %d", c.pref, c.pol, got, c.want)
		}
	}
}

func TestComp(t *testing.T) {
	pref := privacy.Tuple{Purpose: "research", Visibility: 1}
	pol := privacy.Tuple{Purpose: "research", Visibility: 2}
	if !Comp("weight", pref, "Weight", pol, nil) {
		t.Error("same attr (case-insensitive) + same purpose should be comparable")
	}
	if Comp("weight", pref, "age", pol, nil) {
		t.Error("different attributes are incomparable (Eq. 13 first case)")
	}
	other := pol
	other.Purpose = "marketing"
	if Comp("weight", pref, "weight", other, nil) {
		t.Error("different purposes are incomparable (Eq. 13 second case)")
	}
}

func TestConfZeroWhenIncomparable(t *testing.T) {
	pref := privacy.Tuple{Purpose: "a", Visibility: 0}
	pol := privacy.Tuple{Purpose: "b", Visibility: 5}
	if c := Conf("x", pref, "x", pol, 4, privacy.UnitSensitivity, nil); c != 0 {
		t.Errorf("incomparable conf = %g, want 0", c)
	}
}

// table1Fixture reproduces the Sec. 8 worked example. The house policy on
// Weight is ⟨pr, v, g, r⟩ with v=2, g=2, r=2 on the default scales;
// Σ^Weight = 4. Age never violates anyone (the paper's simplifying
// assumption), arranged by giving everyone maximal Age preferences.
func table1Fixture() (*Assessor, map[string]*privacy.Prefs) {
	const pr = privacy.Purpose("research")
	v, g, r := privacy.Level(2), privacy.Level(2), privacy.Level(2)

	hp := privacy.NewHousePolicy("table1")
	hp.Add("Weight", privacy.Tuple{Purpose: pr, Visibility: v, Granularity: g, Retention: r})
	hp.Add("Age", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})

	sigma := privacy.AttributeSensitivities{}
	sigma.Set("Weight", 4)
	sigma.Set("Age", 1)

	maxAge := privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: 3, Retention: 5}

	alice := privacy.NewPrefs("alice", 10)
	alice.Add("Weight", privacy.Tuple{Purpose: pr, Visibility: v + 2, Granularity: g + 1, Retention: r + 3})
	alice.SetSensitivity("Weight", privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1})
	alice.Add("Age", maxAge)

	ted := privacy.NewPrefs("ted", 50)
	ted.Add("Weight", privacy.Tuple{Purpose: pr, Visibility: v + 2, Granularity: g - 1, Retention: r + 2})
	ted.SetSensitivity("Weight", privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 5, Retention: 2})
	ted.Add("Age", maxAge)

	bob := privacy.NewPrefs("bob", 100)
	bob.Add("Weight", privacy.Tuple{Purpose: pr, Visibility: v, Granularity: g - 1, Retention: r - 1})
	bob.SetSensitivity("Weight", privacy.Sensitivity{Value: 4, Visibility: 1, Granularity: 3, Retention: 2})
	bob.Add("Age", maxAge)

	a, err := NewAssessor(hp, sigma, Options{})
	if err != nil {
		panic(err)
	}
	return a, map[string]*privacy.Prefs{"alice": alice, "ted": ted, "bob": bob}
}

// TestTable1 is the golden reproduction of the paper's Table 1 and
// Eqs. 19-24: conf values 0 / 60 / 80, w = 0/1/1, defaults 0/1/0,
// P(Default) = 1/3.
func TestTable1(t *testing.T) {
	a, provs := table1Fixture()

	want := map[string]struct {
		conf     float64
		violated bool
		defaults bool
	}{
		"alice": {0, false, false},
		"ted":   {60, true, true},
		"bob":   {80, true, false},
	}
	for name, w := range want {
		rep := a.AssessProvider(provs[name])
		if rep.Violation != w.conf {
			t.Errorf("%s Violation = %g, want %g", name, rep.Violation, w.conf)
		}
		if rep.Violated != w.violated {
			t.Errorf("%s w_i = %v, want %v", name, rep.Violated, w.violated)
		}
		if rep.Defaults != w.defaults {
			t.Errorf("%s default_i = %v, want %v", name, rep.Defaults, w.defaults)
		}
	}

	pop := []*privacy.Prefs{provs["alice"], provs["ted"], provs["bob"]}
	rep := a.AssessPopulation(pop)
	if rep.TotalViolations != 140 {
		t.Errorf("Violations (Eq. 16) = %g, want 140", rep.TotalViolations)
	}
	if got, want := rep.PDefault, 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(Default) = %g, want 1/3 (Eq. 24)", got)
	}
	if got, want := rep.PW, 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(W) = %g, want 2/3", got)
	}
	if rep.ViolatedCount != 2 || rep.DefaultCount != 1 || rep.N != 3 {
		t.Errorf("counts wrong: %+v", rep)
	}
}

// TestTable1Dimensions checks the per-dimension decomposition: Ted is
// violated along granularity only; Bob along granularity and retention
// (the paper's narrative before Eq. 19).
func TestTable1Dimensions(t *testing.T) {
	a, provs := table1Fixture()

	ted := a.AssessProvider(provs["ted"])
	if len(ted.Pairs) != 1 {
		t.Fatalf("ted pairs = %d, want 1", len(ted.Pairs))
	}
	if len(ted.Pairs[0].Dims) != 1 || ted.Pairs[0].Dims[0].Dimension != privacy.DimGranularity {
		t.Errorf("ted dims = %+v, want granularity only", ted.Pairs[0].Dims)
	}
	if ted.Pairs[0].Dims[0].Severity != 60 {
		t.Errorf("ted granularity severity = %g, want 60 (1×4×3×5)", ted.Pairs[0].Dims[0].Severity)
	}

	bob := a.AssessProvider(provs["bob"])
	if len(bob.Pairs) != 1 {
		t.Fatalf("bob pairs = %d, want 1", len(bob.Pairs))
	}
	dims := bob.Pairs[0].Dims
	if len(dims) != 2 {
		t.Fatalf("bob dims = %+v, want granularity + retention", dims)
	}
	sev := map[privacy.Dimension]float64{}
	for _, d := range dims {
		sev[d.Dimension] = d.Severity
	}
	if sev[privacy.DimGranularity] != 48 { // 1×4×4×3
		t.Errorf("bob granularity severity = %g, want 48", sev[privacy.DimGranularity])
	}
	if sev[privacy.DimRetention] != 32 { // 1×4×4×2
		t.Errorf("bob retention severity = %g, want 32", sev[privacy.DimRetention])
	}
}

func TestConfMatchesAssessor(t *testing.T) {
	a, provs := table1Fixture()
	pol, _ := a.Policy().Find("weight", "research")
	ted := provs["ted"]
	pref, _ := ted.Find("weight", "research")
	c := Conf("weight", pref, "weight", pol, 4, ted.Sensitivity("weight", "research"), nil)
	if c != 60 {
		t.Errorf("Conf = %g, want 60 (Eq. 20)", c)
	}
}

func TestImplicitZeroPurpose(t *testing.T) {
	hp := privacy.NewHousePolicy("v1")
	hp.Add("x", privacy.Tuple{Purpose: "marketing", Visibility: 2, Granularity: 1, Retention: 1})
	a, err := NewAssessor(hp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Provider never mentioned marketing → implicit ⟨pr,0,0,0⟩ → violated.
	p := privacy.NewPrefs("p", 100)
	p.Add("x", privacy.Tuple{Purpose: "research", Visibility: 4, Granularity: 3, Retention: 5})
	if !a.Violated(p) {
		t.Error("unanticipated purpose must violate under the Sec. 5 rule")
	}
	rep := a.AssessProvider(p)
	if len(rep.Pairs) != 1 || !rep.Pairs[0].ImplicitZero {
		t.Errorf("implicit-zero pair not flagged: %+v", rep.Pairs)
	}
	// Severity: overshoot (2+1+1)=4 with unit weights.
	if rep.Violation != 4 {
		t.Errorf("implicit-zero severity = %g, want 4", rep.Violation)
	}

	// Ablation: disabling the rule removes the violation.
	a2, _ := NewAssessor(hp, nil, Options{DisableImplicitZero: true})
	if a2.Violated(p) {
		t.Error("ablated assessor should not flag the unanticipated purpose")
	}
}

func TestLatticeMatcherAssessment(t *testing.T) {
	l := privacy.NewLattice()
	if err := l.AddEdge("marketing", "email-marketing"); err != nil {
		t.Fatal(err)
	}
	hp := privacy.NewHousePolicy("v1")
	hp.Add("x", privacy.Tuple{Purpose: "email-marketing", Visibility: 2, Granularity: 1, Retention: 1})

	p := privacy.NewPrefs("p", 100)
	p.Add("x", privacy.Tuple{Purpose: "marketing", Visibility: 3, Granularity: 3, Retention: 3})

	// Equality matching: email-marketing unanticipated → violation.
	eq, _ := NewAssessor(hp, nil, Options{})
	if !eq.Violated(p) {
		t.Error("equality matcher should flag unanticipated specialization")
	}
	// Lattice matching: the general consent covers the specialization and
	// bounds the policy → no violation.
	lat, _ := NewAssessor(hp, nil, Options{Matcher: l})
	if lat.Violated(p) {
		t.Error("lattice matcher should accept covered specialization")
	}
}

func TestAlphaPPDB(t *testing.T) {
	if !IsAlphaPPDB(0.1, 0.1) {
		t.Error("P(W) = α should qualify (Eq. 9 is ≤)")
	}
	if IsAlphaPPDB(0.2, 0.1) {
		t.Error("P(W) > α should not qualify")
	}
	a, provs := table1Fixture()
	pop := []*privacy.Prefs{provs["alice"], provs["ted"], provs["bob"]}
	if got := a.MinAlpha(pop); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("MinAlpha = %g, want 2/3", got)
	}
}

func TestEmptyPopulation(t *testing.T) {
	a, _ := table1Fixture()
	rep := a.AssessPopulation(nil)
	if rep.PW != 0 || rep.PDefault != 0 || rep.N != 0 {
		t.Errorf("empty population should be all-zero: %+v", rep)
	}
}

func TestViolatedDimensionsHistogram(t *testing.T) {
	a, provs := table1Fixture()
	pop := []*privacy.Prefs{provs["alice"], provs["ted"], provs["bob"]}
	hist := a.ViolatedDimensionsHistogram(pop)
	if hist[privacy.DimGranularity] != 2 { // Ted and Bob
		t.Errorf("granularity count = %d, want 2", hist[privacy.DimGranularity])
	}
	if hist[privacy.DimRetention] != 1 { // Bob
		t.Errorf("retention count = %d, want 1", hist[privacy.DimRetention])
	}
	if hist[privacy.DimVisibility] != 0 {
		t.Errorf("visibility count = %d, want 0", hist[privacy.DimVisibility])
	}
}

func TestTopViolated(t *testing.T) {
	a, provs := table1Fixture()
	pop := []*privacy.Prefs{provs["alice"], provs["ted"], provs["bob"]}
	top := a.TopViolated(pop, 2)
	if len(top) != 2 || top[0].Provider != "bob" || top[1].Provider != "ted" {
		t.Errorf("TopViolated = %+v", top)
	}
	all := a.TopViolated(pop, 10)
	if len(all) != 3 || all[2].Provider != "alice" {
		t.Errorf("TopViolated overflow = %+v", all)
	}
}

func TestNewAssessorErrors(t *testing.T) {
	if _, err := NewAssessor(nil, nil, Options{}); err == nil {
		t.Error("nil policy should be rejected")
	}
	bad := privacy.AttributeSensitivities{"x": -1}
	if _, err := NewAssessor(privacy.NewHousePolicy("p"), bad, Options{}); err == nil {
		t.Error("negative Σ should be rejected")
	}
}

// Property: severity is monotone under policy widening — widening any
// dimension of any policy tuple never decreases Violation_i (sensitivities
// are non-negative). This is the monotonicity the Sec. 9 economics relies on.
func TestSeverityMonotoneUnderWidening(t *testing.T) {
	f := func(pv, pg, prr, hv, hg, hr uint8, dim uint8, delta uint8) bool {
		pref := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(pv % 6), Granularity: privacy.Level(pg % 6), Retention: privacy.Level(prr % 6)}
		polT := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(hv % 6), Granularity: privacy.Level(hg % 6), Retention: privacy.Level(hr % 6)}
		hp := privacy.NewHousePolicy("a")
		hp.Add("x", polT)
		d := privacy.OrderedDimensions[int(dim)%3]
		wide := hp.Widen("b", "x", d, privacy.Level(delta%4))

		prov := privacy.NewPrefs("i", 1)
		prov.Add("x", pref)
		prov.SetSensitivity("x", privacy.Sensitivity{Value: 2, Visibility: 1, Granularity: 3, Retention: 2})

		a1, _ := NewAssessor(hp, nil, Options{})
		a2, _ := NewAssessor(wide, nil, Options{})
		return a2.Severity(prov) >= a1.Severity(prov)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: w_i = 1 exactly when Violation_i > 0, provided all sensitivity
// components are strictly positive (severity cannot vanish on a violated
// dimension).
func TestViolatedIffPositiveSeverity(t *testing.T) {
	f := func(pv, pg, prr, hv, hg, hr uint8) bool {
		pref := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(pv % 6), Granularity: privacy.Level(pg % 6), Retention: privacy.Level(prr % 6)}
		polT := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(hv % 6), Granularity: privacy.Level(hg % 6), Retention: privacy.Level(hr % 6)}
		hp := privacy.NewHousePolicy("a")
		hp.Add("x", polT)
		prov := privacy.NewPrefs("i", 1)
		prov.Add("x", pref)

		a, _ := NewAssessor(hp, nil, Options{})
		return a.Violated(prov) == (a.Severity(prov) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
