// Package ledger maintains a materialized view of a population's violation
// state: one memoized core.ProviderReport per provider, keyed on
// (policy version, provider prefs version), plus running aggregates
// (Σ w_i, Σ default_i, Σ Violation_i). The paper's population quantities —
// P(W) = Σ w_i / N (Def. 2), P(Default) (Def. 5) and the house total
// Violations (Eq. 16) — are sums of independent per-provider terms, so they
// admit classic incremental view maintenance: applying a preference edit
// costs one re-assessment (O(changed)), and the population answer is read
// from the aggregates in O(1) instead of recomputed over all N providers.
//
// Invalidation rules:
//
//   - a provider's row is recomputed when its prefs version changes
//     (self-service edit, re-registration) — O(1) per edit;
//   - a policy swap bumps the policy version and invalidates every row —
//     Rebuild re-assesses the whole population, fanned out across a
//     bounded worker pool (a cold rebuild, also used for load-from-disk);
//   - a removal subtracts the provider's contribution from the aggregates.
//
// Exactness: the integer aggregates (N, violated, defaulted — and hence
// P(W) and P(Default), which are ratios of integers) are always exact.
// The running float total drifts from a fresh sum by at most accumulated
// rounding (adds and subtracts in edit order), so Summary is O(1) but
// last-ulp approximate in TotalViolations; Snapshot re-sums the memoized
// rows in sorted provider order and is bit-identical to a full recompute
// over the same sorted population.
package ledger

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/privacy"
)

// Instrumentation (DESIGN.md §10). Counters aggregate across every ledger
// in the process; the rows gauge is set by whichever ledger mutated last
// (one server process holds one live ledger). Hoisted once so the hot
// paths pay a single atomic op, not a registry lookup.
var (
	mMemoHits = metrics.Default.Counter("ledger_memo_hits_total",
		"Upsert calls answered by a current memoized row (no re-assessment)")
	mMemoMisses = metrics.Default.Counter("ledger_memo_misses_total",
		"Upsert calls that had to re-assess the provider")
	mDeltaApplies = metrics.Default.Counter("ledger_delta_applies_total",
		"incremental row installs with O(1) aggregate maintenance")
	mRebuilds = metrics.Default.Counter("ledger_rebuilds_total",
		"full-population rebuilds (policy swaps and cold loads)")
	mRows = metrics.Default.Gauge("ledger_rows",
		"provider rows currently memoized by the live ledger")
)

// entry is one provider's materialized row.
type entry struct {
	prefs *privacy.Prefs
	// prefsVersion is the registration counter value the report was
	// computed from; policyVersion the policy counter. Together they key
	// the memoization: a matching pair means the report is current.
	prefsVersion  uint64
	policyVersion uint64
	report        core.ProviderReport
}

// Ledger is the materialized violation view. Safe for concurrent use.
type Ledger struct {
	mu sync.RWMutex

	assessor      *core.Assessor
	policyVersion uint64

	entries map[string]*entry
	keys    []string // sorted; kept in lockstep with entries

	// Running aggregates over all entries.
	violated  int
	defaulted int
	total     float64
}

// Item is one (key, prefs, version) triple for batch application.
type Item struct {
	Key     string
	Prefs   *privacy.Prefs
	Version uint64
}

// Summary is the O(1) population answer read from the running aggregates.
type Summary struct {
	N               int
	ViolatedCount   int     // Σ_i w_i, exact
	DefaultCount    int     // Σ_i default_i, exact
	TotalViolations float64 // Eq. 16, running (last-ulp approximate)
	PW              float64 // Def. 2, exact ratio of integers
	PDefault        float64 // Def. 5, exact ratio of integers
	PolicyVersion   uint64
}

// New builds an empty ledger assessing against a.
func New(a *core.Assessor, policyVersion uint64) (*Ledger, error) {
	if a == nil {
		return nil, fmt.Errorf("ledger: nil assessor")
	}
	return &Ledger{
		assessor:      a,
		policyVersion: policyVersion,
		entries:       make(map[string]*entry),
	}, nil
}

// PolicyVersion returns the policy counter the rows are keyed on.
func (l *Ledger) PolicyVersion() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.policyVersion
}

// Len returns the number of materialized providers.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Upsert applies one provider registration or preference edit: if the
// memoized row already matches (policy version, prefs version) it is
// returned untouched; otherwise the provider is re-assessed — O(1), the
// delta apply — and the aggregates are adjusted.
func (l *Ledger) Upsert(key string, prefs *privacy.Prefs, prefsVersion uint64) core.ProviderReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[key]; ok && e.prefsVersion == prefsVersion && e.policyVersion == l.policyVersion {
		mMemoHits.Inc()
		return e.report
	}
	mMemoMisses.Inc()
	rep := l.assessor.AssessOne(prefs)
	l.applyLocked(key, prefs, prefsVersion, rep)
	return rep
}

// UpsertBatch applies many registrations at once, fanning the assessments
// out across a bounded worker pool — the cold-build path for bulk loads.
func (l *Ledger) UpsertBatch(items []Item) {
	l.mu.Lock()
	defer l.mu.Unlock()
	mMemoMisses.Add(uint64(len(items)))
	reports := make([]core.ProviderReport, len(items))
	fanOut(len(items), func(i int) {
		reports[i] = l.assessor.AssessOne(items[i].Prefs)
	})
	for i, it := range items {
		l.applyLocked(it.Key, it.Prefs, it.Version, reports[i])
	}
}

// Remove drops a provider's row and subtracts its contribution. It reports
// whether the provider was present.
func (l *Ledger) Remove(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		return false
	}
	l.subtractLocked(e)
	delete(l.entries, key)
	i := sort.SearchStrings(l.keys, key)
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	mRows.Set(float64(len(l.entries)))
	return true
}

// Rebuild invalidates every row against a new assessor (policy swap) and
// re-assesses the whole population across a bounded worker pool. The
// aggregates are re-summed from scratch in sorted provider order.
func (l *Ledger) Rebuild(a *core.Assessor, policyVersion uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	mRebuilds.Inc()
	l.assessor = a
	l.policyVersion = policyVersion
	reports := make([]core.ProviderReport, len(l.keys))
	fanOut(len(l.keys), func(i int) {
		reports[i] = a.AssessOne(l.entries[l.keys[i]].prefs)
	})
	l.violated, l.defaulted, l.total = 0, 0, 0
	for i, k := range l.keys {
		e := l.entries[k]
		e.report = reports[i]
		e.policyVersion = policyVersion
		l.addLocked(e)
	}
}

// Report returns the memoized row for one provider — the O(1) per-provider
// violation read (self-service audits).
func (l *Ledger) Report(key string) (core.ProviderReport, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.entries[key]
	if !ok {
		return core.ProviderReport{}, false
	}
	return e.report, true
}

// Summary answers P(W), P(Default) and the counts from the running
// aggregates in O(1).
func (l *Ledger) Summary() Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Summary{
		N:               len(l.entries),
		ViolatedCount:   l.violated,
		DefaultCount:    l.defaulted,
		TotalViolations: l.total,
		PolicyVersion:   l.policyVersion,
	}
	if s.N > 0 {
		s.PW = float64(s.ViolatedCount) / float64(s.N)
		s.PDefault = float64(s.DefaultCount) / float64(s.N)
	}
	return s
}

// Snapshot assembles the full population report from the memoized rows in
// sorted provider order — O(N) copying, zero re-assessment. The float
// total is re-summed in that order, so the result is bit-identical to a
// full recompute over the same sorted population.
func (l *Ledger) Snapshot() core.PopulationReport {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rows := make([]core.ProviderReport, len(l.keys))
	for i, k := range l.keys {
		rows[i] = l.entries[k].report
	}
	return core.AssemblePopulation(rows)
}

// WouldDefault lists the providers whose Violation_i exceeds their
// threshold, in sorted key order.
func (l *Ledger) WouldDefault() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []string
	for _, k := range l.keys {
		if e := l.entries[k]; e.report.Defaults {
			out = append(out, e.report.Provider)
		}
	}
	return out
}

// applyLocked installs a freshly computed report for key, adjusting the
// aggregates by the delta (subtract the old row, add the new).
func (l *Ledger) applyLocked(key string, prefs *privacy.Prefs, prefsVersion uint64, rep core.ProviderReport) {
	mDeltaApplies.Inc()
	defer func() { mRows.Set(float64(len(l.entries))) }()
	if e, ok := l.entries[key]; ok {
		l.subtractLocked(e)
		e.prefs, e.prefsVersion, e.policyVersion, e.report = prefs, prefsVersion, l.policyVersion, rep
		l.addLocked(e)
		return
	}
	e := &entry{prefs: prefs, prefsVersion: prefsVersion, policyVersion: l.policyVersion, report: rep}
	l.entries[key] = e
	i := sort.SearchStrings(l.keys, key)
	l.keys = append(l.keys, "")
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.addLocked(e)
}

func (l *Ledger) addLocked(e *entry) {
	if e.report.Violated {
		l.violated++
	}
	if e.report.Defaults {
		l.defaulted++
	}
	l.total += e.report.Violation
}

func (l *Ledger) subtractLocked(e *entry) {
	if e.report.Violated {
		l.violated--
	}
	if e.report.Defaults {
		l.defaulted--
	}
	l.total -= e.report.Violation
}

// fanOut runs f(0..n-1) across a bounded worker pool sized to the
// machine; n below the bound degrades to one goroutine per index.
func fanOut(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
