package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorderChecker enforces a declared partial order over lock classes
// against the observed inter-procedural lock graph. The order is declared
// in source with
//
//	//lint:lockorder ppdb.DB < ppdb.dbShard < ledger.Ledger < ledger.shard
//
// where each class is pkgname.TypeName for a struct carrying a mutex field
// (or pkgname.varname for a package-level mutex). Directives compose: the
// union of all chains is transitively closed.
//
// The checker walks every function body (closures inlined, per
// callgraph.go) tracking the multiset of lock classes held — Lock/RLock
// acquires, Unlock/RUnlock releases, deferred unlocks hold to function
// end — and records an edge A→B whenever B is acquired with A held, either
// directly or through any chain of calls (interface calls
// over-approximated). An edge is reported when the declared order puts B
// before A, or when it closes a cycle among observed classes; the
// diagnostic names the full call path from the holding function to the
// acquiring one. Nested acquisitions of the same class (multiple shards of
// one type) are out of scope — the repo orders those by shard index.
func lockorderChecker() *Checker {
	return &Checker{
		Name:       "lockorder",
		Doc:        "enforce the declared //lint:lockorder partial order over the inter-procedural lock graph",
		RunProgram: runLockorder,
	}
}

const lockorderPrefix = "//lint:lockorder"

// lockOrderDecl is the merged, transitively closed declared order.
type lockOrderDecl struct {
	classes map[string]bool
	before  map[string]map[string]bool // before[a][b]: a must be acquired before b
}

// parseLockOrder collects //lint:lockorder directives across the program,
// reporting malformed or self-contradictory ones.
func parseLockOrder(pass *ProgramPass) *lockOrderDecl {
	d := &lockOrderDecl{classes: map[string]bool{}, before: map[string]map[string]bool{}}
	addBefore := func(a, b string) {
		if d.before[a] == nil {
			d.before[a] = map[string]bool{}
		}
		d.before[a][b] = true
	}
	var firstPos token.Pos
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, lockorderPrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, lockorderPrefix))
					parts := strings.Split(rest, "<")
					var chain []string
					ok := len(parts) >= 2
					for _, p := range parts {
						p = strings.TrimSpace(p)
						if !validLockClass(p) {
							ok = false
							break
						}
						chain = append(chain, p)
					}
					if !ok {
						pass.Reportf(c.Pos(), "malformed lint:lockorder directive: want //lint:lockorder pkg.Class < pkg.Class [< ...]")
						continue
					}
					if firstPos == token.NoPos {
						firstPos = c.Pos()
					}
					for i, a := range chain {
						d.classes[a] = true
						for _, b := range chain[i+1:] {
							addBefore(a, b)
						}
					}
				}
			}
		}
	}
	// Transitive closure, then reject orders that cycle back on themselves.
	classes := sortedStringSet(d.classes)
	for _, k := range classes {
		for _, a := range classes {
			for _, b := range classes {
				if d.before[a][k] && d.before[k][b] {
					addBefore(a, b)
				}
			}
		}
	}
	for _, a := range classes {
		if d.before[a][a] {
			pass.Reportf(firstPos, "conflicting lint:lockorder directives: %s is ordered before itself", a)
			return &lockOrderDecl{classes: map[string]bool{}, before: map[string]map[string]bool{}}
		}
	}
	return d
}

// validLockClass matches pkgname.Name with both halves non-empty
// identifiers.
func validLockClass(s string) bool {
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if i == dot {
			continue
		}
		if !isNameRune(s[i]) {
			return false
		}
	}
	return true
}

// lockClass names the lock class of a mutex expression: the named struct
// type owning the mutex field ("ppdb.DB"), a package-level mutex variable
// ("fault.mu"), or the receiver type of an embedded-mutex Lock call. Local
// mutexes return "" and are not tracked.
func lockClass(pkg *Package, e ast.Expr) string {
	e = unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name()
			}
			return ""
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if vr, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && vr.Pkg() != nil {
					return vr.Pkg().Name() + "." + vr.Name()
				}
			}
		}
		return ""
	}
	if id, ok := e.(*ast.Ident); ok {
		if vr, ok := pkg.Info.Uses[id].(*types.Var); ok && vr.Pkg() != nil {
			if vr.Parent() == vr.Pkg().Scope() {
				return vr.Pkg().Name() + "." + vr.Name()
			}
		}
	}
	return ""
}

// lockOp classifies a call as a lock acquire (+1) or release (-1) of a
// class, resolving embedded-mutex calls (x.Lock()) through the receiver
// expression's type.
func lockOp(pkg *Package, call *ast.CallExpr) (string, int) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = 1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return "", 0
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0
	}
	class := lockClass(pkg, sel.X)
	if class == "" {
		// Embedded mutex: x.Lock() where x is the owning struct itself.
		if t := pkg.Info.TypeOf(sel.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
				class = n.Obj().Pkg().Name() + "." + n.Obj().Name()
			}
		}
	}
	return class, op
}

// lockEdge is one observed "to acquired while from is held" edge with a
// witness position and call path.
type lockEdge struct {
	from, to string
	pos      token.Pos
	path     string
}

// lockedCall is a call made while at least one lock class is held.
type lockedCall struct {
	callee *Func
	held   []string
	pos    token.Pos
}

// fnLockInfo is the per-function lock summary.
type fnLockInfo struct {
	direct   []lockEdge           // intra-procedural nesting edges
	acquired map[string]token.Pos // classes acquired anywhere in the body
	calls    []lockedCall
}

// lockWalk scans fn's body in source order, tracking the held multiset.
// Branch bodies are walked sequentially under the conservative assumption
// that each is lock-balanced; deferred unlocks are skipped so their class
// stays held to the end of the function.
func lockWalk(fn *Func) *fnLockInfo {
	info := &fnLockInfo{acquired: map[string]token.Pos{}}
	pkg := fn.Pkg
	callees := map[token.Pos][]*Func{}
	for _, c := range fn.Calls {
		callees[c.Pos] = append(callees[c.Pos], c.Callee)
	}
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if _, op := lockOp(pkg, d.Call); op == -1 {
				deferred[d.Call] = true
			}
		}
		return true
	})
	var held []string
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		if class, op := lockOp(pkg, call); op != 0 {
			if class == "" {
				return true
			}
			if op == 1 {
				if _, seen := info.acquired[class]; !seen {
					info.acquired[class] = call.Pos()
				}
				for _, h := range distinctInOrder(held) {
					if h != class {
						info.direct = append(info.direct, lockEdge{from: h, to: class, pos: call.Pos(), path: fn.Name()})
					}
				}
				held = append(held, class)
			} else {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		}
		if len(held) > 0 {
			snap := distinctInOrder(held)
			positions := []token.Pos{call.Pos()}
			for _, a := range call.Args {
				positions = append(positions, a.Pos())
			}
			for _, p := range positions {
				for _, g := range callees[p] {
					info.calls = append(info.calls, lockedCall{callee: g, held: snap, pos: call.Pos()})
				}
			}
		}
		return true
	})
	return info
}

// distinctInOrder deduplicates preserving first occurrence.
func distinctInOrder(s []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// sortedStringSet returns the keys of m in sorted order.
func sortedStringSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// computeAcquires propagates "may acquire class C" backwards over call
// edges to a fixpoint. The result maps each function and class to the next
// hop toward a direct acquisition (nil for a direct one), which
// reconstructs a witness call path. First-discovery order is deterministic
// (functions in position order, calls in source order).
func computeAcquires(prog *Program, infos map[*Func]*fnLockInfo) map[*Func]map[string]*Func {
	acq := map[*Func]map[string]*Func{}
	for _, fn := range prog.Functions() {
		m := map[string]*Func{}
		for class := range infos[fn].acquired {
			m[class] = nil
		}
		acq[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Functions() {
			for _, c := range fn.Calls {
				for _, class := range sortedAcqClasses(acq[c.Callee]) {
					if _, ok := acq[fn][class]; !ok {
						acq[fn][class] = c.Callee
						changed = true
					}
				}
			}
		}
	}
	return acq
}

func sortedAcqClasses(m map[string]*Func) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// acquirePath renders the witness call chain from fn to the function that
// directly acquires class.
func acquirePath(acq map[*Func]map[string]*Func, fn *Func, class string) string {
	var parts []string
	for cur := fn; ; {
		parts = append(parts, cur.Name())
		next, ok := acq[cur][class]
		if !ok || next == nil {
			break
		}
		cur = next
	}
	return strings.Join(parts, " → ")
}

func runLockorder(pass *ProgramPass) {
	decl := parseLockOrder(pass)
	prog := pass.Prog
	infos := map[*Func]*fnLockInfo{}
	for _, fn := range prog.Functions() {
		infos[fn] = lockWalk(fn)
	}
	acq := computeAcquires(prog, infos)

	var edges []lockEdge
	for _, fn := range prog.Functions() {
		in := infos[fn]
		edges = append(edges, in.direct...)
		for _, lc := range in.calls {
			for _, class := range sortedAcqClasses(acq[lc.callee]) {
				path := fn.Name() + " → " + acquirePath(acq, lc.callee, class)
				for _, h := range lc.held {
					if h != class {
						edges = append(edges, lockEdge{from: h, to: class, pos: lc.pos, path: path})
					}
				}
			}
		}
	}
	// One witness per ordered class pair: first edge wins (deterministic:
	// function position order, then source order within a function).
	seen := map[[2]string]bool{}
	var unique []lockEdge
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if !seen[key] {
			seen[key] = true
			unique = append(unique, e)
		}
	}

	reported := map[[2]string]bool{}
	for _, e := range unique {
		if decl.classes[e.from] && decl.classes[e.to] && decl.before[e.to][e.from] {
			reported[[2]string{e.from, e.to}] = true
			pass.Reportf(e.pos, "lock order violation: %s acquired while holding %s (declared order requires %s < %s); call path: %s",
				e.to, e.from, e.to, e.from, e.path)
		}
	}

	// Cycle detection over the observed graph, declared classes or not.
	reach := map[string]map[string]bool{}
	addReach := func(a, b string) {
		if reach[a] == nil {
			reach[a] = map[string]bool{}
		}
		reach[a][b] = true
	}
	nodes := map[string]bool{}
	for _, e := range unique {
		addReach(e.from, e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	order := sortedStringSet(nodes)
	for _, k := range order {
		for _, a := range order {
			for _, b := range order {
				if reach[a][k] && reach[k][b] {
					addReach(a, b)
				}
			}
		}
	}
	for _, e := range unique {
		if reported[[2]string{e.from, e.to}] {
			continue
		}
		if reach[e.to][e.from] {
			pass.Reportf(e.pos, "lock cycle: acquiring %s while holding %s closes a cycle in the lock graph; call path: %s",
				e.to, e.from, e.path)
		}
	}
}
