package query

import (
	"fmt"
	"strings"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// Action classifies one enforcement decision.
type Action string

// Enforcement actions.
const (
	// ActionSuppress withholds a whole row.
	ActionSuppress Action = "suppress"
	// ActionGeneralize degrades one cell to a permitted granularity.
	ActionGeneralize Action = "generalize"
	// ActionExpire refuses one cell held past its retention window.
	ActionExpire Action = "expire"
)

// Trace attributes one enforcement action to its cause. For actions forced
// by a provider preference, Pref and Policy name the violating
// (pref, policy) tuple pair — the same pair certification (Eq. 14) would
// score; actions forced by the policy alone (or by missing provenance)
// carry a Reason instead of a Pref.
type Trace struct {
	Row          relational.RowID `json:"row"`
	Provider     string           `json:"provider,omitempty"`
	Column       string           `json:"column,omitempty"`
	Attribute    string           `json:"attribute,omitempty"`
	Action       Action           `json:"action"`
	Dimension    string           `json:"dimension,omitempty"`
	Granted      privacy.Level    `json:"granted"`
	Pref         *privacy.Tuple   `json:"pref,omitempty"`
	PrefImplicit bool             `json:"prefImplicit,omitempty"`
	Policy       *privacy.Tuple   `json:"policy,omitempty"`
	Reason       string           `json:"reason,omitempty"`
}

// Explain is the enforcement trace of one query: the plan the executor
// chose and every per-datum decision, in row order.
type Explain struct {
	SQL        string          `json:"sql"`
	Table      string          `json:"table"`
	Scan       string          `json:"scan"`
	Purpose    privacy.Purpose `json:"purpose"`
	Visibility privacy.Level   `json:"visibility"`
	Entries    []Trace         `json:"entries"`
}

// newExplain seeds the trace with the plan summary.
func newExplain(p *plan) *Explain {
	scan := "full"
	if p.useIdx {
		scan = fmt.Sprintf("index(%s=%s)", p.idxCol, p.idxVal)
	}
	return &Explain{
		SQL:        p.req.SQL,
		Table:      strings.ToLower(p.binding.Table.Name()),
		Scan:       scan,
		Purpose:    p.req.Purpose.Normalize(),
		Visibility: p.req.Visibility,
	}
}

// suppress records a whole-row refusal with a plain reason. Nil-safe: when
// EXPLAIN was not requested the receiver is nil and nothing is recorded.
func (x *Explain) suppress(id relational.RowID, provider, column string, policy *privacy.Tuple, reason string) {
	if x == nil {
		return
	}
	x.Entries = append(x.Entries, Trace{
		Row: id, Provider: provider, Column: column,
		Action: ActionSuppress, Policy: policy, Reason: reason,
	})
}

// violation records one pair-attributed enforcement decision. Nil-safe.
func (x *Explain) violation(t Trace) {
	if x == nil {
		return
	}
	x.Entries = append(x.Entries, t)
}

// violations appends a batch of decisions. Nil-safe.
func (x *Explain) violations(ts []Trace) {
	if x == nil {
		return
	}
	x.Entries = append(x.Entries, ts...)
}

// Render prints the trace as stable, line-oriented text — the golden-file
// format: a plan header, then one line per enforcement decision in
// execution order. Every field is printed in a fixed order so diffs are
// meaningful.
func (x *Explain) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", x.SQL)
	fmt.Fprintf(&sb, "table: %s scan=%s purpose=%s visibility=%d\n", x.Table, x.Scan, x.Purpose, x.Visibility)
	if len(x.Entries) == 0 {
		sb.WriteString("trace: clean (no suppression, generalization or expiry)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "trace: %d entries\n", len(x.Entries))
	for _, t := range x.Entries {
		fmt.Fprintf(&sb, "  row=%d provider=%s action=%s", t.Row, t.Provider, t.Action)
		if t.Column != "" {
			fmt.Fprintf(&sb, " column=%s attr=%s", t.Column, t.Attribute)
		}
		if t.Dimension != "" {
			fmt.Fprintf(&sb, " dim=%s granted=%d", t.Dimension, t.Granted)
		}
		if t.Pref != nil {
			fmt.Fprintf(&sb, " pref=%s", t.Pref)
			if t.PrefImplicit {
				sb.WriteString(" (implicit-zero)")
			}
		}
		if t.Policy != nil {
			fmt.Fprintf(&sb, " policy=%s", t.Policy)
		}
		if t.Reason != "" {
			fmt.Fprintf(&sb, " reason=%q", t.Reason)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
