package core

import (
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/privacy"
)

// Partial is the aggregate contribution of one subset of the population —
// a shard's running (N, Σ w_i, Σ default_i, Σ Violation_i). The paper's
// population quantities (Defs. 2 and 5, Eq. 16) are sums of independent
// per-provider terms, so a population can be carved into disjoint shards
// whose Partials are maintained independently and merged on read.
//
// The integer fields are exact under any merge order. The float total is
// order-sensitive at the last ulp, so mergers must reduce in a fixed order
// (shard index order) to stay deterministic for a given shard count; the
// byte-exact total comes from re-summing rows in global sorted provider
// order (AssemblePopulation), which is independent of sharding entirely.
type Partial struct {
	N               int
	ViolatedCount   int     // Σ_i w_i over the subset
	DefaultCount    int     // Σ_i default_i over the subset
	TotalViolations float64 // Σ_i Violation_i over the subset (order-sensitive)
}

// Add folds one provider's report into the partial.
func (p *Partial) Add(rep *ProviderReport) {
	p.N++
	if rep.Violated {
		p.ViolatedCount++
	}
	if rep.Defaults {
		p.DefaultCount++
	}
	p.TotalViolations += rep.Violation
}

// Sub removes one provider's contribution. The integer fields stay exact;
// the float total accumulates rounding in edit order, as documented on
// Partial.
func (p *Partial) Sub(rep *ProviderReport) {
	p.N--
	if rep.Violated {
		p.ViolatedCount--
	}
	if rep.Defaults {
		p.DefaultCount--
	}
	p.TotalViolations -= rep.Violation
}

// MergePartials reduces shard partials left to right — a fixed shard-order
// reduction, so the merged float total is deterministic for a given shard
// layout.
//
//lint:deterministic the fixed reduction order is what keeps shard merges reproducible
func MergePartials(parts []Partial) Partial {
	var out Partial
	for i := range parts {
		out.N += parts[i].N
		out.ViolatedCount += parts[i].ViolatedCount
		out.DefaultCount += parts[i].DefaultCount
		out.TotalViolations += parts[i].TotalViolations
	}
	return out
}

// PW is Def. 2 over the subset: Σ w_i / N (0 for an empty subset).
func (p Partial) PW() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.ViolatedCount) / float64(p.N)
}

// PDefault is Def. 5 over the subset: Σ default_i / N (0 for an empty
// subset).
func (p Partial) PDefault() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.DefaultCount) / float64(p.N)
}

// ShardIndex maps a canonical provider key onto one of n shards by FNV-1a
// hash. Every sharded structure in the system uses this one function, so a
// provider's DB shard and ledger shard always coincide.
func ShardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	//lint:ignore errflow fnv.Write never fails
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// DefaultShards is the shard count used when a caller asks for 0: one per
// schedulable CPU, the widest useful fan-out.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// FanOut runs f(0..n-1) across at most workers goroutines. workers <= 1 (or
// n <= 1) degrades to a plain serial loop with zero goroutine overhead —
// a 1-shard configuration is exactly the pre-sharding serial code path.
// Results must be written to disjoint, pre-sized slots so the reduction
// order downstream is under the caller's control, not the scheduler's.
func FanOut(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// AssessPopulationParallel evaluates every provider across at most workers
// goroutines and aggregates. The rows land in input order and the float
// total is summed in that order, so the result is bit-identical to the
// serial AssessPopulation over the same slice — parallelism changes where
// the work runs, never what it sums to.
func (a *Assessor) AssessPopulationParallel(pop []*privacy.Prefs, workers int) PopulationReport {
	rows := make([]ProviderReport, len(pop))
	FanOut(len(pop), workers, func(i int) {
		rows[i] = a.AssessOne(pop[i])
	})
	return AssemblePopulation(rows)
}
