// Package callgraphdata exercises every call-resolution strategy of the
// analysis call graph: direct calls, concrete method calls, interface
// over-approximation, function values passed as arguments, and function
// literals inlined into their enclosing declaration.
package callgraphdata

// Animal is implemented by Dog (value receiver) and Cat (pointer
// receiver).
type Animal interface {
	Speak() string
}

// Dog implements Animal on the value.
type Dog struct{}

// Speak returns a bark.
func (Dog) Speak() string { return "woof" }

// Cat implements Animal on the pointer.
type Cat struct{ n int }

// Speak returns a meow.
func (c *Cat) Speak() string {
	c.n++
	return "meow"
}

// Direct calls a package function.
func Direct() string { return helper() }

func helper() string { return "h" }

// ViaInterface dispatches through the interface: the graph
// over-approximates to every loaded implementation.
func ViaInterface(a Animal) string { return a.Speak() }

// Spawn invokes a function value.
func Spawn(f func()) { f() }

// Passed hands a named function to Spawn: the graph records that Passed
// may call target.
func Passed() { Spawn(target) }

func target() {}

// InLit calls helper from inside a function literal, which is inlined
// into InLit.
func InLit() {
	fn := func() string { return helper() }
	_ = fn()
}

// OnCat calls a concrete method.
func OnCat(c *Cat) string { return c.Speak() }
