package ppdb

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
)

// Certification is the α-PPDB assessment of the database at a point in time
// (Def. 3 operationalized): the population report for the current policy
// over the registered providers, plus the verdict for the requested α.
type Certification struct {
	At         time.Time
	PolicyName string
	Alpha      float64
	Report     core.PopulationReport
	// IsAlphaPPDB is P(W) ≤ α (Eq. 9).
	IsAlphaPPDB bool
	// MinAlpha is the smallest α the database would satisfy (its exact
	// P(W)).
	MinAlpha float64
	// WouldDefault lists providers whose Violation_i exceeds their
	// threshold — the population at risk of leaving.
	WouldDefault []string
}

// Certify assesses the current policy against every registered provider and
// issues the α verdict.
func (d *DB) Certify(alpha float64) (*Certification, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("ppdb: alpha %g must be in [0, 1]", alpha)
	}
	d.mu.RLock()
	policy := d.policy
	pop := make([]*privacy.Prefs, 0, len(d.providers))
	for _, p := range d.providers {
		pop = append(pop, p)
	}
	now := d.now
	d.mu.RUnlock()

	assessor, err := core.NewAssessor(policy, d.attrSens, d.opts)
	if err != nil {
		return nil, err
	}
	rep := assessor.AssessPopulation(pop)
	cert := &Certification{
		At:          now,
		PolicyName:  policy.Name,
		Alpha:       alpha,
		Report:      rep,
		IsAlphaPPDB: core.IsAlphaPPDB(rep.PW, alpha),
		MinAlpha:    rep.PW,
	}
	for _, pr := range rep.Providers {
		if pr.Defaults {
			cert.WouldDefault = append(cert.WouldDefault, pr.Provider)
		}
	}
	return cert, nil
}

// EnforceDefaults removes every provider whose violations exceed their
// threshold (Def. 4), simulating the defaults actually happening. It
// returns the removed provider names and the number of rows deleted.
func (d *DB) EnforceDefaults() ([]string, int, error) {
	cert, err := d.Certify(1)
	if err != nil {
		return nil, 0, err
	}
	rows := 0
	for _, name := range cert.WouldDefault {
		rows += d.RemoveProvider(name)
	}
	return cert.WouldDefault, rows, nil
}
