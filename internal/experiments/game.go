package experiments

import (
	"fmt"
	"io"

	"repro/internal/game"
	"repro/internal/population"
	"repro/internal/privacy"
)

// GameRow is one leader strategy with its outcome (E9).
type GameRow struct {
	Policy       string
	ExtraUtility float64
	Incentive    float64
	Participants int
	HousePayoff  float64
	Best         bool
}

// GameResult is the Stackelberg study: the equilibrium without incentives,
// and how it shifts when incentives become available (κ > 0).
type GameResult struct {
	N             int
	Kappa         float64
	WithoutIncent []GameRow
	WithIncent    []GameRow
	// PayoffGain is (best with incentives) − (best without).
	PayoffGain float64
}

// Game runs E9: a policy ladder with increasing T played against a Westin
// population, solved once with κ = 0 (the paper's base assumptions) and once
// with κ > 0 and an incentive grid (the relaxation Sec. 9 anticipates).
func Game(n int, seed uint64, kappa float64) (*GameResult, error) {
	providers, sigma, hp, err := expansionPopulation(n, seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)

	// Ladder of five progressively wider policies with growing T.
	type rung struct {
		policy *privacy.HousePolicy
		t      float64
	}
	rungs := []rung{{hp, 0}}
	policy := hp
	dims := privacy.OrderedDimensions
	for i := 1; i <= 4; i++ {
		policy = policy.WidenAll(fmt.Sprintf("w%d", i), dims[i%3], 1)
		rungs = append(rungs, rung{policy, float64(i) * 2})
	}

	res := &GameResult{N: n, Kappa: kappa}

	solve := func(k float64, incentives []float64) ([]GameRow, float64, error) {
		g, err := game.New(game.Config{
			AttrSens: sigma, BaseUtility: 10, ToleranceGain: k,
		}, pop)
		if err != nil {
			return nil, 0, err
		}
		var strategies []game.HouseStrategy
		for _, r := range rungs {
			base := game.HouseStrategy{Policy: r.policy, ExtraUtility: r.t}
			if len(incentives) > 0 {
				strategies = append(strategies, game.IncentiveGrid(base, incentives)...)
			} else {
				strategies = append(strategies, base)
			}
		}
		eq, err := g.Solve(strategies)
		if err != nil {
			return nil, 0, err
		}
		rows := make([]GameRow, 0, len(eq.Outcomes))
		for _, o := range eq.Outcomes {
			rows = append(rows, GameRow{
				Policy:       o.Strategy.Policy.Name,
				ExtraUtility: o.Strategy.ExtraUtility,
				Incentive:    o.Strategy.Incentive,
				Participants: o.Participants,
				HousePayoff:  o.HousePayoff,
				Best:         o == eq.Best,
			})
		}
		return rows, eq.Best.HousePayoff, nil
	}

	var bestWithout, bestWith float64
	if res.WithoutIncent, bestWithout, err = solve(0, nil); err != nil {
		return nil, err
	}
	if res.WithIncent, bestWith, err = solve(kappa, []float64{0, 0.5, 1, 2, 4}); err != nil {
		return nil, err
	}
	res.PayoffGain = bestWith - bestWithout
	return res, nil
}

// Fprint renders both equilibria.
func (r *GameResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E9 — Stackelberg policy game (Sec. 9 extension; N=%d, κ=%g)\n\n", r.N, r.Kappa)
	render := func(title string, rows []GameRow) error {
		fmt.Fprintln(w, title)
		table := make([][]string, 0, len(rows))
		for _, row := range rows {
			mark := ""
			if row.Best {
				mark = "<- equilibrium"
			}
			table = append(table, []string{
				row.Policy, f(row.ExtraUtility), f(row.Incentive),
				fmt.Sprintf("%d", row.Participants), f(row.HousePayoff), mark,
			})
		}
		return WriteTable(w, []string{"policy", "T", "incentive", "participants", "house payoff", ""}, table)
	}
	if err := render("without incentives (κ = 0, the paper's base assumptions):", r.WithoutIncent); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := render("with incentives:", r.WithIncent); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nhouse payoff gain from offering incentives: %+g\n", r.PayoffGain)
	return nil
}
