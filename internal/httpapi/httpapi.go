// Package httpapi exposes a PPDB over HTTP with JSON bodies — the service
// face of the α-PPDB prototype. Endpoints:
//
//	POST /query      {requester, purpose, visibility, sql} → {columns, rows}
//	GET  /certify?alpha=0.1                                → certification
//	GET  /certify/summary?alpha=0.1                        → aggregate-only certification (O(1) from the ledger)
//	GET  /policy                                           → current policy
//	PUT  /policy     DSL document with one policy block    → policy change
//	POST /providers  DSL document with provider blocks     → count registered
//	GET  /audit                                            → access records
//	POST /sweep                                            → retention sweep
//	POST /load?table=T   CSV body with a header row        → rows loaded
//	GET  /self/audit?provider=N                            → personal violation report
//	GET  /self/data?provider=N                             → the provider's own rows
//	GET  /healthz                                          → liveness probe
//	GET  /readyz                                           → readiness probe (503 while draining)
//	GET  /metrics                                          → Prometheus-text exposition (?format=json for JSON)
//
// Every response is JSON; policy and preference uploads use the policydsl
// text format (Content-Type is not enforced). Denied queries return 403
// with the denial reason, parse errors 400, over-limit bodies 413.
//
// Lifecycle hardening (DESIGN.md §9): every request passes through a
// panic-recovery wrapper (a handler panic is logged with its stack and
// answered with a JSON 500; the server keeps serving) and an in-flight
// cap that sheds excess load with a JSON 503 + Retry-After rather than
// letting a pile-up take the process down. /healthz, /readyz and /metrics
// bypass the cap so a saturated server still answers its load balancer
// and its scraper.
//
// Observability (DESIGN.md §10): every capped request is measured — a
// per-route/status-class request counter, an in-flight gauge, a per-route
// latency histogram, and dedicated shed/panic counters — published to the
// metrics registry /metrics serves. Options.RequestLog adds one
// structured key=value line per request.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/kvlog"
	"repro/internal/metrics"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/privacy"
)

// DefaultMaxInFlight is the in-flight request cap used when Options does
// not set one.
const DefaultMaxInFlight = 1024

// Options tunes the hardening knobs. The zero value is production-ready.
type Options struct {
	// MaxInFlight caps concurrently served requests; excess requests are
	// shed immediately with a JSON 503. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// Logger receives panic reports; nil means log.Default().
	Logger *log.Logger
	// Metrics is the registry the request instrumentation publishes to
	// and GET /metrics serves; nil means metrics.Default (which also
	// carries the ledger/ppdb/fault instrumentation of this process).
	Metrics *metrics.Registry
	// RequestLog, when non-nil, receives one structured key=value line
	// per measured request (probes and /metrics are exempt). nil
	// disables request logging.
	RequestLog *log.Logger
}

// Server wraps a PPDB with an http.Handler.
type Server struct {
	db       *ppdb.DB
	mux      *http.ServeMux
	logger   *log.Logger
	reqLog   *log.Logger
	inflight chan struct{} // semaphore: one slot per in-flight request
	ready    atomic.Bool

	// Request instrumentation (DESIGN.md §10). The counters that carry a
	// status-class label are looked up per request; the per-route
	// histograms and the singletons are resolved once here.
	registry   *metrics.Registry
	inFlight   *metrics.Gauge
	shedTotal  *metrics.Counter
	panicTotal *metrics.Counter
}

// New builds the handler around an existing PPDB with default Options.
func New(db *ppdb.DB) (*Server, error) {
	return NewWith(db, Options{})
}

// NewWith builds the handler with explicit hardening options.
func NewWith(db *ppdb.DB, opts Options) (*Server, error) {
	if db == nil {
		return nil, fmt.Errorf("httpapi: nil database")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.Default
	}
	s := &Server{
		db:       db,
		mux:      http.NewServeMux(),
		logger:   opts.Logger,
		reqLog:   opts.RequestLog,
		inflight: make(chan struct{}, opts.MaxInFlight),
		registry: opts.Metrics,
		inFlight: opts.Metrics.Gauge("httpapi_in_flight",
			"requests currently being served (shed and probe requests excluded)"),
		shedTotal: opts.Metrics.Counter("httpapi_shed_total",
			"requests shed with a 503 because the in-flight cap was reached"),
		panicTotal: opts.Metrics.Counter("httpapi_panics_total",
			"handler panics recovered into JSON 500s"),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/certify", s.handleCertify)
	s.mux.HandleFunc("/certify/summary", s.handleCertifySummary)
	s.mux.HandleFunc("/policy", s.handlePolicy)
	s.mux.HandleFunc("/providers", s.handleProviders)
	s.mux.HandleFunc("/audit", s.handleAudit)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/load", s.handleLoad)
	s.mux.HandleFunc("/self/audit", s.handleSelfAudit)
	s.mux.HandleFunc("/self/data", s.handleSelfData)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", opts.Metrics.Handler())
	s.ready.Store(true)
	return s, nil
}

// SetReady flips the /readyz verdict. The server main drops readiness
// before draining so load balancers stop routing new work here while
// in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// routes is the measured route table: request counters and latency
// histograms are labeled with one of these (or "other"), never the raw
// request path, so a scan of random URLs cannot mint unbounded series.
var routes = map[string]bool{
	"/query": true, "/certify": true, "/certify/summary": true,
	"/policy": true, "/providers": true, "/audit": true, "/sweep": true,
	"/load": true, "/self/audit": true, "/self/data": true,
}

// routeOf collapses a request path to its metric label.
func routeOf(path string) string {
	if routes[path] {
		return path
	}
	return "other"
}

// classOf collapses a status code to its class label ("2xx", "5xx", ...).
func classOf(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return "other"
	}
}

// statusWriter records the status line and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler: probe/scrape bypass, request
// instrumentation, load shedding, panic recovery, then the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz", "/readyz", "/metrics":
		// Probes and scrapes bypass the cap and the instrumentation: a
		// saturated server still answers its load balancer, and a scrape
		// never perturbs the numbers it reads.
		s.mux.ServeHTTP(w, r)
		return
	}
	route := routeOf(r.URL.Path)
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.inFlight.Inc()
	defer func() {
		s.inFlight.Dec()
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		s.registry.Counter("httpapi_requests_total",
			"requests served by route and status class",
			"route", route, "class", classOf(status)).Inc()
		s.registry.Histogram("httpapi_request_seconds",
			"request latency by route", metrics.DefBuckets,
			"route", route).Observe(elapsed.Seconds())
		if s.reqLog != nil {
			s.reqLog.Print(kvlog.Line("event", "request", "method", r.Method,
				"path", r.URL.Path, "route", route, "status", status,
				"bytes", sw.bytes, "dur", elapsed))
		}
	}()
	select {
	case s.inflight <- struct{}{}:
	default:
		s.shedTotal.Inc()
		sw.Header().Set("Retry-After", "1")
		writeErr(sw, http.StatusServiceUnavailable, errors.New("server at capacity, retry shortly"))
		return
	}
	defer func() { <-s.inflight }()
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panicTotal.Inc()
			s.logger.Printf("%s\n%s",
				kvlog.Line("event", "panic", "method", r.Method, "path", r.URL.Path, "err", rec),
				debug.Stack())
			// Best effort: if the handler already wrote a status line this
			// changes nothing on the wire, but the process keeps serving.
			writeErr(sw, http.StatusInternalServerError, errors.New("internal server error"))
		}
	}()
	if err := fault.Point("httpapi.handler"); err != nil {
		writeErr(sw, http.StatusInternalServerError, err)
		return
	}
	s.mux.ServeHTTP(sw, r)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errflow the status line is already written; an encode failure here means the client hung up
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeBodyErr maps a request-body read failure to a status: an over-limit
// body (http.MaxBytesReader tripped) is a 413 naming the limit, anything
// else a 400.
func writeBodyErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

func methodCheck(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
		return false
	}
	return true
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while accepting work, 503 once
// the server has begun draining (SetReady(false)).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	Requester  string `json:"requester"`
	Purpose    string `json:"purpose"`
	Visibility int    `json:"visibility"`
	SQL        string `json:"sql"`
}

// QueryResponse is the POST /query result.
type QueryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodPost) {
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	res, err := s.db.Query(ppdb.AccessRequest{
		Requester:  req.Requester,
		Purpose:    privacy.Purpose(req.Purpose),
		Visibility: privacy.Level(req.Visibility),
		SQL:        req.SQL,
	})
	if err != nil {
		var denied *ppdb.DeniedError
		if errors.As(err, &denied) {
			writeErr(w, http.StatusForbidden, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := QueryResponse{Columns: res.Columns, Rows: make([][]string, 0, len(res.Rows))}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Display()
		}
		out.Rows = append(out.Rows, cells)
	}
	writeJSON(w, http.StatusOK, out)
}

// alphaParam parses ?alpha=, defaulting to 0.1. The parsed value must be a
// finite number in [0, 1]: NaN, ±Inf and out-of-range values are rejected
// here with a 400 rather than reaching certification — a NaN α compares
// false against everything, which would silently fail every verdict.
func alphaParam(r *http.Request) (float64, error) {
	alpha := 0.1
	if q := r.URL.Query().Get("alpha"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil {
			return 0, fmt.Errorf("bad alpha %q", q)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return 0, fmt.Errorf("alpha %q must be a finite number in [0, 1]", q)
		}
		alpha = v
	}
	return alpha, nil
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	alpha, err := alphaParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cert, err := s.db.Certify(alpha)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, cert)
}

// handleCertifySummary serves GET /certify/summary?alpha=: the aggregate
// certification (N, P(W), P(Default), counts, verdict) without per-provider
// rows, answered from the violation ledger's running aggregates in O(1).
func (s *Server) handleCertifySummary(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	alpha, err := alphaParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sum, err := s.db.CertifySummary(alpha)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		doc := &policydsl.Document{Policy: s.db.Policy(), Scales: privacy.DefaultScales()}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lint:ignore errflow response write failures mean the client hung up; there is no recovery mid-body
		_, _ = io.WriteString(w, policydsl.Render(doc))
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeBodyErr(w, err)
			return
		}
		doc, err := policydsl.Parse(string(body))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if doc.Policy == nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("document has no policy block"))
			return
		}
		change, err := s.db.SetPolicy(doc.Policy)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, change)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or PUT"))
	}
}

func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		names := make([]string, 0)
		for _, p := range s.db.Providers() {
			names = append(names, p.Provider)
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(names), "providers": names})
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeBodyErr(w, err)
			return
		}
		doc, err := policydsl.Parse(string(body))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if len(doc.Providers) == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("document has no provider blocks"))
			return
		}
		// Bulk registration: validates the whole batch before storing any
		// of it and builds the ledger rows across a worker pool.
		if err := s.db.RegisterProviders(doc.Providers); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"registered": len(doc.Providers)})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.db.Audit().Records())
}

// handleSelfAudit serves GET /self/audit?provider=name: the provider's
// personal violation report (w_i, Violation_i, default_i, conflict pairs).
func (s *Server) handleSelfAudit(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?provider="))
		return
	}
	rep, err := s.db.SelfAudit(provider)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleSelfData serves GET /self/data?provider=name: every row the
// provider contributed, at full granularity (right of access).
func (s *Server) handleSelfData(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?provider="))
		return
	}
	rows, err := s.db.ProviderView(provider)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type rowJSON struct {
		Table  string            `json:"table"`
		RowID  int64             `json:"rowId"`
		Values map[string]string `json:"values"`
	}
	out := make([]rowJSON, 0, len(rows))
	for _, row := range rows {
		vals := make(map[string]string, len(row.Columns))
		for i, c := range row.Columns {
			vals[c] = row.Values[i].Display()
		}
		out = append(out, rowJSON{Table: row.Table, RowID: int64(row.RowID), Values: vals})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLoad bulk-loads CSV microdata: POST /load?table=records with the
// CSV as the body. Providers named in the provider column must already be
// registered.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodPost) {
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?table="))
		return
	}
	n, err := s.db.ImportCSV(table, http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeBodyErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": n})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodPost) {
		return
	}
	rep, err := s.db.Sweep()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
