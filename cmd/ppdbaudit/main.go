// Command ppdbaudit audits a policy/preference corpus: it parses a DSL
// document (see internal/policydsl), assesses every provider against the
// house policy, and reports violations (Def. 1), severities (Eq. 15),
// defaults (Def. 4), P(W), P(Default) and the α-PPDB verdict (Def. 3).
//
// Usage:
//
//	ppdbaudit -in corpus.dsl -alpha 0.1 [-top 10] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ledger"
	"repro/internal/policydsl"
)

func main() {
	in := flag.String("in", "", "DSL document to audit (default: stdin)")
	alpha := flag.Float64("alpha", 0.1, "α threshold for the PPDB verdict")
	top := flag.Int("top", 10, "show the top-N most violated providers")
	asJSON := flag.Bool("json", false, "emit the population report as JSON")
	flag.Parse()

	if err := runAudit(*in, *alpha, *top, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "ppdbaudit: %v\n", err)
		os.Exit(1)
	}
}

func runAudit(in string, alpha float64, top int, asJSON bool) error {
	var src []byte
	var err error
	if in == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		return err
	}
	if doc.Policy == nil {
		return fmt.Errorf("document has no policy block")
	}
	if len(doc.Providers) == 0 {
		return fmt.Errorf("document has no provider blocks")
	}
	assessor, err := core.NewAssessor(doc.Policy, doc.AttrSens, core.Options{})
	if err != nil {
		return err
	}
	// Build the violation ledger across the worker pool and assemble the
	// report from its materialized rows (sorted by provider key, so the
	// output is stable across runs). Duplicate provider blocks collapse,
	// last one wins — the same semantics as registering against a PPDB.
	led, err := ledger.New(assessor, 1)
	if err != nil {
		return err
	}
	items := make([]ledger.Item, len(doc.Providers))
	for i, p := range doc.Providers {
		items[i] = ledger.Item{Key: strings.ToLower(p.Provider), Prefs: p, Version: uint64(i + 1)}
	}
	led.UpsertBatch(items)
	rep := led.Snapshot()

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Printf("policy %q: %d tuples over %v\n", doc.Policy.Name, doc.Policy.Len(), doc.Policy.Attributes())
	fmt.Printf("providers: %d\n\n", rep.N)
	fmt.Printf("P(W)        = %.4f  (%d violated)\n", rep.PW, rep.ViolatedCount)
	fmt.Printf("P(Default)  = %.4f  (%d would default)\n", rep.PDefault, rep.DefaultCount)
	fmt.Printf("Violations  = %g (Eq. 16)\n", rep.TotalViolations)
	verdict := "FAIL"
	if core.IsAlphaPPDB(rep.PW, alpha) {
		verdict = "ok"
	}
	fmt.Printf("α-PPDB      = %s (α = %g, min feasible α = %.4f)\n\n", verdict, alpha, rep.PW)

	worst := assessor.TopViolated(doc.Providers, top)
	rows := make([][]string, 0, len(worst))
	for _, pr := range worst {
		rows = append(rows, []string{
			pr.Provider,
			fmt.Sprintf("%v", pr.Violated),
			fmt.Sprintf("%g", pr.Violation),
			fmt.Sprintf("%g", pr.Threshold),
			fmt.Sprintf("%v", pr.Defaults),
			fmt.Sprintf("%d", len(pr.Pairs)),
		})
	}
	return experiments.WriteTable(os.Stdout,
		[]string{"provider", "w_i", "Violation_i", "v_i", "default_i", "conflict pairs"}, rows)
}
