// Quickstart: define a house policy and two providers, detect violations,
// measure severity, and check the α-PPDB property — the model of
// "Quantifying Privacy Violations" end to end in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/privacy"
)

func main() {
	// The house collects Weight for research at: visible to the house,
	// partially specific, kept for a month (levels on the default scales).
	policy := privacy.NewHousePolicy("quickstart-v1")
	policy.Add("weight", privacy.Tuple{
		Purpose:     "research",
		Visibility:  2, // house
		Granularity: 2, // partial
		Retention:   3, // month
	})

	// Σ^weight = 4: weight is a sensitive attribute (Westin ranks health
	// data highest).
	sigma := privacy.AttributeSensitivities{}
	sigma.Set("weight", 4)

	// Alice tolerates broad use of her weight; Bob allows only existential
	// disclosure and weighs granularity violations heavily.
	alice := privacy.NewPrefs("alice", 50)
	alice.Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 3, Retention: 4})
	alice.SetSensitivity("weight", privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1})

	bob := privacy.NewPrefs("bob", 20)
	bob.Add("weight", privacy.Tuple{Purpose: "research", Visibility: 2, Granularity: 1, Retention: 3})
	bob.SetSensitivity("weight", privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 4, Retention: 2})

	assessor, err := core.NewAssessor(policy, sigma, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range []*privacy.Prefs{alice, bob} {
		rep := assessor.AssessProvider(p)
		fmt.Printf("%s: w_i=%v  Violation_i=%g  v_i=%g  defaults=%v\n",
			rep.Provider, rep.Violated, rep.Violation, rep.Threshold, rep.Defaults)
		for _, pair := range rep.Pairs {
			for _, d := range pair.Dims {
				fmt.Printf("  %s/%s: %s exceeds preference by %d (severity %g)\n",
					pair.Attribute, pair.Purpose, d.Dimension, d.Overshoot, d.Severity)
			}
		}
	}

	pop := []*privacy.Prefs{alice, bob}
	rep := assessor.AssessPopulation(pop)
	fmt.Printf("\nP(W) = %.2f, P(Default) = %.2f, Violations = %g\n", rep.PW, rep.PDefault, rep.TotalViolations)
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		fmt.Printf("α = %.2f → α-PPDB: %v\n", alpha, core.IsAlphaPPDB(rep.PW, alpha))
	}
}
