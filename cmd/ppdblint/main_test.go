package main

import (
	"encoding/json"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fixture returns the path (relative to this test's cwd, cmd/ppdblint) of
// one internal/analysis testdata package.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
}

func TestRunFindingsExitCodeAndOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-checker", "floatcmp", fixture("floatcmpdata")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), out)
	}
	rel := filepath.ToSlash(filepath.Join(fixture("floatcmpdata"), "floatcmpdata.go"))
	for _, line := range lines {
		if !strings.HasPrefix(filepath.ToSlash(line), rel+":") {
			t.Errorf("finding not relative to cwd: %q", line)
		}
		if !strings.Contains(line, "[floatcmp]") {
			t.Errorf("finding missing checker tag: %q", line)
		}
	}
	if !strings.Contains(out, "float comparison") || !strings.Contains(out, "switch on float") {
		t.Errorf("output missing expected messages:\n%s", out)
	}
	if !sortedByLine(lines) {
		t.Errorf("output lines not in ascending line order:\n%s", out)
	}
}

// TestRunDeterministic runs the same invocation twice and requires
// byte-identical output.
func TestRunDeterministic(t *testing.T) {
	args := []string{fixture("errflowdata"), fixture("floatcmpdata")}
	var first strings.Builder
	if code := run(args, &first, &first); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var second strings.Builder
	if code := run(args, &second, &second); code != 1 {
		t.Fatalf("second exit code = %d, want 1", code)
	}
	if first.String() != second.String() {
		t.Fatalf("output differs between runs:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunCleanExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{fixture("cleandata")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if stdout.String() != "" {
		t.Fatalf("clean run produced output: %q", stdout.String())
	}
}

func TestRunJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "-checker", "enumswitch", fixture("enumswitchdata")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Checker string `json:"checker"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %s", len(findings), stdout.String())
	}
	f := findings[0]
	if f.Checker != "enumswitch" || f.Line == 0 || !strings.Contains(f.Message, "missing Blue") {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

func TestRunJSONEmptyArray(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", fixture("cleandata")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-checker", "nosuch", fixture("cleandata")}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown checker: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown checker") {
		t.Fatalf("stderr missing diagnosis: %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad pattern: exit code = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h: exit code = %d, want 0", code)
	}
	usage := stderr.String()
	for _, want := range []string{"ppdblint -checker lockcheck ./internal/ppdb/...", "lockcheck", "floatcmp", "enumswitch", "errflow", "lint:ignore"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage output missing %q", want)
		}
	}
}

// sortedByLine checks that same-file findings appear in ascending source
// line order (`path:line: ...`).
func sortedByLine(lines []string) bool {
	prev := -1
	for _, l := range lines {
		rest := l[strings.LastIndex(l[:strings.Index(l, ": [")], ":")+1:]
		n, err := strconv.Atoi(rest[:strings.Index(rest, ":")])
		if err != nil || n < prev {
			return false
		}
		prev = n
	}
	return true
}
