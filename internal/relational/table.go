package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Row is one tuple t_i of the data table.
type Row []Value

// clone returns an independent copy of the row.
func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// RowID identifies a stored row for its lifetime; IDs are never reused.
type RowID int64

// Table is one relation: a schema plus stored rows, an optional primary-key
// index and any number of secondary hash indexes. All methods are safe for
// concurrent use.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema *Schema

	rows   map[RowID]Row
	order  []RowID // insertion order for deterministic scans
	nextID RowID

	pkIndex map[string]RowID           // pk value key → row
	indexes map[int]map[string][]RowID // column → value key → rows
}

// NewTable creates an empty table with the given (lower-cased) name and
// schema. A primary-key index is created automatically when the schema
// declares one.
func NewTable(name string, schema *Schema) (*Table, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return nil, fmt.Errorf("relational: table needs a name")
	}
	if schema == nil {
		return nil, fmt.Errorf("relational: table %q needs a schema", name)
	}
	t := &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[RowID]Row),
		indexes: make(map[int]map[string][]RowID),
	}
	if schema.PrimaryKey() >= 0 {
		t.pkIndex = make(map[string]RowID)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of stored rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert validates and stores a row, returning its RowID. Primary-key
// duplicates are rejected.
func (t *Table) Insert(row Row) (RowID, error) {
	checked, err := t.schema.CheckRow(row)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pk := t.schema.PrimaryKey(); pk >= 0 {
		k := checked[pk].key()
		if _, dup := t.pkIndex[k]; dup {
			return 0, fmt.Errorf("relational: %s: duplicate primary key %s", t.name, checked[pk])
		}
		t.pkIndex[k] = t.nextID
	}
	id := t.nextID
	t.nextID++
	t.rows[id] = checked
	t.order = append(t.order, id)
	for col, idx := range t.indexes {
		k := checked[col].key()
		idx[k] = append(idx[k], id)
	}
	return id, nil
}

// Get returns a copy of the row with the given id.
func (t *Table) Get(id RowID) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return r.clone(), true
}

// GetByPK looks up a row by primary-key value.
func (t *Table) GetByPK(v Value) (RowID, Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return 0, nil, false
	}
	id, ok := t.pkIndex[v.key()]
	if !ok {
		return 0, nil, false
	}
	return id, t.rows[id].clone(), true
}

// Scan visits every row in insertion order until fn returns false. The row
// passed to fn must not be mutated.
func (t *Table) Scan(fn func(id RowID, row Row) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.order))
	for _, id := range t.order {
		if _, live := t.rows[id]; live {
			ids = append(ids, id)
		}
	}
	t.mu.RUnlock()
	for _, id := range ids {
		t.mu.RLock()
		row, live := t.rows[id]
		var cp Row
		if live {
			cp = row.clone()
		}
		t.mu.RUnlock()
		if !live {
			continue
		}
		if !fn(id, cp) {
			return
		}
	}
}

// Update replaces the row with the given id after validation, maintaining
// all indexes.
func (t *Table) Update(id RowID, row Row) error {
	checked, err := t.schema.CheckRow(row)
	if err != nil {
		return fmt.Errorf("%s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relational: %s: row %d does not exist", t.name, id)
	}
	if pk := t.schema.PrimaryKey(); pk >= 0 {
		oldK, newK := old[pk].key(), checked[pk].key()
		if oldK != newK {
			if _, dup := t.pkIndex[newK]; dup {
				return fmt.Errorf("relational: %s: duplicate primary key %s", t.name, checked[pk])
			}
			delete(t.pkIndex, oldK)
			t.pkIndex[newK] = id
		}
	}
	for col, idx := range t.indexes {
		oldK, newK := old[col].key(), checked[col].key()
		if oldK != newK {
			idx[oldK] = removeID(idx[oldK], id)
			if len(idx[oldK]) == 0 {
				delete(idx, oldK)
			}
			idx[newK] = append(idx[newK], id)
		}
	}
	t.rows[id] = checked
	return nil
}

// Delete removes the row with the given id; deleting a missing row is a
// no-op returning false.
func (t *Table) Delete(id RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return false
	}
	if pk := t.schema.PrimaryKey(); pk >= 0 {
		delete(t.pkIndex, row[pk].key())
	}
	for col, idx := range t.indexes {
		k := row[col].key()
		idx[k] = removeID(idx[k], id)
		if len(idx[k]) == 0 {
			delete(idx, k)
		}
	}
	delete(t.rows, id)
	// Compact order lazily when more than half the slots are dead.
	if len(t.order) > 2*len(t.rows)+16 {
		live := t.order[:0]
		for _, oid := range t.order {
			if _, ok := t.rows[oid]; ok {
				live = append(live, oid)
			}
		}
		t.order = live
	}
	return true
}

func removeID(ids []RowID, id RowID) []RowID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// CreateIndex builds (or rebuilds) a secondary hash index on the named
// column, used by the executor for equality lookups.
func (t *Table) CreateIndex(column string) error {
	col, ok := t.schema.ColumnIndex(column)
	if !ok {
		return fmt.Errorf("relational: %s: no column %q to index", t.name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string][]RowID)
	for id, row := range t.rows {
		k := row[col].key()
		idx[k] = append(idx[k], id)
	}
	for _, ids := range idx {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether the named column has a secondary index (or is the
// primary key).
func (t *Table) HasIndex(column string) bool {
	col, ok := t.schema.ColumnIndex(column)
	if !ok {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.schema.PrimaryKey() == col {
		return true
	}
	_, has := t.indexes[col]
	return has
}

// Lookup returns (sorted) row ids whose column equals v, using an index when
// available and a scan otherwise.
func (t *Table) Lookup(column string, v Value) ([]RowID, error) {
	col, ok := t.schema.ColumnIndex(column)
	if !ok {
		return nil, fmt.Errorf("relational: %s: no column %q", t.name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.schema.PrimaryKey() == col && t.pkIndex != nil {
		if id, ok := t.pkIndex[v.key()]; ok {
			return []RowID{id}, nil
		}
		return nil, nil
	}
	if idx, ok := t.indexes[col]; ok {
		ids := idx[v.key()]
		out := make([]RowID, len(ids))
		copy(out, ids)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	var out []RowID
	for _, id := range t.order {
		row, live := t.rows[id]
		if live && Equal(row[col], v) {
			out = append(out, id)
		}
	}
	return out, nil
}
