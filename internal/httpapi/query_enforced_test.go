package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ppdb"
	"repro/internal/privacy"
	"repro/internal/query"
	"repro/internal/relational"
)

// enforcedServer extends the shared fixture with a provider whose weight
// preference caps visibility below the policy grant, so enforced queries
// have something to suppress.
func enforcedServer(t *testing.T) *Server {
	t.Helper()
	srv := testServer(t)
	p := privacy.NewPrefs("nora", 50)
	p.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	p.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 1, Granularity: 3, Retention: 4})
	if err := srv.db.RegisterProvider(p); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.db.Insert("t", "nora", relational.Row{
		relational.Text("nora"), relational.Float(72.5),
	}); err != nil {
		t.Fatal(err)
	}
	return srv
}

// operatorToken is the privilege the explain/index-stats tests present.
const operatorToken = "op-secret"

// operatorServer rebuilds the handler over the same store with the
// operator privilege configured.
func operatorServer(t *testing.T, srv *Server) *Server {
	t.Helper()
	op, err := NewWith(srv.db, Options{OperatorToken: operatorToken})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// doOp is do with the operator token attached.
func doOp(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("X-Operator-Token", operatorToken)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// TestQueryEnforcedSuppression checks that POST /v1/query withholds rows
// whose providers would be violated and reports the work in stats.
func TestQueryEnforcedSuppression(t *testing.T) {
	srv := enforcedServer(t)
	rec := do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT provider, weight FROM t"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0] != "maria" {
		t.Fatalf("rows = %v, want only maria (nora suppressed)", out.Rows)
	}
	if out.Stats.RowsScanned == nil || out.Stats.RowsSuppressed == nil {
		t.Fatalf("full-scan stats must carry the counts: %+v", out.Stats)
	}
	if *out.Stats.RowsScanned != 2 || *out.Stats.RowsSuppressed != 1 || out.Stats.RowsReturned != 1 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	if out.Explain != nil {
		t.Fatal("explain returned without being requested")
	}
}

// TestQueryEnforcedExplain checks the explain flag under the operator
// privilege: the response carries the trace, and the suppression names the
// violating (pref, policy) pair.
func TestQueryEnforcedExplain(t *testing.T) {
	srv := operatorServer(t, enforcedServer(t))
	rec := doOp(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT weight FROM t","explain":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Explain == nil || len(out.Explain.Entries) != 1 {
		t.Fatalf("explain = %+v, want one suppression entry", out.Explain)
	}
	e := out.Explain.Entries[0]
	if e.Provider != "nora" || string(e.Action) != "suppress" || e.Dimension != "visibility" {
		t.Fatalf("trace = %+v", e)
	}
	if e.Pref == nil || e.Pref.Visibility != 1 || e.Policy == nil || e.Policy.Visibility != 2 {
		t.Fatalf("trace must name the (pref, policy) pair: %+v", e)
	}
}

// TestQueryExplainRequiresOperator pins the privilege gate: the EXPLAIN
// trace names the rows and preferences suppression withheld, so a request
// without the operator token — or against a server with no token
// configured — is refused before the store is touched.
func TestQueryExplainRequiresOperator(t *testing.T) {
	body := `{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT weight FROM t","explain":true}`

	srv := enforcedServer(t)
	// No token configured: even presenting one must not unlock explain.
	for name, rec := range map[string]*httptest.ResponseRecorder{
		"no token":  do(t, srv, http.MethodPost, "/v1/query", body),
		"any token": doOp(t, srv, http.MethodPost, "/v1/query", body),
	} {
		if rec.Code != http.StatusForbidden {
			t.Fatalf("%s: status = %d, want 403: %s", name, rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), "operator privilege") {
			t.Fatalf("%s: body = %s", name, rec.Body)
		}
	}

	// Token configured but absent or wrong on the request.
	op := operatorServer(t, srv)
	rec := do(t, op, http.MethodPost, "/v1/query", body)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("missing token status = %d: %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	req.Header.Set("X-Operator-Token", "wrong")
	wrong := httptest.NewRecorder()
	op.ServeHTTP(wrong, req)
	if wrong.Code != http.StatusForbidden {
		t.Fatalf("wrong token status = %d: %s", wrong.Code, wrong.Body)
	}

	// The same query without explain stays open to everyone.
	rec = do(t, op, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT weight FROM t"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("unprivileged non-explain query status = %d: %s", rec.Code, rec.Body)
	}
}

// TestQueryIndexScanStatsWithheld pins the stats oracle fix: an equality
// probe on an indexed column makes rowsScanned/rowsSuppressed count raw
// matches of the probed literal, so an unprivileged response omits them;
// the operator still sees the exact counts.
func TestQueryIndexScanStatsWithheld(t *testing.T) {
	srv := enforcedServer(t)
	// provider is the primary key, so `provider = 'nora'` narrows to the
	// index — and referencing weight suppresses nora's row, which is
	// exactly what the raw counts would reveal per probed literal.
	body := `{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT provider, weight FROM t WHERE provider = 'nora'"}`
	rec := do(t, srv, http.MethodPost, "/v1/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 0 {
		t.Fatalf("rows = %v, want none (nora suppressed)", out.Rows)
	}
	if out.Stats.RowsScanned != nil || out.Stats.RowsSuppressed != nil {
		t.Fatalf("index-scan counts leaked to an unprivileged requester: %+v", out.Stats)
	}

	op := operatorServer(t, srv)
	rec = doOp(t, op, http.MethodPost, "/v1/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("operator status = %d: %s", rec.Code, rec.Body)
	}
	out = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.RowsScanned == nil || *out.Stats.RowsScanned != 1 || *out.Stats.RowsSuppressed != 1 {
		t.Fatalf("operator must see exact counts: %+v", out.Stats)
	}
}

// TestQueryVerdictMapping checks the error classification, including the
// catalog invariant break that must surface as a 500, not a client 400.
func TestQueryVerdictMapping(t *testing.T) {
	cases := []struct {
		err     error
		verdict string
		status  int
	}{
		{&query.DeniedError{Attribute: "weight", Reason: "x"}, "denied", http.StatusForbidden},
		{&query.UnenforceableError{Construct: "JOIN", Reason: "x"}, "unenforceable", http.StatusBadRequest},
		{&ppdb.CatalogError{Err: errors.New("table has no provider column")}, "internal", http.StatusInternalServerError},
		{errors.New("parse error"), "invalid", http.StatusBadRequest},
	}
	for _, tc := range cases {
		verdict, status := queryVerdict(tc.err)
		if verdict != tc.verdict || status != tc.status {
			t.Errorf("queryVerdict(%v) = (%s, %d), want (%s, %d)", tc.err, verdict, status, tc.verdict, tc.status)
		}
	}
}

// TestQueryEnforcedErrorMapping checks the error envelope: purpose/class
// refusals map to 403, unenforceable statements to 400.
func TestQueryEnforcedErrorMapping(t *testing.T) {
	srv := enforcedServer(t)

	rec := do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":3,"sql":"SELECT weight FROM t"}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("class refusal status = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "does not admit requester class") {
		t.Fatalf("body = %s", rec.Body)
	}

	rec = do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT COUNT(*) FROM t"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unenforceable status = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "not enforceable per datum") {
		t.Fatalf("body = %s", rec.Body)
	}
}
