package main

import (
	"os"
	"testing"
)

// TestRunOneAllExperiments exercises every experiment through the CLI entry
// point with small populations. Output goes to stdout; correctness of the
// numbers is covered by internal/experiments tests — here we check the
// wiring.
func TestRunOneAllExperiments(t *testing.T) {
	// Silence stdout during the test.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	names := []string{
		"table1", "figure1", "figure2", "expansion", "accumulation",
		"estimator", "alpha", "baseline", "ablations", "game", "legacy", "xmlparity",
	}
	for _, name := range names {
		if err := runOne(name, 300, 7, 4, 3); err != nil {
			t.Errorf("runOne(%s): %v", name, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", 10, 1, 1, 1); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestMinHelper(t *testing.T) {
	if min(1, 2) != 1 || min(5, 3) != 3 {
		t.Error("min wrong")
	}
}
