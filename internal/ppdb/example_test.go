package ppdb_test

import (
	"fmt"

	"repro/internal/ppdb"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// Example demonstrates the enforcement loop: a purpose-bound query is served
// for the stated purpose and refused for an unstated one, and the audit
// trail records both.
func Example() {
	hp := privacy.NewHousePolicy("v1")
	hp.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	db, err := ppdb.New(ppdb.Config{Policy: hp})
	if err != nil {
		fmt.Println(err)
		return
	}
	schema, _ := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	_ = db.RegisterTable("t", schema, "provider")

	maria := privacy.NewPrefs("maria", 50)
	maria.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	maria.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	_ = db.RegisterProvider(maria)
	_, _ = db.Insert("t", "maria", relational.Row{relational.Text("maria"), relational.Float(61.5)})

	res, err := db.Query(ppdb.AccessRequest{
		Requester: "dr", Purpose: "care", Visibility: 2,
		SQL: "SELECT weight FROM t",
	})
	fmt.Println("care query error:", err)
	fmt.Println("care weight:", res.Rows[0][0].Display())

	_, err = db.Query(ppdb.AccessRequest{
		Requester: "ads", Purpose: "marketing", Visibility: 2,
		SQL: "SELECT weight FROM t",
	})
	fmt.Println("marketing query error:", err != nil)
	fmt.Println("audited accesses:", db.Audit().Len())
	// Output:
	// care query error: <nil>
	// care weight: 61.5
	// marketing query error: true
	// audited accesses: 2
}
