package ledger

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/population"
	"repro/internal/privacy"
)

// TestConcurrentLedger hammers the ledger with parallel upserts, removals,
// rebuilds and reads; run under -race (scripts/ci.sh does). After the dust
// settles the materialized view must equal a fresh full assessment.
func TestConcurrentLedger(t *testing.T) {
	a1, gen := testAssessor(t, 31, 2)
	a2, _ := testAssessor(t, 31, 3)
	pop := population.PrefsOf(gen.Generate(120))
	_, gen2 := testAssessor(t, 77, 2)
	edits := population.PrefsOf(gen2.Generate(120))

	l, err := New(a1, 1)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, len(pop))
	for i, p := range pop {
		items[i] = Item{Key: p.Provider, Prefs: p, Version: uint64(i + 1)}
	}
	l.UpsertBatch(items)

	var wg sync.WaitGroup
	const rounds = 40
	// Editors: re-upsert providers with fresh versions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p := edits[(w*rounds+i)%len(edits)]
				l.Upsert(p.Provider, p, uint64(1000+w*rounds+i))
			}
		}(w)
	}
	// Remover + re-adder.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p := pop[i%7]
			l.Remove(p.Provider)
			l.Upsert(p.Provider, p, uint64(5000+i))
		}
	}()
	// Rebuilder: swap policy back and forth.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if i%2 == 0 {
				l.Rebuild(a2, uint64(2+i))
			} else {
				l.Rebuild(a1, uint64(2+i))
			}
		}
	}()
	// Readers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_ = l.Summary()
				_ = l.Snapshot()
				_, _ = l.Report(fmt.Sprintf("provider-%04d", i%len(pop)))
				_ = l.WouldDefault()
				_ = l.Len()
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: one final rebuild pins every row to a1, and the view must
	// match assessing whatever population survived (white-box: read the
	// surviving prefs straight out of the entries, in key order).
	l.Rebuild(a1, 100)
	snap := l.Snapshot()
	l.mu.RLock()
	keys, _ := l.mergedRowsLocked()
	survivors := make([]*privacy.Prefs, 0, len(keys))
	for _, k := range keys {
		s := l.shardOf(k)
		s.mu.RLock()
		survivors = append(survivors, s.entries[k].prefs)
		s.mu.RUnlock()
	}
	l.mu.RUnlock()
	want := a1.AssessPopulation(survivors)
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("post-stress snapshot inconsistent: N=%d PW=%g total=%g vs recompute PW=%g total=%g",
			snap.N, snap.PW, snap.TotalViolations, want.PW, want.TotalViolations)
	}
}
