package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
)

// AlphaPoint is one row of E7: for a policy of a given width, the exact
// P(W) and the verdicts for a ladder of α thresholds.
type AlphaPoint struct {
	PolicyWidth int // number of one-level widenings applied
	PW          float64
	Verdicts    map[float64]bool // α → IsAlphaPPDB
}

// AlphaResult is the α-certification sweep.
type AlphaResult struct {
	N      int
	Alphas []float64
	Points []AlphaPoint
}

// AlphaSweep runs E7: as the policy widens, P(W) rises and the database
// loses its α-PPDB status at successively looser α — the operational content
// of Def. 3.
func AlphaSweep(n int, seed uint64, widenings int, alphas []float64) (*AlphaResult, error) {
	providers, sigma, hp, err := expansionPopulation(n, seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)
	res := &AlphaResult{N: n, Alphas: alphas}
	dims := []privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity, privacy.DimRetention}
	// Start from the zero policy (collect for the purposes, expose nothing):
	// it violates nobody, so the sweep traces the full arc from a 0-PPDB to
	// total violation as the policy widens.
	policy := privacy.NewHousePolicy("zero")
	for _, e := range hp.Entries() {
		policy.Add(e.Attribute, privacy.ZeroTuple(e.Tuple.Purpose))
	}
	for wstep := 0; wstep <= widenings; wstep++ {
		assessor, err := core.NewAssessor(policy, sigma, core.Options{})
		if err != nil {
			return nil, err
		}
		pw := assessor.AssessPopulation(pop).PW
		pt := AlphaPoint{PolicyWidth: wstep, PW: pw, Verdicts: map[float64]bool{}}
		for _, a := range alphas {
			pt.Verdicts[a] = core.IsAlphaPPDB(pw, a)
		}
		res.Points = append(res.Points, pt)
		policy = policy.WidenAll(fmt.Sprintf("w%d", wstep+1), dims[wstep%len(dims)], 1)
	}
	return res, nil
}

// DefaultAlphas is the α ladder used by the bench and CLI.
func DefaultAlphas() []float64 { return []float64{0.01, 0.05, 0.1, 0.25, 0.5} }

// Fprint renders the sweep.
func (r *AlphaResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E7 — α-PPDB certification sweep (Def. 3; N=%d)\n\n", r.N)
	headers := []string{"widenings", "P(W)"}
	for _, a := range r.Alphas {
		headers = append(headers, fmt.Sprintf("α=%.2f", a))
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%d", p.PolicyWidth), fmt.Sprintf("%.4f", p.PW)}
		for _, a := range r.Alphas {
			verdict := "FAIL"
			if p.Verdicts[a] {
				verdict = "ok"
			}
			row = append(row, verdict)
		}
		rows = append(rows, row)
	}
	return WriteTable(w, headers, rows)
}
