package query

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/privacy"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/query -run Golden -update
var update = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// TestExplainGoldens renders the EXPLAIN trace of representative queries
// against the fixture world and compares byte-for-byte with the checked-in
// goldens. On mismatch the rendered text is written next to the golden as
// <name>.got so CI can upload the pair for inspection.
func TestExplainGoldens(t *testing.T) {
	fx := newFixture(t)
	cases := []struct {
		name string
		req  Request
	}{
		{
			// An index scan narrowed to one conformant provider: the trace
			// is clean and says so.
			name: "clean_index_scan",
			req: Request{Requester: "analyst", Purpose: "service", Visibility: 2,
				SQL: "SELECT city FROM people WHERE city = 'nice'"},
		},
		{
			// The full gallery: explicit-pref suppression, implicit-zero
			// suppression, provenance refusals, a pair-attributed
			// generalization and expiry, and policy-only degradation.
			name: "enforced_full_scan",
			req: Request{Requester: "analyst", Purpose: "service", Visibility: 2,
				SQL: "SELECT provider, email, income FROM people WHERE income > 1000 ORDER BY income DESC"},
		},
		{
			// A second purpose binds a different policy tuple: everything
			// surviving degrades to the marketing granularity ceiling.
			name: "marketing_purpose",
			req: Request{Requester: "mailer", Purpose: privacy.Purpose("marketing"), Visibility: 1,
				SQL: "SELECT email FROM people"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.req.Explain = true
			res, err := fx.eng.Query(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Explain.Render()
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				gotPath := filepath.Join("testdata", tc.name+".got")
				if werr := os.WriteFile(gotPath, []byte(got), 0o644); werr != nil {
					t.Logf("could not write %s: %v", gotPath, werr)
				}
				t.Fatalf("EXPLAIN output drifted from %s (rendered copy at %s)\n--- got ---\n%s--- want ---\n%s",
					golden, gotPath, got, want)
			}
		})
	}
}
