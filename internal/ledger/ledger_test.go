package ledger

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis/floatutil"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
)

// testAssessor builds an assessor over two attributes plus a generator for
// randomized provider populations.
func testAssessor(t testing.TB, seed uint64, level privacy.Level) (*core.Assessor, *population.Generator) {
	t.Helper()
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	hp := privacy.NewHousePolicy(fmt.Sprintf("test-l%d", level))
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: level, Granularity: level, Retention: level})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: level, Granularity: level, Retention: level})
	a, err := core.NewAssessor(hp, gen.AttributeSensitivities(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a, gen
}

// sortedPop returns the population sorted the way the ledger keys it.
func sortedPop(pop []*privacy.Prefs) []*privacy.Prefs {
	out := append([]*privacy.Prefs(nil), pop...)
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

func TestNewNilAssessor(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Fatal("nil assessor should be rejected")
	}
}

// TestSnapshotMatchesFullAssessment pins the materialized view to the
// direct AssessPopulation result over the same sorted population,
// including the bit-exact float total.
func TestSnapshotMatchesFullAssessment(t *testing.T) {
	a, gen := testAssessor(t, 7, 2)
	pop := population.PrefsOf(gen.Generate(137))
	l, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pop {
		l.Upsert(p.Provider, p, uint64(i+1))
	}
	want := a.AssessPopulation(sortedPop(pop))
	got := l.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot diverges from full assessment:\ngot  %+v\nwant %+v", got, want)
	}
	sum := l.Summary()
	if sum.N != want.N || sum.ViolatedCount != want.ViolatedCount || sum.DefaultCount != want.DefaultCount {
		t.Errorf("summary counts = %+v, want %+v", sum, want)
	}
	if !floatutil.Eq(sum.PW, want.PW) || !floatutil.Eq(sum.PDefault, want.PDefault) {
		t.Errorf("summary probabilities = %g/%g, want %g/%g", sum.PW, sum.PDefault, want.PW, want.PDefault)
	}
	if !floatutil.Eq(sum.TotalViolations, want.TotalViolations) {
		t.Errorf("summary total = %g, want %g", sum.TotalViolations, want.TotalViolations)
	}
}

// TestUpsertRemoveMaintainsAggregates applies edits and removals and checks
// the running aggregates stay consistent with a fresh recompute.
func TestUpsertRemoveMaintainsAggregates(t *testing.T) {
	a, gen := testAssessor(t, 11, 2)
	pop := population.PrefsOf(gen.Generate(60))
	l, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	version := uint64(0)
	for _, p := range pop {
		version++
		l.Upsert(p.Provider, p, version)
	}

	// Edit a third of the population with fresh tuples (new generator seed,
	// same provider names), remove every tenth provider.
	_, gen2 := testAssessor(t, 999, 2)
	edited := population.PrefsOf(gen2.Generate(60))
	live := map[string]*privacy.Prefs{}
	for _, p := range pop {
		live[p.Provider] = p
	}
	for i, p := range edited {
		if i%3 == 0 {
			version++
			l.Upsert(p.Provider, p, version)
			live[p.Provider] = p
		}
	}
	for i, p := range pop {
		if i%10 == 0 {
			if !l.Remove(p.Provider) {
				t.Fatalf("remove %q reported absent", p.Provider)
			}
			delete(live, p.Provider)
		}
	}
	if l.Remove("no-such-provider") {
		t.Error("removing an absent provider should report false")
	}

	var rest []*privacy.Prefs
	for _, p := range live {
		rest = append(rest, p)
	}
	want := a.AssessPopulation(sortedPop(rest))
	got := l.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after edits+removals snapshot diverges:\ngot  N=%d PW=%g total=%g\nwant N=%d PW=%g total=%g",
			got.N, got.PW, got.TotalViolations, want.N, want.PW, want.TotalViolations)
	}
	sum := l.Summary()
	if sum.N != want.N || sum.ViolatedCount != want.ViolatedCount || sum.DefaultCount != want.DefaultCount {
		t.Errorf("summary counts = %+v, want counts from %+v", sum, want)
	}
	if !floatutil.Eq(sum.TotalViolations, want.TotalViolations) {
		t.Errorf("running total = %g, want ≈ %g", sum.TotalViolations, want.TotalViolations)
	}
}

// TestUpsertMemoizes proves a matching (policy version, prefs version) pair
// short-circuits re-assessment: re-upserting different preferences under an
// unchanged version returns the cached row.
func TestUpsertMemoizes(t *testing.T) {
	a, _ := testAssessor(t, 3, 2)
	l, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	loud := privacy.NewPrefs("ada", 0.5)
	loud.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 0, Granularity: 0, Retention: 0})
	loud.Add("income", privacy.Tuple{Purpose: "service", Visibility: 0, Granularity: 0, Retention: 0})
	quiet := privacy.NewPrefs("ada", 0.5)
	quiet.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 4, Retention: 4})
	quiet.Add("income", privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 4, Retention: 4})

	first := l.Upsert("ada", loud, 1)
	if !first.Violated {
		t.Fatal("zero-tuple prefs under a level-2 policy must be violated")
	}
	cached := l.Upsert("ada", quiet, 1) // same version: must NOT re-assess
	if !reflect.DeepEqual(cached, first) {
		t.Error("matching versions should return the memoized report")
	}
	fresh := l.Upsert("ada", quiet, 2) // bumped version: must re-assess
	if fresh.Violated {
		t.Error("version bump should have recomputed against the new prefs")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
}

// TestRebuildSwapsPolicy cold-rebuilds against a wider policy and checks
// the rows and aggregates all moved to the new assessment.
func TestRebuildSwapsPolicy(t *testing.T) {
	a1, gen := testAssessor(t, 19, 1)
	pop := population.PrefsOf(gen.Generate(80))
	l, err := New(a1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pop {
		l.Upsert(p.Provider, p, uint64(i+1))
	}
	a2, _ := testAssessor(t, 19, 4) // maximally wide: strictly more violations
	l.Rebuild(a2, 2)
	if l.PolicyVersion() != 2 {
		t.Errorf("policy version = %d, want 2", l.PolicyVersion())
	}
	want := a2.AssessPopulation(sortedPop(pop))
	got := l.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rebuild diverges: got PW=%g total=%g, want PW=%g total=%g",
			got.PW, got.TotalViolations, want.PW, want.TotalViolations)
	}
	if rep, ok := l.Report(pop[0].Provider); !ok || !reflect.DeepEqual(rep, want.Providers[indexOf(want, pop[0].Provider)]) {
		t.Error("per-provider row not rebuilt")
	}
}

func indexOf(rep core.PopulationReport, provider string) int {
	for i := range rep.Providers {
		if rep.Providers[i].Provider == provider {
			return i
		}
	}
	return -1
}

// TestUpsertBatchMatchesSequential pins the worker-pool batch path to the
// serial path.
func TestUpsertBatchMatchesSequential(t *testing.T) {
	a, gen := testAssessor(t, 23, 2)
	pop := population.PrefsOf(gen.Generate(150))
	serial, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, len(pop))
	for i, p := range pop {
		serial.Upsert(p.Provider, p, uint64(i+1))
		items[i] = Item{Key: p.Provider, Prefs: p, Version: uint64(i + 1)}
	}
	batch.UpsertBatch(items)
	if !reflect.DeepEqual(batch.Snapshot(), serial.Snapshot()) {
		t.Error("batch and serial upserts disagree")
	}
}

// TestWouldDefaultSorted checks the defaulting set is emitted in sorted
// key order.
func TestWouldDefaultSorted(t *testing.T) {
	a, _ := testAssessor(t, 5, 4)
	l, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zoe", "ada", "mel"} {
		p := privacy.NewPrefs(name, 0) // any positive violation defaults
		p.Add("weight", privacy.Tuple{Purpose: "service", Visibility: 0, Granularity: 0, Retention: 0})
		l.Upsert(name, p, 1)
	}
	got := l.WouldDefault()
	want := []string{"ada", "mel", "zoe"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WouldDefault = %v, want %v", got, want)
	}
}

// TestReportMiss covers the absent-provider read.
func TestReportMiss(t *testing.T) {
	a, _ := testAssessor(t, 2, 2)
	l, err := New(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Report("ghost"); ok {
		t.Error("absent provider should miss")
	}
	if s := l.Summary(); s.N != 0 || !floatutil.Zero(s.PW) {
		t.Errorf("empty summary = %+v", s)
	}
}
