package ppdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/population"
	"repro/internal/wal"
)

// walStep is one deterministic mutation that appends exactly one WAL
// record, so after running the first k steps the log holds LSNs 1..k.
type walStep struct {
	name string
	run  func(*DB) error
}

// walCrashSteps builds the deterministic mutation history the crash matrix
// kills at every point: a batch ingest, serial upserts, removals, a policy
// swap, clock advances and a retention sweep — every WAL record type.
func walCrashSteps(t testing.TB) []walStep {
	t.Helper()
	pop := population.PrefsOf(equivGenerator(t, 4242).Generate(24))
	late := population.PrefsOf(equivGenerator(t, 777).Generate(4))
	steps := []walStep{
		{"batch", func(d *DB) error { return d.RegisterProviders(pop[:8]) }},
	}
	for _, p := range pop[8:] {
		p := p
		steps = append(steps, walStep{"upsert-" + p.Provider, func(d *DB) error {
			return d.RegisterProvider(p)
		}})
	}
	steps = append(steps,
		walStep{"policy-v2", func(d *DB) error {
			_, err := d.SetPolicy(equivPolicy("v2", 3))
			return err
		}},
		walStep{"remove-0", func(d *DB) error { _, err := d.RemoveProvider(pop[0].Provider); return err }},
		walStep{"remove-5", func(d *DB) error { _, err := d.RemoveProvider(pop[5].Provider); return err }},
		walStep{"advance-24h", func(d *DB) error { _, err := d.Advance(24 * time.Hour); return err }},
		walStep{"sweep", func(d *DB) error { _, err := d.Sweep(); return err }},
		walStep{"advance-12h", func(d *DB) error { _, err := d.Advance(12 * time.Hour); return err }},
	)
	for _, p := range late {
		p := p
		steps = append(steps, walStep{"late-" + p.Provider, func(d *DB) error {
			return d.RegisterProvider(p)
		}})
	}
	return steps
}

// walCrashConfig is the DB config every incarnation in the matrix shares.
func walCrashConfig(t testing.TB, shards int) Config {
	t.Helper()
	gen := equivGenerator(t, 4242)
	return Config{Policy: equivPolicy("v1", 2), AttrSens: gen.AttributeSensitivities(), Shards: shards}
}

// walCrashOpts forces a group commit per step (exact step↔LSN accounting)
// and tiny segments so rotation fires throughout the workload.
func walCrashOpts(dir string) wal.Options {
	opts := walTestOpts(dir)
	opts.SegmentBytes = 512
	return opts
}

// walMutationSites enumerates every WAL fault-injection site a clean run of
// the workload passes through, by tracing it — new sites added to the WAL
// hot path join the crash matrix automatically.
func walMutationSites(t *testing.T) []string {
	t.Helper()
	defer fault.Reset()
	db, err := New(walCrashConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(walCrashOpts(filepath.Join(t.TempDir(), "wal"))); err != nil {
		t.Fatal(err)
	}
	fault.StartTrace()
	for _, st := range walCrashSteps(t) {
		if err := st.run(db); err != nil {
			t.Fatalf("clean run step %s: %v", st.name, err)
		}
	}
	all := fault.StopTrace()
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	var sites []string
	for _, s := range all {
		if strings.HasPrefix(s, "wal.") {
			sites = append(sites, s)
		}
	}
	return sites
}

// requireDBEquiv demands two databases certify byte-identically and write
// byte-identical snapshots. The manifests are compared field-wise because
// walLSN legitimately differs between a WAL-attached DB and the oracle.
func requireDBEquiv(t *testing.T, got, want *DB, label string) {
	t.Helper()
	gc, err := got.Certify(0.25)
	if err != nil {
		t.Fatalf("%s: Certify(got): %v", label, err)
	}
	wc, err := want.Certify(0.25)
	if err != nil {
		t.Fatalf("%s: Certify(want): %v", label, err)
	}
	if !bytes.Equal(mustJSON(t, gc), mustJSON(t, wc)) {
		t.Errorf("%s: certification diverges from the serial oracle\nwant: %.300s\ngot:  %.300s",
			label, mustJSON(t, wc), mustJSON(t, gc))
	}

	gotDir := filepath.Join(t.TempDir(), "got")
	wantDir := filepath.Join(t.TempDir(), "want")
	if err := got.Save(gotDir); err != nil {
		t.Fatalf("%s: Save(got): %v", label, err)
	}
	if err := want.Save(wantDir); err != nil {
		t.Fatalf("%s: Save(want): %v", label, err)
	}
	gt, wt := readTree(t, gotDir), readTree(t, wantDir)
	var gm, wm manifestJSON
	if err := json.Unmarshal([]byte(gt[manifestName]), &gm); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(wt[manifestName]), &wm); err != nil {
		t.Fatal(err)
	}
	if !gm.SavedAt.Equal(wm.SavedAt) || len(gm.Files) != len(wm.Files) {
		t.Errorf("%s: manifests disagree beyond walLSN", label)
	}
	for rel, sum := range wm.Files {
		if gm.Files[rel] != sum {
			t.Errorf("%s: artifact %s hash differs from the oracle", label, rel)
		}
	}
	delete(gt, manifestName)
	delete(wt, manifestName)
	if !sameTree(gt, wt) {
		t.Errorf("%s: snapshot bytes differ from the serial oracle", label)
	}
}

// TestWALCrashMatrix is the acceptance criterion for the WAL tentpole: for
// every fault site in the WAL hot path, at several points in the history,
// at every shard count — kill the process there, recover, and prove the
// recovered state is exactly a prefix of the mutation history: the
// recovered LSN k' is within [acked, acked+1] of the last acknowledged
// step, and certifications and snapshot bytes are identical to a serial
// (shards=1) oracle that applied the first k' steps with no WAL at all.
func TestWALCrashMatrix(t *testing.T) {
	sites := walMutationSites(t)
	if len(sites) < 3 {
		t.Fatalf("suspiciously few WAL injection sites traced: %v", sites)
	}
	steps := walCrashSteps(t)
	armPoints := []int{2, len(steps) / 2, len(steps) - 3}
	for _, site := range sites {
		site := site
		t.Run(site, func(t *testing.T) {
			crashes := 0
			for _, shards := range shardSweepCounts {
				for _, armAt := range armPoints {
					label := fmt.Sprintf("shards=%d armAt=%d", shards, armAt)
					func() {
						defer fault.Reset()
						walDir := filepath.Join(t.TempDir(), "wal")
						db, err := New(walCrashConfig(t, shards))
						if err != nil {
							t.Fatal(err)
						}
						if _, err := db.AttachWAL(walCrashOpts(walDir)); err != nil {
							t.Fatal(err)
						}
						acked, crashed := 0, false
						for i, st := range steps {
							if i == armAt {
								fault.ArmCrash(site)
							}
							if err := st.run(db); err != nil {
								if !fault.IsCrash(err) {
									t.Fatalf("%s: step %d (%s) failed without a crash: %v", label, i, st.name, err)
								}
								crashed = true
								break
							}
							acked++
						}
						fault.Reset()
						//lint:ignore errflow the log is wedged; closing is best-effort teardown
						db.CloseWAL()
						if !crashed {
							// The site was not on the path past armAt (e.g. no
							// rotation left); other arm points cover it.
							return
						}
						crashes++

						// Kill-and-recover: a fresh DB replays the log.
						rec, err := New(walCrashConfig(t, shards))
						if err != nil {
							t.Fatal(err)
						}
						if _, err := rec.AttachWAL(walTestOpts(walDir)); err != nil {
							t.Fatalf("%s: recovery after crash at %s failed: %v", label, site, err)
						}
						defer rec.CloseWAL()
						kPrime := int(rec.WALLastLSN())
						if kPrime < acked || kPrime > acked+1 {
							t.Fatalf("%s: recovered LSN %d, want within [%d, %d]", label, kPrime, acked, acked+1)
						}

						// Serial oracle: shards=1, no WAL, first k' steps.
						oracle, err := New(walCrashConfig(t, 1))
						if err != nil {
							t.Fatal(err)
						}
						for i := 0; i < kPrime; i++ {
							if err := steps[i].run(oracle); err != nil {
								t.Fatalf("%s: oracle step %d (%s): %v", label, i, steps[i].name, err)
							}
						}
						requireDBEquiv(t, rec, oracle, label)
					}()
				}
			}
			if crashes == 0 {
				t.Errorf("site %s never crashed at any arm point", site)
			}
		})
	}
}

// TestWALCrashDuringCheckpointTruncate: a crash while pruning old segments
// loses nothing — the snapshot is already published and the surviving
// (over-long) log replays cleanly over it.
func TestWALCrashDuringCheckpointTruncate(t *testing.T) {
	defer fault.Reset()
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := filepath.Join(t.TempDir(), "snap")
	db, err := New(walCrashConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(walCrashOpts(walDir)); err != nil {
		t.Fatal(err)
	}
	steps := walCrashSteps(t)
	for _, st := range steps {
		if err := st.run(db); err != nil {
			t.Fatal(err)
		}
	}
	// First checkpoint establishes a truncation floor; the second prunes up
	// to it and is the one killed mid-prune.
	if ran, err := db.Checkpoint(snapDir); err != nil || !ran {
		t.Fatalf("checkpoint 1 ran=%v err=%v", ran, err)
	}
	if _, err := db.Advance(time.Hour); err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, mustCertify(t, db, 0.25))
	fault.ArmCrash("wal.checkpoint.truncate")
	if _, err := db.Checkpoint(snapDir); !fault.IsCrash(err) {
		t.Fatalf("checkpoint with truncate crash armed returned %v", err)
	}
	fault.Reset()
	//lint:ignore errflow the log is wedged; closing is best-effort teardown
	db.CloseWAL()

	rec, err := Load(snapDir, walCrashConfig(t, 2))
	if err != nil {
		t.Fatalf("Load after truncate crash: %v", err)
	}
	if _, err := rec.AttachWAL(walTestOpts(walDir)); err != nil {
		t.Fatalf("replay after truncate crash: %v", err)
	}
	defer rec.CloseWAL()
	if got := mustJSON(t, mustCertify(t, rec, 0.25)); !bytes.Equal(got, want) {
		t.Error("recovery after truncate crash diverges")
	}
}

// TestWALCrashDuringReplay: a crash mid-replay leaves the DB unattached;
// retrying the attach recovers fully.
func TestWALCrashDuringReplay(t *testing.T) {
	defer fault.Reset()
	walDir := filepath.Join(t.TempDir(), "wal")
	db := buildWALDB(t, walDir, 2)
	want := mustJSON(t, mustCertify(t, db, 0.25))
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rec, err := New(walEquivConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	fault.ArmCrash("wal.replay")
	if _, err := rec.AttachWAL(walTestOpts(walDir)); !fault.IsCrash(err) {
		t.Fatalf("attach with replay crash armed returned %v", err)
	}
	fault.Reset()
	if rec.WALAttached() {
		t.Fatal("crashed attach left the WAL armed")
	}
	// The crashed replay may have applied a prefix; replaying the full log
	// over it must still converge — records are idempotent.
	if _, err := rec.AttachWAL(walTestOpts(walDir)); err != nil {
		t.Fatalf("retried attach failed: %v", err)
	}
	defer rec.CloseWAL()
	if got := mustJSON(t, mustCertify(t, rec, 0.25)); !bytes.Equal(got, want) {
		t.Error("recovery after replay crash diverges")
	}
}

// TestWALTornTailRecoveredAtLoad: silent corruption in the log's tail — a
// short write or a flipped byte — is detected, logged, counted and skipped
// at the next attach; recovery never fails, it just ends at the last good
// record.
func TestWALTornTailRecoveredAtLoad(t *testing.T) {
	for _, mode := range []string{"short-write", "flip-byte"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			defer fault.Reset()
			walDir := filepath.Join(t.TempDir(), "wal")
			db, err := New(walCrashConfig(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.AttachWAL(walTestOpts(walDir)); err != nil {
				t.Fatal(err)
			}
			steps := walCrashSteps(t)
			good := len(steps) - 1
			for _, st := range steps[:good] {
				if err := st.run(db); err != nil {
					t.Fatal(err)
				}
			}
			// The final record lands corrupted on disk with no error
			// reported — the write "succeeded".
			switch mode {
			case "short-write":
				fault.ArmShortWrite("wal.append", 5)
			case "flip-byte":
				fault.ArmFlipByte("wal.append", 12)
			}
			if err := steps[good].run(db); err != nil {
				t.Fatalf("silently corrupted step errored: %v", err)
			}
			fault.Reset()
			//lint:ignore errflow teardown of a log whose tail is garbage
			db.CloseWAL()

			rec, err := New(walCrashConfig(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rec.AttachWAL(walTestOpts(walDir)); err != nil {
				t.Fatalf("attach over torn tail failed: %v", err)
			}
			defer rec.CloseWAL()
			if got := int(rec.WALLastLSN()); got != good {
				t.Errorf("recovered LSN %d, want the %d good records", got, good)
			}
			oracle, err := New(walCrashConfig(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range steps[:good] {
				if err := st.run(oracle); err != nil {
					t.Fatal(err)
				}
			}
			requireDBEquiv(t, rec, oracle, mode)
		})
	}
}

// TestWALDirSurvivesSnapshotOnlyRestart: a DB loaded from a checkpoint
// whose WAL directory was wiped starts an empty log at the checkpoint LSN
// instead of reusing stale positions.
func TestWALDirSurvivesSnapshotOnlyRestart(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := filepath.Join(t.TempDir(), "snap")
	db := buildWALDB(t, walDir, 1)
	if ran, err := db.Checkpoint(snapDir); err != nil || !ran {
		t.Fatalf("checkpoint ran=%v err=%v", ran, err)
	}
	ckptLSN := db.WALLastLSN()
	want := mustJSON(t, mustCertify(t, db, 0.25))
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(walDir); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(snapDir, walEquivConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	n, err := rec.AttachWAL(walTestOpts(walDir))
	if err != nil {
		t.Fatalf("attach over wiped WAL dir: %v", err)
	}
	defer rec.CloseWAL()
	if n != 0 {
		t.Errorf("replayed %d records from a wiped log", n)
	}
	if got := rec.WALLastLSN(); got != ckptLSN {
		t.Errorf("fresh log starts at LSN %d, want the checkpoint's %d", got, ckptLSN)
	}
	if got := mustJSON(t, mustCertify(t, rec, 0.25)); !bytes.Equal(got, want) {
		t.Error("snapshot-only restart diverges")
	}
	// New mutations must keep assigning LSNs past the checkpoint.
	if _, err := rec.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := rec.WALLastLSN(); got != ckptLSN+1 {
		t.Errorf("post-restart mutation got LSN %d, want %d", got, ckptLSN+1)
	}
}
