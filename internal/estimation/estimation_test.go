package estimation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
)

func TestFitMonotone(t *testing.T) {
	// Noisy but basically increasing observations.
	obs := []Observation{
		{Severity: 1, DefaultFrac: 0.05},
		{Severity: 2, DefaultFrac: 0.10},
		{Severity: 3, DefaultFrac: 0.08}, // violator
		{Severity: 4, DefaultFrac: 0.20},
		{Severity: 5, DefaultFrac: 0.40},
	}
	c, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	_, ys := c.Knots()
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-1e-12 {
			t.Fatalf("fitted curve not monotone: %v", ys)
		}
	}
	// PAV pools the violator with its neighbour: (0.10 + 0.08)/2 = 0.09.
	if math.Abs(ys[1]-0.09) > 1e-12 || math.Abs(ys[2]-0.09) > 1e-12 {
		t.Errorf("PAV pooling wrong: %v", ys)
	}
}

func TestCurveAt(t *testing.T) {
	c, err := Fit([]Observation{
		{Severity: 0, DefaultFrac: 0},
		{Severity: 10, DefaultFrac: 0.5},
		{Severity: 20, DefaultFrac: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{
		-5: 0, 0: 0, 5: 0.25, 10: 0.5, 15: 0.75, 20: 1, 100: 1,
	}
	for x, want := range cases {
		if got := c.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("no observations should fail")
	}
	if _, err := Fit([]Observation{{1, 0.1}}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := Fit([]Observation{{1, 0.1}, {1, 0.2}}); err == nil {
		t.Error("single distinct severity should fail")
	}
	if _, err := Fit([]Observation{{1, -0.1}, {2, 0.2}}); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, err := Fit([]Observation{{1, 0.1}, {2, 1.2}}); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestFitAveragesDuplicates(t *testing.T) {
	c, err := Fit([]Observation{
		{Severity: 1, DefaultFrac: 0.1},
		{Severity: 1, DefaultFrac: 0.3},
		{Severity: 2, DefaultFrac: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("duplicate averaging: At(1) = %g, want 0.2", got)
	}
}

// Property: the fitted curve is monotone for any input.
func TestFitMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		obs := make([]Observation, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			obs = append(obs, Observation{
				Severity:    float64(raw[i] % 100),
				DefaultFrac: float64(raw[i+1]%1000) / 1000,
			})
		}
		c, err := Fit(obs)
		if err != nil {
			return true // e.g. all severities equal
		}
		_, ys := c.Knots()
		for i := 1; i < len(ys); i++ {
			if ys[i] < ys[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLegacyProgrammeEndToEnd simulates the Sec. 10 route on a hidden
// population: observe defaults under a few historical policies, fit, then
// predict defaults for held-out policies and compare to ground truth.
func TestLegacyProgrammeEndToEnd(t *testing.T) {
	const pr = privacy.Purpose("service")
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{pr}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{pr}},
		},
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	hidden := population.PrefsOf(gen.Generate(4000)) // the house cannot see these
	sigma := gen.AttributeSensitivities()

	// Survey sample: a small random-ish subsample plays the "survey
	// questions" role. (First 200 of a generated population is an unbiased
	// sample because generation order is independent of content.)
	sample := hidden[:200]

	// Policy ladder p0 … p8 of increasing width.
	policies := []*privacy.HousePolicy{}
	hp := privacy.NewHousePolicy("p0")
	hp.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 0, Granularity: 0, Retention: 0})
	hp.Add("income", privacy.Tuple{Purpose: pr, Visibility: 0, Granularity: 0, Retention: 0})
	policies = append(policies, hp)
	dims := privacy.OrderedDimensions
	for i := 1; i <= 8; i++ {
		hp = hp.WidenAll("p"+string(rune('0'+i)), dims[i%3], 1)
		policies = append(policies, hp)
	}

	truth := func(p *privacy.HousePolicy) float64 {
		a, err := core.NewAssessor(p, sigma, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return a.AssessPopulation(hidden).PDefault
	}

	// Observe the even-indexed policies (history), hold out the odd ones.
	hist, err := NewHistory(sigma, core.Options{}, sample)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(policies); i += 2 {
		if err := hist.Observe(policies[i], truth(policies[i])); err != nil {
			t.Fatal(err)
		}
	}
	if hist.Len() != 5 {
		t.Fatalf("history length = %d", hist.Len())
	}

	// Predictions on held-out policies should track the truth.
	var worst float64
	for i := 1; i < len(policies); i += 2 {
		pred, err := hist.Predict(policies[i])
		if err != nil {
			t.Fatal(err)
		}
		actual := truth(policies[i])
		diff := math.Abs(pred - actual)
		if diff > worst {
			worst = diff
		}
		if diff > 0.12 {
			t.Errorf("policy %s: predicted %0.4f, actual %0.4f", policies[i].Name, pred, actual)
		}
	}
	t.Logf("worst held-out prediction error: %.4f", worst)
}

func TestHistoryErrors(t *testing.T) {
	if _, err := NewHistory(nil, core.Options{}, nil); err == nil {
		t.Error("empty sample should fail")
	}
	sample := []*privacy.Prefs{privacy.NewPrefs("x", 1)}
	h, err := NewHistory(nil, core.Options{}, sample)
	if err != nil {
		t.Fatal(err)
	}
	hp := privacy.NewHousePolicy("p")
	if err := h.Observe(hp, 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if err := h.Observe(nil, 0.5); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := h.Predict(hp); err == nil {
		t.Error("prediction without enough history should fail")
	}
	if _, err := SeverityIndex(hp, nil, core.Options{}, nil); err == nil {
		t.Error("empty sample severity index should fail")
	}
}
