package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockcheckChecker enforces the lock discipline of structs that guard
// shared state with a sync.Mutex/sync.RWMutex field (ppdb.DB,
// relational.Database, relational.Table, ppdb.Audit are the hot paths):
//
//  1. an exported pointer-receiver method that reads or writes a mutated
//     sibling field without acquiring the struct's lock is flagged
//     (unexported methods are assumed to run with the lock held, and
//     fields only ever assigned during construction are treated as
//     immutable);
//  2. an exported method that does lock but returns a map, slice or
//     pointer field of the guarded state is flagged — the alias escapes
//     the critical section and later reads race with writers. Pointers to
//     structs that carry their own mutex are a safe handoff and exempt.
func lockcheckChecker() *Checker {
	return &Checker{
		Name: "lockcheck",
		Doc:  "flag unlocked access to mutex-guarded fields and guarded aliases escaping the critical section",
		Run:  runLockcheck,
	}
}

// guardedStruct is one struct type with at least one mutex field.
type guardedStruct struct {
	named   *types.Named
	locks   map[string]bool // mutex/rwmutex field names
	mutated map[string]bool // fields written by some method (guarded state)
	methods []*ast.FuncDecl
	recvs   map[*ast.FuncDecl]*types.Var // receiver object per method
}

func runLockcheck(pass *Pass) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return
	}
	for _, g := range guarded {
		computeMutated(pass, g)
	}
	for _, g := range guarded {
		for _, m := range g.methods {
			checkMethod(pass, g, m)
		}
	}
}

// isMutexType matches sync.Mutex and sync.RWMutex (non-pointer).
func isMutexType(t types.Type) bool {
	if _, ptr := t.(*types.Pointer); ptr {
		return false
	}
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// collectGuarded finds this package's mutex-guarded structs and their
// declared methods.
func collectGuarded(pass *Pass) []*guardedStruct {
	byType := map[*types.Named]*guardedStruct{}
	var out []*guardedStruct
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		locks := map[string]bool{}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				locks[f.Name()] = true
			}
		}
		if len(locks) == 0 {
			continue
		}
		g := &guardedStruct{
			named:   named,
			locks:   locks,
			mutated: map[string]bool{},
			recvs:   map[*ast.FuncDecl]*types.Var{},
		}
		byType[named] = g
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			rt := recv.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			} else {
				continue // value receiver: vet's copylocks owns that case
			}
			named, ok := rt.(*types.Named)
			if !ok {
				continue
			}
			g, ok := byType[named]
			if !ok {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue
			}
			rv, ok := pass.Info.Defs[names[0]].(*types.Var)
			if !ok {
				continue
			}
			g.methods = append(g.methods, fd)
			g.recvs[fd] = rv
		}
	}
	return out
}

// computeMutated marks fields written by any method body: direct
// assignment, compound assignment, ++/--, element assignment, delete(), or
// having their address taken. Fields only set by constructors stay
// immutable and exempt from locking.
func computeMutated(pass *Pass, g *guardedStruct) {
	markLHS := func(recv *types.Var, e ast.Expr) {
		if name, ok := receiverField(pass, recv, e); ok {
			g.mutated[name] = true
		}
		// Element writes (m[k] = v) mutate the field's contents.
		if ix, ok := unparen(e).(*ast.IndexExpr); ok {
			if name, ok := receiverField(pass, recv, ix.X); ok {
				g.mutated[name] = true
			}
		}
	}
	for _, m := range g.methods {
		recv := g.recvs[m]
		ast.Inspect(m.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					markLHS(recv, lhs)
				}
			case *ast.IncDecStmt:
				markLHS(recv, node.X)
			case *ast.UnaryExpr:
				if node.Op == token.AND {
					markLHS(recv, node.X)
				}
			case *ast.CallExpr:
				if id, ok := unparen(node.Fun).(*ast.Ident); ok && id.Name == "delete" && len(node.Args) > 0 {
					markLHS(recv, node.Args[0])
				}
			case *ast.RangeStmt:
				if node.Key != nil {
					markLHS(recv, node.Key)
				}
				if node.Value != nil {
					markLHS(recv, node.Value)
				}
			}
			return true
		})
	}
}

// receiverField resolves e to a direct field selection recv.F and returns
// the field name.
func receiverField(pass *Pass, recv *types.Var, e ast.Expr) (string, bool) {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok || pass.Info.Uses[id] != recv {
		return "", false
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", false
	}
	return sel.Sel.Name, true
}

// acquiresLock reports whether the method body contains a Lock/RLock call
// on the receiver's mutex (recv.mu.Lock(), or recv.Lock() via an embedded
// mutex).
func acquiresLock(pass *Pass, recv *types.Var, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if id := rootIdent(sel.X); id != nil && pass.Info.Uses[id] == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkMethod(pass *Pass, g *guardedStruct, m *ast.FuncDecl) {
	if !m.Name.IsExported() {
		return // unexported: assumed to run under the caller's lock
	}
	recv := g.recvs[m]
	qual := relativeTo(pass.Pkg)
	typeName := g.named.Obj().Name()
	lockNames := make([]string, 0, len(g.locks))
	for n := range g.locks {
		lockNames = append(lockNames, n)
	}
	sort.Strings(lockNames)
	lockLabel := typeName + "." + strings.Join(lockNames, "/")

	if !acquiresLock(pass, recv, m.Body) {
		// Rule 1: unlocked access to guarded (mutated) sibling fields.
		var fields []string
		seen := map[string]bool{}
		var firstPos ast.Node
		ast.Inspect(m.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := receiverField(pass, recv, sel)
			if !ok || g.locks[name] || !g.mutated[name] {
				return true
			}
			if !seen[name] {
				seen[name] = true
				fields = append(fields, name)
			}
			if firstPos == nil {
				firstPos = sel
			}
			return true
		})
		if len(fields) > 0 {
			sort.Strings(fields)
			pass.Reportf(firstPos.Pos(),
				"exported method (*%s).%s accesses guarded field(s) %s without acquiring %s",
				typeName, m.Name.Name, strings.Join(fields, ", "), lockLabel)
		}
		return
	}

	// Rule 2: guarded aliases escaping the critical section via return.
	ast.Inspect(m.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			name, ok := guardedChainRoot(pass, recv, res)
			if !ok || g.locks[name] || !g.mutated[name] {
				continue
			}
			t := pass.TypeOf(res)
			if t == nil || !escapes(t) {
				continue
			}
			pass.Reportf(res.Pos(),
				"(*%s).%s returns guarded field %s (%s); the alias escapes %s's critical section — return a copy or document immutability",
				typeName, m.Name.Name, name, types.TypeString(t, qual), lockLabel)
		}
		return true
	})
}

// guardedChainRoot resolves a returned expression to the receiver field at
// the root of a pure selector chain (recv.f, recv.f.g), if any.
func guardedChainRoot(pass *Pass, recv *types.Var, e ast.Expr) (string, bool) {
	e = unparen(e)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if name, ok := receiverField(pass, recv, sel); ok {
			return name, true
		}
		e = unparen(sel.X)
	}
}

// escapes reports whether returning a value of type t aliases shared
// state: maps, slices, and pointers to structs without their own mutex
// (self-locking structs are a safe handoff).
func escapes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	case *types.Pointer:
		if st, ok := u.Elem().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isMutexType(st.Field(i).Type()) {
					return false
				}
			}
		}
		return true
	}
	return false
}
