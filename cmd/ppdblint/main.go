// Command ppdblint runs the repo-specific static-analysis suite
// (internal/analysis) over the packages matched by its patterns and prints
// findings as deterministic `file:line: [checker] message` lines. It is
// the lint gate of `make check`.
//
// Per-package checkers: lockcheck (mutex discipline on guarded structs),
// floatcmp (exact float equality), enumswitch (non-exhaustive iota-enum
// switches), errflow (dropped error returns), fanout (goroutine/FanOut
// misuse). Whole-program checkers, which run over the cross-package call
// graph of every loaded package at once: lockorder (the declared
// //lint:lockorder partial order) and determinism (map ranges, time.Now
// and math/rand reachable from //lint:deterministic roots). Deliberate
// exceptions are annotated with `//lint:ignore <checker> <reason>` (or
// per-checker `//lint:ignore checker[reason]`) on or directly above the
// offending line.
//
// Usage:
//
//	ppdblint ./...                              # everything, all checkers
//	ppdblint -checker lockorder ./...
//	ppdblint -baseline lint-baseline.json ./... # fail only on new findings
//	ppdblint -sarif ./... > ppdblint.sarif
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppdblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checker := fs.String("checker", "", "comma-separated checkers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baselinePath := fs.String("baseline", "", "baseline file; findings it contains are not reported")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ppdblint [-checker list] [-json|-sarif] [-baseline file] [-write-baseline file] [packages ...]\n\n")
		fmt.Fprintf(stderr, "Runs the repo's static-analysis suite; patterns default to ./...\n")
		fmt.Fprintf(stderr, "Example: ppdblint -baseline lint-baseline.json ./...\n\nCheckers:\n")
		for _, c := range analysis.Checkers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with `//lint:ignore <checker> <reason>` on or above its line.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "ppdblint: -json and -sarif are mutually exclusive")
		return 2
	}
	checkers, err := analysis.Select(*checker)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := analysis.Analyze(pkgs, checkers)
	for i := range findings {
		findings[i].File = relativize(cwd, findings[i].File)
	}
	if *writeBaseline != "" {
		b := analysis.NewBaseline(findings)
		if err := b.WriteFile(*writeBaseline); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "ppdblint: wrote %d baseline entr%s (%d findings) to %s\n",
			len(b.Findings), plural(len(b.Findings), "y", "ies"), len(findings), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		findings = b.Filter(findings)
	}
	switch {
	case *asSARIF:
		if err := analysis.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// relativize shortens file paths relative to dir for readable, stable
// output.
func relativize(dir, file string) string {
	rel, err := filepath.Rel(dir, file)
	if err != nil {
		return file
	}
	return rel
}
