package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk layout (DESIGN.md §14).
//
// A segment file is a 16-byte header followed by a run of frames:
//
//	header:  u32 magic "PWAL" | u16 format version | u16 reserved | u64 base LSN
//	frame:   u32 payload length | u32 CRC32C(payload) | payload
//	payload: u8 record type | record body
//
// All integers are little-endian. The CRC covers the payload only (type
// byte + body), computed with the Castagnoli polynomial. A record's LSN is
// positional: the segment's base LSN plus its zero-based index in the
// segment — nothing in the frame repeats it, so a frame can never claim an
// LSN its position contradicts.
const (
	magic         = 0x4C415750 // "PWAL" read little-endian
	formatVersion = 1
	headerSize    = 16
	frameOverhead = 8

	// MaxRecordBytes bounds a single payload. A length field above it is
	// treated as tail garbage, not an instruction to allocate gigabytes.
	MaxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logical WAL entry: an application-chosen type byte and an
// opaque body. The WAL never interprets either.
type Record struct {
	Type byte
	Data []byte
}

func (r Record) frameSize() int { return frameOverhead + 1 + len(r.Data) }

// appendFrame encodes rec as a frame onto buf and returns the extended
// slice.
func appendFrame(buf []byte, rec Record) []byte {
	n := 1 + len(rec.Data)
	crc := crc32.Update(0, castagnoli, []byte{rec.Type})
	crc = crc32.Update(crc, castagnoli, rec.Data)
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, rec.Type)
	buf = append(buf, rec.Data...)
	return buf
}

// encodeHeader renders a segment header for the given base LSN.
func encodeHeader(base uint64) []byte {
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], base)
	return hdr
}

// readHeader reads and validates a segment header, returning its base LSN.
func readHeader(r io.Reader, path string) (uint64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %s: reading segment header: %w", path, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != magic {
		return 0, fmt.Errorf("wal: %s: bad magic %#x", path, got)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVersion {
		return 0, fmt.Errorf("wal: %s: unsupported format version %d", path, v)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// errTornTail marks the point where a segment stops being decodable:
// a short frame header, a payload cut off mid-record, an implausible
// length, or a CRC mismatch. In the last segment this is the expected
// debris of a crash and recovery truncates it away; in any earlier
// segment it is mid-log corruption and Open fails loudly.
type tornTailError struct {
	path   string
	offset int64
	reason string
}

func (e *tornTailError) Error() string {
	return fmt.Sprintf("wal: %s: undecodable record at offset %d: %s", e.path, e.offset, e.reason)
}

// scanFrames iterates the frames of a segment body (reader positioned just
// past the header). For every decodable record it calls fn with the
// record's positional LSN. It returns the number of records decoded and
// the byte offset (from the start of the file) of the first byte past the
// last good frame. A clean EOF returns a nil error; undecodable bytes
// return a *tornTailError; an fn error aborts the scan and is returned
// as-is.
func scanFrames(r io.Reader, path string, base uint64, fn func(lsn uint64, rec Record) error) (count int, goodEnd int64, err error) {
	goodEnd = headerSize
	var hdr [frameOverhead]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return count, goodEnd, nil // clean end of segment
			}
			return count, goodEnd, &tornTailError{path, goodEnd, "short frame header"}
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > MaxRecordBytes {
			return count, goodEnd, &tornTailError{path, goodEnd, fmt.Sprintf("implausible payload length %d", n)}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return count, goodEnd, &tornTailError{path, goodEnd, "payload cut short"}
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return count, goodEnd, &tornTailError{path, goodEnd, fmt.Sprintf("CRC mismatch (stored %#x, computed %#x)", want, got)}
		}
		rec := Record{Type: payload[0], Data: payload[1:]}
		if fn != nil {
			if err := fn(base+uint64(count), rec); err != nil {
				return count, goodEnd, err
			}
		}
		count++
		goodEnd += int64(frameOverhead) + int64(n)
	}
}
