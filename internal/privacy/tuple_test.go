package privacy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTupleGetWith(t *testing.T) {
	tp := Tuple{Purpose: "care", Visibility: 1, Granularity: 2, Retention: 3}
	if tp.Get(DimVisibility) != 1 || tp.Get(DimGranularity) != 2 || tp.Get(DimRetention) != 3 {
		t.Fatalf("Get wrong: %v", tp)
	}
	tp2 := tp.With(DimGranularity, 9)
	if tp2.Granularity != 9 || tp.Granularity != 2 {
		t.Error("With must not mutate the receiver")
	}
	if tp.WithPurpose(" Marketing ").Purpose != "marketing" {
		t.Error("WithPurpose must normalize")
	}
}

func TestTupleGetPurposePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get(DimPurpose) should panic")
		}
	}()
	Tuple{}.Get(DimPurpose)
}

func TestTupleWithPurposePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("With(DimPurpose) should panic")
		}
	}()
	Tuple{}.With(DimPurpose, 1)
}

func TestZeroTuple(t *testing.T) {
	z := ZeroTuple("care")
	if z.Visibility != 0 || z.Granularity != 0 || z.Retention != 0 || z.Purpose != "care" {
		t.Fatalf("ZeroTuple wrong: %v", z)
	}
}

func TestSamePurpose(t *testing.T) {
	a := Tuple{Purpose: "Care"}
	b := Tuple{Purpose: " care "}
	c := Tuple{Purpose: "research"}
	if !a.SamePurpose(b) {
		t.Error("normalized purposes should match")
	}
	if a.SamePurpose(c) {
		t.Error("distinct purposes should not match")
	}
}

func TestExceededDims(t *testing.T) {
	pref := Tuple{Purpose: "p", Visibility: 2, Granularity: 2, Retention: 2}
	cases := []struct {
		pol  Tuple
		want []Dimension
	}{
		{Tuple{Purpose: "p", Visibility: 2, Granularity: 2, Retention: 2}, nil},
		{Tuple{Purpose: "p", Visibility: 1, Granularity: 0, Retention: 2}, nil},
		{Tuple{Purpose: "p", Visibility: 3, Granularity: 2, Retention: 2}, []Dimension{DimVisibility}},
		{Tuple{Purpose: "p", Visibility: 2, Granularity: 3, Retention: 3}, []Dimension{DimGranularity, DimRetention}},
		{Tuple{Purpose: "p", Visibility: 4, Granularity: 4, Retention: 4}, []Dimension{DimVisibility, DimGranularity, DimRetention}},
	}
	for _, c := range cases {
		got := pref.ExceededDims(c.pol)
		if len(got) != len(c.want) {
			t.Errorf("ExceededDims(%v) = %v, want %v", c.pol, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ExceededDims(%v) = %v, want %v", c.pol, got, c.want)
			}
		}
		if pref.ExceededBy(c.pol) != (len(c.want) > 0) {
			t.Errorf("ExceededBy(%v) inconsistent with dims", c.pol)
		}
		if pref.Contains(c.pol) != (len(c.want) == 0) {
			t.Errorf("Contains(%v) inconsistent with dims", c.pol)
		}
	}
}

// Property (Fig. 1 geometry): containment is exactly the absence of any
// exceeded dimension, and widening a contained policy along one dimension
// past the preference bound breaks containment on that dimension alone.
func TestContainmentProperty(t *testing.T) {
	f := func(pv, pg, pr, qv, qg, qr uint8) bool {
		pref := Tuple{Purpose: "x", Visibility: Level(pv % 8), Granularity: Level(pg % 8), Retention: Level(pr % 8)}
		pol := Tuple{Purpose: "x", Visibility: Level(qv % 8), Granularity: Level(qg % 8), Retention: Level(qr % 8)}
		exceeded := pref.ExceededDims(pol)
		if pref.Contains(pol) != (len(exceeded) == 0) {
			return false
		}
		for _, d := range exceeded {
			if pref.Get(d) >= pol.Get(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleWiden(t *testing.T) {
	tp := Tuple{Purpose: "p", Visibility: 1, Granularity: 1, Retention: 1}
	if got := tp.Widen(DimRetention, 2).Retention; got != 3 {
		t.Errorf("Widen(+2) = %d, want 3", got)
	}
	if got := tp.Widen(DimRetention, -5).Retention; got != 0 {
		t.Errorf("Widen(-5) = %d, want floor 0", got)
	}
}

func TestTupleValidate(t *testing.T) {
	sc := DefaultScales()
	ok := Tuple{Purpose: "p", Visibility: 4, Granularity: 3, Retention: 5}
	if err := ok.Validate(sc); err != nil {
		t.Errorf("max levels should validate: %v", err)
	}
	for _, bad := range []Tuple{
		{Purpose: "p", Visibility: -1},
		{Purpose: "p", Visibility: 5},
		{Purpose: "p", Granularity: 4},
		{Purpose: "p", Retention: 6},
	} {
		if err := bad.Validate(sc); err == nil {
			t.Errorf("tuple %v should fail validation", bad)
		}
	}
	// No scales: only negativity is checked.
	if err := (Tuple{Purpose: "p", Visibility: 99}).Validate(Scales{}); err != nil {
		t.Errorf("scale-less validation should accept large levels: %v", err)
	}
}

func TestTupleStrings(t *testing.T) {
	tp := Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4}
	if s := tp.String(); !strings.Contains(s, "care") || !strings.Contains(s, "v=2") {
		t.Errorf("String = %q", s)
	}
	f := tp.Format(DefaultScales())
	if !strings.Contains(f, "house") || !strings.Contains(f, "specific") || !strings.Contains(f, "year") {
		t.Errorf("Format = %q", f)
	}
}
