package relational

import (
	"fmt"
	"sort"
	"strings"
)

// joinedEnv is the evaluation environment for a (possibly joined) row set:
// qualified names always resolve; bare names resolve when unambiguous.
type joinedEnv struct {
	qualified map[string]Value
	bare      map[string]Value // only unambiguous bare names
	ambiguous map[string]bool
}

// Col implements Env.
func (e *joinedEnv) Col(name string) (Value, error) {
	name = strings.ToLower(name)
	if v, ok := e.qualified[name]; ok {
		return v, nil
	}
	if e.ambiguous[name] {
		return Null(), fmt.Errorf("relational: ambiguous column %q (qualify it)", name)
	}
	if v, ok := e.bare[name]; ok {
		return v, nil
	}
	return Null(), fmt.Errorf("relational: unknown column %q", name)
}

// sourceRow is one row of the FROM product: the env plus the contributing
// tables' rows for SELECT * expansion.
type sourceRow struct {
	env  *joinedEnv
	rows []Row // one per FROM/JOIN item, in order
}

type sourceInfo struct {
	item   FromItem
	schema *Schema
}

// resolveSubqueries rewrites uncorrelated IN (SELECT …) nodes into literal
// IN lists by executing the subqueries up front. The subquery must project
// exactly one column.
func (db *Database) resolveSubqueries(e Expr) (Expr, error) {
	switch x := e.(type) {
	case InSubquery:
		res, err := db.execSelect(x.Query)
		if err != nil {
			return nil, fmt.Errorf("relational: subquery: %w", err)
		}
		if len(res.Columns) != 1 {
			return nil, fmt.Errorf("relational: IN subquery must project exactly one column, got %d", len(res.Columns))
		}
		inner, err := db.resolveSubqueries(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(res.Rows))
		for i, r := range res.Rows {
			list[i] = Literal{r[0]}
		}
		return In{Not: x.Not, X: inner, List: list}, nil
	case Binary:
		l, err := db.resolveSubqueries(x.L)
		if err != nil {
			return nil, err
		}
		r, err := db.resolveSubqueries(x.R)
		if err != nil {
			return nil, err
		}
		return Binary{Op: x.Op, L: l, R: r}, nil
	case Unary:
		inner, err := db.resolveSubqueries(x.X)
		if err != nil {
			return nil, err
		}
		return Unary{Neg: x.Neg, X: inner}, nil
	case IsNull:
		inner, err := db.resolveSubqueries(x.X)
		if err != nil {
			return nil, err
		}
		return IsNull{Not: x.Not, X: inner}, nil
	case In:
		inner, err := db.resolveSubqueries(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, item := range x.List {
			ri, err := db.resolveSubqueries(item)
			if err != nil {
				return nil, err
			}
			list[i] = ri
		}
		return In{Not: x.Not, X: inner, List: list}, nil
	default:
		return e, nil
	}
}

// execSelect runs a SELECT: FROM/JOIN product → WHERE filter → grouping or
// plain projection → HAVING → ORDER BY → LIMIT/OFFSET.
func (db *Database) execSelect(s SelectStmt) (*Result, error) {
	if s.Where != nil {
		resolved, err := db.resolveSubqueries(s.Where)
		if err != nil {
			return nil, err
		}
		s.Where = resolved
	}
	if s.Having != nil {
		resolved, err := db.resolveSubqueries(s.Having)
		if err != nil {
			return nil, err
		}
		s.Having = resolved
	}
	return db.execSelectResolved(s)
}

// execSelectResolved runs a SELECT whose predicates contain no subqueries.
func (db *Database) execSelectResolved(s SelectStmt) (*Result, error) {
	sources := []sourceInfo{}
	base, ok := db.Table(s.From.Table)
	if !ok {
		return nil, fmt.Errorf("relational: table %q does not exist", s.From.Table)
	}
	sources = append(sources, sourceInfo{s.From, base.Schema()})
	tables := []*Table{base}
	for _, j := range s.Joins {
		t, ok := db.Table(j.Right.Table)
		if !ok {
			return nil, fmt.Errorf("relational: table %q does not exist", j.Right.Table)
		}
		sources = append(sources, sourceInfo{j.Right, t.Schema()})
		tables = append(tables, t)
	}

	// Detect bare-name ambiguity across sources once.
	ambiguous := map[string]bool{}
	seen := map[string]bool{}
	for _, src := range sources {
		for _, c := range src.schema.Columns() {
			if seen[c.Name] {
				ambiguous[c.Name] = true
			}
			seen[c.Name] = true
		}
	}

	buildEnv := func(rows []Row) *joinedEnv {
		env := &joinedEnv{
			qualified: make(map[string]Value),
			bare:      make(map[string]Value),
			ambiguous: ambiguous,
		}
		for si, src := range sources {
			alias := strings.ToLower(src.item.Alias)
			for ci := 0; ci < src.schema.Len(); ci++ {
				name := src.schema.Column(ci).Name
				v := rows[si][ci]
				env.qualified[alias+"."+name] = v
				if !ambiguous[name] {
					env.bare[name] = v
				}
			}
		}
		return env
	}

	// Index-assisted access path for the base table: a conjunct of the form
	// col = literal over an indexed column of the base table narrows the
	// outer loop to the index bucket instead of a full scan.
	scanBase := func(fn func(id RowID, row Row) bool) error {
		// Only single-table queries use the index path: with joins, a bare
		// column name in the conjunct could be ambiguous.
		if col, val, ok := eqIndexLookup(s.Where, sources[0], base); ok && len(s.Joins) == 0 {
			ids, err := base.Lookup(col, val)
			if err != nil {
				return err
			}
			for _, id := range ids {
				row, live := base.Get(id)
				if !live {
					continue
				}
				if !fn(id, row) {
					return nil
				}
			}
			return nil
		}
		base.Scan(fn)
		return nil
	}

	// Materialize the joined, filtered row set via nested-loop join.
	var rowsOut []sourceRow
	var walkErr error
	var walk func(depth int, acc []Row)
	walk = func(depth int, acc []Row) {
		if walkErr != nil {
			return
		}
		if depth == len(tables) {
			env := buildEnv(acc)
			if s.Where != nil {
				ok, err := Truthy(s.Where, env)
				if err != nil {
					walkErr = err
					return
				}
				if !ok {
					return
				}
			}
			cp := make([]Row, len(acc))
			copy(cp, acc)
			rowsOut = append(rowsOut, sourceRow{env: env, rows: cp})
			return
		}
		visit := func(_ RowID, row Row) bool {
			acc = append(acc, row)
			if depth > 0 {
				// Apply this join's ON condition as soon as its row is bound.
				env := buildEnvPartial(sources[:depth+1], acc, ambiguous)
				ok, err := Truthy(s.Joins[depth-1].On, env)
				if err != nil {
					walkErr = err
					acc = acc[:len(acc)-1]
					return false
				}
				if ok {
					walk(depth+1, acc)
				}
			} else {
				walk(depth+1, acc)
			}
			acc = acc[:len(acc)-1]
			return walkErr == nil
		}
		if depth == 0 {
			if err := scanBase(visit); err != nil {
				walkErr = err
			}
			return
		}
		tables[depth].Scan(visit)
	}
	walk(0, nil)
	if walkErr != nil {
		return nil, walkErr
	}

	if len(s.GroupBy) > 0 || hasAggregates(s.Items) {
		return db.execGrouped(s, sources, rowsOut)
	}

	// Plain projection.
	cols, project, err := buildProjection(s.Items, sources)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for _, sr := range rowsOut {
		out, err := project(sr)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, out)
	}
	if s.Distinct {
		res.Rows, rowsOut = dedupeRows(res.Rows, rowsOut)
	}
	if err := orderAndLimit(res, s, sources, rowsOut, false); err != nil {
		return nil, err
	}
	return res, nil
}

// dedupeRows removes duplicate projected rows (first occurrence wins),
// keeping the parallel source-row slice aligned when provided.
func dedupeRows(rows [][]Value, src []sourceRow) ([][]Value, []sourceRow) {
	seen := make(map[string]bool, len(rows))
	outRows := rows[:0]
	var outSrc []sourceRow
	if src != nil {
		outSrc = src[:0]
	}
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.key())
			b.WriteByte('\x00')
		}
		k := b.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		outRows = append(outRows, r)
		if src != nil && i < len(src) {
			outSrc = append(outSrc, src[i])
		}
	}
	return outRows, outSrc
}

// eqIndexLookup inspects the WHERE clause's top-level conjuncts for
// col = literal (or literal = col) over an indexed column of the base table,
// returning the access-path key when found.
func eqIndexLookup(where Expr, src sourceInfo, base *Table) (string, Value, bool) {
	if where == nil {
		return "", Value{}, false
	}
	var conjuncts []Expr
	var split func(e Expr)
	split = func(e Expr) {
		if b, ok := e.(Binary); ok && b.Op == OpAnd {
			split(b.L)
			split(b.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	split(where)
	for _, c := range conjuncts {
		b, ok := c.(Binary)
		if !ok || b.Op != OpEq {
			continue
		}
		col, lit := b.L, b.R
		cr, isCol := col.(ColRef)
		lv, isLit := lit.(Literal)
		if !isCol || !isLit {
			cr, isCol = lit.(ColRef)
			lv, isLit = col.(Literal)
			if !isCol || !isLit {
				continue
			}
		}
		name := strings.ToLower(cr.Name)
		if dot := strings.LastIndex(name, "."); dot >= 0 {
			qual := name[:dot]
			if qual != strings.ToLower(src.item.Alias) && qual != src.item.Table {
				continue
			}
			name = name[dot+1:]
		}
		if _, ok := base.Schema().ColumnIndex(name); !ok {
			continue
		}
		if !base.HasIndex(name) || lv.Val.IsNull() {
			continue
		}
		return name, lv.Val, true
	}
	return "", Value{}, false
}

// buildEnvPartial builds an env over the first len(acc) sources for ON
// evaluation during join nesting.
func buildEnvPartial(sources []sourceInfo, acc []Row, ambiguous map[string]bool) *joinedEnv {
	env := &joinedEnv{
		qualified: make(map[string]Value),
		bare:      make(map[string]Value),
		ambiguous: ambiguous,
	}
	for si := range sources {
		alias := strings.ToLower(sources[si].item.Alias)
		for ci := 0; ci < sources[si].schema.Len(); ci++ {
			name := sources[si].schema.Column(ci).Name
			v := acc[si][ci]
			env.qualified[alias+"."+name] = v
			if !ambiguous[name] {
				env.bare[name] = v
			}
		}
	}
	return env
}

func hasAggregates(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case Agg:
		return true
	case Binary:
		return containsAgg(x.L) || containsAgg(x.R)
	case Unary:
		return containsAgg(x.X)
	case IsNull:
		return containsAgg(x.X)
	case In:
		if containsAgg(x.X) {
			return true
		}
		for _, i := range x.List {
			if containsAgg(i) {
				return true
			}
		}
	}
	return false
}

// buildProjection compiles SELECT items into output column names and a
// per-row projector. Star items expand in source order.
func buildProjection(items []SelectItem, sources []sourceInfo) ([]string, func(sourceRow) ([]Value, error), error) {
	type projector func(sourceRow) (Value, error)
	var cols []string
	var projs []projector
	for _, it := range items {
		if it.Star {
			for si := range sources {
				src := sources[si]
				for ci := 0; ci < src.schema.Len(); ci++ {
					si2, ci2 := si, ci
					cols = append(cols, src.schema.Column(ci).Name)
					projs = append(projs, func(sr sourceRow) (Value, error) {
						return sr.rows[si2][ci2], nil
					})
				}
			}
			continue
		}
		e := it.Expr
		name := it.Alias
		if name == "" {
			if cr, ok := e.(ColRef); ok {
				name = cr.Name
				if dot := strings.LastIndex(name, "."); dot >= 0 {
					name = name[dot+1:]
				}
			} else {
				name = strings.ToLower(e.String())
			}
		}
		cols = append(cols, name)
		projs = append(projs, func(sr sourceRow) (Value, error) {
			return e.Eval(sr.env)
		})
	}
	project := func(sr sourceRow) ([]Value, error) {
		out := make([]Value, len(projs))
		for i, p := range projs {
			v, err := p(sr)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	return cols, project, nil
}

// orderAndLimit applies ORDER BY / LIMIT / OFFSET to res. For plain selects
// the order keys are evaluated against the source rows (kept parallel to
// res.Rows); grouped results pass grouped=true and evaluate keys against the
// result columns instead.
func orderAndLimit(res *Result, s SelectStmt, sources []sourceInfo, srcRows []sourceRow, grouped bool) error {
	if len(s.OrderBy) > 0 {
		type keyed struct {
			row  []Value
			keys []Value
		}
		items := make([]keyed, len(res.Rows))
		for i, row := range res.Rows {
			var env Env
			if grouped || i >= len(srcRows) {
				m := MapEnv{}
				for ci, cn := range res.Columns {
					m[cn] = row[ci]
				}
				env = m
			} else {
				env = srcRows[i].env
			}
			keys := make([]Value, len(s.OrderBy))
			for ki, ob := range s.OrderBy {
				v, err := ob.Expr.Eval(env)
				if err != nil {
					// Fall back to output-column resolution (aliases).
					m := MapEnv{}
					for ci, cn := range res.Columns {
						m[cn] = row[ci]
					}
					v2, err2 := ob.Expr.Eval(m)
					if err2 != nil {
						return err
					}
					v = v2
				}
				keys[ki] = v
			}
			items[i] = keyed{row, keys}
		}
		var sortErr error
		sort.SliceStable(items, func(a, b int) bool {
			for ki, ob := range s.OrderBy {
				va, vb := items[a].keys[ki], items[b].keys[ki]
				// NULLs first ascending, last descending.
				if va.IsNull() || vb.IsNull() {
					if va.IsNull() && vb.IsNull() {
						continue
					}
					return va.IsNull() != ob.Desc
				}
				c, err := Compare(va, vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return sortErr
		}
		for i := range items {
			res.Rows[i] = items[i].row
		}
	}
	if s.Offset > 0 {
		if s.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(res.Rows) {
		res.Rows = res.Rows[:s.Limit]
	}
	return nil
}

// aggState accumulates one aggregate over a group.
type aggState struct {
	fn      AggFn
	count   int64
	sum     float64
	sumInt  int64
	allInt  bool
	min     Value
	max     Value
	started bool
}

func newAggState(fn AggFn) *aggState {
	return &aggState{fn: fn, allInt: true}
}

func (st *aggState) add(v Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	st.count++
	switch st.fn {
	case AggCount:
		return nil
	case AggSum, AggAvg:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("relational: %s needs numeric input, got %s", st.fn, v.Kind())
		}
		st.sum += f
		if i, isInt := v.AsInt(); isInt {
			st.sumInt += i
		} else {
			st.allInt = false
		}
	case AggMin, AggMax:
		if !st.started {
			st.min, st.max, st.started = v, v, true
			return nil
		}
		c, err := Compare(v, st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = v
		}
		c, err = Compare(v, st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = v
		}
	}
	return nil
}

func (st *aggState) result() Value {
	switch st.fn {
	case AggCount:
		return Int(st.count)
	case AggSum:
		if st.count == 0 {
			return Null()
		}
		if st.allInt {
			return Int(st.sumInt)
		}
		return Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			return Null()
		}
		return Float(st.sum / float64(st.count))
	case AggMin:
		if !st.started {
			return Null()
		}
		return st.min
	case AggMax:
		if !st.started {
			return Null()
		}
		return st.max
	}
	return Null()
}

// groupEnv evaluates expressions over a group: aggregates via their states,
// everything else against the group's first row (valid for GROUP BY keys).
type groupEnv struct {
	first *joinedEnv
	aggs  map[string]*aggState
}

func evalGrouped(e Expr, g *groupEnv) (Value, error) {
	switch x := e.(type) {
	case Agg:
		if st, ok := g.aggs[x.String()]; ok {
			return st.result(), nil
		}
		return Null(), fmt.Errorf("relational: unregistered aggregate %s", x)
	case Binary:
		l, err := evalGrouped(x.L, g)
		if err != nil {
			return Null(), err
		}
		r, err := evalGrouped(x.R, g)
		if err != nil {
			return Null(), err
		}
		return Binary{Op: x.Op, L: Literal{l}, R: Literal{r}}.Eval(MapEnv{})
	case Unary:
		v, err := evalGrouped(x.X, g)
		if err != nil {
			return Null(), err
		}
		return Unary{Neg: x.Neg, X: Literal{v}}.Eval(MapEnv{})
	case IsNull:
		v, err := evalGrouped(x.X, g)
		if err != nil {
			return Null(), err
		}
		return IsNull{Not: x.Not, X: Literal{v}}.Eval(MapEnv{})
	case In:
		v, err := evalGrouped(x.X, g)
		if err != nil {
			return Null(), err
		}
		list := make([]Expr, len(x.List))
		for i, item := range x.List {
			iv, err := evalGrouped(item, g)
			if err != nil {
				return Null(), err
			}
			list[i] = Literal{iv}
		}
		return In{Not: x.Not, X: Literal{v}, List: list}.Eval(MapEnv{})
	default:
		return e.Eval(g.first)
	}
}

// collectAggs walks an expression tree collecting aggregate calls.
func collectAggs(e Expr, into map[string]Agg) {
	switch x := e.(type) {
	case Agg:
		into[x.String()] = x
	case Binary:
		collectAggs(x.L, into)
		collectAggs(x.R, into)
	case Unary:
		collectAggs(x.X, into)
	case IsNull:
		collectAggs(x.X, into)
	case In:
		collectAggs(x.X, into)
		for _, i := range x.List {
			collectAggs(i, into)
		}
	}
}

// execGrouped handles SELECTs with GROUP BY and/or aggregates.
func (db *Database) execGrouped(s SelectStmt, sources []sourceInfo, rowsIn []sourceRow) (*Result, error) {
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("relational: SELECT * cannot be combined with aggregation")
		}
	}
	// Register every aggregate appearing in items or HAVING.
	aggSpecs := map[string]Agg{}
	for _, it := range s.Items {
		collectAggs(it.Expr, aggSpecs)
	}
	if s.Having != nil {
		collectAggs(s.Having, aggSpecs)
	}
	for _, ob := range s.OrderBy {
		collectAggs(ob.Expr, aggSpecs)
	}

	type group struct {
		env  *groupEnv
		keys []Value
	}
	groups := map[string]*group{}
	var orderKeys []string

	keyOf := func(sr sourceRow) (string, []Value, error) {
		keys := make([]Value, len(s.GroupBy))
		var b strings.Builder
		for i, ge := range s.GroupBy {
			v, err := ge.Eval(sr.env)
			if err != nil {
				return "", nil, err
			}
			keys[i] = v
			b.WriteString(v.key())
			b.WriteByte('\x00')
		}
		return b.String(), keys, nil
	}

	for _, sr := range rowsIn {
		k, keys, err := keyOf(sr)
		if err != nil {
			return nil, err
		}
		g, ok := groups[k]
		if !ok {
			g = &group{env: &groupEnv{first: sr.env, aggs: map[string]*aggState{}}, keys: keys}
			for name, spec := range aggSpecs {
				g.env.aggs[name] = newAggState(spec.Fn)
			}
			groups[k] = g
			orderKeys = append(orderKeys, k)
		}
		for name, spec := range aggSpecs {
			st := g.env.aggs[name]
			if spec.Star {
				st.count++
				continue
			}
			v, err := spec.Arg.Eval(sr.env)
			if err != nil {
				return nil, err
			}
			if err := st.add(v); err != nil {
				return nil, err
			}
		}
	}

	// With no GROUP BY but aggregates present, there is exactly one group,
	// even over zero input rows.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		g := &group{env: &groupEnv{first: &joinedEnv{
			qualified: map[string]Value{},
			bare:      map[string]Value{},
			ambiguous: map[string]bool{},
		}, aggs: map[string]*aggState{}}}
		for name, spec := range aggSpecs {
			g.env.aggs[name] = newAggState(spec.Fn)
		}
		groups[""] = g
		orderKeys = append(orderKeys, "")
	}

	// Output columns.
	cols := make([]string, len(s.Items))
	for i, it := range s.Items {
		if it.Alias != "" {
			cols[i] = it.Alias
		} else if cr, ok := it.Expr.(ColRef); ok {
			name := cr.Name
			if dot := strings.LastIndex(name, "."); dot >= 0 {
				name = name[dot+1:]
			}
			cols[i] = name
		} else {
			cols[i] = strings.ToLower(it.Expr.String())
		}
	}

	res := &Result{Columns: cols}
	type keyedRow struct {
		row  []Value
		keys []Value
	}
	var keyed []keyedRow
	for _, k := range orderKeys {
		g := groups[k]
		if s.Having != nil {
			v, err := evalGrouped(s.Having, g.env)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); !ok || !b {
				continue
			}
		}
		row := make([]Value, len(s.Items))
		for i, it := range s.Items {
			v, err := evalGrouped(it.Expr, g.env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		// Evaluate ORDER BY keys group-aware (aggregates allowed), falling
		// back to output-column aliases.
		kr := keyedRow{row: row}
		for _, ob := range s.OrderBy {
			v, err := evalGrouped(ob.Expr, g.env)
			if err != nil {
				alias := MapEnv{}
				for ci, cn := range cols {
					alias[cn] = row[ci]
				}
				v2, err2 := ob.Expr.Eval(alias)
				if err2 != nil {
					return nil, err
				}
				v = v2
			}
			kr.keys = append(kr.keys, v)
		}
		keyed = append(keyed, kr)
	}
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(keyed, func(a, b int) bool {
			for ki, ob := range s.OrderBy {
				va, vb := keyed[a].keys[ki], keyed[b].keys[ki]
				if va.IsNull() || vb.IsNull() {
					if va.IsNull() && vb.IsNull() {
						continue
					}
					return va.IsNull() != ob.Desc
				}
				c, err := Compare(va, vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	for _, kr := range keyed {
		res.Rows = append(res.Rows, kr.row)
	}
	if s.Distinct {
		res.Rows, _ = dedupeRows(res.Rows, nil)
	}
	// Ordering already applied; strip it before the shared offset/limit.
	s.OrderBy = nil
	if err := orderAndLimit(res, s, sources, nil, true); err != nil {
		return nil, err
	}
	return res, nil
}
