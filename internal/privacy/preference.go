package privacy

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PrefTuple is one element ⟨i, a, p⟩ of ProviderPref_i (Eq. 5), with the
// provider identity held by the enclosing Prefs.
type PrefTuple struct {
	Attribute string
	Tuple     Tuple
}

// String renders the preference tuple as ⟨attr, tuple⟩.
func (pt PrefTuple) String() string {
	return fmt.Sprintf("<%s, %s>", pt.Attribute, pt.Tuple)
}

// sensKey addresses a sensitivity: per-attribute default (purpose "") or a
// per-(attribute, purpose) override, since Eq. 10 ties sensitivities to a
// specific purpose.
type sensKey struct {
	attr    string
	purpose Purpose
}

// Prefs holds everything the model attaches to one data provider i:
// the preference tuples ProviderPref_i (Eq. 5), the sensitivity elements
// σ_i (Eq. 11), and the default threshold v_i (Def. 4).
type Prefs struct {
	// Provider identifies the data provider (the subscript i).
	Provider string
	// Threshold is v_i: the provider defaults when Violation_i exceeds it.
	// The zero value means "never defaults" is NOT intended — use
	// NoDefaultThreshold for that; a zero threshold means any positive
	// violation causes default.
	Threshold float64

	entries []PrefTuple
	byAttr  map[string][]int
	sens    map[sensKey]Sensitivity
}

// NoDefaultThreshold is a v_i so large the provider effectively never
// defaults.
const NoDefaultThreshold = math.MaxFloat64

// NewPrefs returns an empty preference set for a provider with threshold v.
func NewPrefs(provider string, threshold float64) *Prefs {
	return &Prefs{
		Provider:  provider,
		Threshold: threshold,
		byAttr:    make(map[string][]int),
		sens:      make(map[sensKey]Sensitivity),
	}
}

// Add appends a preference tuple for attribute attr.
func (p *Prefs) Add(attr string, t Tuple) *Prefs {
	a := canonAttr(attr)
	t = t.Normalize()
	p.byAttr[a] = append(p.byAttr[a], len(p.entries))
	p.entries = append(p.entries, PrefTuple{Attribute: a, Tuple: t})
	return p
}

// SetSensitivity records the provider's default σ_i^attr, applied to every
// purpose without a more specific override.
func (p *Prefs) SetSensitivity(attr string, s Sensitivity) *Prefs {
	p.sens[sensKey{canonAttr(attr), ""}] = s
	return p
}

// SetPurposeSensitivity records a σ_i^attr override for one purpose,
// honouring the paper's note that "all of these sensitivities are tied to a
// specific purpose" (Sec. 6.2).
func (p *Prefs) SetPurposeSensitivity(attr string, pr Purpose, s Sensitivity) *Prefs {
	p.sens[sensKey{canonAttr(attr), pr.Normalize()}] = s
	return p
}

// Sensitivity resolves σ_i^attr for a purpose: the per-purpose override if
// present, else the per-attribute default, else UnitSensitivity.
func (p *Prefs) Sensitivity(attr string, pr Purpose) Sensitivity {
	a := canonAttr(attr)
	if s, ok := p.sens[sensKey{a, pr.Normalize()}]; ok {
		return s
	}
	if s, ok := p.sens[sensKey{a, ""}]; ok {
		return s
	}
	return UnitSensitivity
}

// Len returns the number of explicit preference tuples.
func (p *Prefs) Len() int { return len(p.entries) }

// Entries returns a copy of all explicit preference tuples.
func (p *Prefs) Entries() []PrefTuple {
	out := make([]PrefTuple, len(p.entries))
	copy(out, p.entries)
	return out
}

// ForAttribute extracts ProviderPref_i^j (Eq. 6): the provider's explicit
// preference tuples for attribute j.
func (p *Prefs) ForAttribute(attr string) []PrefTuple {
	a := canonAttr(attr)
	idx := p.byAttr[a]
	out := make([]PrefTuple, 0, len(idx))
	for _, i := range idx {
		out = append(out, p.entries[i])
	}
	return out
}

// Find returns the explicit preference tuple for (attribute, purpose), if
// present.
func (p *Prefs) Find(attr string, pr Purpose) (Tuple, bool) {
	a := canonAttr(attr)
	pr = pr.Normalize()
	for _, i := range p.byAttr[a] {
		if p.entries[i].Tuple.Purpose == pr {
			return p.entries[i].Tuple, true
		}
	}
	return Tuple{}, false
}

// Attributes returns the sorted attributes with explicit preferences.
func (p *Prefs) Attributes() []string {
	out := make([]string, 0, len(p.byAttr))
	for a := range p.byAttr {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// TouchesAttribute reports whether the provider holds any explicit state
// for attribute attr: preference tuples or recorded σ elements. A provider
// that touches nothing on an attribute is assessed exactly like the empty
// preference set there (unit sensitivities, implicit zeros for every house
// purpose) — the invariant the what-if engine's affected-set pruning
// (internal/whatif) rests on.
func (p *Prefs) TouchesAttribute(attr string) bool {
	a := canonAttr(attr)
	if len(p.byAttr[a]) > 0 {
		return true
	}
	for k := range p.sens {
		if k.attr == a {
			return true
		}
	}
	return false
}

// SensitivityKey addresses one explicitly recorded σ element; Purpose ""
// is the per-attribute default.
type SensitivityKey struct {
	Attribute string
	Purpose   Purpose
}

// SensitivityKeys returns the keys of every explicitly recorded σ element
// in sorted (attribute, purpose) order — including attributes that carry
// sensitivities but no preference tuples, which still weigh implicit-zero
// conflicts (Sec. 5) and must survive encoding round trips.
func (p *Prefs) SensitivityKeys() []SensitivityKey {
	out := make([]SensitivityKey, 0, len(p.sens))
	for k := range p.sens {
		out = append(out, SensitivityKey{Attribute: k.attr, Purpose: k.purpose})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attribute != out[j].Attribute {
			return out[i].Attribute < out[j].Attribute
		}
		return out[i].Purpose < out[j].Purpose
	})
	return out
}

// EffectiveFor returns the preference tuples that apply to attribute attr
// given the set of purposes the house uses that attribute for. Explicit
// tuples are returned as stated; for every house purpose with no matching
// explicit tuple (under m), the implicit zero tuple ⟨pr, 0, 0, 0⟩ of Sec. 5
// is synthesized when implicitZero is true. m nil means equality matching.
func (p *Prefs) EffectiveFor(attr string, housePurposes []Purpose, m Matcher, implicitZero bool) []PrefTuple {
	if m == nil {
		m = EqualityMatcher{}
	}
	a := canonAttr(attr)
	out := p.ForAttribute(a)
	if !implicitZero {
		return out
	}
	for _, hp := range housePurposes {
		covered := false
		for _, i := range p.byAttr[a] {
			if m.Covers(p.entries[i].Tuple.Purpose, hp) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, PrefTuple{Attribute: a, Tuple: ZeroTuple(hp.Normalize())})
		}
	}
	return out
}

// Clone returns a deep copy of the preferences, optionally renaming the
// provider (empty keeps the name).
func (p *Prefs) Clone(provider string) *Prefs {
	if provider == "" {
		provider = p.Provider
	}
	cp := NewPrefs(provider, p.Threshold)
	for _, e := range p.entries {
		cp.Add(e.Attribute, e.Tuple)
	}
	for k, v := range p.sens {
		cp.sens[k] = v
	}
	return cp
}

// Validate checks tuples against the scales and sensitivities for
// non-negativity.
func (p *Prefs) Validate(sc Scales) error {
	if strings.TrimSpace(p.Provider) == "" {
		return fmt.Errorf("privacy: preferences have no provider identity")
	}
	if p.Threshold < 0 {
		return fmt.Errorf("privacy: provider %q has negative default threshold %g", p.Provider, p.Threshold)
	}
	for _, e := range p.entries {
		if e.Tuple.Purpose == "" {
			return fmt.Errorf("privacy: provider %q attribute %q has a tuple with no purpose", p.Provider, e.Attribute)
		}
		if err := e.Tuple.Validate(sc); err != nil {
			return fmt.Errorf("privacy: provider %q attribute %q: %w", p.Provider, e.Attribute, err)
		}
	}
	for k, s := range p.sens {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("privacy: provider %q attribute %q: %w", p.Provider, k.attr, err)
		}
	}
	return nil
}

// String renders a compact listing of the provider's preferences.
func (p *Prefs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefs %q (threshold %g, %d tuples)", p.Provider, p.Threshold, len(p.entries))
	for _, a := range p.Attributes() {
		for _, e := range p.ForAttribute(a) {
			fmt.Fprintf(&b, "\n  %s %s sens=%s", e.Attribute, e.Tuple, p.Sensitivity(e.Attribute, e.Tuple.Purpose))
		}
	}
	return b.String()
}
