// Package determinismdata is the determinism checker fixture: functions
// reachable from a //lint:deterministic root that iterate maps
// order-dependently, read the clock, or draw randomness — plus the
// sanctioned idioms (collect-then-sort, keyed writes, integer counters)
// and an unreachable violator that must stay silent.
package determinismdata

import (
	"math/rand"
	"sort"
	"time"
)

type store struct {
	m map[string]int
}

// Render is the annotated entry point: everything it reaches must be
// order-independent.
//
//lint:deterministic fixture: rendered bytes must be identical across runs
func Render(s store) []string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m { // collect-then-sort: no finding
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := renderRows(s, keys)
	histogram(s)
	floatTotal(s)
	stamp()
	seeded()
	return rows
}

// renderRows is one hop down the call chain; its own callee violates.
func renderRows(s store, keys []string) []string {
	rows := make([]string, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, k)
	}
	collectUnsorted(s)
	return rows
}

// collectUnsorted appends map keys without ever sorting them: the
// diagnostic names the full call path from the root.
func collectUnsorted(s store) []string {
	var order []string
	for k := range s.m { // want "appended slice order is never sorted"
		order = append(order, k)
	}
	return order
}

// histogram uses only keyed writes, deletes and integer counters: no
// finding.
func histogram(s store) map[int]int {
	hist := make(map[int]int)
	total := 0
	for k, v := range s.m {
		hist[v]++
		total += len(k)
		if v == 0 {
			delete(hist, v)
		}
	}
	hist[-1] = total
	return hist
}

// floatTotal accumulates a float across iterations: float addition does
// not commute bitwise, so the range is order-dependent.
func floatTotal(s store) float64 {
	var total float64
	for _, v := range s.m { // want "order-dependent statement in range body"
		total += float64(v)
	}
	return total
}

// stamp reads the wall clock inside the deterministic set.
func stamp() time.Time {
	return time.Now() // want "call to time.Now"
}

// seeded draws randomness inside the deterministic set.
func seeded() int {
	return rand.Intn(3) // want "use of math/rand"
}

// Allowed demonstrates lint:ignore: the clock read is deliberate.
//
//lint:deterministic fixture: second root to exercise suppression
func Allowed() time.Duration {
	//lint:ignore determinism[fixture: elapsed time feeds a log line, not output bytes]
	start := time.Now()
	return time.Since(start)
}

// unreachableViolator is not reachable from any root: silent despite the
// unsorted range.
func unreachableViolator(s store) []string {
	var order []string
	for k := range s.m {
		order = append(order, k)
	}
	return order
}
