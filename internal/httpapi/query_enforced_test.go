package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// enforcedServer extends the shared fixture with a provider whose weight
// preference caps visibility below the policy grant, so enforced queries
// have something to suppress.
func enforcedServer(t *testing.T) *Server {
	t.Helper()
	srv := testServer(t)
	p := privacy.NewPrefs("nora", 50)
	p.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	p.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 1, Granularity: 3, Retention: 4})
	if err := srv.db.RegisterProvider(p); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.db.Insert("t", "nora", relational.Row{
		relational.Text("nora"), relational.Float(72.5),
	}); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestQueryEnforcedSuppression checks that POST /v1/query withholds rows
// whose providers would be violated and reports the work in stats.
func TestQueryEnforcedSuppression(t *testing.T) {
	srv := enforcedServer(t)
	rec := do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT provider, weight FROM t"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0] != "maria" {
		t.Fatalf("rows = %v, want only maria (nora suppressed)", out.Rows)
	}
	if out.Stats.RowsScanned != 2 || out.Stats.RowsSuppressed != 1 || out.Stats.RowsReturned != 1 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	if out.Explain != nil {
		t.Fatal("explain returned without being requested")
	}
}

// TestQueryEnforcedExplain checks the explain flag: the response carries
// the trace, and the suppression names the violating (pref, policy) pair.
func TestQueryEnforcedExplain(t *testing.T) {
	srv := enforcedServer(t)
	rec := do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT weight FROM t","explain":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Explain == nil || len(out.Explain.Entries) != 1 {
		t.Fatalf("explain = %+v, want one suppression entry", out.Explain)
	}
	e := out.Explain.Entries[0]
	if e.Provider != "nora" || string(e.Action) != "suppress" || e.Dimension != "visibility" {
		t.Fatalf("trace = %+v", e)
	}
	if e.Pref == nil || e.Pref.Visibility != 1 || e.Policy == nil || e.Policy.Visibility != 2 {
		t.Fatalf("trace must name the (pref, policy) pair: %+v", e)
	}
}

// TestQueryEnforcedErrorMapping checks the error envelope: purpose/class
// refusals map to 403, unenforceable statements to 400.
func TestQueryEnforcedErrorMapping(t *testing.T) {
	srv := enforcedServer(t)

	rec := do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":3,"sql":"SELECT weight FROM t"}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("class refusal status = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "does not admit requester class") {
		t.Fatalf("body = %s", rec.Body)
	}

	rec = do(t, srv, http.MethodPost, "/v1/query",
		`{"requester":"dr","purpose":"care","visibility":2,"sql":"SELECT COUNT(*) FROM t"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unenforceable status = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "not enforceable per datum") {
		t.Fatalf("body = %s", rec.Body)
	}
}
