package policydsl

import (
	"strings"
	"testing"

	"repro/internal/privacy"
)

const sampleDoc = `
# The Sec. 8 worked example expressed in the DSL.
policy "table1" {
  attr weight {
    tuple purpose=research visibility=house granularity=partial retention=week
  }
  attr age {
    tuple purpose=research visibility=owner granularity=existential retention=transient
  }
  sensitivity weight 4
  sensitivity age 1
}

provider "alice" threshold 10 {
  attr weight {
    sens value=1 v=1 g=2 r=1
    tuple purpose=research visibility=world granularity=specific retention=year
  }
}

provider "ted" threshold 50 {
  attr weight {
    sens value=3 v=1 g=5 r=2
    tuple purpose=research visibility=world granularity=existential retention=month
  }
}
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Policy == nil || doc.Policy.Name != "table1" {
		t.Fatal("policy missing")
	}
	if doc.Policy.Len() != 2 {
		t.Errorf("policy tuples = %d", doc.Policy.Len())
	}
	tw, ok := doc.Policy.Find("weight", "research")
	if !ok {
		t.Fatal("weight tuple missing")
	}
	// house=2, partial=2, week=2 on the default scales.
	if tw.Visibility != 2 || tw.Granularity != 2 || tw.Retention != 2 {
		t.Errorf("weight tuple = %v", tw)
	}
	if doc.AttrSens.Get("weight") != 4 || doc.AttrSens.Get("age") != 1 {
		t.Errorf("Σ = %v", doc.AttrSens)
	}
	if len(doc.Providers) != 2 {
		t.Fatalf("providers = %d", len(doc.Providers))
	}
	alice := doc.Providers[0]
	if alice.Provider != "alice" || alice.Threshold != 10 {
		t.Errorf("alice = %v", alice)
	}
	s := alice.Sensitivity("weight", "research")
	if s.Value != 1 || s.Granularity != 2 {
		t.Errorf("alice sens = %v", s)
	}
	at, _ := alice.Find("weight", "research")
	// world=4, specific=3, year=4.
	if at.Visibility != 4 || at.Granularity != 3 || at.Retention != 4 {
		t.Errorf("alice tuple = %v", at)
	}
}

func TestParseNumericLevels(t *testing.T) {
	doc, err := Parse(`policy "p" { attr x { tuple purpose=q visibility=1 granularity=2 retention=3 } }`)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := doc.Policy.Find("x", "q")
	if tp.Visibility != 1 || tp.Granularity != 2 || tp.Retention != 3 {
		t.Errorf("tuple = %v", tp)
	}
}

func TestParsePerPurposeSens(t *testing.T) {
	doc, err := Parse(`provider "p" threshold 5 {
	  attr x {
	    sens value=1 v=1 g=1 r=1
	    sens purpose=marketing value=9 v=9 g=9 r=9
	    tuple purpose=marketing visibility=0 granularity=0 retention=0
	  }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p := doc.Providers[0]
	if p.Sensitivity("x", "marketing").Value != 9 {
		t.Error("per-purpose override not parsed")
	}
	if p.Sensitivity("x", "other").Value != 1 {
		t.Error("default sens not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`policy`,       // missing name
		`policy "p" {`, // unterminated
		`policy "p" { attr x { tuple purpose=q } }`,                                          // incomplete tuple
		`policy "p" { attr x { tuple purpose=q visibility=zzz granularity=0 retention=0 } }`, // bad level
		`policy "p" { bogus }`,                                 // unknown directive
		`policy "p" {} policy "q" {}`,                          // two policies
		`provider "a" { }`,                                     // missing threshold
		`provider "a" threshold x {}`,                          // non-numeric threshold
		`provider "a" threshold 5 { attr x { sens value=1 } }`, // incomplete sens
		`provider "a" threshold -5 { }`,                        // negative threshold fails validation
		`policy "p" { attr x { tuple purpose=q visibility=-1 granularity=0 retention=0 } }`,
		`wat`,
		`policy "unterminated string`,
		"policy \"p\" { attr x { tuple purpose=q visibility=99 granularity=0 retention=0 } }", // off scale
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestComments(t *testing.T) {
	doc, err := Parse("# leading comment\npolicy \"p\" { # inline\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Policy.Name != "p" {
		t.Error("comment handling broke parsing")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	doc, err := Parse(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(doc)
	doc2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of rendered doc: %v\n%s", err, text)
	}
	if !doc.Policy.Equal(doc2.Policy) {
		t.Errorf("policy round-trip mismatch:\n%s\nvs\n%s", doc.Policy, doc2.Policy)
	}
	if len(doc2.Providers) != len(doc.Providers) {
		t.Fatalf("provider count mismatch")
	}
	for i := range doc.Providers {
		a, b := doc.Providers[i], doc2.Providers[i]
		if a.Provider != b.Provider || a.Threshold != b.Threshold || a.Len() != b.Len() {
			t.Errorf("provider %s round-trip mismatch", a.Provider)
		}
		for _, attr := range a.Attributes() {
			for _, e := range a.ForAttribute(attr) {
				if got, ok := b.Find(attr, e.Tuple.Purpose); !ok || got != e.Tuple {
					t.Errorf("tuple mismatch for %s/%s: %v vs %v", attr, e.Tuple.Purpose, e.Tuple, got)
				}
				sa := a.Sensitivity(attr, e.Tuple.Purpose)
				sb := b.Sensitivity(attr, e.Tuple.Purpose)
				if sa != sb {
					t.Errorf("sens mismatch for %s: %v vs %v", attr, sa, sb)
				}
			}
		}
	}
	if doc2.AttrSens.Get("weight") != 4 {
		t.Error("Σ lost in round-trip")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	doc, err := Parse(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "table1") {
		t.Errorf("JSON missing policy name: %s", data)
	}
	doc2, err := UnmarshalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Policy.Equal(doc2.Policy) {
		t.Error("policy JSON round-trip mismatch")
	}
	if len(doc2.Providers) != 2 {
		t.Fatalf("providers = %d", len(doc2.Providers))
	}
	ted := doc2.Providers[1]
	if ted.Provider != "ted" || ted.Threshold != 50 {
		t.Errorf("ted = %v", ted)
	}
	if ted.Sensitivity("weight", "research").Granularity != 5 {
		t.Error("ted sens lost in JSON round-trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalJSON([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	// Off-scale level fails validation.
	bad := `{"policy":{"name":"p","tuples":{"x":[{"purpose":"q","visibility":99,"granularity":0,"retention":0}]}}}`
	if _, err := UnmarshalJSON([]byte(bad)); err == nil {
		t.Error("off-scale JSON should fail")
	}
	badProv := `{"providers":[{"name":"","threshold":1,"tuples":{}}]}`
	if _, err := UnmarshalJSON([]byte(badProv)); err == nil {
		t.Error("empty provider name should fail")
	}
}

func TestParseWithCustomScales(t *testing.T) {
	sc := privacy.Scales{
		Visibility:  privacy.MustScale(privacy.DimVisibility, "secret", "public"),
		Granularity: privacy.MustScale(privacy.DimGranularity, "hidden", "shown"),
		Retention:   privacy.MustScale(privacy.DimRetention, "never", "forever"),
	}
	doc, err := ParseWithScales(`policy "p" { attr x { tuple purpose=q visibility=public granularity=shown retention=forever } }`, sc)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := doc.Policy.Find("x", "q")
	if tp.Visibility != 1 || tp.Granularity != 1 || tp.Retention != 1 {
		t.Errorf("tuple = %v", tp)
	}
	// Default scale names must not resolve on custom scales.
	if _, err := ParseWithScales(`policy "p" { attr x { tuple purpose=q visibility=house granularity=0 retention=0 } }`, sc); err == nil {
		t.Error("default scale name should fail on custom scales")
	}
	// Invalid scales rejected.
	if _, err := ParseWithScales("", privacy.Scales{}); err == nil {
		t.Error("invalid scales should fail")
	}
}
