package privacy

import (
	"fmt"
	"sort"
	"strings"
)

// Purpose identifies a use for which data was collected. The paper treats
// purpose as a categorical grouping variable (assumption 4): different
// purposes are distinguishable, and violations are assessed within a shared
// purpose. A structured semantics (lattice) per Ghazinour & Barker [5] is
// provided by Lattice for the "ongoing research" extension the paper
// anticipates.
type Purpose string

// PurposeAny is the wildcard used by policy queries that do not constrain
// purpose; it never appears inside stored tuples.
const PurposeAny Purpose = "*"

// Normalize returns the canonical (lower-cased, trimmed) form of p.
func (p Purpose) Normalize() Purpose {
	return Purpose(strings.ToLower(strings.TrimSpace(string(p))))
}

// Matcher decides whether a provider preference stated for purpose pref
// covers a house policy tuple stated for purpose pol. The paper's base model
// uses strict equality (Eq. 13: comp = 0 if p[Pr] ≠ p'[Pr]); a lattice
// matcher treats a preference for a general purpose as covering its
// specializations.
type Matcher interface {
	// Covers reports whether a preference expressed for pref applies to a
	// policy tuple expressed for pol.
	Covers(pref, pol Purpose) bool
}

// EqualityMatcher is the paper's default purpose semantics: purposes are
// opaque categories compared for equality.
type EqualityMatcher struct{}

// Covers implements Matcher by normalized equality.
func (EqualityMatcher) Covers(pref, pol Purpose) bool {
	return pref.Normalize() == pol.Normalize()
}

// Lattice is a partial order over purposes: an edge general → specific means
// the specific purpose is a refinement of the general one (e.g. marketing →
// email-marketing). A preference granted for a general purpose covers all of
// its specializations. Lattice implements Matcher; if purposes are arranged
// in a chain the model degenerates to the total order the paper mentions as
// a possible future treatment of purpose.
type Lattice struct {
	children map[Purpose][]Purpose
	parents  map[Purpose][]Purpose
	nodes    map[Purpose]bool
}

// NewLattice returns an empty purpose lattice.
func NewLattice() *Lattice {
	return &Lattice{
		children: make(map[Purpose][]Purpose),
		parents:  make(map[Purpose][]Purpose),
		nodes:    make(map[Purpose]bool),
	}
}

// AddPurpose registers a purpose with no ordering relations.
func (l *Lattice) AddPurpose(p Purpose) {
	l.nodes[p.Normalize()] = true
}

// AddEdge records that specific refines general. Adding an edge that would
// create a cycle is rejected, keeping the structure a DAG.
func (l *Lattice) AddEdge(general, specific Purpose) error {
	g, s := general.Normalize(), specific.Normalize()
	if g == s {
		return fmt.Errorf("privacy: purpose %q cannot refine itself", g)
	}
	if l.reachable(s, g) {
		return fmt.Errorf("privacy: edge %s → %s would create a cycle", g, s)
	}
	l.nodes[g] = true
	l.nodes[s] = true
	l.children[g] = append(l.children[g], s)
	l.parents[s] = append(l.parents[s], g)
	return nil
}

// Contains reports whether p is registered in the lattice.
func (l *Lattice) Contains(p Purpose) bool { return l.nodes[p.Normalize()] }

// Purposes returns all registered purposes in sorted order.
func (l *Lattice) Purposes() []Purpose {
	out := make([]Purpose, 0, len(l.nodes))
	for p := range l.nodes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reachable reports whether to can be reached from from by following
// general → specific edges.
func (l *Lattice) reachable(from, to Purpose) bool {
	if from == to {
		return true
	}
	seen := map[Purpose]bool{from: true}
	stack := []Purpose{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range l.children[n] {
			if c == to {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Covers implements Matcher: a preference for pref covers a policy purpose
// pol when they are equal or pol is a (transitive) specialization of pref.
// Purposes unknown to the lattice fall back to equality.
func (l *Lattice) Covers(pref, pol Purpose) bool {
	p, q := pref.Normalize(), pol.Normalize()
	if p == q {
		return true
	}
	if !l.nodes[p] || !l.nodes[q] {
		return false
	}
	return l.reachable(p, q)
}

// Specializations returns every purpose reachable from p (excluding p),
// sorted. Useful for expanding a general consent into concrete purposes.
func (l *Lattice) Specializations(p Purpose) []Purpose {
	start := p.Normalize()
	seen := map[Purpose]bool{}
	stack := []Purpose{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range l.children[n] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	out := make([]Purpose, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Generalizations returns every purpose from which p is reachable
// (excluding p), sorted.
func (l *Lattice) Generalizations(p Purpose) []Purpose {
	start := p.Normalize()
	seen := map[Purpose]bool{}
	stack := []Purpose{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range l.parents[n] {
			if !seen[g] {
				seen[g] = true
				stack = append(stack, g)
			}
		}
	}
	out := make([]Purpose, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
