package query

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// TableBinding maps one stored table onto the privacy model: the column
// holding the provider key (row provenance) and the attribute each column
// discloses. Columns without an explicit mapping disclose the attribute of
// their own name — the convention the rest of the system already follows.
type TableBinding struct {
	Table       *relational.Table
	ProviderCol string
	attrs       map[string]string // canonical column → canonical attribute
}

// Attribute returns the canonical attribute a column discloses.
func (b *TableBinding) Attribute(col string) string {
	col = privacy.CanonAttr(col)
	if a, ok := b.attrs[col]; ok {
		return a
	}
	return col
}

// Catalog is the set of table bindings the planner resolves FROM clauses
// against. It is built per query snapshot by the owning store and read-only
// afterwards.
type Catalog struct {
	tables map[string]*TableBinding
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*TableBinding)}
}

// Bind registers a table with its provider-key column and optional
// column→attribute overrides. The provider column must exist in the schema.
func (c *Catalog) Bind(t *relational.Table, providerCol string, attrs map[string]string) error {
	providerCol = privacy.CanonAttr(providerCol)
	if _, ok := t.Schema().ColumnIndex(providerCol); !ok {
		return fmt.Errorf("query: table %q has no provider column %q", t.Name(), providerCol)
	}
	canon := make(map[string]string, len(attrs))
	for col, attr := range attrs {
		canon[privacy.CanonAttr(col)] = privacy.CanonAttr(attr)
	}
	c.tables[strings.ToLower(t.Name())] = &TableBinding{
		Table:       t,
		ProviderCol: providerCol,
		attrs:       canon,
	}
	return nil
}

// Lookup resolves a table name (case-insensitive).
func (c *Catalog) Lookup(name string) (*TableBinding, bool) {
	b, ok := c.tables[strings.ToLower(name)]
	return b, ok
}

// Source is the live store the executor enforces over. Implementations
// (internal/ppdb) must keep every method consistent for the duration of one
// Engine.Query call — the store holds its read lock across the call.
type Source interface {
	// Origin returns row provenance: the canonical provider key and the
	// insertion instant. ok is false for rows the store cannot attribute.
	Origin(table string, id relational.RowID) (provider string, inserted time.Time, ok bool)
	// Provider returns a registered provider's preferences and their
	// compiled columns (nil when the policy is unmaskable).
	Provider(key string) (*privacy.Prefs, *core.CompiledPrefs, bool)
	// Expired reports whether a datum inserted at t and granted retention
	// level l is past its window on the store's clock.
	Expired(l privacy.Level, inserted time.Time) bool
	// Generalize degrades v to the granted granularity level through the
	// attribute's hierarchy (identity at the scale maximum).
	Generalize(attr string, v relational.Value, granted privacy.Level) relational.Value
	// HasHierarchy reports whether the attribute has a generalization
	// hierarchy, i.e. whether Generalize can rewrite its values. The
	// planner refuses the index shortcut for such columns: the index
	// matches raw stored values, so a probe for a generalized label would
	// silently miss rows a full scan answers.
	HasHierarchy(attr string) bool
}

// DeniedError is a plan-time refusal: the stated purpose or requester class
// is not admitted by the policy for some referenced attribute.
type DeniedError struct {
	Attribute string
	Reason    string
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("query: access denied on %q: %s", e.Attribute, e.Reason)
}

// UnenforceableError reports a statement whose answer cells cannot each be
// attributed to a single (provider, attribute) pair, so per-datum
// enforcement cannot prove the answer conformant.
type UnenforceableError struct {
	Construct string
	Reason    string
}

// Error implements error.
func (e *UnenforceableError) Error() string {
	return fmt.Sprintf("query: %s is not enforceable per datum: %s", e.Construct, e.Reason)
}

// Engine plans and executes enforced SELECTs against one catalog, assessor
// and source snapshot.
type Engine struct {
	cat *Catalog
	asr *core.Assessor
	src Source
}

// New builds an engine over a catalog, the current policy's assessor and a
// live source.
func New(cat *Catalog, asr *core.Assessor, src Source) *Engine {
	return &Engine{cat: cat, asr: asr, src: src}
}

// Request is one enforced read: who asks (a visibility class), why (a
// purpose), and what (a SELECT in the engine's dialect). Explain asks for
// the per-datum enforcement trace alongside the answer.
type Request struct {
	Requester  string
	Purpose    privacy.Purpose
	Visibility privacy.Level
	SQL        string
	Explain    bool
}

// Stats counts the enforcement work behind one answer.
type Stats struct {
	RowsScanned      int `json:"rowsScanned"`
	RowsSuppressed   int `json:"rowsSuppressed"`
	RowsMatched      int `json:"rowsMatched"`
	RowsReturned     int `json:"rowsReturned"`
	CellsGeneralized int `json:"cellsGeneralized"`
	CellsExpired     int `json:"cellsExpired"`
}

// Result is the enforced answer: the relation plus enforcement stats and,
// when requested, the EXPLAIN trace. IndexScan marks answers produced via
// Table.Lookup rather than a full scan: their RowsScanned/RowsSuppressed
// counts depend on the probed literal's raw-value matches, so serving
// layers must withhold them from unprivileged requesters (a per-literal
// count of withheld rows is an oracle on suppressed data).
type Result struct {
	Columns   []string
	Rows      [][]relational.Value
	Stats     Stats
	IndexScan bool
	Explain   *Explain
}

// Query plans and runs one enforced SELECT.
func (e *Engine) Query(req Request) (*Result, error) {
	plan, err := e.Plan(req)
	if err != nil {
		return nil, err
	}
	return e.run(plan)
}
