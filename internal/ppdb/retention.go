package ppdb

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// RetentionSchedule maps retention levels to storage durations. The top
// level of the scale means "keep indefinitely" and needs no entry; level 0
// means "never store" (cells are expired by the first sweep).
type RetentionSchedule map[privacy.Level]time.Duration

// DefaultRetentionSchedule interprets the default retention scale
// none < transient < week < month < year < indefinite.
func DefaultRetentionSchedule(scale *privacy.Scale) RetentionSchedule {
	rs := RetentionSchedule{}
	for l := privacy.Level(0); l < scale.Max(); l++ {
		switch scale.Name(l) {
		case "none":
			rs[l] = 0
		case "transient":
			rs[l] = 24 * time.Hour
		case "week":
			rs[l] = 7 * 24 * time.Hour
		case "month":
			rs[l] = 30 * 24 * time.Hour
		case "year":
			rs[l] = 365 * 24 * time.Hour
		default:
			// Unknown intermediate levels get a progression of months.
			rs[l] = time.Duration(l) * 30 * 24 * time.Hour
		}
	}
	return rs
}

// Validate checks the schedule covers every non-top level and is monotone.
func (rs RetentionSchedule) Validate(scale *privacy.Scale) error {
	prev := time.Duration(-1)
	for l := privacy.Level(0); l < scale.Max(); l++ {
		d, ok := rs[l]
		if !ok {
			return fmt.Errorf("ppdb: retention schedule missing level %d (%s)", l, scale.Name(l))
		}
		if d < 0 {
			return fmt.Errorf("ppdb: retention for %s is negative", scale.Name(l))
		}
		if d < prev {
			return fmt.Errorf("ppdb: retention schedule not monotone at %s", scale.Name(l))
		}
		prev = d
	}
	return nil
}

// Expired reports whether a cell inserted at t with retention level l has
// expired by now. The scale's top level never expires.
func (rs RetentionSchedule) Expired(scale *privacy.Scale, l privacy.Level, inserted, now time.Time) bool {
	if l >= scale.Max() {
		return false
	}
	d, ok := rs[l]
	if !ok {
		return false
	}
	return now.Sub(inserted) > d
}

// SweepReport summarizes one retention sweep.
type SweepReport struct {
	At           time.Time
	CellsExpired int
	RowsDeleted  int
}

// cellExpiry is one decided cell expiration: which column to null (or
// star, for NOT NULL columns) and the attribute name to mark expired.
type cellExpiry struct {
	idx     int
	name    string
	notNull bool
}

// rowDecision is the sweep verdict for one row, computed read-only in the
// parallel decision phase and applied serially afterwards.
type rowDecision struct {
	id     relational.RowID
	expire []cellExpiry
	del    bool
}

// Sweep enforces retention: for every stored row, each attribute cell whose
// policy retention (the maximum over the attribute's policy tuples — data
// is kept while any purpose still needs it) has elapsed is nulled out (or
// suppressed when the column is NOT NULL); rows whose policy-covered cells
// have all expired are deleted. Providers' identity columns expire last,
// with their row.
//
// The sweep runs in two phases (DESIGN.md §11): a read-only decision phase
// that classifies every row in parallel (one fan-out per table, width =
// shard count — decisions depend only on provenance, policy and the clock,
// so rows are independent), then a serial apply phase that mutates rows in
// ascending row-ID order, keeping the mutation sequence deterministic.
// Tables are visited in sorted name order so the full mutation sequence —
// not just the per-table one — is identical on every run.
//
//lint:deterministic the sweep mutation sequence must be reproducible for audit replay
func (d *DB) Sweep() (SweepReport, error) {
	d.mu.Lock()
	// The WAL record carries the sweep's clock reading; replay pins the
	// clock to it before re-sweeping, so the expiry decisions are the
	// logged ones even if clock records were checkpointed away.
	lsn, err := d.walAppendLocked(walRecSweep, walSweepJSON{At: d.now})
	if err != nil {
		d.mu.Unlock()
		return SweepReport{}, err
	}
	rep, err := d.sweepLocked()
	d.mu.Unlock()
	d.mutSeq.Add(1)
	if err != nil {
		return rep, err
	}
	return rep, d.walWait(lsn)
}

// sweepLocked is the sweep body; the caller holds d.mu exclusively.
func (d *DB) sweepLocked() (SweepReport, error) {
	rep := SweepReport{At: d.now}

	tableNames := make([]string, 0, len(d.tables))
	for name := range d.tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		tm := d.tables[name]
		schema := tm.table.Schema()
		// Per-column effective retention level under the current policy.
		type colPolicy struct {
			idx     int
			level   privacy.Level
			covered bool
		}
		cols := make([]colPolicy, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			name := schema.Column(i).Name
			cp := colPolicy{idx: i}
			// The compiled policy precomputes each attribute's retention
			// ceiling (max over its tuples — data is kept while any purpose
			// still needs it), so the sweep does one interner lookup per
			// column instead of materializing the attribute's tuple list.
			cp.level, cp.covered = d.assessor.Compiled().RetentionCeiling(name)
			cols[i] = cp
		}

		anyCovered := false
		for _, cp := range cols {
			if cp.covered && schema.Column(cp.idx).Name != tm.providerCol {
				anyCovered = true
			}
		}

		// Decision phase: classify rows in ascending ID order, fanned out
		// across the shard-count worker pool. Reads only.
		ids := make([]relational.RowID, 0, len(tm.rows))
		for id := range tm.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		decisions := make([]rowDecision, len(ids))
		core.FanOut(len(ids), len(d.shards), func(i int) {
			id := ids[i]
			meta := tm.rows[id]
			dec := rowDecision{id: id}
			if _, ok := tm.table.Get(id); !ok {
				decisions[i] = dec
				return
			}
			liveCovered := 0
			for _, cp := range cols {
				if !cp.covered {
					continue
				}
				name := schema.Column(cp.idx).Name
				if name == tm.providerCol {
					// Identity expires with the row, not cell-wise.
					continue
				}
				if meta.expired[name] {
					continue
				}
				if d.retention.Expired(d.scales.Retention, cp.level, meta.inserted, d.now) {
					dec.expire = append(dec.expire, cellExpiry{
						idx:     cp.idx,
						name:    name,
						notNull: schema.Column(cp.idx).NotNull,
					})
				} else {
					liveCovered++
				}
			}
			// Check the provider column's own retention for row deletion.
			rowExpired := true
			for _, cp := range cols {
				if !cp.covered || schema.Column(cp.idx).Name != tm.providerCol {
					continue
				}
				if !d.retention.Expired(d.scales.Retention, cp.level, meta.inserted, d.now) {
					rowExpired = false
				}
			}
			dec.del = anyCovered && liveCovered == 0 && rowExpired
			decisions[i] = dec
		})

		// Apply phase: serial, in ascending row-ID order.
		for _, dec := range decisions {
			meta := tm.rows[dec.id]
			for _, ce := range dec.expire {
				meta.expired[ce.name] = true
				rep.CellsExpired++
			}
			if dec.del {
				tm.table.Delete(dec.id)
				delete(tm.rows, dec.id)
				rep.RowsDeleted++
				continue
			}
			if len(dec.expire) == 0 {
				continue
			}
			row, ok := tm.table.Get(dec.id)
			if !ok {
				continue
			}
			for _, ce := range dec.expire {
				if ce.notNull {
					row[ce.idx] = relational.Text("*")
				} else {
					row[ce.idx] = relational.Null()
				}
			}
			if err := tm.table.Update(dec.id, row); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}
