package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Name        string
	Cols        []Column
	IfNotExists bool
}

// DropTableStmt drops a table.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt inserts one or more rows.
type InsertStmt struct {
	Table string
	Cols  []string // empty = schema order
	Rows  [][]Expr
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// FromItem is one table reference with an optional alias.
type FromItem struct {
	Table string
	Alias string
}

// JoinClause is an INNER JOIN with its ON condition.
type JoinClause struct {
	Right FromItem
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     FromItem
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int
}

// UpdateStmt updates rows.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt deletes rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (CreateTableStmt) stmt() {}
func (DropTableStmt) stmt()   {}
func (InsertStmt) stmt()      {}
func (SelectStmt) stmt()      {}
func (UpdateStmt) stmt()      {}
func (DeleteStmt) stmt()      {}

// AggFn enumerates aggregate functions.
type AggFn int

// Aggregate functions.
const (
	AggCount AggFn = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", int(f))
	}
}

// InSubquery is `x [NOT] IN (SELECT …)` with an uncorrelated subquery. The
// executor resolves the subquery into a literal list before row evaluation;
// evaluating the raw node is an error.
type InSubquery struct {
	Not   bool
	X     Expr
	Query SelectStmt
}

// Eval implements Expr; unresolved subqueries cannot evaluate row-wise.
func (q InSubquery) Eval(Env) (Value, error) {
	return Null(), fmt.Errorf("relational: unresolved IN (SELECT …) subquery")
}

// String implements Expr.
func (q InSubquery) String() string {
	op := "IN"
	if q.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (SELECT …))", q.X, op)
}

// Agg is an aggregate call inside a SELECT item. It only evaluates inside
// the executor's grouping machinery; Eval outside grouping is an error.
type Agg struct {
	Fn   AggFn
	Star bool // COUNT(*)
	Arg  Expr
}

// Eval implements Expr; aggregates cannot evaluate row-wise.
func (a Agg) Eval(Env) (Value, error) {
	return Null(), fmt.Errorf("relational: aggregate %s used outside grouping context", a)
}

// String implements Expr.
func (a Agg) String() string {
	if a.Star {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Fn, a.Arg)
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting with %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches kind (and text for punct /
// keyword matching; text is compared case-insensitively for idents).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a matching token or errors.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %q, found %q", want, p.peek().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("relational: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword consumes an identifier keyword (case-insensitive) or errors.
func (p *parser) keyword(kw string) error {
	if p.accept(tokIdent, kw) {
		return nil
	}
	return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokIdent, "create"):
		return p.parseCreate()
	case p.at(tokIdent, "drop"):
		return p.parseDrop()
	case p.at(tokIdent, "insert"):
		return p.parseInsert()
	case p.at(tokIdent, "select"):
		return p.parseSelect()
	case p.at(tokIdent, "update"):
		return p.parseUpdate()
	case p.at(tokIdent, "delete"):
		return p.parseDelete()
	default:
		return nil, p.errorf("expected a statement, found %q", p.peek().text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if err := p.keyword("table"); err != nil {
		return nil, err
	}
	st := CreateTableStmt{}
	if p.accept(tokIdent, "if") {
		if err := p.keyword("not"); err != nil {
			return nil, err
		}
		if err := p.keyword("exists"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st.Name = name.text
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typeName, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ct, err := ParseColType(typeName.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		col := Column{Name: colName.text, Type: ct}
		for {
			switch {
			case p.accept(tokIdent, "primary"):
				if err := p.keyword("key"); err != nil {
					return nil, err
				}
				col.PrimaryKey = true
			case p.accept(tokIdent, "not"):
				if err := p.keyword("null"); err != nil {
					return nil, err
				}
				col.NotNull = true
			default:
				goto colDone
			}
		}
	colDone:
		st.Cols = append(st.Cols, col)
		if p.accept(tokPunct, ",") {
			continue
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	return st, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.keyword("table"); err != nil {
		return nil, err
	}
	st := DropTableStmt{}
	if p.accept(tokIdent, "if") {
		if err := p.keyword("exists"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st.Name = name.text
	return st, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.keyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := InsertStmt{Table: name.text}
	if p.accept(tokPunct, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col.text)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.keyword("values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	st := SelectStmt{Limit: -1}
	if p.accept(tokIdent, "distinct") {
		st.Distinct = true
	}
	for {
		if p.accept(tokPunct, "*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokIdent, "as") {
				alias, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = strings.ToLower(alias.text)
			}
			st.Items = append(st.Items, item)
		}
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	st.From = from
	for p.accept(tokIdent, "join") || (p.at(tokIdent, "inner") && p.acceptInnerJoin()) {
		right, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Right: right, On: on})
	}
	if p.accept(tokIdent, "where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(tokIdent, "group") {
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.accept(tokIdent, "order") {
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokIdent, "desc") {
				item.Desc = true
			} else {
				p.accept(tokIdent, "asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "limit") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	if p.accept(tokIdent, "offset") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		st.Offset = n
	}
	return st, nil
}

// acceptInnerJoin consumes "INNER JOIN" after at() saw INNER.
func (p *parser) acceptInnerJoin() bool {
	save := p.i
	p.next() // INNER
	if p.accept(tokIdent, "join") {
		return true
	}
	p.i = save
	return false
}

func (p *parser) parseNonNegInt() (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errorf("expected a non-negative integer, found %q", t.text)
	}
	return n, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: strings.ToLower(name.text)}
	if p.accept(tokIdent, "as") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = strings.ToLower(alias.text)
	} else if p.at(tokIdent, "") && !p.atReserved() {
		fi.Alias = strings.ToLower(p.next().text)
	}
	if fi.Alias == "" {
		fi.Alias = fi.Table
	}
	return fi, nil
}

// atReserved reports whether the current identifier is a clause keyword that
// must not be eaten as a table alias.
func (p *parser) atReserved() bool {
	for _, kw := range []string{"join", "inner", "on", "where", "group", "having", "order", "limit", "offset", "set", "values", "as"} {
		if p.at(tokIdent, kw) {
			return true
		}
	}
	return false
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := UpdateStmt{Table: strings.ToLower(name.text)}
	if err := p.keyword("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Col: strings.ToLower(col.text), Expr: e})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokIdent, "where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := DeleteStmt{Table: strings.ToLower(name.text)}
	if p.accept(tokIdent, "where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// Expression grammar (highest binding last):
//   expr     := andExpr (OR andExpr)*
//   andExpr  := notExpr (AND notExpr)*
//   notExpr  := NOT notExpr | predicate
//   predicate:= additive ((=|!=|<|<=|>|>=|LIKE) additive
//             | IS [NOT] NULL | [NOT] IN (list) | [NOT] BETWEEN a AND b)?
//   additive := term ((+|-) term)*
//   term     := unary ((*|/|%) unary)*
//   unary    := - unary | primary
//   primary  := literal | colref | agg | ( expr )

// ParseExpr parses a standalone expression (for WHERE-style predicates
// supplied programmatically).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting with %q", p.peek().text)
	}
	return e, nil
}

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokIdent, "not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Neg: false, X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokPunct, "="), p.at(tokPunct, "!="), p.at(tokPunct, "<"),
		p.at(tokPunct, "<="), p.at(tokPunct, ">"), p.at(tokPunct, ">="):
		opTok := p.next().text
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch opTok {
		case "=":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		}
		return Binary{Op: op, L: l, R: r}, nil
	case p.accept(tokIdent, "like"):
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: OpLike, L: l, R: r}, nil
	case p.accept(tokIdent, "is"):
		not := p.accept(tokIdent, "not")
		if err := p.keyword("null"); err != nil {
			return nil, err
		}
		return IsNull{Not: not, X: l}, nil
	case p.at(tokIdent, "in"), p.at(tokIdent, "not"), p.at(tokIdent, "between"):
		not := p.accept(tokIdent, "not")
		switch {
		case p.accept(tokIdent, "in"):
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			if p.at(tokIdent, "select") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				return InSubquery{Not: not, X: l, Query: sub.(SelectStmt)}, nil
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.accept(tokPunct, ",") {
					continue
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				break
			}
			return In{Not: not, X: l, List: list}, nil
		case p.accept(tokIdent, "between"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.keyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			rng := Binary{Op: OpAnd,
				L: Binary{Op: OpGe, L: l, R: lo},
				R: Binary{Op: OpLe, L: l, R: hi}}
			if not {
				return Unary{X: rng}, nil
			}
			return rng, nil
		case p.accept(tokIdent, "like"): // NOT LIKE
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return Unary{X: Binary{Op: OpLike, L: l, R: r}}, nil
		default:
			return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: OpAdd, L: l, R: r}
		case p.accept(tokPunct, "-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: OpMul, L: l, R: r}
		case p.accept(tokPunct, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: OpDiv, L: l, R: r}
		case p.accept(tokPunct, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokPunct, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Neg: true, X: x}, nil
	}
	return p.parsePrimary()
}

var aggNames = map[string]AggFn{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokEOF:
		return nil, p.errorf("expected an expression, found end of input")
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad float literal %q", t.text)
			}
			return Literal{Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.text)
		}
		return Literal{Int(n)}, nil
	case tokString:
		p.next()
		return Literal{Text(t.text)}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		lower := strings.ToLower(t.text)
		switch lower {
		case "null":
			p.next()
			return Literal{Null()}, nil
		case "true":
			p.next()
			return Literal{Bool(true)}, nil
		case "false":
			p.next()
			return Literal{Bool(false)}, nil
		}
		if fn, isAgg := aggNames[lower]; isAgg && p.i+1 < len(p.toks) &&
			p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
			p.next() // fn name
			p.next() // (
			if fn == AggCount && p.accept(tokPunct, "*") {
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				return Agg{Fn: AggCount, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return Agg{Fn: fn, Arg: arg}, nil
		}
		p.next()
		name := strings.ToLower(t.text)
		if p.accept(tokPunct, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return ColRef{Name: name + "." + strings.ToLower(col.text)}, nil
		}
		return ColRef{Name: name}, nil
	}
	return nil, p.errorf("expected an expression, found %q", t.text)
}
