package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmpChecker flags exact floating-point equality: `==`/`!=` with a
// float operand, and `switch` on a float tag. The severity and economics
// math (Eqs. 12-16, 25-31 of the paper) accumulates float64 sums, so exact
// equality silently depends on summation order; comparisons must go
// through internal/analysis/floatutil (Eq/EqTol/Zero) or be annotated as
// deliberate with //lint:ignore floatcmp <reason>.
func floatcmpChecker() *Checker {
	return &Checker{
		Name: "floatcmp",
		Doc:  "flag ==/!=/switch on floating-point operands; use floatutil.Eq or an explicit tolerance",
		Run:  runFloatcmp,
	}
}

func runFloatcmp(pass *Pass) {
	inspectAll(pass, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if node.Op != token.EQL && node.Op != token.NEQ {
				return true
			}
			if isFloat(pass.TypeOf(node.X)) || isFloat(pass.TypeOf(node.Y)) {
				pass.Reportf(node.OpPos,
					"float comparison %s %s %s; use floatutil.Eq/floatutil.Zero (internal/analysis/floatutil) or an explicit tolerance",
					types.ExprString(node.X), node.Op, types.ExprString(node.Y))
			}
		case *ast.SwitchStmt:
			if node.Tag != nil && isFloat(pass.TypeOf(node.Tag)) {
				pass.Reportf(node.Switch,
					"switch on float expression %s compares exactly; use if/else with floatutil tolerances",
					types.ExprString(node.Tag))
			}
		}
		return true
	})
}
