# Proposed widening: research gets specific granularity and year retention,
# and weight joins the research purpose.
policy "clinic-v2" {
  attr condition {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=specific retention=year
  }
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
    tuple purpose=research visibility=third-party granularity=partial retention=month
  }
  sensitivity condition 5
  sensitivity weight 4
}
