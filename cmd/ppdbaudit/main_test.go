package main

import (
	"os"
	"path/filepath"
	"testing"
)

func corpusPath(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "examples", "corpus", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("corpus %s missing: %v", name, err)
	}
	return p
}

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunAudit(t *testing.T) {
	silenceStdout(t)
	if err := runAudit(corpusPath(t, "clinic.dsl"), 0.4, 5, false); err != nil {
		t.Fatal(err)
	}
	if err := runAudit(corpusPath(t, "clinic.dsl"), 0.4, 5, true); err != nil {
		t.Fatalf("json mode: %v", err)
	}
}

func TestRunAuditErrors(t *testing.T) {
	silenceStdout(t)
	if err := runAudit("does-not-exist.dsl", 0.1, 5, false); err == nil {
		t.Error("missing file should fail")
	}
	// A document with a policy but no providers.
	tmp := filepath.Join(t.TempDir(), "noproviders.dsl")
	if err := os.WriteFile(tmp, []byte(`policy "p" { attr x { tuple purpose=q visibility=0 granularity=0 retention=0 } }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runAudit(tmp, 0.1, 5, false); err == nil {
		t.Error("providerless corpus should fail")
	}
	// A document with providers but no policy.
	tmp2 := filepath.Join(t.TempDir(), "nopolicy.dsl")
	if err := os.WriteFile(tmp2, []byte(`provider "a" threshold 5 { }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runAudit(tmp2, 0.1, 5, false); err == nil {
		t.Error("policyless corpus should fail")
	}
	// Unparseable document.
	tmp3 := filepath.Join(t.TempDir(), "bad.dsl")
	if err := os.WriteFile(tmp3, []byte("not a dsl"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runAudit(tmp3, 0.1, 5, false); err == nil {
		t.Error("bad corpus should fail")
	}
}
