// Package httpapi exposes a PPDB over HTTP with JSON bodies — the service
// face of the α-PPDB prototype. The API is versioned under /v1 (see API.md
// for the full reference):
//
//	POST /v1/query            {requester, purpose, visibility, sql} → {columns, rows}
//	GET  /v1/certify?alpha=0.1                                      → certification
//	GET  /v1/certify/summary?alpha=0.1                              → aggregate-only certification (O(1) from the ledger)
//	GET  /v1/policy                                                 → current policy (DSL text)
//	PUT  /v1/policy           DSL document with one policy block    → policy change
//	POST /v1/whatif           {diff, u, t, detail}                  → shadow evaluation of a candidate policy diff
//	GET  /v1/providers?prefix=&offset=&limit=                       → paginated provider keys
//	POST /v1/providers        DSL document with provider blocks     → count registered
//	POST /v1/providers/batch  large DSL document (bulk ingest)      → count registered + shard fan-out
//	GET  /v1/audit?prefix=&offset=&limit=                           → paginated access records
//	POST /v1/sweep                                                  → retention sweep
//	POST /v1/load?table=T     CSV body with a header row            → rows loaded
//	GET  /v1/self/audit?provider=N                                  → personal violation report
//	GET  /v1/self/data?provider=N                                   → the provider's own rows
//	GET  /v1/routes                                                 → machine-readable route listing
//	GET  /v1/healthz                                                → liveness probe
//	GET  /v1/readyz                                                 → readiness probe (503 while draining)
//	GET  /v1/metrics                                                → Prometheus-text exposition (?format=json for JSON)
//
// Every route is declared once in the route table (method, canonical path,
// legacy alias, body cap, cap/metrics bypass, handler); the unversioned
// paths of the pre-/v1 surface are thin aliases onto the same handlers and
// answer identically except for "Deprecation: true" and "Sunset" response
// headers (RFC 9745 / RFC 8594) announcing the documented removal date.
// GET /v1/routes serves the table itself, so clients and API.md are pinned
// to the same source of truth.
//
// Errors share one JSON envelope, {"error":{"code","message","detail"}},
// on every path that can produce one: 400s, 403s, 404s for unknown routes,
// 405s (with an Allow header naming the methods the route table declares),
// 413s from body caps, panic-500s and shed-503s. Policy and preference
// uploads use the policydsl text format (Content-Type is not enforced).
//
// Lifecycle hardening (DESIGN.md §9): every request passes through a
// panic-recovery wrapper (a handler panic is logged with its stack and
// answered with an envelope 500; the server keeps serving) and an
// in-flight cap that sheds excess load with an envelope 503 + Retry-After
// rather than letting a pile-up take the process down. Routes marked
// Bypass in the table — the probes and the metrics scrape, under both
// their /v1 and legacy paths — skip the cap so a saturated server still
// answers its load balancer and its scraper.
//
// Observability (DESIGN.md §10): every capped request is measured — a
// per-route/status-class request counter, an in-flight gauge, a per-route
// latency histogram, and dedicated shed/panic counters — published to the
// metrics registry /v1/metrics serves. Request metrics are labeled with
// the route's canonical /v1 path (legacy aliases share their canonical
// route's series; unknown paths collapse to "other", so a scan of random
// URLs cannot mint unbounded series). Options.RequestLog adds one
// structured key=value line per request.
package httpapi

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/kvlog"
	"repro/internal/metrics"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/privacy"
	"repro/internal/query"
	"repro/internal/whatif"
)

// DefaultMaxInFlight is the in-flight request cap used when Options does
// not set one.
const DefaultMaxInFlight = 1024

// Pagination defaults for the list endpoints (/v1/providers, /v1/audit):
// a request without ?limit= gets DefaultPageLimit rows, and no request
// gets more than MaxPageLimit — the bounded-response guarantee at
// million-provider scale.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 1000
)

// Body caps, declared once here and applied centrally by the route table.
const (
	maxJSONBody  = 1 << 20  // POST /v1/query
	maxDSLBody   = 1 << 20  // PUT /v1/policy, POST /v1/providers
	maxBatchBody = 32 << 20 // POST /v1/providers/batch (bulk ingest)
	maxCSVBody   = 8 << 20  // POST /v1/load
)

// Options tunes the hardening knobs. The zero value is production-ready.
type Options struct {
	// MaxInFlight caps concurrently served requests; excess requests are
	// shed immediately with a JSON 503. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// Logger receives panic reports; nil means log.Default().
	Logger *log.Logger
	// Metrics is the registry the request instrumentation publishes to
	// and GET /v1/metrics serves; nil means metrics.Default (which also
	// carries the ledger/ppdb/fault instrumentation of this process).
	Metrics *metrics.Registry
	// RequestLog, when non-nil, receives one structured key=value line
	// per measured request (probes and /v1/metrics are exempt). nil
	// disables request logging.
	RequestLog *log.Logger
	// OperatorToken grants the operator privilege to requests carrying it
	// in the X-Operator-Token header. The privilege unlocks the parts of
	// POST /v1/query that disclose enforcement internals: the EXPLAIN
	// trace (which names the rows, providers and preference tuples behind
	// every suppression — exactly what suppression hides from requesters)
	// and exact index-scan row counts. Empty means no operator exists:
	// explain requests are refused with 403 and index-scan counts are
	// always withheld. Compared in constant time.
	OperatorToken string
}

// routeDef declares one route: everything the dispatcher needs to know
// about it lives here — method, canonical /v1 path, optional legacy alias,
// request-body cap, whether it bypasses the in-flight cap and
// instrumentation, and the handler.
type routeDef struct {
	Method string
	Path   string // canonical /v1 path; also the metric route label
	Legacy string // unversioned alias ("" = none); answers with Deprecation: true
	// MaxBody caps the request body via http.MaxBytesReader (0 = no body
	// expected, no reader installed). Exceeding it yields an envelope 413.
	MaxBody int64
	// Bypass marks probe/scrape routes that skip the in-flight cap and the
	// request instrumentation — a saturated server still answers its load
	// balancer, and a scrape never perturbs the numbers it reads. The
	// bypass follows the route, so /v1 aliases and legacy paths share it.
	Bypass  bool
	Handler http.HandlerFunc
}

// pathEntry is the dispatch state for one URL path: the routes (by method)
// mounted there, the precomputed Allow header, and whether requests to
// this spelling of the path are deprecated (legacy alias) or bypass the
// cap.
type pathEntry struct {
	route      string // canonical /v1 path, the metric label
	methods    map[string]*routeDef
	allow      string // sorted, comma-separated methods for 405s
	bypass     bool
	deprecated bool
}

// legacySunset is the documented removal date for the unversioned legacy
// aliases, sent as the Sunset header (RFC 8594) on every legacy response
// and published by GET /v1/routes and API.md ("Deprecation policy").
const legacySunset = "Fri, 01 Jan 2027 00:00:00 GMT"

// Server wraps a PPDB with an http.Handler.
type Server struct {
	db       *ppdb.DB
	table    []routeDef // the route table, retained for GET /v1/routes
	paths    map[string]*pathEntry
	logger   *log.Logger
	reqLog   *log.Logger
	opToken  string        // Options.OperatorToken ("" = no operator)
	inflight chan struct{} // semaphore: one slot per in-flight request
	ready    atomic.Bool

	// Request instrumentation (DESIGN.md §10). The counters that carry a
	// status-class label are looked up per request; the per-route
	// histograms and the singletons are resolved once here.
	registry   *metrics.Registry
	inFlight   *metrics.Gauge
	shedTotal  *metrics.Counter
	panicTotal *metrics.Counter
}

// New builds the handler around an existing PPDB with default Options.
func New(db *ppdb.DB) (*Server, error) {
	return NewWith(db, Options{})
}

// NewWith builds the handler with explicit hardening options.
func NewWith(db *ppdb.DB, opts Options) (*Server, error) {
	if db == nil {
		return nil, fmt.Errorf("httpapi: nil database")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.Default
	}
	s := &Server{
		db:       db,
		logger:   opts.Logger,
		reqLog:   opts.RequestLog,
		opToken:  opts.OperatorToken,
		inflight: make(chan struct{}, opts.MaxInFlight),
		registry: opts.Metrics,
		inFlight: opts.Metrics.Gauge("httpapi_in_flight",
			"requests currently being served (shed and probe requests excluded)"),
		shedTotal: opts.Metrics.Counter("httpapi_shed_total",
			"requests shed with a 503 because the in-flight cap was reached"),
		panicTotal: opts.Metrics.Counter("httpapi_panics_total",
			"handler panics recovered into JSON 500s"),
	}
	s.buildPaths(opts.Metrics.Handler().ServeHTTP)
	s.ready.Store(true)
	return s, nil
}

// routeTable is the single source of truth for the HTTP surface: one entry
// per (method, route). Everything else — dispatch, method enforcement and
// the Allow header, body caps, legacy aliases and their Deprecation
// header, the probe/scrape bypass, metric route labels, API.md — derives
// from this table.
func (s *Server) routeTable(metricsHandler http.HandlerFunc) []routeDef {
	return []routeDef{
		{Method: http.MethodPost, Path: "/v1/query", Legacy: "/query", MaxBody: maxJSONBody, Handler: s.handleQuery},
		{Method: http.MethodGet, Path: "/v1/certify", Legacy: "/certify", Handler: s.handleCertify},
		{Method: http.MethodGet, Path: "/v1/certify/summary", Legacy: "/certify/summary", Handler: s.handleCertifySummary},
		{Method: http.MethodGet, Path: "/v1/policy", Legacy: "/policy", Handler: s.handlePolicyGet},
		{Method: http.MethodPut, Path: "/v1/policy", Legacy: "/policy", MaxBody: maxDSLBody, Handler: s.handlePolicyPut},
		{Method: http.MethodPost, Path: "/v1/whatif", MaxBody: maxJSONBody, Handler: s.handleWhatIf},
		{Method: http.MethodGet, Path: "/v1/providers", Legacy: "/providers", Handler: s.handleProvidersGet},
		{Method: http.MethodPost, Path: "/v1/providers", Legacy: "/providers", MaxBody: maxDSLBody, Handler: s.handleProvidersPost},
		{Method: http.MethodPost, Path: "/v1/providers/batch", MaxBody: maxBatchBody, Handler: s.handleProvidersBatch},
		{Method: http.MethodGet, Path: "/v1/audit", Legacy: "/audit", Handler: s.handleAudit},
		{Method: http.MethodPost, Path: "/v1/sweep", Legacy: "/sweep", Handler: s.handleSweep},
		{Method: http.MethodPost, Path: "/v1/load", Legacy: "/load", MaxBody: maxCSVBody, Handler: s.handleLoad},
		{Method: http.MethodGet, Path: "/v1/self/audit", Legacy: "/self/audit", Handler: s.handleSelfAudit},
		{Method: http.MethodGet, Path: "/v1/self/data", Legacy: "/self/data", Handler: s.handleSelfData},
		{Method: http.MethodGet, Path: "/v1/routes", Handler: s.handleRoutes},
		{Method: http.MethodGet, Path: "/v1/healthz", Legacy: "/healthz", Bypass: true, Handler: s.handleHealthz},
		{Method: http.MethodGet, Path: "/v1/readyz", Legacy: "/readyz", Bypass: true, Handler: s.handleReadyz},
		{Method: http.MethodGet, Path: "/v1/metrics", Legacy: "/metrics", Bypass: true, Handler: metricsHandler},
	}
}

// buildPaths expands the route table into the dispatch map: one pathEntry
// per canonical path and one per legacy alias, sharing routeDefs so the
// two spellings cannot drift apart.
func (s *Server) buildPaths(metricsHandler http.HandlerFunc) {
	table := s.routeTable(metricsHandler)
	s.table = table
	s.paths = make(map[string]*pathEntry)
	entry := func(path, route string, deprecated bool) *pathEntry {
		e, ok := s.paths[path]
		if !ok {
			e = &pathEntry{route: route, methods: make(map[string]*routeDef), deprecated: deprecated}
			s.paths[path] = e
		}
		return e
	}
	for i := range table {
		rd := &table[i]
		e := entry(rd.Path, rd.Path, false)
		e.methods[rd.Method] = rd
		e.bypass = e.bypass || rd.Bypass
		if rd.Legacy != "" {
			le := entry(rd.Legacy, rd.Path, true)
			le.methods[rd.Method] = rd
			le.bypass = le.bypass || rd.Bypass
		}
	}
	for _, e := range s.paths {
		ms := make([]string, 0, len(e.methods))
		for m := range e.methods {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		e.allow = strings.Join(ms, ", ")
	}
}

// SetReady flips the /readyz verdict. The server main drops readiness
// before draining so load balancers stop routing new work here while
// in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// classOf collapses a status code to its class label ("2xx", "5xx", ...).
func classOf(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return "other"
	}
}

// statusWriter records the status line and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler: route lookup, probe/scrape bypass,
// request instrumentation, load shedding, panic recovery, then dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	entry := s.paths[r.URL.Path]
	if entry != nil && entry.bypass {
		// Probes and scrapes bypass the cap and the instrumentation —
		// derived from the route table, so /v1 spellings and legacy
		// aliases bypass alike.
		s.serveRoute(w, r, entry)
		return
	}
	route := "other"
	if entry != nil {
		route = entry.route
	}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.inFlight.Inc()
	defer func() {
		s.inFlight.Dec()
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		s.registry.Counter("httpapi_requests_total",
			"requests served by route and status class",
			"route", route, "class", classOf(status)).Inc()
		s.registry.Histogram("httpapi_request_seconds",
			"request latency by route", metrics.DefBuckets,
			"route", route).Observe(elapsed.Seconds())
		if s.reqLog != nil {
			s.reqLog.Print(kvlog.Line("event", "request", "method", r.Method,
				"path", r.URL.Path, "route", route, "status", status,
				"bytes", sw.bytes, "dur", elapsed))
		}
	}()
	select {
	case s.inflight <- struct{}{}:
	default:
		s.shedTotal.Inc()
		sw.Header().Set("Retry-After", "1")
		writeErr(sw, http.StatusServiceUnavailable, errors.New("server at capacity, retry shortly"))
		return
	}
	defer func() { <-s.inflight }()
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panicTotal.Inc()
			s.logger.Printf("%s\n%s",
				kvlog.Line("event", "panic", "method", r.Method, "path", r.URL.Path, "err", rec),
				debug.Stack())
			// Best effort: if the handler already wrote a status line this
			// changes nothing on the wire, but the process keeps serving.
			writeErr(sw, http.StatusInternalServerError, errors.New("internal server error"))
		}
	}()
	if err := fault.Point("httpapi.handler"); err != nil {
		writeErr(sw, http.StatusInternalServerError, err)
		return
	}
	if entry == nil {
		writeErrDetail(sw, http.StatusNotFound,
			fmt.Errorf("no such route %s", r.URL.Path), "see API.md for the /v1 route list")
		return
	}
	s.serveRoute(sw, r, entry)
}

// serveRoute enforces the route table for one matched path: method check
// (405 + Allow on mismatch), the Deprecation header on legacy aliases, the
// declared body cap, then the handler.
func (s *Server) serveRoute(w http.ResponseWriter, r *http.Request, e *pathEntry) {
	rd, ok := e.methods[r.Method]
	if !ok {
		w.Header().Set("Allow", e.allow)
		writeErrDetail(w, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s", r.Method, e.route), "allowed: "+e.allow)
		return
	}
	if e.deprecated {
		// Legacy unversioned spelling: same handler, same body, plus the
		// deprecation signal (RFC 9745) pointing clients at /v1 and the
		// Sunset date (RFC 8594) after which the alias disappears. The
		// counter measures how much traffic still needs migrating.
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		s.registry.Counter("ppdb_legacy_requests_total",
			"requests served via deprecated unversioned legacy aliases",
			"route", e.route).Inc()
	}
	if rd.MaxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, rd.MaxBody)
	}
	rd.Handler(w, r)
}

// errorInfo is the inner object of the uniform error envelope.
type errorInfo struct {
	// Code is a stable, machine-readable error class derived from the
	// status code (e.g. "bad_request", "method_not_allowed").
	Code string `json:"code"`
	// Message is the human-readable description of this failure.
	Message string `json:"message"`
	// Detail carries optional extra context (allowed methods, body limit).
	Detail string `json:"detail,omitempty"`
}

// errorBody is the uniform error envelope: {"error":{"code","message",
// "detail"}}. Every error-producing path — handler 4xx, unknown-route 404,
// method 405, body-cap 413, shed 503, panic 500 — answers with it.
type errorBody struct {
	Error errorInfo `json:"error"`
}

// codeOf maps a status code to the envelope's stable error code.
func codeOf(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusServiceUnavailable:
		return "at_capacity"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "error"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errflow the status line is already written; an encode failure here means the client hung up
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeErrDetail(w, status, err, "")
}

func writeErrDetail(w http.ResponseWriter, status int, err error, detail string) {
	writeJSON(w, status, errorBody{Error: errorInfo{
		Code:    codeOf(status),
		Message: err.Error(),
		Detail:  detail,
	}})
}

// writeBodyErr maps a request-body read failure to a status: an over-limit
// body (the route's MaxBytesReader tripped) is a 413 naming the limit,
// anything else a 400.
func writeBodyErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErrDetail(w, http.StatusRequestEntityTooLarge,
			errors.New("request body too large"),
			fmt.Sprintf("limit is %d bytes", tooBig.Limit))
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

// pageParams parses ?offset= and ?limit= for the list endpoints. limit
// defaults to DefaultPageLimit and is capped at MaxPageLimit; offset
// defaults to 0. Negative or non-integer values are rejected.
func pageParams(r *http.Request) (offset, limit int, err error) {
	offset, limit = 0, DefaultPageLimit
	if q := r.URL.Query().Get("offset"); q != "" {
		v, perr := strconv.Atoi(q)
		if perr != nil || v < 0 {
			return 0, 0, fmt.Errorf("bad offset %q: must be a non-negative integer", q)
		}
		offset = v
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		v, perr := strconv.Atoi(q)
		if perr != nil || v < 0 {
			return 0, 0, fmt.Errorf("bad limit %q: must be a non-negative integer", q)
		}
		limit = v
	}
	if limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	return offset, limit, nil
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while accepting work, 503 once
// the server has begun draining (SetReady(false)).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// QueryRequest is the POST /v1/query body. Explain asks for the per-datum
// enforcement trace alongside the answer; it requires the operator
// privilege (X-Operator-Token), because the trace names the rows,
// providers and preference tuples suppression withheld.
type QueryRequest struct {
	Requester  string `json:"requester"`
	Purpose    string `json:"purpose"`
	Visibility int    `json:"visibility"`
	SQL        string `json:"sql"`
	Explain    bool   `json:"explain"`
}

// QueryStats is the wire form of query.Stats. RowsScanned and
// RowsSuppressed are omitted on index-scan answers served without the
// operator privilege: the index matches raw stored values, so those
// counts would tell a requester how many withheld rows carry the probed
// literal — a per-value oracle on the very data suppression hides. Full
// scans report them always (there they count the whole table,
// independent of the predicate). Exact counts stay in the request log,
// the audit trail and the metrics regardless.
type QueryStats struct {
	RowsScanned      *int `json:"rowsScanned,omitempty"`
	RowsSuppressed   *int `json:"rowsSuppressed,omitempty"`
	RowsMatched      int  `json:"rowsMatched"`
	RowsReturned     int  `json:"rowsReturned"`
	CellsGeneralized int  `json:"cellsGeneralized"`
	CellsExpired     int  `json:"cellsExpired"`
}

// wireStats shapes the enforcement stats for the response, withholding
// the per-literal counts of unprivileged index-scan answers.
func wireStats(st query.Stats, indexScan, operator bool) QueryStats {
	out := QueryStats{
		RowsMatched:      st.RowsMatched,
		RowsReturned:     st.RowsReturned,
		CellsGeneralized: st.CellsGeneralized,
		CellsExpired:     st.CellsExpired,
	}
	if !indexScan || operator {
		scanned, suppressed := st.RowsScanned, st.RowsSuppressed
		out.RowsScanned, out.RowsSuppressed = &scanned, &suppressed
	}
	return out
}

// QueryResponse is the POST /v1/query result: the answer relation, the
// enforcement stats behind it, and (for operators who requested it) the
// EXPLAIN trace attributing every suppression/generalization/expiry to
// its cause.
type QueryResponse struct {
	Columns []string       `json:"columns"`
	Rows    [][]string     `json:"rows"`
	Stats   QueryStats     `json:"stats"`
	Explain *query.Explain `json:"explain,omitempty"`
}

// operator reports whether the request carries the configured operator
// token. With no token configured nothing is privileged.
func (s *Server) operator(r *http.Request) bool {
	if s.opToken == "" {
		return false
	}
	got := r.Header.Get("X-Operator-Token")
	return subtle.ConstantTimeCompare([]byte(got), []byte(s.opToken)) == 1
}

// queryVerdict classifies a QueryEnforced error into the access-log
// verdict and HTTP status. Catalog faults are the server's own invariant
// breaks, not request errors: they map to 500/internal so a
// misconfigured table is never mistaken for a bad query.
func queryVerdict(err error) (verdict string, status int) {
	var denied *query.DeniedError
	var unenf *query.UnenforceableError
	var cat *ppdb.CatalogError
	switch {
	case errors.As(err, &cat):
		return "internal", http.StatusInternalServerError
	case errors.As(err, &denied):
		return "denied", http.StatusForbidden
	case errors.As(err, &unenf):
		return "unenforceable", http.StatusBadRequest
	}
	return "invalid", http.StatusBadRequest
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBodyErr(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	op := s.operator(r)
	if req.Explain && !op {
		// The trace discloses the existence, provenance and preferences of
		// exactly the rows suppression withheld; only operators see it.
		s.logQuery(&req, "denied", nil)
		writeErr(w, http.StatusForbidden,
			errors.New("query: explain requires the operator privilege (X-Operator-Token)"))
		return
	}
	res, err := s.db.QueryEnforced(ppdb.EnforcedQuery{
		Requester:  req.Requester,
		Purpose:    privacy.Purpose(req.Purpose),
		Visibility: privacy.Level(req.Visibility),
		SQL:        req.SQL,
		Explain:    req.Explain,
	})
	if err != nil {
		verdict, status := queryVerdict(err)
		s.logQuery(&req, verdict, nil)
		writeErr(w, status, err)
		return
	}
	out := QueryResponse{
		Columns: res.Columns,
		Rows:    make([][]string, 0, len(res.Rows)),
		Stats:   wireStats(res.Stats, res.IndexScan, op),
		Explain: res.Explain,
	}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Display()
		}
		out.Rows = append(out.Rows, cells)
	}
	s.logQuery(&req, "allowed", &res.Stats)
	writeJSON(w, http.StatusOK, out)
}

// logQuery emits the structured access line for one enforced query.
func (s *Server) logQuery(req *QueryRequest, verdict string, st *query.Stats) {
	if s.reqLog == nil {
		return
	}
	pairs := []any{"event", "query", "requester", req.Requester,
		"purpose", req.Purpose, "visibility", req.Visibility, "verdict", verdict}
	if st != nil {
		pairs = append(pairs, "rows", st.RowsReturned, "suppressed", st.RowsSuppressed,
			"generalized", st.CellsGeneralized, "expired", st.CellsExpired)
	}
	s.reqLog.Print(kvlog.Line(pairs...))
}

// alphaParam parses ?alpha=, defaulting to 0.1. The parsed value must be a
// finite number in [0, 1]: NaN, ±Inf and out-of-range values are rejected
// here with a 400 rather than reaching certification — a NaN α compares
// false against everything, which would silently fail every verdict.
func alphaParam(r *http.Request) (float64, error) {
	alpha := 0.1
	if q := r.URL.Query().Get("alpha"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil {
			return 0, fmt.Errorf("bad alpha %q", q)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return 0, fmt.Errorf("alpha %q must be a finite number in [0, 1]", q)
		}
		alpha = v
	}
	return alpha, nil
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	alpha, err := alphaParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cert, err := s.db.Certify(alpha)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, cert)
}

// handleCertifySummary serves GET /v1/certify/summary?alpha=: the aggregate
// certification (N, P(W), P(Default), counts, verdict) without per-provider
// rows, answered from the violation ledger's running aggregates in O(P).
func (s *Server) handleCertifySummary(w http.ResponseWriter, r *http.Request) {
	alpha, err := alphaParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sum, err := s.db.CertifySummary(alpha)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleWhatIf serves POST /v1/whatif: a candidate policy diff evaluated
// against the live population under a shadow policy version — predicted
// ΔP(W), ΔP(Default), break-even T and the Eq. 28-31 verdict — with zero
// live-state mutation. The request and response types live in
// internal/whatif and are shared verbatim with the cmd/whatif CLI. Detail
// mode (per-segment default counts) requires the operator privilege: the
// counts disclose how many providers hold preferences on each touched
// attribute, population structure the base response does not reveal.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req whatif.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBodyErr(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Detail && !s.operator(r) {
		// Refused before any store read, like EXPLAIN on /v1/query.
		writeErr(w, http.StatusForbidden,
			errors.New("whatif: detail mode requires the operator privilege (X-Operator-Token)"))
		return
	}
	resp, err := s.db.WhatIf(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// RouteInfo is one row of the GET /v1/routes listing, derived from the
// route table entry for one (method, canonical path).
type RouteInfo struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	// Legacy is the unversioned alias, if the route has one. Every alias
	// is deprecated (LegacyDeprecated) and scheduled for removal at
	// LegacySunset (RFC 8594); canonical /v1 paths never are.
	Legacy           string `json:"legacy,omitempty"`
	LegacyDeprecated bool   `json:"legacyDeprecated,omitempty"`
	LegacySunset     string `json:"legacySunset,omitempty"`
}

// RoutesResponse is the GET /v1/routes body.
type RoutesResponse struct {
	Routes []RouteInfo `json:"routes"`
	// Sunset echoes the global legacy-alias removal date.
	Sunset string `json:"sunset"`
}

// handleRoutes serves the machine-readable route listing straight from the
// route table, in table order — the same source of truth dispatch uses, so
// the listing cannot drift from behavior. Canonical /v1 routes are never
// deprecated; their legacy aliases are, with the shared Sunset date.
func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	out := RoutesResponse{Routes: make([]RouteInfo, 0, len(s.table)), Sunset: legacySunset}
	for i := range s.table {
		rd := &s.table[i]
		info := RouteInfo{Method: rd.Method, Path: rd.Path, Legacy: rd.Legacy}
		if rd.Legacy != "" {
			info.LegacyDeprecated = true
			info.LegacySunset = legacySunset
		}
		out.Routes = append(out.Routes, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePolicyGet renders the current policy as DSL text.
func (s *Server) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	doc := &policydsl.Document{Policy: s.db.Policy(), Scales: privacy.DefaultScales()}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//lint:ignore errflow response write failures mean the client hung up; there is no recovery mid-body
	_, _ = io.WriteString(w, policydsl.Render(doc))
}

// handlePolicyPut swaps the house policy from a DSL document.
func (s *Server) handlePolicyPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyErr(w, err)
		return
	}
	doc, err := policydsl.Parse(string(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if doc.Policy == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("document has no policy block"))
		return
	}
	change, err := s.db.SetPolicy(doc.Policy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, change)
}

// ProvidersPage is the GET /v1/providers response: one page of canonical
// provider keys in global sorted order, with the total match count so
// clients can page through millions of providers in bounded responses.
type ProvidersPage struct {
	Total     int      `json:"total"`
	Offset    int      `json:"offset"`
	Limit     int      `json:"limit"`
	Count     int      `json:"count"`
	Providers []string `json:"providers"`
}

// handleProvidersGet serves the paginated provider listing:
// ?prefix= filters by canonical-key prefix, ?offset=/?limit= page through
// the sorted matches.
func (s *Server) handleProvidersGet(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	total, names := s.db.ProvidersPage(r.URL.Query().Get("prefix"), offset, limit)
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, ProvidersPage{
		Total: total, Offset: offset, Limit: limit, Count: len(names), Providers: names,
	})
}

// handleProvidersPost registers the provider blocks of a DSL document.
func (s *Server) handleProvidersPost(w http.ResponseWriter, r *http.Request) {
	n, err := s.registerFromDSL(w, r)
	if err != nil {
		return // response already written
	}
	writeJSON(w, http.StatusOK, map[string]int{"registered": n})
}

// handleProvidersBatch is the bulk-ingest endpoint: a large DSL document
// (up to the batch body cap) whose provider blocks are validated as one
// atomic batch and written with one goroutine per shard.
func (s *Server) handleProvidersBatch(w http.ResponseWriter, r *http.Request) {
	n, err := s.registerFromDSL(w, r)
	if err != nil {
		return // response already written
	}
	writeJSON(w, http.StatusOK, map[string]int{"registered": n, "shards": s.db.ShardCount()})
}

// registerFromDSL parses provider blocks from the request body and
// registers them as one atomic batch, fanning out per shard. On error the
// envelope has been written and a non-nil error is returned.
func (s *Server) registerFromDSL(w http.ResponseWriter, r *http.Request) (int, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyErr(w, err)
		return 0, err
	}
	doc, err := policydsl.Parse(string(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return 0, err
	}
	if len(doc.Providers) == 0 {
		err := fmt.Errorf("document has no provider blocks")
		writeErr(w, http.StatusBadRequest, err)
		return 0, err
	}
	// Bulk registration: validates the whole batch before storing any of
	// it, then stores prefs and builds ledger rows one goroutine per shard.
	if err := s.db.RegisterProviders(doc.Providers); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return 0, err
	}
	return len(doc.Providers), nil
}

// AuditPage is the GET /v1/audit response: one page of access records in
// log order, with the total match count.
type AuditPage struct {
	Total   int                 `json:"total"`
	Offset  int                 `json:"offset"`
	Limit   int                 `json:"limit"`
	Count   int                 `json:"count"`
	Records []ppdb.AccessRecord `json:"records"`
}

// handleAudit serves the paginated access log: ?prefix= filters by
// requester prefix, ?offset=/?limit= page through the matches.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	total, recs := s.db.Audit().Page(r.URL.Query().Get("prefix"), offset, limit)
	if recs == nil {
		recs = []ppdb.AccessRecord{}
	}
	writeJSON(w, http.StatusOK, AuditPage{
		Total: total, Offset: offset, Limit: limit, Count: len(recs), Records: recs,
	})
}

// handleSelfAudit serves GET /v1/self/audit?provider=name: the provider's
// personal violation report (w_i, Violation_i, default_i, conflict pairs).
func (s *Server) handleSelfAudit(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?provider="))
		return
	}
	rep, err := s.db.SelfAudit(provider)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleSelfData serves GET /v1/self/data?provider=name: every row the
// provider contributed, at full granularity (right of access).
func (s *Server) handleSelfData(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?provider="))
		return
	}
	rows, err := s.db.ProviderView(provider)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type rowJSON struct {
		Table  string            `json:"table"`
		RowID  int64             `json:"rowId"`
		Values map[string]string `json:"values"`
	}
	out := make([]rowJSON, 0, len(rows))
	for _, row := range rows {
		vals := make(map[string]string, len(row.Columns))
		for i, c := range row.Columns {
			vals[c] = row.Values[i].Display()
		}
		out = append(out, rowJSON{Table: row.Table, RowID: int64(row.RowID), Values: vals})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLoad bulk-loads CSV microdata: POST /v1/load?table=records with the
// CSV as the body. Providers named in the provider column must already be
// registered.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	table := r.URL.Query().Get("table")
	if table == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?table="))
		return
	}
	n, err := s.db.ImportCSV(table, r.Body)
	if err != nil {
		writeBodyErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": n})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	rep, err := s.db.Sweep()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
