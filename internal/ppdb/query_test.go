package ppdb

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/generalize"
	"repro/internal/privacy"
	"repro/internal/query"
	"repro/internal/relational"
)

// enforcedDB builds the per-datum enforcement fixture: a patients table and
// four providers, each restrictive along exactly one dimension of the
// weight attribute under the care purpose.
//
//	policy: patient ⟨care,2,3,4⟩  age ⟨care,2,2,4⟩
//	        weight  ⟨care,2,3,4⟩ ⟨research,3,2,3⟩
//	ann: permissive everywhere        bo:  weight care V1 (visibility)
//	cam: weight care G1 (granularity) dee: weight care R1 (retention)
//
// Rows are inserted at the epoch, then the clock advances 48h so dee's
// transient retention grant (24h) lapses while everyone else's stays live.
func enforcedDB(t *testing.T) (*DB, *generalize.NumericHierarchy) {
	t.Helper()
	weightH, err := generalize.NewNumericHierarchy(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hp := privacy.NewHousePolicy("enforced-v1").
		Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4}).
		Add("age", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 2, Retention: 4}).
		Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4}).
		Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	db, err := New(Config{
		Policy:      hp,
		Hierarchies: map[string]generalize.Hierarchy{"weight": weightH},
	})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "patient", Type: relational.TypeText, PrimaryKey: true},
		{Name: "age", Type: relational.TypeInt},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("patients", schema, "patient"); err != nil {
		t.Fatal(err)
	}

	permissive := func(name string) *privacy.Prefs {
		p := privacy.NewPrefs(name, 50)
		for _, attr := range []string{"patient", "age", "weight"} {
			p.Add(attr, privacy.Tuple{Purpose: "care", Visibility: 3, Granularity: 3, Retention: 5})
		}
		return p
	}
	// Only ann consents to research; the rest fall to the implicit zero.
	ann := permissive("ann").Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 3, Retention: 5})
	bo := permissive("bo").Add("weight", privacy.Tuple{Purpose: "care", Visibility: 1, Granularity: 3, Retention: 5})
	cam := permissive("cam").Add("weight", privacy.Tuple{Purpose: "care", Visibility: 3, Granularity: 1, Retention: 5})
	dee := permissive("dee").Add("weight", privacy.Tuple{Purpose: "care", Visibility: 3, Granularity: 3, Retention: 1})
	rows := []struct {
		p      *privacy.Prefs
		age    int64
		weight float64
	}{
		{ann, 34, 61.5}, {bo, 51, 92}, {cam, 45, 70.5}, {dee, 28, 55},
	}
	for _, r := range rows {
		if err := db.RegisterProvider(r.p); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("patients", r.p.Provider, relational.Row{
			relational.Text(r.p.Provider), relational.Int(r.age), relational.Float(r.weight),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Advance(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	return db, weightH
}

// TestQueryEnforcedDimensions checks each dimension end to end against the
// real store: visibility suppression, granularity degradation through a
// hierarchy, retention refusal on the live clock, and plan-time denials.
func TestQueryEnforcedDimensions(t *testing.T) {
	db, weightH := enforcedDB(t)

	t.Run("care discloses the enforced view", func(t *testing.T) {
		res, err := db.QueryEnforced(EnforcedQuery{
			Requester: "nurse", Purpose: "care", Visibility: 2,
			SQL: "SELECT patient, age, weight FROM patients", Explain: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := query.Stats{RowsScanned: 4, RowsSuppressed: 1, RowsMatched: 3,
			RowsReturned: 3, CellsGeneralized: 4, CellsExpired: 1}
		if res.Stats != want {
			t.Fatalf("stats = %+v, want %+v", res.Stats, want)
		}
		// Policy grants partial age (G2 of 3): the attribute has no
		// hierarchy, so the cell suppresses to "*" for every provider.
		// cam's G1 weight degrades two hierarchy levels; dee's weight is
		// past the 24h transient window and refused.
		camWeight := weightH.Generalize(relational.Float(70.5), 2).Display()
		wantRows := []string{
			"ann|*|61.5",
			"cam|*|" + camWeight,
			"dee|*|NULL",
		}
		for i, r := range res.Rows {
			cells := make([]string, len(r))
			for j, v := range r {
				cells[j] = v.Display()
			}
			if got := strings.Join(cells, "|"); got != wantRows[i] {
				t.Fatalf("row %d = %q, want %q", i, got, wantRows[i])
			}
		}
		// bo's suppression traces to his explicit V1 preference against the
		// care policy tuple.
		var boTrace *query.Trace
		for i := range res.Explain.Entries {
			e := &res.Explain.Entries[i]
			if e.Provider == "bo" && e.Action == query.ActionSuppress {
				boTrace = e
			}
		}
		if boTrace == nil {
			t.Fatal("no suppression trace for bo")
		}
		if boTrace.Pref == nil || boTrace.Pref.Visibility != 1 ||
			boTrace.Policy == nil || boTrace.Policy.Visibility != 2 {
			t.Fatalf("bo trace does not name the (pref, policy) pair: %+v", boTrace)
		}
	})

	t.Run("research binds its own tuple and implicit zeros", func(t *testing.T) {
		res, err := db.QueryEnforced(EnforcedQuery{
			Requester: "lab", Purpose: "research", Visibility: 3,
			SQL: "SELECT weight FROM patients", Explain: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Only ann stated a research preference; bo/cam/dee fall to the
		// implicit zero and are suppressed at any class above none.
		if res.Stats.RowsSuppressed != 3 || res.Stats.RowsReturned != 1 {
			t.Fatalf("stats = %+v", res.Stats)
		}
		annWeight := weightH.Generalize(relational.Float(61.5), 1).Display()
		if got := res.Rows[0][0].Display(); got != annWeight {
			t.Fatalf("research weight = %q, want %q (policy G2 of 3)", got, annWeight)
		}
		implicit := 0
		for _, e := range res.Explain.Entries {
			if e.Action == query.ActionSuppress && e.PrefImplicit {
				implicit++
				if e.Pref == nil || e.Pref.Visibility != 0 {
					t.Fatalf("implicit suppression must carry the zero tuple: %+v", e)
				}
			}
		}
		if implicit != 3 {
			t.Fatalf("implicit-zero suppressions = %d, want 3", implicit)
		}
	})

	t.Run("unstated purpose is denied at plan time", func(t *testing.T) {
		_, err := db.QueryEnforced(EnforcedQuery{
			Requester: "ads", Purpose: "marketing", Visibility: 0,
			SQL: "SELECT weight FROM patients",
		})
		var denied *query.DeniedError
		if !errors.As(err, &denied) {
			t.Fatalf("expected *query.DeniedError, got %v", err)
		}
	})

	t.Run("requester class above policy is denied", func(t *testing.T) {
		_, err := db.QueryEnforced(EnforcedQuery{
			Requester: "world", Purpose: "care", Visibility: 3,
			SQL: "SELECT patient FROM patients",
		})
		var denied *query.DeniedError
		if !errors.As(err, &denied) {
			t.Fatalf("expected *query.DeniedError, got %v", err)
		}
	})

	t.Run("unenforceable constructs are refused", func(t *testing.T) {
		_, err := db.QueryEnforced(EnforcedQuery{
			Requester: "lab", Purpose: "care", Visibility: 2,
			SQL: "SELECT COUNT(*) FROM patients",
		})
		var unenf *query.UnenforceableError
		if !errors.As(err, &unenf) {
			t.Fatalf("expected *query.UnenforceableError, got %v", err)
		}
	})

	t.Run("every attempt is audited", func(t *testing.T) {
		before := db.Audit().Len()
		if _, err := db.QueryEnforced(EnforcedQuery{
			Requester: "nurse", Purpose: "care", Visibility: 2,
			SQL: "SELECT patient FROM patients",
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.QueryEnforced(EnforcedQuery{
			Requester: "ads", Purpose: "marketing", Visibility: 0,
			SQL: "SELECT patient FROM patients",
		}); err == nil {
			t.Fatal("expected a denial")
		}
		recs := db.Audit().Records()
		if len(recs) != before+2 {
			t.Fatalf("audit grew by %d, want 2", len(recs)-before)
		}
		if !recs[len(recs)-2].Allowed || recs[len(recs)-1].Allowed {
			t.Fatalf("audit verdicts wrong: %+v", recs[len(recs)-2:])
		}
	})
}

// TestQueryEnforcedProvenance covers rows the store cannot vouch for: a row
// whose provider key was never registered and a row with no provenance
// metadata at all. Neither can be checked against preferences, so both are
// withheld with an explicit reason.
func TestQueryEnforcedProvenance(t *testing.T) {
	db, _ := enforcedDB(t)

	// White-box: bypass Insert's registration check to plant an orphan row
	// (no rowMeta) and a row attributed to an unregistered provider.
	db.mu.Lock()
	tm := db.tables["patients"]
	ghostID, err := tm.table.Insert(relational.Row{
		relational.Text("ghost"), relational.Int(40), relational.Float(80),
	})
	if err == nil {
		tm.rows[ghostID] = &rowMeta{provider: "ghost", inserted: db.now, expired: map[string]bool{}}
		_, err = tm.table.Insert(relational.Row{
			relational.Text("orphan"), relational.Int(41), relational.Float(81),
		})
	}
	db.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	res, err := db.QueryEnforced(EnforcedQuery{
		Requester: "nurse", Purpose: "care", Visibility: 2,
		SQL: "SELECT patient FROM patients", Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// patient is the only referenced attribute, so all four registered
	// providers answer; the two unattributable rows are withheld.
	if res.Stats.RowsReturned != 4 || res.Stats.RowsSuppressed != 2 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	reasons := map[string]bool{}
	for _, e := range res.Explain.Entries {
		if e.Action == query.ActionSuppress {
			if e.Pref != nil {
				t.Fatalf("provenance suppression must not cite a preference: %+v", e)
			}
			reasons[e.Reason] = true
		}
	}
	if !reasons["provider is not registered"] || !reasons["row has no attributable provider"] {
		t.Fatalf("missing provenance reasons: %v", reasons)
	}
}

// retentionDays mirrors the default retention schedule independently of the
// code under test: none, transient, week, month, year, indefinite.
var retentionDays = map[privacy.Level]time.Duration{
	0: 0, 1: 24 * time.Hour, 2: 7 * 24 * time.Hour,
	3: 30 * 24 * time.Hour, 4: 365 * 24 * time.Hour, 5: 1 << 60,
}

// TestQueryEnforcedCellConformance is the acceptance equivalence test: over
// a randomized population, every answered cell must match an independent
// reconstruction of the disclosed view, and re-assessing each answered
// (provider, attribute, purpose) against a one-tuple probe policy at the
// disclosed levels must report no violation. Every preference-attributed
// trace must name a genuine (pref, policy) pair.
func TestQueryEnforcedCellConformance(t *testing.T) {
	weightH, err := generalize.NewNumericHierarchy(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hp := privacy.NewHousePolicy("conf-v1").
		Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4}).
		Add("age", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 2, Retention: 4}).
		Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4}).
		Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	db, err := New(Config{Policy: hp, Hierarchies: map[string]generalize.Hierarchy{"weight": weightH}})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "patient", Type: relational.TypeText, PrimaryKey: true},
		{Name: "age", Type: relational.TypeInt},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("patients", schema, "patient"); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	type stored struct {
		prefs  *privacy.Prefs
		age    int64
		weight float64
	}
	var pop []stored
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("prov%02d", i)
		p := privacy.NewPrefs(name, 50)
		for _, attr := range []string{"patient", "age", "weight"} {
			for _, pr := range []privacy.Purpose{"care", "research"} {
				if rng.Float64() < 0.3 {
					continue // leave (attr, purpose) to the implicit zero
				}
				p.Add(attr, privacy.Tuple{
					Purpose:     pr,
					Visibility:  privacy.Level(rng.Intn(4)),
					Granularity: privacy.Level(rng.Intn(4)),
					Retention:   privacy.Level(rng.Intn(6)),
				})
			}
		}
		row := stored{prefs: p, age: int64(20 + i), weight: 50 + float64(i) + 0.5}
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("patients", name, relational.Row{
			relational.Text(name), relational.Int(row.age), relational.Float(row.weight),
		}); err != nil {
			t.Fatal(err)
		}
		pop = append(pop, row)
	}
	if _, err := db.Advance(40 * time.Hour); err != nil {
		t.Fatal(err)
	}
	dataAge := 40 * time.Hour

	// minima folds the provider's effective preference tuples for (attr,
	// purpose) — explicit plus Sec. 5 implicit zeros — using only exported
	// privacy primitives, independent of the compiled lookup under test.
	minima := func(p *privacy.Prefs, attr string, pr privacy.Purpose) (v, g, r privacy.Level, found bool) {
		for _, pt := range p.EffectiveFor(attr, hp.PurposesFor(attr), nil, true) {
			if pt.Tuple.Purpose.Normalize() != pr {
				continue
			}
			if !found {
				v, g, r, found = pt.Tuple.Visibility, pt.Tuple.Granularity, pt.Tuple.Retention, true
				continue
			}
			if pt.Tuple.Visibility < v {
				v = pt.Tuple.Visibility
			}
			if pt.Tuple.Granularity < g {
				g = pt.Tuple.Granularity
			}
			if pt.Tuple.Retention < r {
				r = pt.Tuple.Retention
			}
		}
		return
	}
	minLevel := func(a, b privacy.Level) privacy.Level {
		if a < b {
			return a
		}
		return b
	}
	generalizeCell := func(attr string, raw relational.Value, granted privacy.Level) relational.Value {
		lv := db.hierarchyLevel(attr, granted)
		if lv == 0 {
			return raw
		}
		return db.hierarchyFor(attr).Generalize(raw, lv)
	}

	type scenario struct {
		purpose privacy.Purpose
		vis     privacy.Level
		attrs   []string
		sql     string
	}
	scenarios := []scenario{
		{"care", 1, []string{"patient", "age", "weight"}, "SELECT patient, age, weight FROM patients"},
		{"care", 2, []string{"patient", "age", "weight"}, "SELECT patient, age, weight FROM patients"},
		{"research", 2, []string{"weight"}, "SELECT weight FROM patients"},
		{"research", 3, []string{"weight"}, "SELECT weight FROM patients"},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("%s/v%d", sc.purpose, sc.vis), func(t *testing.T) {
			res, err := db.QueryEnforced(EnforcedQuery{
				Requester: "probe", Purpose: sc.purpose, Visibility: sc.vis,
				SQL: sc.sql, Explain: true,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Independent reconstruction of the disclosed relation, in
			// insertion (row id) order.
			type cellProbe struct {
				prefs *privacy.Prefs
				attr  string
				g, r  privacy.Level
			}
			var wantRows []string
			var probes []cellProbe
			for _, s := range pop {
				suppressed := false
				for _, attr := range sc.attrs {
					v, _, _, found := minima(s.prefs, attr, sc.purpose)
					if found && sc.vis > v {
						suppressed = true
					}
				}
				if suppressed {
					continue
				}
				cells := make([]string, 0, len(sc.attrs))
				for _, attr := range sc.attrs {
					pol, ok := hp.Find(attr, sc.purpose)
					if !ok {
						t.Fatalf("policy tuple missing for %s/%s", attr, sc.purpose)
					}
					_, g, r, found := minima(s.prefs, attr, sc.purpose)
					grantedG, grantedR := pol.Granularity, pol.Retention
					if found {
						grantedG = minLevel(grantedG, g)
						grantedR = minLevel(grantedR, r)
					}
					var raw relational.Value
					switch attr {
					case "patient":
						raw = relational.Text(s.prefs.Provider)
					case "age":
						raw = relational.Int(s.age)
					default:
						raw = relational.Float(s.weight)
					}
					if dataAge > retentionDays[grantedR] {
						cells = append(cells, "NULL")
					} else {
						cells = append(cells, generalizeCell(attr, raw, grantedG).Display())
						probes = append(probes, cellProbe{prefs: s.prefs, attr: attr, g: grantedG, r: grantedR})
					}
				}
				wantRows = append(wantRows, strings.Join(cells, "|"))
			}
			if len(res.Rows) != len(wantRows) {
				t.Fatalf("answered %d rows, reconstruction has %d", len(res.Rows), len(wantRows))
			}
			for i, r := range res.Rows {
				cells := make([]string, len(r))
				for j, v := range r {
					cells[j] = v.Display()
				}
				if got := strings.Join(cells, "|"); got != wantRows[i] {
					t.Fatalf("row %d = %q, want %q", i, got, wantRows[i])
				}
			}

			// Probe assessment: disclosing (attr) at the granted levels under
			// this purpose and requester class must violate nothing the
			// provider stated — the Eq. 13/14 machinery itself is the judge.
			for _, pr := range probes {
				probe := privacy.NewHousePolicy("probe").Add(pr.attr, privacy.Tuple{
					Purpose: sc.purpose, Visibility: sc.vis, Granularity: pr.g, Retention: pr.r,
				})
				asr, err := core.NewAssessor(probe, nil, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if rep := asr.AssessProvider(pr.prefs); rep.Violated {
					t.Fatalf("answered cell violates %s on %s: %+v", pr.prefs.Provider, pr.attr, rep.Pairs)
				}
			}

			// Every preference-attributed trace must name a genuine pair:
			// the pref tuple among the provider's effective tuples, strictly
			// below the policy tuple on the traced dimension.
			for _, e := range res.Explain.Entries {
				if e.Pref == nil {
					continue
				}
				if e.Policy == nil {
					t.Fatalf("trace names a pref without its policy tuple: %+v", e)
				}
				var prefs *privacy.Prefs
				for _, s := range pop {
					if s.prefs.Provider == e.Provider {
						prefs = s.prefs
					}
				}
				if prefs == nil {
					t.Fatalf("trace cites unknown provider %q", e.Provider)
				}
				match := false
				for _, pt := range prefs.EffectiveFor(e.Attribute, hp.PurposesFor(e.Attribute), nil, true) {
					if pt.Tuple == *e.Pref {
						match = true
					}
				}
				if !match {
					t.Fatalf("traced pref %s is not among %s's effective tuples", e.Pref, e.Provider)
				}
				var prefLv, polLv privacy.Level
				switch e.Dimension {
				case "visibility":
					prefLv, polLv = e.Pref.Visibility, e.Policy.Visibility
					polLv = minLevel(polLv, sc.vis) // suppression compares against the requester class
					if sc.vis <= prefLv {
						t.Fatalf("visibility trace without an actual violation: %+v", e)
					}
					continue
				case "granularity":
					prefLv, polLv = e.Pref.Granularity, e.Policy.Granularity
				case "retention":
					prefLv, polLv = e.Pref.Retention, e.Policy.Retention
				default:
					t.Fatalf("trace with unknown dimension: %+v", e)
				}
				if prefLv >= polLv {
					t.Fatalf("traced pair is not violating on %s: %+v", e.Dimension, e)
				}
			}
		})
	}
}

// TestShardedEnforcedQueryUnderMutation races enforced queries against
// provider registration, row inserts, preference edits and policy swaps on
// a sharded store. Run under -race by the CI shard sweep.
func TestShardedEnforcedQueryUnderMutation(t *testing.T) {
	mkPolicy := func(v privacy.Level) *privacy.HousePolicy {
		return privacy.NewHousePolicy("race").
			Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 5}).
			Add("weight", privacy.Tuple{Purpose: "care", Visibility: v, Granularity: 3, Retention: 5})
	}
	db, err := New(Config{Policy: mkPolicy(2), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const writers, rows = 4, 40
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				name := fmt.Sprintf("p-%d-%d", g, i)
				p := privacy.NewPrefs(name, 100)
				p.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 4, Granularity: 3, Retention: 5})
				p.Add("weight", privacy.Tuple{Purpose: "care", Visibility: privacy.Level(i % 4), Granularity: 3, Retention: 5})
				if err := db.RegisterProvider(p); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if _, err := db.Insert("t", name, relational.Row{
					relational.Text(name), relational.Float(float64(i)),
				}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := db.SetPolicy(mkPolicy(privacy.Level(1 + i%2))); err != nil {
				t.Errorf("setpolicy: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := db.QueryEnforced(EnforcedQuery{
					Requester: "nurse", Purpose: "care", Visibility: 1,
					SQL: "SELECT provider, weight FROM t", Explain: i%2 == 0,
				})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if res.Stats.RowsReturned > res.Stats.RowsScanned {
					t.Errorf("impossible stats: %+v", res.Stats)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQueryEnforcedCatalogError pins the server-fault path: a registered
// table whose provider column no longer resolves is a store invariant
// break, surfaced as *CatalogError (→ HTTP 500), never as a request error.
func TestQueryEnforcedCatalogError(t *testing.T) {
	db, _ := enforcedDB(t)
	db.tables["patients"].providerCol = "vanished"
	_, err := db.QueryEnforced(EnforcedQuery{
		Requester: "nurse", Purpose: "care", Visibility: 2,
		SQL: "SELECT patient FROM patients",
	})
	var cat *CatalogError
	if !errors.As(err, &cat) {
		t.Fatalf("err = %T %v, want *CatalogError", err, err)
	}
	if !strings.Contains(err.Error(), "vanished") {
		t.Fatalf("error should name the missing column: %v", err)
	}
}
