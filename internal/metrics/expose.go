package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Exposition: WritePrometheus renders the text format scrapers expect
// (version 0.0.4 — # HELP / # TYPE headers, histograms as cumulative
// _bucket{le=...} plus _sum/_count); WriteJSON renders the same snapshot
// as a JSON document for humans and tests. Both walk a point-in-time copy
// taken under the registry lock, so a scrape never blocks an Observe for
// longer than the copy.

// familySnapshot is the exposition view of one family.
type familySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []seriesSnapshot `json:"series"`
}

// seriesSnapshot is one labeled instrument. Exactly one of Value (counter
// and gauge) or Histogram is set.
type seriesSnapshot struct {
	Labels    []Label        `json:"labels,omitempty"`
	Value     *float64       `json:"value,omitempty"`
	Histogram *histogramJSON `json:"histogram,omitempty"`

	kind Kind
	hist *HistogramSnapshot
}

// histogramJSON is the JSON rendering of a histogram: cumulative bucket
// counts, with the +Inf bound spelled as a string ("+Inf" is not a JSON
// number).
type histogramJSON struct {
	Buckets []bucketJSON `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   uint64       `json:"count"`
}

type bucketJSON struct {
	LE         string `json:"le"`
	Cumulative uint64 `json:"count"`
}

// snapshot copies every family under the lock, sorted by family name then
// label string, so exposition is deterministic run to run.
func (r *Registry) snapshot() []familySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	type row struct {
		key string
		s   *series
	}
	rowsByFam := make(map[string][]row, len(fams))
	for _, f := range fams {
		rows := make([]row, 0, len(f.series))
		for k, s := range f.series {
			rows = append(rows, row{key: k, s: s})
		}
		rowsByFam[f.name] = rows
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]familySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := familySnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
		rows := rowsByFam[f.name]
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		for _, rw := range rows {
			ss := seriesSnapshot{Labels: rw.s.labels, kind: f.kind}
			switch f.kind {
			case KindCounter:
				v := float64(rw.s.counter.Value())
				ss.Value = &v
			case KindGauge:
				v := rw.s.gauge.Value()
				ss.Value = &v
			case KindHistogram:
				h := rw.s.hist.Snapshot()
				ss.hist = &h
				ss.Histogram = cumulate(&h)
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// cumulate converts a per-bucket snapshot to cumulative JSON buckets.
func cumulate(h *HistogramSnapshot) *histogramJSON {
	out := &histogramJSON{Sum: h.Sum, Count: h.Count}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatFloat(h.Bounds[i])
		}
		out.Buckets = append(out.Buckets, bucketJSON{LE: le, Cumulative: cum})
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, families sorted by name and series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshot() {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Series {
			if s.kind == KindHistogram {
				writePromHistogram(&b, f.Name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.Name, promLabels(s.Labels, "", ""), formatFloat(*s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative buckets with
// an le label appended to the series labels, then _sum and _count.
func writePromHistogram(b *strings.Builder, name string, s seriesSnapshot) {
	var cum uint64
	for i, c := range s.hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.hist.Bounds) {
			le = formatFloat(s.hist.Bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, promLabels(s.Labels, "", ""), formatFloat(s.hist.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(s.Labels, "", ""), s.hist.Count)
}

// promLabels renders {k="v",...}, appending an extra pair when extraK is
// non-empty (the histogram le label). Empty label sets render as nothing.
func promLabels(labels []Label, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q supplies the quote, backslash and newline escaping the
		// format requires.
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp keeps HELP text single-line.
func escapeHelp(h string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(h)
}

// formatFloat renders a float the shortest way that round-trips; integral
// values print without an exponent, +Inf as "+Inf".
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the registry as a JSON document: an array of families
// in the same order as the text exposition.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"families": r.snapshot()})
}

// Handler serves the registry over HTTP: Prometheus text by default, JSON
// when the request asks for it (?format=json or an Accept header naming
// application/json). GET only.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			//lint:ignore errflow an encode failure mid-scrape means the scraper hung up; the status line is gone
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore errflow a write failure mid-scrape means the scraper hung up; the status line is gone
		_ = r.WritePrometheus(w)
	})
}
