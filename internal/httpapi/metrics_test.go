package httpapi

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// scrape GETs /metrics and parses the Prometheus text into a map from
// sample key (name plus rendered labels) to value. Comment lines are
// skipped; histograms contribute their _bucket/_sum/_count samples.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndToEnd is the scrape acceptance test: a real server is
// driven through a success, a client error, a recovered panic and a shed
// request, and the /metrics exposition must account for all of them —
// request counters by route and class, the latency histogram, the
// shed/panic counters, and the paper's population gauges.
func TestMetricsEndToEnd(t *testing.T) {
	defer fault.Reset()
	var reqLog strings.Builder
	db := testServer(t).db
	srv, err := NewWith(db, Options{
		MaxInFlight: 1,
		Logger:      log.New(io.Discard, "", 0),
		RequestLog:  log.New(&reqLog, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := scrape(t, ts.URL)

	get := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// One success and one client error on the certify route.
	get("/certify?alpha=0.5", http.StatusOK)
	get("/certify?alpha=2", http.StatusBadRequest)

	// A recovered panic: 500, process keeps serving.
	fault.ArmPanic("httpapi.handler")
	get("/certify?alpha=0.5", http.StatusInternalServerError)
	fault.Reset()

	// A shed request: park a half-sent POST in the only slot, then poll
	// until a second request is refused with 503 (TestLoadShedding's
	// technique). Polled requests that got through count as 2xx.
	body := `{"purpose":"care","visibility":2,"sql":"SELECT weight FROM t"}`
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	shed := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(ts.URL + "/certify?alpha=0.5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			shed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !shed {
		t.Fatal("server never shed load")
	}
	// Release the parked request and wait for service to resume so every
	// in-flight request has finished before the final scrape.
	if _, err := io.WriteString(conn, body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		resp, err := http.Get(ts.URL + "/certify?alpha=0.5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never resumed after shed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	after := scrape(t, ts.URL)
	delta := func(key string) float64 { return after[key] - before[key] }

	// Exact deltas where the traffic is deterministic, lower bounds where
	// the poll loops add 2xx/5xx traffic of their own.
	if d := delta(`httpapi_requests_total{class="2xx",route="/v1/certify"}`); d < 2 {
		t.Errorf("2xx /certify moved %g, want >= 2", d)
	}
	if d := delta(`httpapi_requests_total{class="4xx",route="/v1/certify"}`); d != 1 {
		t.Errorf("4xx /certify moved %g, want 1", d)
	}
	if d := delta(`httpapi_requests_total{class="5xx",route="/v1/certify"}`); d < 2 {
		t.Errorf("5xx /certify moved %g, want >= 2 (one panic, one shed)", d)
	}
	if d := delta(`httpapi_requests_total{class="2xx",route="/v1/query"}`); d != 1 {
		t.Errorf("2xx /query moved %g, want 1 (the released parked request)", d)
	}
	if d := delta("httpapi_panics_total"); d != 1 {
		t.Errorf("panics moved %g, want 1", d)
	}
	if d := delta("httpapi_shed_total"); d < 1 {
		t.Errorf("sheds moved %g, want >= 1", d)
	}
	if got := after["httpapi_in_flight"]; got != 0 {
		t.Errorf("in-flight gauge = %g at quiescence, want 0", got)
	}

	// The latency histogram accounts for every measured /certify request:
	// its _count moves in lockstep with the route's request counters.
	certifyReqs := delta(`httpapi_requests_total{class="2xx",route="/v1/certify"}`) +
		delta(`httpapi_requests_total{class="4xx",route="/v1/certify"}`) +
		delta(`httpapi_requests_total{class="5xx",route="/v1/certify"}`)
	if d := delta(`httpapi_request_seconds_count{route="/v1/certify"}`); d != certifyReqs {
		t.Errorf("histogram count moved %g, request counters moved %g", d, certifyReqs)
	}
	if d := delta(`httpapi_request_seconds_bucket{route="/v1/certify",le="+Inf"}`); d != certifyReqs {
		t.Errorf("+Inf bucket moved %g, want %g", d, certifyReqs)
	}

	// The process-wide gauges ride along on the same exposition: the
	// paper's population quantities and the ledger/fault instrumentation.
	for _, name := range []string{"ppdb_providers", "ppdb_pw", "ppdb_pdefault", "ledger_rows"} {
		if _, ok := after[name]; !ok {
			t.Errorf("scrape is missing %s", name)
		}
	}
	if d := delta(`fault_trips_total{site="httpapi.handler"}`); d != 1 {
		t.Errorf("fault trips moved %g, want 1", d)
	}

	// The request log carries structured lines for the measured traffic —
	// including the shed 503 — but never for the scrape itself.
	logged := reqLog.String()
	if !strings.Contains(logged, `event=request method=GET path=/certify route=/v1/certify status=200`) {
		t.Errorf("request log missing the certify line:\n%s", logged)
	}
	if !strings.Contains(logged, "status=503") {
		t.Errorf("request log missing the shed line:\n%s", logged)
	}
	if strings.Contains(logged, "path=/metrics") {
		t.Errorf("scrapes must not be request-logged:\n%s", logged)
	}
}
