// Package floatcmpdata is a golden-file fixture for the floatcmp checker.
package floatcmpdata

// Severity mimics a named float type from the severity math.
type Severity float64

// EqualExact compares floats exactly: flagged.
func EqualExact(a, b float64) bool {
	return a == b // want "float comparison"
}

// NotEqualNamed compares named-float values exactly: flagged.
func NotEqualNamed(a, b Severity) bool {
	return a != b // want "float comparison"
}

// SwitchOnFloat switches on a float tag: flagged.
func SwitchOnFloat(x float64) string {
	switch x { // want "switch on float"
	case 0:
		return "zero"
	default:
		return "nonzero"
	}
}

// IntsAreFine compares integers: no finding.
func IntsAreFine(a, b int) bool { return a == b }

// OrderedIsFine uses <: no finding.
func OrderedIsFine(a, b float64) bool { return a < b }

// DeliberateExact documents an intentional exact comparison.
func DeliberateExact(x float64) bool {
	//lint:ignore floatcmp fixture: sentinel zero is assigned, never computed
	return x == 0
}
