// Package enumswitchdata is a golden-file fixture for the enumswitch
// checker.
package enumswitchdata

// Color is an iota enum with three members.
type Color int

// Color members.
const (
	Red Color = iota
	Green
	Blue
)

// Partial misses Blue and has no default: flagged.
func Partial(c Color) string {
	switch c { // want "missing Blue"
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// Exhaustive covers every member: no finding.
func Exhaustive(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return "?"
}

// Defaulted is partial but has a default: no finding.
func Defaulted(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

// Deliberate documents an intentionally partial switch.
func Deliberate(c Color) bool {
	//lint:ignore enumswitch fixture: only Red matters to this predicate
	switch c {
	case Red:
		return true
	}
	return false
}

// single has one constant: not an enum, never flagged.
type single int

// Only is single's sole member.
const Only single = 0

// NotAnEnum switches over a one-constant type: no finding.
func NotAnEnum(s single) bool {
	switch s {
	case Only:
		return true
	}
	return false
}
