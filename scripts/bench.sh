#!/bin/sh
# Certification benchmark harness: runs the certification benches
# (BenchmarkCertifyCold / BenchmarkCertifyIncremental /
# BenchmarkCertifySummary), the sharding benches
# (BenchmarkCertifyColdShards / BenchmarkBulkIngestShards, one sub-bench
# per shard count — see bench_test.go) and the durable-ingest benches
# (BenchmarkIngestDurable, one sub-bench per WAL group-commit mode), the
# enforced-query benches (BenchmarkQueryEnforced, clean vs violating
# populations at 10k/100k rows), the what-if storm benches
# (BenchmarkWhatIfStorm, narrow vs full diff over 100k providers) and
# records ns/op and allocs/op
# plus the cold→incremental speedup per population size into
# BENCH_certify.json at the repo root. Wired as `make bench`; not part of
# `make check`.
#
# BENCH_PATTERN restricts the run to a subset (e.g. `make bench-shards`
# sets '^Benchmark(CertifyColdShards|BulkIngestShards)'); entries already
# in BENCH_certify.json whose benchmarks were not re-run are carried over,
# so a partial run never loses the rest of the baseline.
#
# BENCHTIME overrides -benchtime (e.g. BENCHTIME=10x for a quick smoke run).
set -eu

cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-^Benchmark(Certify(Cold|ColdShards|Incremental|Summary)|BulkIngestShards|IngestDurable|QueryEnforced|WhatIfStorm)}"
out=$(go test -run '^$' -bench "$pattern" \
	-benchtime "${BENCHTIME:-1s}" -benchmem -timeout 30m .)
printf '%s\n' "$out"

# Merge: previous baseline entries first (in their recorded order), then
# fresh results override matching names and append new ones. The trailing
# `echo` guarantees the baseline stream is never empty, so awk's NR==FNR
# first-file detection stays sound.
prev=$(mktemp)
{ cat BENCH_certify.json 2>/dev/null || true; echo; } > "$prev"

printf '%s\n' "$out" | awk '
NR == FNR {
	# Baseline lines look like
	# {"name": "BenchmarkCertifyCold/1k", "ns_per_op": 2778438, "allocs_per_op": 12},
	# (allocs_per_op is absent in pre-columnar baselines and carried as such).
	if (match($0, /"name": "[^"]+"/)) {
		name = substr($0, RSTART + 9, RLENGTH - 10)
		if (match($0, /"ns_per_op": [0-9.]+/)) {
			if (!(name in vals)) names[++n] = name
			vals[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
			if (match($0, /"allocs_per_op": [0-9.]+/))
				allocs[name] = substr($0, RSTART + 17, RLENGTH - 17) + 0
		}
	}
	next
}
/^Benchmark(Certify|BulkIngest|Ingest|Query|WhatIf)/ {
	# -benchmem lines: name iters ns/op-value "ns/op" B-value "B/op"
	# allocs-value "allocs/op".
	name = $1; sub(/-[0-9]+$/, "", name)
	if (!(name in vals)) names[++n] = name
	vals[name] = $3
	if (NF >= 7 && $8 == "allocs/op") allocs[name] = $7
}
END {
	printf "{\n  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", names[i], vals[names[i]]
		if (names[i] in allocs)
			printf ", \"allocs_per_op\": %s", allocs[names[i]]
		printf "}%s\n", (i < n ? "," : "")
	}
	printf "  ],\n  \"speedup_cold_over_incremental\": {"
	sep = ""
	for (i = 1; i <= n; i++) {
		if (names[i] ~ /Cold\//) {
			size = names[i]; sub(/.*\//, "", size)
			inc = "BenchmarkCertifyIncremental/" size
			if (inc in vals && vals[inc] + 0 > 0) {
				printf "%s\"%s\": %.2f", sep, size, vals[names[i]] / vals[inc]
				sep = ", "
			}
		}
	}
	printf "}\n}\n"
}' "$prev" - > BENCH_certify.json
rm -f "$prev"

echo "wrote BENCH_certify.json"
