// Package fanoutdata is the fanout checker fixture: loop-variable capture
// in goroutines, unsynchronized shared writes in concurrent closures,
// fire-and-forget goroutines, and the sanctioned counterparts (explicit
// parameters, per-index slots, mutexes, channel joins).
package fanoutdata

import "sync"

// FanOut mimics the repo's fork-join combinator; any callee named FanOut
// is treated as running its function-literal arguments concurrently.
func FanOut(n, workers int, f func(int)) {
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

func work() int { return 1 }

func use(int) {}

// Captures reads the loop variable inside the goroutine body instead of
// passing it as an argument.
func Captures(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(items[i]) // want "captures loop variable i"
		}()
	}
	wg.Wait()
}

// Parametrized passes the loop variable explicitly: no finding.
func Parametrized(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			use(items[j])
		}(i)
	}
	wg.Wait()
}

// SharedAppend grows a shared slice from concurrent workers.
func SharedAppend(keys []string) []int {
	var out []int
	FanOut(len(keys), 4, func(i int) {
		out = append(out, len(keys[i])) // want "writes shared variable out"
	})
	return out
}

// Indexed writes one slot per worker index: the sanctioned pattern, no
// finding.
func Indexed(keys []string) []int {
	out := make([]int, len(keys))
	FanOut(len(keys), 4, func(i int) {
		out[i] = len(keys[i])
	})
	return out
}

// Locked synchronizes the shared accumulator with a mutex: no finding.
func Locked(keys []string) int {
	var mu sync.Mutex
	total := 0
	FanOut(len(keys), 4, func(i int) {
		mu.Lock()
		total += len(keys[i])
		mu.Unlock()
	})
	return total
}

// FireAndForget spawns a goroutine nothing ever joins.
func FireAndForget() {
	go func() { // want "fire-and-forget goroutine"
		use(work())
	}()
}

// Joined signals completion over a channel: no finding.
func Joined() int {
	done := make(chan int, 1)
	go func() { done <- work() }()
	return <-done
}

// SuppressedLeak demonstrates lint:ignore on a deliberate detached
// goroutine.
func SuppressedLeak() {
	//lint:ignore fanout fixture: detached best-effort worker, loss is acceptable
	go func() {
		use(work())
	}()
}
