package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is a catalog of tables with a SQL entry point. All methods are
// safe for concurrent use.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable registers a new table.
func (db *Database) CreateTable(name string, schema *Schema) (*Table, error) {
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.Name()]; dup {
		return nil, fmt.Errorf("relational: table %q already exists", t.Name())
	}
	db.tables[t.Name()] = t
	return t, nil
}

// DropTable removes a table; missing tables are an error.
func (db *Database) DropTable(name string) error {
	name = strings.ToLower(strings.TrimSpace(name))
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("relational: table %q does not exist", name)
	}
	delete(db.tables, name)
	return nil
}

// Table looks up a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(strings.TrimSpace(name))]
	return t, ok
}

// TableNames returns the sorted catalog.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result is the outcome of a statement: a relation for SELECT, an affected
// row count for DML, both zero for DDL.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// Exec parses and executes one SQL statement.
func (db *Database) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStatement(st)
}

// MustExec is Exec that panics on error; for tests and fixtures.
func (db *Database) MustExec(sql string) *Result {
	r, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return r
}

// Query is Exec restricted to SELECT statements.
func (db *Database) Query(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT statement")
	}
	return db.execSelect(sel)
}

// ExecStatement executes a parsed statement.
func (db *Database) ExecStatement(st Statement) (*Result, error) {
	switch s := st.(type) {
	case CreateTableStmt:
		return db.execCreate(s)
	case DropTableStmt:
		return db.execDrop(s)
	case InsertStmt:
		return db.execInsert(s)
	case SelectStmt:
		return db.execSelect(s)
	case UpdateStmt:
		return db.execUpdate(s)
	case DeleteStmt:
		return db.execDelete(s)
	default:
		return nil, fmt.Errorf("relational: unsupported statement %T", st)
	}
}

func (db *Database) execCreate(s CreateTableStmt) (*Result, error) {
	schema, err := NewSchema(s.Cols)
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateTable(s.Name, schema); err != nil {
		if s.IfNotExists {
			if _, exists := db.Table(s.Name); exists {
				return &Result{}, nil
			}
		}
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execDrop(s DropTableStmt) (*Result, error) {
	if err := db.DropTable(s.Name); err != nil {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execInsert(s InsertStmt) (*Result, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("relational: table %q does not exist", s.Table)
	}
	schema := t.Schema()
	// Map statement columns to schema positions.
	targets := make([]int, 0, schema.Len())
	if len(s.Cols) == 0 {
		for i := 0; i < schema.Len(); i++ {
			targets = append(targets, i)
		}
	} else {
		for _, c := range s.Cols {
			i, ok := schema.ColumnIndex(c)
			if !ok {
				return nil, fmt.Errorf("relational: table %q has no column %q", s.Table, c)
			}
			targets = append(targets, i)
		}
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(targets) {
			return nil, fmt.Errorf("relational: INSERT row has %d values for %d columns", len(exprRow), len(targets))
		}
		row := make(Row, schema.Len())
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprRow {
			v, err := e.Eval(MapEnv{})
			if err != nil {
				return nil, err
			}
			row[targets[i]] = v
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *Database) execUpdate(s UpdateStmt) (*Result, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("relational: table %q does not exist", s.Table)
	}
	schema := t.Schema()
	type change struct {
		id  RowID
		row Row
	}
	if s.Where != nil {
		resolved, err := db.resolveSubqueries(s.Where)
		if err != nil {
			return nil, err
		}
		s.Where = resolved
	}
	var changes []change
	var evalErr error
	t.Scan(func(id RowID, row Row) bool {
		env := rowEnv(s.Table, schema, row)
		if s.Where != nil {
			ok, err := Truthy(s.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		updated := row.clone()
		for _, set := range s.Sets {
			ci, ok := schema.ColumnIndex(set.Col)
			if !ok {
				evalErr = fmt.Errorf("relational: table %q has no column %q", s.Table, set.Col)
				return false
			}
			v, err := set.Expr.Eval(env)
			if err != nil {
				evalErr = err
				return false
			}
			updated[ci] = v
		}
		changes = append(changes, change{id, updated})
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	for _, c := range changes {
		if err := t.Update(c.id, c.row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(changes)}, nil
}

func (db *Database) execDelete(s DeleteStmt) (*Result, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("relational: table %q does not exist", s.Table)
	}
	schema := t.Schema()
	if s.Where != nil {
		resolved, err := db.resolveSubqueries(s.Where)
		if err != nil {
			return nil, err
		}
		s.Where = resolved
	}
	var ids []RowID
	var evalErr error
	t.Scan(func(id RowID, row Row) bool {
		if s.Where != nil {
			ok, err := Truthy(s.Where, rowEnv(s.Table, schema, row))
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	for _, id := range ids {
		t.Delete(id)
	}
	return &Result{Affected: len(ids)}, nil
}

// rowEnv builds the evaluation environment for one row of one table: bare
// and alias-qualified column names.
func rowEnv(alias string, schema *Schema, row Row) MapEnv {
	env := make(MapEnv, schema.Len()*2)
	alias = strings.ToLower(alias)
	for i := 0; i < schema.Len(); i++ {
		name := schema.Column(i).Name
		env[name] = row[i]
		env[alias+"."+name] = row[i]
	}
	return env
}
