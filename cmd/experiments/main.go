// Command experiments regenerates the paper's tables and figures and the
// extended experiment suite defined in DESIGN.md. Each experiment prints an
// aligned text table; EXPERIMENTS.md records the canonical output.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1
//	experiments -run expansion -n 10000 -seed 2011
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table1, figure1, figure2, expansion, accumulation, estimator, alpha, baseline, ablations, all")
	n := flag.Int("n", 5000, "population size for population-scale experiments")
	seed := flag.Uint64("seed", 2011, "deterministic generator seed")
	steps := flag.Int("steps", 8, "widening steps for expansion-style experiments")
	k := flag.Int("k", 3, "k for the k-anonymity baseline release")
	flag.Parse()

	names := strings.Split(*run, ",")
	if *run == "all" {
		names = []string{"table1", "figure1", "figure2", "expansion", "accumulation", "estimator", "alpha", "baseline", "ablations", "game", "legacy", "xmlparity"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
			fmt.Println(strings.Repeat("=", 78))
			fmt.Println()
		}
		if err := runOne(strings.TrimSpace(name), *n, *seed, *steps, *k); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func runOne(name string, n int, seed uint64, steps, k int) error {
	w := os.Stdout
	switch name {
	case "table1":
		r := experiments.Table1()
		if err := r.Fprint(w); err != nil {
			return err
		}
		if !r.Matches() {
			return fmt.Errorf("reproduction DIVERGES from the paper")
		}
		fmt.Fprintln(w, "\nreproduction matches the paper: YES")
		return nil
	case "figure1":
		return experiments.FprintFigure1(w, experiments.Figure1())
	case "figure2":
		return experiments.Figure2(w)
	case "expansion":
		cfg := experiments.DefaultExpansionConfig()
		cfg.N, cfg.Seed, cfg.Steps = n, seed, steps
		r, err := experiments.Expansion(cfg)
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "accumulation":
		cfg := experiments.DefaultExpansionConfig()
		cfg.N, cfg.Seed, cfg.Steps = n, seed, steps
		r, err := experiments.Accumulation(cfg)
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "estimator":
		r, err := experiments.Estimator(n, seed, experiments.DefaultTrialCounts())
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "alpha":
		r, err := experiments.AlphaSweep(n, seed, steps, experiments.DefaultAlphas())
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "baseline":
		r, err := experiments.BaselineContrast(min(n, 1000), seed, k, steps)
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "ablations":
		r, err := experiments.Ablations(n, seed)
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "game":
		r, err := experiments.Game(min(n, 2000), seed, 2)
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "legacy":
		r, err := experiments.Legacy(n, seed, min(n/20+10, 500))
		if err != nil {
			return err
		}
		return r.Fprint(w)
	case "xmlparity":
		r, err := experiments.XMLParity(min(n, 2000), seed)
		if err != nil {
			return err
		}
		return r.Fprint(w)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
