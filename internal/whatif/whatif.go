// Package whatif is the online policy-expansion what-if engine (Secs. 9-10
// of the paper): it evaluates a candidate policy diff against a live
// provider population without mutating anything, and prices the change with
// the Sec. 9 utility calculus (break-even T, Eq. 31; the justification
// inequality, Eqs. 28-30).
//
// The package holds the wire contract shared by POST /v1/whatif
// (internal/httpapi) and the offline cmd/whatif CLI — Request, Diff and
// Response marshal identically on both paths, so the two surfaces cannot
// drift — plus the shadow-evaluation engine internal/ppdb drives:
//
//   - ApplyDiff compiles the candidate diff into a shadow policy and shadow
//     Σ vector, yielding the affected-attribute set;
//   - NewEngine builds a shadow core.Assessor carrying a shadow policy
//     version (live version with the high bit set — a namespace disjoint
//     from live versions, so shadow state can never be mistaken for, or
//     memoized as, a live ledger row);
//   - Evaluate fans out over immutable per-shard snapshots, re-assessing
//     only providers the diff can affect and reusing memoized live reports
//     for everyone else (see engine.go for the exactness rule).
//
// The engine is read-only by construction: it consumes snapshots and
// memo lookups and produces a Response. It never writes to a ledger, a
// store, or a WAL.
package whatif

import (
	"fmt"
	"math"
)

// Verdict values of Response.Verdict: the Eq. 28-31 utility classification
// of the candidate.
const (
	// VerdictFree: the candidate loses no providers (N_future ≥ N_current),
	// so the Eq. 31 break-even is ≤ 0 and any positive T pays.
	VerdictFree = "free"
	// VerdictJustified: providers are lost but the realized extra utility T
	// clears the break-even (Eq. 28: N_future(U+T) > N_current·U).
	VerdictJustified = "justified"
	// VerdictUnjustified: the loss is not paid for at the stated T.
	VerdictUnjustified = "unjustified"
)

// TupleSpec names one policy tuple with explicit levels — the wire form of
// a privacy.PolicyTuple for diff additions and retargets.
type TupleSpec struct {
	Attribute   string `json:"attribute"`
	Purpose     string `json:"purpose"`
	Visibility  int    `json:"visibility"`
	Granularity int    `json:"granularity"`
	Retention   int    `json:"retention"`
}

// TupleRef names one existing policy tuple by its (attribute, purpose)
// identity, for diff removals.
type TupleRef struct {
	Attribute string `json:"attribute"`
	Purpose   string `json:"purpose"`
}

// SensitivityChange overrides the house attribute sensitivity Σ^a (Eq. 10)
// for one attribute of the candidate policy.
type SensitivityChange struct {
	Attribute string  `json:"attribute"`
	Value     float64 `json:"value"`
}

// Diff is a candidate policy change expressed against the live policy:
// tuples to add, tuples to remove, tuples to retarget (same
// (attribute, purpose) identity, new levels), and house-sensitivity
// changes. An empty diff is rejected — there is nothing to evaluate.
type Diff struct {
	Add         []TupleSpec         `json:"add,omitempty"`
	Remove      []TupleRef          `json:"remove,omitempty"`
	Retarget    []TupleSpec         `json:"retarget,omitempty"`
	Sensitivity []SensitivityChange `json:"sensitivity,omitempty"`
}

// Empty reports whether the diff contains no change at all.
func (d *Diff) Empty() bool {
	return len(d.Add) == 0 && len(d.Remove) == 0 && len(d.Retarget) == 0 && len(d.Sensitivity) == 0
}

// Request is the POST /v1/whatif body (and the CLI's evaluation input): the
// candidate diff plus the Sec. 9 utility parameters.
type Request struct {
	// Name labels the candidate policy version in the response; empty means
	// the live policy name with a "+whatif" suffix.
	Name string `json:"name,omitempty"`
	// Diff is the candidate change. Must be non-empty.
	Diff Diff `json:"diff"`
	// U is the current per-provider utility (Eq. 25). Must be a finite
	// non-negative number.
	U float64 `json:"u"`
	// T is the realized extra per-provider utility the change would
	// generate (Eq. 27); the verdict compares it against the break-even
	// (Eq. 31). Must be finite.
	T float64 `json:"t"`
	// Detail asks for the per-segment default counts (Response.Segments).
	// Over HTTP this requires the operator privilege: segment counts
	// disclose how many providers hold preferences on each touched
	// attribute.
	Detail bool `json:"detail,omitempty"`
}

// Validate rejects malformed utility parameters. Diff structure is
// validated by ApplyDiff, which has the live policy to check against.
func (r *Request) Validate() error {
	if math.IsNaN(r.U) || math.IsInf(r.U, 0) || r.U < 0 {
		return fmt.Errorf("whatif: u %g must be a finite non-negative number", r.U)
	}
	if math.IsNaN(r.T) || math.IsInf(r.T, 0) {
		return fmt.Errorf("whatif: t %g must be a finite number", r.T)
	}
	if r.Diff.Empty() {
		return fmt.Errorf("whatif: empty diff: nothing to evaluate")
	}
	return nil
}

// Summary is the aggregate half of a population report on the wire: the
// paper's population quantities without per-provider rows.
type Summary struct {
	N               int     `json:"n"`
	ViolatedCount   int     `json:"violatedCount"`   // Σ_i w_i
	DefaultCount    int     `json:"defaultCount"`    // Σ_i default_i
	TotalViolations float64 `json:"totalViolations"` // Eq. 16
	PW              float64 `json:"pw"`              // Def. 2
	PDefault        float64 `json:"pDefault"`        // Def. 5
}

// Segment is one affected attribute's slice of the population: how many
// providers hold explicit preferences or sensitivities on it, and how many
// of those default under the live and candidate policies. Counts only —
// order-independent integers, never provider identities.
type Segment struct {
	Attribute        string `json:"attribute"`
	Providers        int    `json:"providers"`
	DefaultsCurrent  int    `json:"defaultsCurrent"`
	DefaultsProposed int    `json:"defaultsProposed"`
}

// Response is the what-if result: predicted population state under the
// candidate, the deltas, and the Sec. 9 economics.
type Response struct {
	// PolicyName and PolicyVersion identify the live policy the diff was
	// evaluated against; ProposedName labels the candidate.
	PolicyName    string `json:"policyName"`
	PolicyVersion uint64 `json:"policyVersion"`
	ProposedName  string `json:"proposedName"`
	// ShadowVersion is the candidate's shadow policy version: the live
	// version with the high bit set, a namespace no live version occupies.
	ShadowVersion uint64 `json:"shadowVersion"`

	Current  Summary `json:"current"`
	Proposed Summary `json:"proposed"`

	// DeltaPW and DeltaPDefault are proposed − current.
	DeltaPW       float64 `json:"deltaPW"`
	DeltaPDefault float64 `json:"deltaPDefault"`

	// NCurrent is the non-defaulting population now; NFuture the predicted
	// non-defaulting population under the candidate (Sec. 9's N_current and
	// N_future).
	NCurrent int `json:"nCurrent"`
	NFuture  int `json:"nFuture"`

	// U and T echo the request's utility parameters.
	U float64 `json:"u"`
	T float64 `json:"t"`
	// BreakEvenT is Eq. 31 for the predicted provider loss; omitted (null)
	// when no finite T pays — the candidate would default every provider.
	BreakEvenT *float64 `json:"breakEvenT,omitempty"`
	// Justified is Eq. 28 at the stated T; Verdict the three-way
	// classification (free / justified / unjustified).
	Justified bool   `json:"justified"`
	Verdict   string `json:"verdict"`

	// AffectedAttributes is the sorted attribute set the diff touches.
	// GlobalFallback reports that the engine could not prove unaffected
	// providers unchanged (the diff moves an attribute's implicit-zero
	// conflicts — see DESIGN.md §16) and re-assessed the whole population.
	AffectedAttributes []string `json:"affectedAttributes"`
	GlobalFallback     bool     `json:"globalFallback"`
	// Affected counts providers re-assessed under the shadow policy;
	// MemoReused counts providers whose live report was reused unchanged.
	// Affected + MemoReused = N.
	Affected   int `json:"affected"`
	MemoReused int `json:"memoReused"`

	// Segments carries the per-attribute default counts; only present when
	// the request asked for detail (operator-gated over HTTP).
	Segments []Segment `json:"segments,omitempty"`
}
