package privacy

import (
	"strings"
	"testing"
)

func testPrefs() *Prefs {
	p := NewPrefs("alice", 10)
	p.Add("Weight", Tuple{Purpose: "research", Visibility: 4, Granularity: 3, Retention: 5})
	p.Add("Age", Tuple{Purpose: "research", Visibility: 2, Granularity: 2, Retention: 2})
	p.SetSensitivity("weight", Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1})
	return p
}

func TestPrefsBasics(t *testing.T) {
	p := testPrefs()
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	attrs := p.Attributes()
	if len(attrs) != 2 || attrs[0] != "age" || attrs[1] != "weight" {
		t.Fatalf("Attributes = %v", attrs)
	}
	if got := p.ForAttribute("WEIGHT"); len(got) != 1 || got[0].Tuple.Granularity != 3 {
		t.Errorf("ForAttribute = %v", got)
	}
	if tp, ok := p.Find("age", "RESEARCH"); !ok || tp.Visibility != 2 {
		t.Errorf("Find = %v, %v", tp, ok)
	}
	if _, ok := p.Find("age", "marketing"); ok {
		t.Error("Find should miss")
	}
}

func TestSensitivityResolution(t *testing.T) {
	p := testPrefs()
	s := p.Sensitivity("weight", "research")
	if s.Granularity != 2 {
		t.Errorf("per-attribute default not used: %v", s)
	}
	// Per-purpose override wins.
	p.SetPurposeSensitivity("weight", "Marketing", Sensitivity{Value: 9, Visibility: 9, Granularity: 9, Retention: 9})
	if got := p.Sensitivity("weight", "marketing"); got.Value != 9 {
		t.Errorf("per-purpose override not used: %v", got)
	}
	if got := p.Sensitivity("weight", "research"); got.Value != 1 {
		t.Errorf("override leaked to other purposes: %v", got)
	}
	// Unknown attribute falls back to unit.
	if got := p.Sensitivity("shoe", "research"); got != UnitSensitivity {
		t.Errorf("unit fallback missing: %v", got)
	}
}

func TestEffectiveForImplicitZero(t *testing.T) {
	p := testPrefs()
	house := []Purpose{"research", "marketing"}
	eff := p.EffectiveFor("weight", house, nil, true)
	if len(eff) != 2 {
		t.Fatalf("EffectiveFor = %v, want explicit + implicit", eff)
	}
	var implicit *PrefTuple
	for i := range eff {
		if eff[i].Tuple.Purpose == "marketing" {
			implicit = &eff[i]
		}
	}
	if implicit == nil {
		t.Fatal("implicit zero tuple for marketing missing")
	}
	z := implicit.Tuple
	if z.Visibility != 0 || z.Granularity != 0 || z.Retention != 0 {
		t.Errorf("implicit tuple should be zero: %v", z)
	}
	// Disabled: only the explicit tuple remains.
	if got := p.EffectiveFor("weight", house, nil, false); len(got) != 1 {
		t.Errorf("implicitZero=false should return explicit only, got %v", got)
	}
}

func TestEffectiveForLatticeCoverage(t *testing.T) {
	p := NewPrefs("bob", 5)
	p.Add("x", Tuple{Purpose: "marketing", Visibility: 3, Granularity: 3, Retention: 3})
	l := NewLattice()
	if err := l.AddEdge("marketing", "email-marketing"); err != nil {
		t.Fatal(err)
	}
	// Under the lattice, the marketing preference covers email-marketing, so
	// no implicit zero is synthesized.
	eff := p.EffectiveFor("x", []Purpose{"email-marketing"}, l, true)
	if len(eff) != 1 || eff[0].Tuple.Purpose != "marketing" {
		t.Errorf("lattice coverage failed: %v", eff)
	}
	// Under equality, an implicit zero appears.
	eff = p.EffectiveFor("x", []Purpose{"email-marketing"}, nil, true)
	if len(eff) != 2 {
		t.Errorf("equality should synthesize implicit zero: %v", eff)
	}
}

func TestPrefsCloneIndependence(t *testing.T) {
	p := testPrefs()
	c := p.Clone("")
	if c.Provider != "alice" || c.Threshold != 10 {
		t.Fatalf("Clone identity wrong: %v", c)
	}
	c.Add("income", Tuple{Purpose: "billing", Visibility: 1})
	c.SetSensitivity("income", Sensitivity{Value: 5, Visibility: 1, Granularity: 1, Retention: 1})
	if p.Len() != 2 {
		t.Error("Clone must be independent")
	}
	if p.Sensitivity("income", "billing") != UnitSensitivity {
		t.Error("Clone sensitivity map must be independent")
	}
	if c2 := p.Clone("carol"); c2.Provider != "carol" {
		t.Error("Clone rename failed")
	}
}

func TestPrefsValidate(t *testing.T) {
	sc := DefaultScales()
	if err := testPrefs().Validate(sc); err != nil {
		t.Fatalf("valid prefs rejected: %v", err)
	}
	bad := NewPrefs("", 1)
	if err := bad.Validate(sc); err == nil {
		t.Error("empty provider should fail")
	}
	bad2 := NewPrefs("x", -1)
	if err := bad2.Validate(sc); err == nil {
		t.Error("negative threshold should fail")
	}
	bad3 := NewPrefs("x", 1)
	bad3.Add("a", Tuple{Purpose: "", Visibility: 1})
	if err := bad3.Validate(sc); err == nil {
		t.Error("empty purpose should fail")
	}
	bad4 := NewPrefs("x", 1)
	bad4.Add("a", Tuple{Purpose: "p", Visibility: 1})
	bad4.SetSensitivity("a", Sensitivity{Value: -1})
	if err := bad4.Validate(sc); err == nil {
		t.Error("negative sensitivity should fail")
	}
}

func TestSensitivityHelpers(t *testing.T) {
	s := Sensitivity{Value: 2, Visibility: 3, Granularity: 4, Retention: 5}
	if s.Dim(DimVisibility) != 3 || s.Dim(DimGranularity) != 4 || s.Dim(DimRetention) != 5 {
		t.Error("Dim wrong")
	}
	k := s.Scale(2)
	if k.Value != 4 || k.Retention != 10 {
		t.Errorf("Scale wrong: %v", k)
	}
	if !strings.Contains(s.String(), "2") {
		t.Errorf("String = %q", s.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("Dim(purpose) should panic")
		}
	}()
	s.Dim(DimPurpose)
}

func TestAttributeSensitivities(t *testing.T) {
	var nilAS AttributeSensitivities
	if nilAS.Get("x") != 1 {
		t.Error("nil map should default to 1")
	}
	as := AttributeSensitivities{}
	as.Set(" Weight ", 4)
	if as.Get("weight") != 4 || as.Get("WEIGHT") != 4 {
		t.Error("Set/Get should be case-insensitive")
	}
	if as.Get("unknown") != 1 {
		t.Error("unknown attribute should default to 1")
	}
	if err := as.Validate(); err != nil {
		t.Errorf("valid Σ rejected: %v", err)
	}
	as.Set("bad", -2)
	if err := as.Validate(); err == nil {
		t.Error("negative Σ should fail")
	}
}

func TestPrefsString(t *testing.T) {
	s := testPrefs().String()
	if !strings.Contains(s, "alice") || !strings.Contains(s, "weight") {
		t.Errorf("String = %q", s)
	}
}
