package ppdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/analysis/floatutil"
	"repro/internal/population"
	"repro/internal/privacy"
)

// equivGenerator builds a randomized provider population over two
// attributes for one seed.
func equivGenerator(t testing.TB, seed uint64) *population.Generator {
	t.Helper()
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// equivPolicy builds a house policy at one level over the two attributes.
func equivPolicy(name string, level privacy.Level) *privacy.HousePolicy {
	hp := privacy.NewHousePolicy(name)
	hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: level, Granularity: level, Retention: level})
	hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: level, Granularity: level, Retention: level})
	return hp
}

// mustJSON marshals a certification for byte-level comparison.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireCertEquiv asserts the ledger-backed Certify and the seed
// full-recompute CertifyFull produce byte-identical output — PW, PDefault,
// per-provider Violation_i rows and WouldDefault all included.
func requireCertEquiv(t *testing.T, db *DB, alpha float64, stage string) {
	t.Helper()
	inc, err := db.Certify(alpha)
	if err != nil {
		t.Fatalf("%s: Certify: %v", stage, err)
	}
	full, err := db.CertifyFull(alpha)
	if err != nil {
		t.Fatalf("%s: CertifyFull: %v", stage, err)
	}
	a, b := mustJSON(t, inc), mustJSON(t, full)
	if !bytes.Equal(a, b) {
		t.Errorf("%s: ledger certification diverges from full recompute\nledger: %.300s\nfull:   %.300s", stage, a, b)
	}
	// The O(1) summary must agree with the report on every exact quantity;
	// its running float total is allowed last-ulp drift.
	sum, err := db.CertifySummary(alpha)
	if err != nil {
		t.Fatalf("%s: CertifySummary: %v", stage, err)
	}
	rep := full.Report
	if sum.N != rep.N || sum.ViolatedCount != rep.ViolatedCount || sum.DefaultCount != rep.DefaultCount ||
		!floatutil.Eq(sum.PW, rep.PW) || !floatutil.Eq(sum.PDefault, rep.PDefault) ||
		sum.IsAlphaPPDB != full.IsAlphaPPDB {
		t.Errorf("%s: summary %+v disagrees with report N=%d violated=%d defaulted=%d PW=%g",
			stage, sum, rep.N, rep.ViolatedCount, rep.DefaultCount, rep.PW)
	}
	if !floatutil.Eq(sum.TotalViolations, rep.TotalViolations) {
		t.Errorf("%s: summary total %g drifted beyond tolerance from %g", stage, sum.TotalViolations, rep.TotalViolations)
	}
}

// TestLedgerCertifyEquivalence drives randomized populations through the
// full mutation surface — bulk registration, single registrations,
// self-service edits, removals, policy swaps, default enforcement — and
// requires the incremental certification to stay byte-identical to the
// full recompute at every step.
func TestLedgerCertifyEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 42, 2011} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			gen := equivGenerator(t, seed)
			pop := population.PrefsOf(gen.Generate(300))
			db, err := New(Config{Policy: equivPolicy("v1", 2), AttrSens: gen.AttributeSensitivities()})
			if err != nil {
				t.Fatal(err)
			}
			// Bulk cold build.
			if err := db.RegisterProviders(pop[:250]); err != nil {
				t.Fatal(err)
			}
			// Serial incremental adds.
			for _, p := range pop[250:] {
				if err := db.RegisterProvider(p); err != nil {
					t.Fatal(err)
				}
			}
			requireCertEquiv(t, db, 0.25, "after registration")

			// Self-service edits: a different generator seed produces new
			// tuples for the same provider names.
			edits := population.PrefsOf(equivGenerator(t, seed+7000).Generate(300))
			for i, p := range edits {
				if i%5 != 0 {
					continue
				}
				if err := db.UpdatePreferences(p.Provider, p); err != nil {
					t.Fatal(err)
				}
			}
			requireCertEquiv(t, db, 0.25, "after preference edits")

			// Removals.
			for i, p := range pop {
				if i%17 == 0 {
					if _, err := db.RemoveProvider(p.Provider); err != nil {
						t.Fatal(err)
					}
				}
			}
			requireCertEquiv(t, db, 0.25, "after removals")

			// Policy swap: the Sec. 9 what-if, a cold parallel rebuild.
			change, err := db.SetPolicy(equivPolicy("v2", 3))
			if err != nil {
				t.Fatal(err)
			}
			if change.DeltaPW < 0 {
				t.Errorf("widening the policy should not lower P(W): ΔPW = %g", change.DeltaPW)
			}
			requireCertEquiv(t, db, 0.25, "after policy swap")

			// Default enforcement shrinks the population.
			if _, _, err := db.EnforceDefaults(); err != nil {
				t.Fatal(err)
			}
			requireCertEquiv(t, db, 0.25, "after default enforcement")
		})
	}
}

// TestLedgerPolicyDeltaMatchesFallback pins SetPolicy's what-if deltas on
// the ledger path to the full-recompute path of a ledger-disabled twin.
func TestLedgerPolicyDeltaMatchesFallback(t *testing.T) {
	gen := equivGenerator(t, 99)
	pop := population.PrefsOf(gen.Generate(120))
	mk := func(disable bool) *DB {
		db, err := New(Config{
			Policy:             equivPolicy("v1", 2),
			AttrSens:           gen.AttributeSensitivities(),
			DisableIncremental: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.RegisterProviders(pop); err != nil {
			t.Fatal(err)
		}
		return db
	}
	ledgered, fallback := mk(false), mk(true)
	c1, err := ledgered.SetPolicy(equivPolicy("v2", 3))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := fallback.SetPolicy(equivPolicy("v2", 3))
	if err != nil {
		t.Fatal(err)
	}
	if !floatutil.Eq(c1.DeltaPW, c2.DeltaPW) || !floatutil.Eq(c1.DeltaPDefault, c2.DeltaPDefault) {
		t.Errorf("policy-change deltas disagree: ledger %+v vs fallback %+v", c1, c2)
	}
	// And the disabled-ledger DB must still certify correctly via the
	// fallback (Certify == CertifyFull trivially).
	inc, err := fallback.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fallback.CertifyFull(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, inc), mustJSON(t, full)) {
		t.Error("disabled-ledger Certify must equal CertifyFull")
	}
}
