package privacy

import (
	"strings"
	"testing"
)

func testPolicy() *HousePolicy {
	hp := NewHousePolicy("v1")
	hp.Add("Weight", Tuple{Purpose: "research", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("Weight", Tuple{Purpose: "marketing", Visibility: 3, Granularity: 3, Retention: 4})
	hp.Add("Age", Tuple{Purpose: "research", Visibility: 2, Granularity: 1, Retention: 2})
	return hp
}

func TestHousePolicyBasics(t *testing.T) {
	hp := testPolicy()
	if hp.Len() != 3 {
		t.Fatalf("Len = %d", hp.Len())
	}
	attrs := hp.Attributes()
	if len(attrs) != 2 || attrs[0] != "age" || attrs[1] != "weight" {
		t.Fatalf("Attributes = %v", attrs)
	}
	w := hp.ForAttribute("WEIGHT") // case-insensitive (Eq. 4 extraction)
	if len(w) != 2 {
		t.Fatalf("ForAttribute(weight) = %v", w)
	}
	if tp, ok := hp.Find("weight", "Marketing"); !ok || tp.Retention != 4 {
		t.Errorf("Find(weight, marketing) = %v, %v", tp, ok)
	}
	if _, ok := hp.Find("weight", "care"); ok {
		t.Error("Find should miss for unknown purpose")
	}
	if _, ok := hp.Find("height", "research"); ok {
		t.Error("Find should miss for unknown attribute")
	}
}

func TestHousePolicyPurposes(t *testing.T) {
	hp := testPolicy()
	ps := hp.Purposes()
	if len(ps) != 2 || ps[0] != "marketing" || ps[1] != "research" {
		t.Errorf("Purposes = %v", ps)
	}
	pw := hp.PurposesFor("weight")
	if len(pw) != 2 {
		t.Errorf("PurposesFor(weight) = %v", pw)
	}
	pa := hp.PurposesFor("age")
	if len(pa) != 1 || pa[0] != "research" {
		t.Errorf("PurposesFor(age) = %v", pa)
	}
}

func TestAddUnique(t *testing.T) {
	hp := NewHousePolicy("v1")
	if err := hp.AddUnique("a", Tuple{Purpose: "p", Visibility: 1}); err != nil {
		t.Fatalf("first AddUnique: %v", err)
	}
	if err := hp.AddUnique("A", Tuple{Purpose: " P ", Visibility: 2}); err == nil {
		t.Error("duplicate (attr, purpose) should be rejected")
	}
	if err := hp.AddUnique("a", Tuple{Purpose: "q", Visibility: 1}); err != nil {
		t.Errorf("different purpose should be allowed: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	hp := testPolicy()
	cp := hp.Clone("v2")
	cp.Add("income", Tuple{Purpose: "billing", Visibility: 1})
	if hp.Len() != 3 || cp.Len() != 4 {
		t.Error("Clone must be independent")
	}
	if !hp.Equal(hp.Clone("any")) {
		t.Error("clone should Equal the original")
	}
	if hp.Equal(cp) {
		t.Error("modified clone should not Equal the original")
	}
}

func TestWiden(t *testing.T) {
	hp := testPolicy()
	w := hp.Widen("v2", "weight", DimGranularity, 1)
	// Both weight tuples widened, age untouched.
	for _, e := range w.ForAttribute("weight") {
		orig, _ := hp.Find("weight", e.Tuple.Purpose)
		if e.Tuple.Granularity != orig.Granularity+1 {
			t.Errorf("weight %s granularity = %d, want %d", e.Tuple.Purpose, e.Tuple.Granularity, orig.Granularity+1)
		}
	}
	a, _ := w.Find("age", "research")
	if a.Granularity != 1 {
		t.Errorf("age should be untouched, got %v", a)
	}
	if hp.Len() != w.Len() {
		t.Error("Widen must preserve tuple count")
	}

	all := hp.WidenAll("v3", DimRetention, 1)
	for _, e := range all.Entries() {
		orig, _ := hp.Find(e.Attribute, e.Tuple.Purpose)
		if e.Tuple.Retention != orig.Retention+1 {
			t.Errorf("WidenAll retention wrong for %s/%s", e.Attribute, e.Tuple.Purpose)
		}
	}
}

func TestAddPurposeExpansion(t *testing.T) {
	hp := testPolicy()
	exp := hp.AddPurpose("v2", "age", Tuple{Purpose: "marketing", Visibility: 3, Granularity: 2, Retention: 3})
	if exp.Len() != hp.Len()+1 {
		t.Fatalf("AddPurpose should add one tuple")
	}
	if _, ok := exp.Find("age", "marketing"); !ok {
		t.Error("new purpose tuple missing")
	}
}

func TestPolicyValidate(t *testing.T) {
	sc := DefaultScales()
	if err := testPolicy().Validate(sc); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	bad := NewHousePolicy("bad")
	bad.Add("a", Tuple{Purpose: "", Visibility: 1})
	if err := bad.Validate(sc); err == nil {
		t.Error("empty purpose should fail validation")
	}
	bad2 := NewHousePolicy("bad2")
	bad2.Add("a", Tuple{Purpose: "p", Visibility: 99})
	if err := bad2.Validate(sc); err == nil {
		t.Error("off-scale level should fail validation")
	}
}

func TestPolicyEqualMultiset(t *testing.T) {
	a := NewHousePolicy("a")
	a.Add("x", Tuple{Purpose: "p", Visibility: 1})
	a.Add("x", Tuple{Purpose: "p", Visibility: 1})
	b := NewHousePolicy("b")
	b.Add("x", Tuple{Purpose: "p", Visibility: 1})
	if a.Equal(b) {
		t.Error("different multiplicities should not be Equal")
	}
	b.Add("x", Tuple{Purpose: "p", Visibility: 1})
	if !a.Equal(b) {
		t.Error("same multisets should be Equal")
	}
}

func TestPolicyString(t *testing.T) {
	s := testPolicy().String()
	if !strings.Contains(s, "v1") || !strings.Contains(s, "weight") || !strings.Contains(s, "age") {
		t.Errorf("String = %q", s)
	}
}

func TestEntriesCopy(t *testing.T) {
	hp := testPolicy()
	es := hp.Entries()
	es[0].Attribute = "mutated"
	if hp.Entries()[0].Attribute == "mutated" {
		t.Error("Entries must return a copy")
	}
}
