package policydsl_test

import (
	"fmt"

	"repro/internal/policydsl"
)

// ExampleParse shows a minimal corpus: one policy tuple and one provider.
func ExampleParse() {
	doc, err := policydsl.Parse(`
policy "v1" {
  attr weight {
    tuple purpose=research visibility=house granularity=partial retention=month
  }
  sensitivity weight 4
}

provider "bob" threshold 20 {
  attr weight {
    sens value=3 v=1 g=4 r=2
    tuple purpose=research visibility=house granularity=existential retention=month
  }
}
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tup, _ := doc.Policy.Find("weight", "research")
	fmt.Printf("policy %s grants %s\n", doc.Policy.Name, tup)
	fmt.Printf("Σ^weight = %g, providers = %d\n", doc.AttrSens.Get("weight"), len(doc.Providers))
	// Output:
	// policy v1 grants <research, v=2, g=2, r=3>
	// Σ^weight = 4, providers = 1
}

// ExampleRender shows the round-trip property: parsed documents render back
// to equivalent DSL text.
func ExampleRender() {
	doc, _ := policydsl.Parse(`policy "v1" {
  attr age { tuple purpose=care visibility=owner granularity=specific retention=year }
}`)
	text := policydsl.Render(doc)
	doc2, err := policydsl.Parse(text)
	fmt.Println("re-parse error:", err)
	fmt.Println("equal:", doc.Policy.Equal(doc2.Policy))
	// Output:
	// re-parse error: <nil>
	// equal: true
}
