package ppdb

import (
	"strings"
	"testing"

	"repro/internal/privacy"
	"repro/internal/relational"
)

func TestAuditByPurpose(t *testing.T) {
	db := clinicDB(t)
	db.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "SELECT weight FROM patients"})
	db.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "SELECT age FROM patients"})
	db.Query(AccessRequest{Purpose: "marketing", Visibility: 2, SQL: "SELECT weight FROM patients"})
	byP := db.Audit().ByPurpose()
	if byP["care"] != 2 || byP["marketing"] != 1 {
		t.Errorf("ByPurpose = %v", byP)
	}
}

func TestProvidersListing(t *testing.T) {
	db := clinicDB(t)
	ps := db.Providers()
	if len(ps) != 2 {
		t.Fatalf("providers = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Provider] = true
	}
	if !names["alice"] || !names["bob"] {
		t.Errorf("names = %v", names)
	}
}

// TestSuppressOnlyFallback exercises the default hierarchy for attributes
// without a registered one: partial granularity suppresses entirely.
func TestSuppressOnlyFallback(t *testing.T) {
	hp := privacy.NewHousePolicy("p")
	hp.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("note", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 1, Retention: 4})
	db, err := New(Config{Policy: hp}) // no hierarchies registered
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "note", Type: relational.TypeText},
	})
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		t.Fatal(err)
	}
	p := privacy.NewPrefs("a", 10)
	db.RegisterProvider(p)
	db.Insert("t", "a", relational.Row{relational.Text("a"), relational.Text("secret details")})

	res, err := db.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "SELECT note FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Display() != "*" {
		t.Errorf("note = %q, want suppressed", res.Rows[0][0].Display())
	}
	// NULL passes through the suppressor.
	db2, _ := New(Config{Policy: hp})
	db2.RegisterTable("t", schema, "provider")
	db2.RegisterProvider(p.Clone(""))
	db2.Insert("t", "a", relational.Row{relational.Text("a"), relational.Null()})
	res, err = db2.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "SELECT note FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("NULL should survive suppression: %v", res.Rows[0][0])
	}
}

// TestHierarchyLevelMapping pins the policy-granularity → hierarchy-level
// conversion at the scale edges.
func TestHierarchyLevelMapping(t *testing.T) {
	db := clinicDB(t) // weight hierarchy has 4 levels (0..3)
	// Full granularity (scale max 3) → level 0 (exact).
	if lv := db.hierarchyLevel("weight", 3); lv != 0 {
		t.Errorf("g=3 → %d, want 0", lv)
	}
	// Zero granularity → full suppression (hierarchy max).
	if lv := db.hierarchyLevel("weight", 0); lv != db.hierarchyFor("weight").Levels()-1 {
		t.Errorf("g=0 → %d, want max", lv)
	}
	// Intermediate levels are monotone: coarser policy ⇒ deeper level.
	prev := db.hierarchyLevel("weight", 3)
	for g := privacy.Level(2); g >= 0; g-- {
		lv := db.hierarchyLevel("weight", g)
		if lv < prev {
			t.Errorf("hierarchy level decreased at g=%d", g)
		}
		prev = lv
	}
}

// TestQueryGroupedAggregatesGated verifies that aggregates over gated
// attributes are policy-checked (the Agg walk of referencedAttributes).
func TestQueryGroupedAggregatesGated(t *testing.T) {
	db := clinicDB(t)
	// AVG(weight) for research is allowed (weight has a research tuple)…
	if _, err := db.Query(AccessRequest{
		Purpose: "research", Visibility: 3,
		SQL: "SELECT AVG(weight) FROM patients",
	}); err != nil {
		t.Errorf("research aggregate should pass: %v", err)
	}
	// …but AVG(age) is not (no research tuple on age).
	if _, err := db.Query(AccessRequest{
		Purpose: "research", Visibility: 3,
		SQL: "SELECT AVG(age) FROM patients",
	}); err == nil {
		t.Error("aggregate over ungoverned attribute must be denied")
	}
	// ORDER BY and GROUP BY references are gated too.
	if _, err := db.Query(AccessRequest{
		Purpose: "research", Visibility: 3,
		SQL: "SELECT weight FROM patients ORDER BY age",
	}); err == nil {
		t.Error("ORDER BY attribute must be gated")
	}
	if _, err := db.Query(AccessRequest{
		Purpose: "research", Visibility: 3,
		SQL: "SELECT COUNT(*) FROM patients GROUP BY age",
	}); err == nil {
		t.Error("GROUP BY attribute must be gated")
	}
}

func TestDeniedErrorMessage(t *testing.T) {
	err := &DeniedError{Attribute: "weight", Reason: "because"}
	if !strings.Contains(err.Error(), "weight") || !strings.Contains(err.Error(), "because") {
		t.Errorf("message = %q", err.Error())
	}
}
