#!/bin/sh
# CI gate: the full `make check` chain (gofmt, go vet, ppdblint, build,
# tests), the fault-injection/crash-matrix suite, and a race pass over the
# concurrency-bearing packages — the PPDB prototype, the relational engine,
# the ledger, the fault registry (global armed-site state hit from request
# goroutines) and the hardened HTTP layer (in-flight semaphore, readiness
# flag).
set -eu

cd "$(dirname "$0")/.."

make check
make faults
go test -race ./internal/ledger/... ./internal/ppdb/... ./internal/relational/... \
	./internal/fault/... ./internal/httpapi/...
