package privacy

import (
	"strings"
	"testing"
)

func TestDimensionString(t *testing.T) {
	cases := map[Dimension]string{
		DimPurpose:     "purpose",
		DimVisibility:  "visibility",
		DimGranularity: "granularity",
		DimRetention:   "retention",
		Dimension(42):  "dimension(42)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dimension(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestParseDimension(t *testing.T) {
	ok := map[string]Dimension{
		"purpose": DimPurpose, "Pr": DimPurpose, "p": DimPurpose,
		"visibility": DimVisibility, "V": DimVisibility,
		"granularity": DimGranularity, "g": DimGranularity,
		"RETENTION": DimRetention, "r": DimRetention,
		"  retention  ": DimRetention,
	}
	for in, want := range ok {
		got, err := ParseDimension(in)
		if err != nil {
			t.Errorf("ParseDimension(%q) unexpected error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseDimension(%q) = %s, want %s", in, got, want)
		}
	}
	for _, bad := range []string{"", "purp", "xyz", "vg"} {
		if _, err := ParseDimension(bad); err == nil {
			t.Errorf("ParseDimension(%q) should fail", bad)
		}
	}
}

func TestNewScale(t *testing.T) {
	s, err := NewScale(DimVisibility, "none", "owner", "house")
	if err != nil {
		t.Fatalf("NewScale: %v", err)
	}
	if s.Len() != 3 || s.Max() != 2 || s.Dimension() != DimVisibility {
		t.Fatalf("scale basics wrong: len=%d max=%d dim=%s", s.Len(), s.Max(), s.Dimension())
	}
	if l, ok := s.Level("OWNER"); !ok || l != 1 {
		t.Errorf("Level(OWNER) = %d,%v want 1,true", l, ok)
	}
	if _, ok := s.Level("world"); ok {
		t.Errorf("Level(world) should be absent")
	}
	if s.Name(2) != "house" {
		t.Errorf("Name(2) = %q", s.Name(2))
	}
	if got := s.Name(99); !strings.Contains(got, "99") {
		t.Errorf("Name(99) = %q, want placeholder", got)
	}
	if !s.Contains(0) || s.Contains(3) || s.Contains(-1) {
		t.Errorf("Contains wrong")
	}
}

func TestNewScaleErrors(t *testing.T) {
	if _, err := NewScale(DimPurpose, "a"); err == nil {
		t.Error("purpose scale should be rejected")
	}
	if _, err := NewScale(DimVisibility); err == nil {
		t.Error("empty scale should be rejected")
	}
	if _, err := NewScale(DimVisibility, "a", ""); err == nil {
		t.Error("empty level name should be rejected")
	}
	if _, err := NewScale(DimVisibility, "a", "A"); err == nil {
		t.Error("duplicate (case-insensitive) level name should be rejected")
	}
}

func TestMustScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustScale should panic on invalid input")
		}
	}()
	MustScale(DimPurpose, "x")
}

func TestScaleNamesCopy(t *testing.T) {
	s := MustScale(DimRetention, "none", "short")
	names := s.Names()
	names[0] = "mutated"
	if s.Name(0) != "none" {
		t.Error("Names() must return a copy")
	}
}

func TestDefaultScales(t *testing.T) {
	sc := DefaultScales()
	if err := sc.Validate(); err != nil {
		t.Fatalf("default scales invalid: %v", err)
	}
	if sc.For(DimVisibility) != DefaultVisibility ||
		sc.For(DimGranularity) != DefaultGranularity ||
		sc.For(DimRetention) != DefaultRetention {
		t.Error("Scales.For returns wrong scale")
	}
	if sc.For(DimPurpose) != nil {
		t.Error("Scales.For(purpose) should be nil")
	}
	// Canonical scale shapes the rest of the repo depends on.
	if DefaultVisibility.Len() != 5 || DefaultGranularity.Len() != 4 || DefaultRetention.Len() != 6 {
		t.Errorf("default scale lengths changed: v=%d g=%d r=%d",
			DefaultVisibility.Len(), DefaultGranularity.Len(), DefaultRetention.Len())
	}
}

func TestScalesValidateMissing(t *testing.T) {
	sc := DefaultScales()
	sc.Granularity = nil
	if err := sc.Validate(); err == nil {
		t.Error("missing scale should fail validation")
	}
	sc = DefaultScales()
	sc.Granularity = DefaultVisibility // wrong dimension attached
	if err := sc.Validate(); err == nil {
		t.Error("mismatched scale dimension should fail validation")
	}
}
