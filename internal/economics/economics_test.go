package economics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
)

func TestBreakEvenT(t *testing.T) {
	// Eq. 31: T > U (Ncur/Nfut − 1). U=10, 100→80 providers: T > 2.5.
	if got := BreakEvenT(10, 100, 80); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("BreakEvenT = %g, want 2.5", got)
	}
	// No defaults: any positive T justifies.
	if got := BreakEvenT(10, 100, 100); got != 0 {
		t.Errorf("no-default break-even = %g, want 0", got)
	}
	// Everyone defaults.
	if got := BreakEvenT(10, 100, 0); !math.IsInf(got, 1) {
		t.Errorf("all-default break-even = %g, want +Inf", got)
	}
}

func TestJustified(t *testing.T) {
	// 80 × (10 + 3) = 1040 > 1000: justified.
	if !Justified(10, 3, 100, 80) {
		t.Error("T above break-even should justify")
	}
	// 80 × (10 + 2.5) = 1000, not strictly greater.
	if Justified(10, 2.5, 100, 80) {
		t.Error("T at break-even should not justify (strict inequality)")
	}
	if Justified(10, 1000, 100, 0) {
		t.Error("losing everyone is never justified")
	}
}

func TestUtility(t *testing.T) {
	if Utility(100, 10) != 1000 {
		t.Error("Utility wrong")
	}
}

// scenarioFixture builds a policy and a 3-provider population mirroring the
// paper's worked example so expansion effects are hand-checkable.
func scenarioFixture(t *testing.T) (*Scenario, []*privacy.Prefs) {
	t.Helper()
	const pr = privacy.Purpose("research")
	hp := privacy.NewHousePolicy("base")
	hp.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})

	sigma := privacy.AttributeSensitivities{}
	sigma.Set("weight", 4)

	mk := func(name string, g privacy.Level, thresh float64, sens privacy.Sensitivity) *privacy.Prefs {
		p := privacy.NewPrefs(name, thresh)
		p.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: g, Retention: 5})
		p.SetSensitivity("weight", sens)
		return p
	}
	// tolerant: bounds even a widened policy; tight: violated on first
	// granularity widening and defaults; medium: violated but stays.
	tolerant := mk("tolerant", 3, 1000, privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 1, Retention: 1})
	tight := mk("tight", 1, 10, privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 5, Retention: 2})
	medium := mk("medium", 1, 100, privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1})

	sc := &Scenario{BasePolicy: hp, AttrSens: sigma, BaseUtility: 10}
	return sc, []*privacy.Prefs{tolerant, tight, medium}
}

func TestScenarioRun(t *testing.T) {
	sc, pop := scenarioFixture(t)
	steps := []Step{
		WidenStep("weight", privacy.DimGranularity, 3), // g 1→2
		WidenStep("weight", privacy.DimGranularity, 3), // g 2→3
	}
	points, err := sc.Run(pop, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	p0 := points[0]
	if p0.PW != 0 || p0.PDefault != 0 || p0.NFuture != 3 {
		t.Errorf("base point = %+v", p0)
	}
	if p0.UtilityCurrent != 30 || p0.UtilityFuture != 30 {
		t.Errorf("base utility = %+v", p0)
	}

	// Step 1 (g=2): tight's conf = 1×4×3×5 = 60 > 10 → defaults.
	// medium's conf = 1×4×1×2 = 8 ≤ 100 → stays. tolerant unviolated.
	p1 := points[1]
	if math.Abs(p1.PW-2.0/3.0) > 1e-12 {
		t.Errorf("step1 PW = %g, want 2/3", p1.PW)
	}
	if math.Abs(p1.PDefault-1.0/3.0) > 1e-12 {
		t.Errorf("step1 PDefault = %g, want 1/3", p1.PDefault)
	}
	if p1.NFuture != 2 {
		t.Errorf("step1 NFuture = %d", p1.NFuture)
	}
	// Utility: 2 × (10 + 3) = 26 < 30 → not justified.
	if p1.UtilityFuture != 26 || p1.Justified {
		t.Errorf("step1 utility = %+v", p1)
	}
	// Break-even T for 3→2: 10 × (3/2 − 1) = 5 > 3 offered.
	if math.Abs(p1.BreakEvenT-5) > 1e-12 {
		t.Errorf("step1 break-even = %g, want 5", p1.BreakEvenT)
	}

	// Step 2 (g=3): tight already gone; medium conf = 2×4×1×2 = 16, stays;
	// tolerant still bounds the policy. Over the remaining 2 providers,
	// PDefault = 0.
	p2 := points[2]
	if p2.NFuture != 2 || p2.PDefault != 0 {
		t.Errorf("step2 = %+v", p2)
	}
	// Cumulative per-provider utility 10+3+3 = 16 → future 32 > 30.
	if p2.UtilityFuture != 32 || !p2.Justified {
		t.Errorf("step2 utility = %+v", p2)
	}

	if got := OptimalStep(points); got != 2 {
		t.Errorf("OptimalStep = %d, want 2", got)
	}
}

func TestScenarioErrors(t *testing.T) {
	sc, pop := scenarioFixture(t)
	sc.BasePolicy = nil
	if _, err := sc.Run(pop, nil); err == nil {
		t.Error("nil base policy should fail")
	}
	sc2, _ := scenarioFixture(t)
	sc2.BaseUtility = -1
	if _, err := sc2.Run(pop, nil); err == nil {
		t.Error("negative base utility should fail")
	}
	sc3, _ := scenarioFixture(t)
	if _, err := sc3.Run(pop, []Step{{Label: "broken"}}); err == nil {
		t.Error("step without Apply should fail")
	}
}

func TestOptimalStepEmpty(t *testing.T) {
	if OptimalStep(nil) != -1 {
		t.Error("empty series should return -1")
	}
}

func TestWhatIfCompare(t *testing.T) {
	sc, pop := scenarioFixture(t)
	wide := sc.BasePolicy.Widen("wide", "weight", privacy.DimGranularity, 1)
	w, err := Compare(sc.BasePolicy, wide, sc.AttrSens, core.Options{}, pop, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Current.PW != 0 {
		t.Errorf("current PW = %g", w.Current.PW)
	}
	if math.Abs(w.DeltaPW-2.0/3.0) > 1e-12 {
		t.Errorf("ΔPW = %g", w.DeltaPW)
	}
	if math.Abs(w.DeltaPDefault-1.0/3.0) > 1e-12 {
		t.Errorf("ΔPDefault = %g", w.DeltaPDefault)
	}
	if math.Abs(w.BreakEvenT-5) > 1e-12 {
		t.Errorf("BreakEvenT = %g", w.BreakEvenT)
	}
	if _, err := Compare(nil, wide, sc.AttrSens, core.Options{}, pop, 10); err == nil {
		t.Error("nil current policy should fail")
	}
	if _, err := Compare(sc.BasePolicy, nil, sc.AttrSens, core.Options{}, pop, 10); err == nil {
		t.Error("nil proposed policy should fail")
	}
}

// TestExpansionMonotonicity runs a realistic Westin population through
// progressive widening and checks the Sec. 9 qualitative claims: P(W) and
// cumulative defaults never decrease as the policy widens.
func TestExpansionMonotonicity(t *testing.T) {
	const pr = privacy.Purpose("service")
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{pr}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{pr}},
		},
	}, 123)
	if err != nil {
		t.Fatal(err)
	}
	providers := gen.Generate(800)
	pop := population.PrefsOf(providers)

	hp := privacy.NewHousePolicy("v0")
	hp.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})
	hp.Add("income", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})

	sc := &Scenario{BasePolicy: hp, AttrSens: gen.AttributeSensitivities(), BaseUtility: 10}
	steps := []Step{
		WidenAllStep(privacy.DimVisibility, 2),
		WidenAllStep(privacy.DimGranularity, 2),
		WidenAllStep(privacy.DimRetention, 2),
		WidenAllStep(privacy.DimVisibility, 2),
	}
	points, err := sc.Run(pop, steps)
	if err != nil {
		t.Fatal(err)
	}
	// P(W) among remaining providers must not decrease as the policy widens
	// (survivors' violations only grow), and N_future must not increase.
	for i := 1; i < len(points); i++ {
		if points[i].NFuture > points[i-1].NFuture {
			t.Errorf("NFuture grew at step %d: %d → %d", i, points[i-1].NFuture, points[i].NFuture)
		}
	}
	// Widening must cause some violation by the last step.
	last := points[len(points)-1]
	if last.PW == 0 {
		t.Error("aggressive widening should violate someone")
	}
	if last.NFuture == points[0].NFuture {
		t.Error("aggressive widening should cause some defaults in a Westin population")
	}
}

func TestGreedyPlan(t *testing.T) {
	sc, pop := scenarioFixture(t)
	// Candidates: a profitable granularity widening and a ruinous one that
	// would default everyone relative to its tiny reward.
	good := WidenStep("weight", privacy.DimGranularity, 6)
	ruinous := Step{
		Label: "sell everything",
		Apply: func(prev *privacy.HousePolicy) *privacy.HousePolicy {
			// Enormous visibility widening: defaults both tight and medium
			// (only the near-infinitely tolerant provider stays).
			p := prev.WidenAll(prev.Name+"!", privacy.DimVisibility, 40)
			p = p.WidenAll(p.Name, privacy.DimGranularity, 3)
			return p.WidenAll(p.Name, privacy.DimRetention, 5)
		},
		ExtraUtility: 0.5,
	}
	plan, err := sc.GreedyPlan(pop, []Step{ruinous, good})
	if err != nil {
		t.Fatal(err)
	}
	// The good step pays (3 providers × 16 = 48 > 30 even if tight defaults:
	// 2 × 16 = 32 > 30); the ruinous step must be rejected.
	if len(plan) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].Label != good.Label {
		t.Errorf("plan picked %q", plan[0].Label)
	}
	if !plan[0].Justified {
		t.Error("committed step must be justified")
	}
	// A plan from only ruinous candidates is empty.
	plan, err = sc.GreedyPlan(pop, []Step{ruinous})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 0 {
		t.Errorf("ruinous-only plan = %+v", plan)
	}
	// Errors.
	broken := &Scenario{}
	if _, err := broken.GreedyPlan(pop, nil); err == nil {
		t.Error("nil base policy should fail")
	}
	if _, err := sc.GreedyPlan(pop, []Step{{Label: "no apply"}}); err == nil {
		t.Error("candidate without Apply should fail")
	}
}

func TestGreedyPlanMonotoneUtility(t *testing.T) {
	const pr = privacy.Purpose("service")
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{pr}},
		},
	}, 55)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.PrefsOf(gen.Generate(400))
	hp := privacy.NewHousePolicy("v0")
	hp.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})
	sc := &Scenario{BasePolicy: hp, AttrSens: gen.AttributeSensitivities(), BaseUtility: 10}

	candidates := []Step{
		WidenAllStep(privacy.DimVisibility, 2),
		WidenAllStep(privacy.DimGranularity, 2),
		WidenAllStep(privacy.DimRetention, 2),
	}
	plan, err := sc.GreedyPlan(pop, candidates)
	if err != nil {
		t.Fatal(err)
	}
	// Committed utilities strictly increase by construction.
	prev := -1.0
	for _, pt := range plan {
		if pt.UtilityFuture <= prev {
			t.Errorf("utility not increasing: %g after %g", pt.UtilityFuture, prev)
		}
		prev = pt.UtilityFuture
	}
}
