package generalize

import (
	"fmt"
	"testing"

	"repro/internal/relational"
)

// microdataTable builds a small table of (age, city, disease) microdata.
func microdataTable(t *testing.T) *relational.Table {
	t.Helper()
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "id", Type: relational.TypeInt, PrimaryKey: true},
		{Name: "age", Type: relational.TypeInt},
		{Name: "city", Type: relational.TypeText},
		{Name: "disease", Type: relational.TypeText},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := relational.NewTable("micro", schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		age     int64
		city    string
		disease string
	}{
		{23, "calgary", "flu"},
		{24, "calgary", "cold"},
		{27, "edmonton", "flu"},
		{28, "edmonton", "cancer"},
		{51, "calgary", "flu"},
		{53, "calgary", "cancer"},
		{57, "edmonton", "cold"},
		{59, "edmonton", "flu"},
	}
	for i, r := range rows {
		_, err := tab.Insert(relational.Row{
			relational.Int(int64(i)), relational.Int(r.age),
			relational.Text(r.city), relational.Text(r.disease),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func testQI(t *testing.T) map[string]Hierarchy {
	t.Helper()
	ageH, err := NewNumericHierarchy(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cityH, err := NewCategoryHierarchy(map[string]string{
		"calgary": "alberta", "edmonton": "alberta",
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Hierarchy{"age": ageH, "city": cityH}
}

func TestGeneralizeIdentity(t *testing.T) {
	tab := microdataTable(t)
	an, err := NewAnonymizer(tab, testQI(t), "disease")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := an.Generalize([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 8 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	// Exact release: every row is its own class (all ages distinct).
	if rel.IsKAnonymous(2) {
		t.Error("exact release should not be 2-anonymous")
	}
	if rel.MinClassSize() != 1 {
		t.Errorf("MinClassSize = %d", rel.MinClassSize())
	}
}

func TestSearchK(t *testing.T) {
	tab := microdataTable(t)
	an, err := NewAnonymizer(tab, testQI(t), "disease")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := an.SearchK(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.IsKAnonymous(2) {
		t.Fatal("SearchK(2) release is not 2-anonymous")
	}
	// Minimality: total height is minimal — no vector of lower height works.
	height := 0
	for _, lv := range rel.LevelVector {
		height += lv
	}
	maxLevels := []int{2 + 1, 1 + 1} // hierarchy Levels()-1 per QI (sorted: age, city)
	for h := 0; h < height; h++ {
		for _, vec := range vectorsOfHeight(maxLevels, h) {
			r, err := an.Generalize(vec)
			if err != nil {
				t.Fatal(err)
			}
			if r.IsKAnonymous(2) {
				t.Fatalf("vector %v of lower height %d also achieves 2-anonymity", vec, h)
			}
		}
	}
	// 4-anonymity needs more generalization but is reachable.
	rel4, err := an.SearchK(4)
	if err != nil {
		t.Fatal(err)
	}
	if !rel4.IsKAnonymous(4) {
		t.Error("SearchK(4) not 4-anonymous")
	}
	// Impossible k.
	if _, err := an.SearchK(9); err == nil {
		t.Error("k beyond table size should fail")
	}
	if _, err := an.SearchK(0); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestLDiversity(t *testing.T) {
	tab := microdataTable(t)
	an, err := NewAnonymizer(tab, testQI(t), "disease")
	if err != nil {
		t.Fatal(err)
	}
	// Fully generalized: one class containing all 3 diseases.
	rel, err := an.Generalize([]int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.DistinctLDiversity(); got != 3 {
		t.Errorf("l-diversity fully generalized = %d, want 3", got)
	}
	// Exact release: singleton classes → l = 1.
	exact, _ := an.Generalize([]int{0, 0})
	if got := exact.DistinctLDiversity(); got != 1 {
		t.Errorf("l-diversity exact = %d, want 1", got)
	}
}

func TestPrecisionLoss(t *testing.T) {
	tab := microdataTable(t)
	qi := testQI(t)
	an, err := NewAnonymizer(tab, qi, "disease")
	if err != nil {
		t.Fatal(err)
	}
	hs := []Hierarchy{qi["age"], qi["city"]} // sorted column order
	exact, _ := an.Generalize([]int{0, 0})
	if got := exact.PrecisionLoss(hs); got != 0 {
		t.Errorf("exact precision loss = %g", got)
	}
	full, _ := an.Generalize([]int{3, 2})
	if got := full.PrecisionLoss(hs); got != 1 {
		t.Errorf("full precision loss = %g", got)
	}
	mid, _ := an.Generalize([]int{1, 1})
	if got := mid.PrecisionLoss(hs); got <= 0 || got >= 1 {
		t.Errorf("mid precision loss = %g", got)
	}
}

func TestNewAnonymizerErrors(t *testing.T) {
	tab := microdataTable(t)
	if _, err := NewAnonymizer(nil, testQI(t), "disease"); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewAnonymizer(tab, nil, "disease"); err == nil {
		t.Error("no QI should fail")
	}
	if _, err := NewAnonymizer(tab, map[string]Hierarchy{"nope": SuppressionHierarchy{}}, "disease"); err == nil {
		t.Error("missing QI column should fail")
	}
	if _, err := NewAnonymizer(tab, testQI(t), "nope"); err == nil {
		t.Error("missing sensitive column should fail")
	}
	an, _ := NewAnonymizer(tab, testQI(t), "disease")
	if _, err := an.Generalize([]int{0}); err == nil {
		t.Error("wrong level vector length should fail")
	}
}

func TestVectorsOfHeight(t *testing.T) {
	vs := vectorsOfHeight([]int{2, 1}, 2)
	// Expect {0,2}→invalid (max 1), so: [1,1], [2,0].
	want := map[string]bool{"[1 1]": true, "[2 0]": true}
	if len(vs) != len(want) {
		t.Fatalf("vectors = %v", vs)
	}
	for _, v := range vs {
		if !want[fmt.Sprint(v)] {
			t.Errorf("unexpected vector %v", v)
		}
	}
	if got := vectorsOfHeight([]int{1, 1}, 0); len(got) != 1 || got[0][0] != 0 || got[0][1] != 0 {
		t.Errorf("height-0 vectors = %v", got)
	}
}

func TestSearchKL(t *testing.T) {
	tab := microdataTable(t)
	an, err := NewAnonymizer(tab, testQI(t), "disease")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := an.SearchKL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.IsKAnonymous(2) || rel.DistinctLDiversity() < 2 {
		t.Fatalf("release k=%d l=%d", rel.MinClassSize(), rel.DistinctLDiversity())
	}
	// The l constraint can force more generalization than k alone: the
	// k-only vector must not be taller than the (k, l) vector.
	kOnly, err := an.SearchK(2)
	if err != nil {
		t.Fatal(err)
	}
	height := func(r *Release) int {
		h := 0
		for _, lv := range r.LevelVector {
			h += lv
		}
		return h
	}
	if height(kOnly) > height(rel) {
		t.Errorf("k-only height %d exceeds (k,l) height %d", height(kOnly), height(rel))
	}
	// Impossible l (only 3 distinct diseases).
	if _, err := an.SearchKL(2, 4); err == nil {
		t.Error("l beyond distinct sensitive values should fail")
	}
	if _, err := an.SearchKL(0, 1); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := an.SearchKL(1, 0); err == nil {
		t.Error("l = 0 should fail")
	}
}
