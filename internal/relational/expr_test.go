package relational

import (
	"strings"
	"testing"
)

// evalStr parses and evaluates an expression against env, failing the test
// on error.
func evalStr(t *testing.T, src string, env Env) Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{}
	cases := map[string]Value{
		"1 + 2":       Int(3),
		"7 - 10":      Int(-3),
		"6 * 7":       Int(42),
		"7 / 2":       Int(3),
		"7 % 3":       Int(1),
		"7.0 / 2":     Float(3.5),
		"1 + 2 * 3":   Int(7),
		"(1 + 2) * 3": Int(9),
		"-5 + 3":      Int(-2),
		"-(2.5)":      Float(-2.5),
		"1 + 2.5":     Float(3.5),
	}
	for src, want := range cases {
		if got := evalStr(t, src, env); !Equal(got, want) {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	for _, src := range []string{"1 / 0", "1 % 0", "1.5 % 2", "'a' + 1", "-'x'"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if _, err := e.Eval(MapEnv{}); err == nil {
			t.Errorf("%q should fail to evaluate", src)
		}
	}
}

func TestComparisons(t *testing.T) {
	env := MapEnv{"x": Int(5), "name": Text("alice")}
	truths := []string{
		"x = 5", "x != 4", "x < 6", "x <= 5", "x > 4", "x >= 5",
		"name = 'alice'", "name < 'bob'",
		"x BETWEEN 5 AND 9", "x NOT BETWEEN 6 AND 9",
		"x IN (1, 3, 5)", "x NOT IN (2, 4)",
		"name LIKE 'ali%'", "name LIKE '%ice'", "name LIKE 'a_ice'",
		"name NOT LIKE 'bob%'",
		"NOT x = 4", "x = 5 AND name = 'alice'", "x = 9 OR name = 'alice'",
		"TRUE", "NOT FALSE",
	}
	for _, src := range truths {
		if v := evalStr(t, src, env); !Equal(v, Bool(true)) {
			t.Errorf("%q = %s, want TRUE", src, v)
		}
	}
	falsities := []string{"x = 4", "x IN (2, 4)", "name LIKE 'z%'", "x BETWEEN 6 AND 9"}
	for _, src := range falsities {
		if v := evalStr(t, src, env); !Equal(v, Bool(false)) {
			t.Errorf("%q = %s, want FALSE", src, v)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	env := MapEnv{"x": Null(), "y": Int(1)}
	// Comparisons with NULL are NULL.
	for _, src := range []string{"x = 1", "x != 1", "x < 1", "x + 1", "x IN (1, 2)"} {
		if v := evalStr(t, src, env); !v.IsNull() {
			t.Errorf("%q = %s, want NULL", src, v)
		}
	}
	// IS NULL / IS NOT NULL.
	if v := evalStr(t, "x IS NULL", env); !Equal(v, Bool(true)) {
		t.Errorf("IS NULL = %s", v)
	}
	if v := evalStr(t, "y IS NOT NULL", env); !Equal(v, Bool(true)) {
		t.Errorf("IS NOT NULL = %s", v)
	}
	// Three-valued logic shortcuts.
	if v := evalStr(t, "x = 1 AND FALSE", env); !Equal(v, Bool(false)) {
		t.Errorf("NULL AND FALSE = %s, want FALSE", v)
	}
	if v := evalStr(t, "FALSE AND x = 1", env); !Equal(v, Bool(false)) {
		t.Errorf("FALSE AND NULL = %s, want FALSE", v)
	}
	if v := evalStr(t, "x = 1 OR TRUE", env); !Equal(v, Bool(true)) {
		t.Errorf("NULL OR TRUE = %s, want TRUE", v)
	}
	if v := evalStr(t, "x = 1 AND TRUE", env); !v.IsNull() {
		t.Errorf("NULL AND TRUE = %s, want NULL", v)
	}
	if v := evalStr(t, "x = 1 OR FALSE", env); !v.IsNull() {
		t.Errorf("NULL OR FALSE = %s, want NULL", v)
	}
	// Truthy treats NULL as false.
	e, _ := ParseExpr("x = 1")
	ok, err := Truthy(e, env)
	if err != nil || ok {
		t.Errorf("Truthy(NULL) = %v, %v", ok, err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_", false},
		{"abc", "%%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestUnknownColumn(t *testing.T) {
	e, _ := ParseExpr("missing = 1")
	if _, err := e.Eval(MapEnv{}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestLogicTypeErrors(t *testing.T) {
	env := MapEnv{"x": Int(1)}
	// Note TRUE OR x short-circuits without typing x, so it is not an error.
	for _, src := range []string{"x AND TRUE", "FALSE OR x", "NOT x"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if _, err := e.Eval(env); err == nil {
			t.Errorf("%q should fail: int is not boolean", src)
		}
	}
}

func TestExprStrings(t *testing.T) {
	srcs := []string{
		"x = 1 AND y > 2",
		"a IS NOT NULL",
		"b IN (1, 2)",
		"NOT c LIKE 'x%'",
	}
	for _, src := range srcs {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		s := e.String()
		if s == "" || !strings.Contains(s, "(") {
			t.Errorf("String() of %q = %q", src, s)
		}
		// Round-trip: rendering must re-parse.
		if _, err := ParseExpr(s); err != nil {
			t.Errorf("re-parse of %q (from %q): %v", s, src, err)
		}
	}
}
