package ppdb

import (
	"testing"

	"repro/internal/privacy"
	"repro/internal/relational"
)

func TestProviderView(t *testing.T) {
	db := clinicDB(t)
	rows, err := db.ProviderView("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Table != "patients" {
		t.Fatalf("rows = %+v", rows)
	}
	// Full granularity: exact weight, not a range.
	w, ok := rows[0].Values[2].AsFloat()
	if !ok || w != 61.5 {
		t.Errorf("own weight = %v", rows[0].Values[2])
	}
	if _, err := db.ProviderView("stranger"); err == nil {
		t.Error("unregistered provider should fail")
	}
}

func TestUpdateOwnRow(t *testing.T) {
	db := clinicDB(t)
	rows, err := db.ProviderView("alice")
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	updated := append(relational.Row(nil), row.Values...)
	updated[2] = relational.Float(59.0)
	if err := db.UpdateOwnRow("alice", row.Table, row.RowID, updated); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.ProviderView("alice")
	if w, _ := rows[0].Values[2].AsFloat(); w != 59 {
		t.Errorf("updated weight = %v", rows[0].Values[2])
	}
	// Bob cannot update alice's row.
	if err := db.UpdateOwnRow("bob", row.Table, row.RowID, updated); err == nil {
		t.Error("cross-provider update must fail")
	}
	// Ownership reassignment refused.
	stolen := append(relational.Row(nil), updated...)
	stolen[0] = relational.Text("bob")
	if err := db.UpdateOwnRow("alice", row.Table, row.RowID, stolen); err == nil {
		t.Error("ownership reassignment must fail")
	}
	// Missing row / table.
	if err := db.UpdateOwnRow("alice", "patients", relational.RowID(999), updated); err == nil {
		t.Error("missing row must fail")
	}
	if err := db.UpdateOwnRow("alice", "nope", row.RowID, updated); err == nil {
		t.Error("missing table must fail")
	}
}

func TestSelfAudit(t *testing.T) {
	db := clinicDB(t)
	// Bob never consented to research → violated, would default.
	rep, err := db.SelfAudit("bob")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated || !rep.Defaults || len(rep.Pairs) == 0 {
		t.Errorf("bob self-audit = %+v", rep)
	}
	// Alice is clean.
	rep, err = db.SelfAudit("alice")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated {
		t.Errorf("alice self-audit = %+v", rep)
	}
	if _, err := db.SelfAudit("stranger"); err == nil {
		t.Error("unregistered provider should fail")
	}
}

func TestUpdatePreferences(t *testing.T) {
	db := clinicDB(t)
	// Bob grants research on weight and patient: his violation disappears.
	bob := privacy.NewPrefs("bob", 5)
	bob.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	bob.Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	bob.Add("age", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 2, Retention: 4})
	bob.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	bob.Add("patient", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 3, Retention: 3})
	if err := db.UpdatePreferences("bob", bob); err != nil {
		t.Fatal(err)
	}
	rep, err := db.SelfAudit("bob")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated {
		t.Errorf("bob still violated after consent: %+v", rep)
	}
	// Identity mismatch and unknown provider refused.
	if err := db.UpdatePreferences("alice", bob); err == nil {
		t.Error("identity mismatch must fail")
	}
	carol := privacy.NewPrefs("carol", 5)
	if err := db.UpdatePreferences("carol", carol); err == nil {
		t.Error("unregistered provider must fail")
	}
	if err := db.UpdatePreferences("bob", nil); err == nil {
		t.Error("nil prefs must fail")
	}
}
