package analysis

import (
	"go/ast"
	"go/types"
)

// errflowChecker flags dropped error returns: calls used as bare
// statements (including defer/go) whose error result vanishes, and
// multi-assignments that send an error to the blank identifier. The
// hand-written parsers (internal/policydsl, internal/relational) and the
// ppdb persist/load paths signal corruption exclusively through errors, so
// a dropped error there turns a hard failure into silent data loss.
//
// Conventionally ignorable sources are exempt, mirroring errcheck's
// default exclusions: the fmt.Print/Fprint family (report renderers here
// write tables to arbitrary io.Writers) and the always-nil write methods
// of strings.Builder and bytes.Buffer.
func errflowChecker() *Checker {
	return &Checker{
		Name: "errflow",
		Doc:  "flag error returns that are discarded or assigned to _",
		Run:  runErrflow,
	}
}

func runErrflow(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()

	// errIndexes returns the positions of error-typed results of call.
	errIndexes := func(call *ast.CallExpr) []int {
		t := pass.TypeOf(call)
		if t == nil {
			return nil
		}
		var out []int
		switch r := t.(type) {
		case *types.Tuple:
			for i := 0; i < r.Len(); i++ {
				if types.Identical(r.At(i).Type(), errType) {
					out = append(out, i)
				}
			}
		default:
			if types.Identical(t, errType) {
				out = append(out, 0)
			}
		}
		return out
	}

	checkDiscarded := func(call *ast.CallExpr, how string) {
		if len(errIndexes(call)) == 0 || errAllowed(pass, call) {
			return
		}
		pass.Reportf(call.Pos(), "error result of %s is %s", types.ExprString(call.Fun), how)
	}

	inspectAll(pass, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(node.X).(*ast.CallExpr); ok {
				checkDiscarded(call, "discarded")
			}
		case *ast.DeferStmt:
			checkDiscarded(node.Call, "discarded (deferred call)")
		case *ast.GoStmt:
			checkDiscarded(node.Call, "discarded (goroutine)")
		case *ast.AssignStmt:
			if len(node.Rhs) != 1 {
				return true
			}
			call, ok := unparen(node.Rhs[0]).(*ast.CallExpr)
			if !ok || errAllowed(pass, call) {
				return true
			}
			for _, i := range errIndexes(call) {
				if i >= len(node.Lhs) {
					continue
				}
				if id, ok := node.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(id.Pos(), "error result of %s is assigned to _", types.ExprString(call.Fun))
				}
			}
		}
		return true
	})
}

// errAllowed reports whether call's error is conventionally ignorable:
// printing to stdout/stderr or writing to an in-memory buffer.
func errAllowed(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-qualified call: the fmt print family.
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
			return false
		}
	}
	// Methods on in-memory buffers never return non-nil errors.
	if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if isNamedType(recv, "strings", "Builder") || isNamedType(recv, "bytes", "Buffer") {
			return true
		}
	}
	return false
}
