package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// enumswitchChecker flags non-exhaustive switch statements over iota-style
// enums (named integer types with at least two package-level constants,
// e.g. privacy.Dimension, relational token kinds, DSL node kinds) when no
// default case exists. A new enum member then fails `make check` at every
// switch that silently ignores it instead of at runtime.
func enumswitchChecker() *Checker {
	return &Checker{
		Name: "enumswitch",
		Doc:  "flag non-exhaustive switches over iota enums that lack a default case",
		Run:  runEnumswitch,
	}
}

func runEnumswitch(pass *Pass) {
	inspectAll(pass, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		named := enumTagType(pass.TypeOf(sw.Tag))
		if named == nil {
			return true
		}
		members := enumMembers(named)
		if len(members) < 2 {
			return true
		}
		covered := map[string]bool{}
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clause.List == nil {
				return true // default case: exhaustive by construction
			}
			for _, e := range clause.List {
				tv, ok := pass.Info.Types[e]
				if !ok || tv.Value == nil {
					return true // non-constant case: cannot reason about coverage
				}
				covered[tv.Value.ExactString()] = true
			}
		}
		var missing []enumMember
		for _, m := range members {
			if !covered[m.val.ExactString()] {
				missing = append(missing, m)
			}
		}
		if len(missing) == 0 {
			return true
		}
		names := make([]string, len(missing))
		for i, m := range missing {
			names[i] = m.name
		}
		qual := relativeTo(pass.Pkg)
		pass.Reportf(sw.Switch,
			"switch on %s is not exhaustive: missing %s (add the missing cases or a default)",
			types.TypeString(named, qual), strings.Join(names, ", "))
		return true
	})
}

// enumTagType returns the named type of a switch tag when it looks like an
// enum carrier: a named (non-alias-only) type whose underlying type is an
// integer.
func enumTagType(t types.Type) *types.Named {
	named := namedOf(t)
	if named == nil {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 || b.Info()&types.IsBoolean != 0 {
		return nil
	}
	return named
}

type enumMember struct {
	name string
	val  constant.Value
}

// enumMembers collects the package-level constants declared with exactly
// the enum's type, sorted by value then name; constants sharing a value
// count as one member for coverage.
func enumMembers(named *types.Named) []enumMember {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []enumMember
	scope := pkg.Scope()
	seen := map[string]bool{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if seen[key] {
			continue // value aliases (e.g. a Max marker) count once
		}
		seen[key] = true
		out = append(out, enumMember{name: name, val: c.Val()})
	}
	sort.Slice(out, func(i, j int) bool {
		vi, iok := constant.Int64Val(out[i].val)
		vj, jok := constant.Int64Val(out[j].val)
		if iok && jok && vi != vj {
			return vi < vj
		}
		return out[i].name < out[j].name
	})
	return out
}
