package policydsl

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds arbitrary strings to the DSL parser.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnDSLishInput biases toward DSL-shaped fragments.
func TestParseNeverPanicsOnDSLishInput(t *testing.T) {
	fragments := []string{
		"policy", "provider", "attr", "tuple", "sens", "sensitivity",
		"threshold", "{", "}", "=", `"name"`, "purpose", "visibility",
		"granularity", "retention", "value", "v", "g", "r", "house",
		"specific", "year", "5", "-3", "2.5", "#comment\n", "weight",
	}
	f := func(picks []uint8) (ok bool) {
		var src string
		for i, p := range picks {
			if i >= 40 {
				break
			}
			src += fragments[int(p)%len(fragments)] + " "
		}
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalJSONNeverPanics feeds arbitrary bytes to the JSON decoder.
func TestUnmarshalJSONNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", data, r)
				ok = false
			}
		}()
		_, _ = UnmarshalJSON(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
