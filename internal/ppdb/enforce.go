package ppdb

import (
	"fmt"
	"strings"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// AccessRequest is a purpose-bound read: who is asking (a visibility class
// on the taxonomy's visibility scale), why (a purpose), and what (a SELECT
// in the engine's SQL dialect).
type AccessRequest struct {
	// Requester labels the accessing party for the audit log.
	Requester string
	// Visibility is the requester's class on the visibility scale (e.g.
	// house = 2, third-party = 3 on the default scale). The policy must
	// grant at least this level on every touched attribute.
	Visibility privacy.Level
	// Purpose is the declared purpose of the access. Every touched
	// attribute must have a policy tuple for it.
	Purpose privacy.Purpose
	// SQL is the SELECT to run.
	SQL string
}

// DeniedError reports a rejected access with the attribute and reason.
type DeniedError struct {
	Attribute string
	Reason    string
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("ppdb: access denied on %q: %s", e.Attribute, e.Reason)
}

// Query enforces the house policy on a SELECT:
//
//  1. Every column referenced anywhere in the statement must have a policy
//     tuple for the request's purpose — use for an unstated purpose is the
//     violation class Sec. 1 highlights ("used outside of the stated
//     purpose"), so it is refused outright.
//  2. The policy tuple's visibility must admit the requester's class.
//  3. Result cells are degraded to the policy's granularity level through
//     the attribute's generalization hierarchy.
//
// Both allowed and denied accesses are recorded in the audit log.
func (d *DB) Query(req AccessRequest) (*relational.Result, error) {
	st, err := relational.Parse(req.SQL)
	if err != nil {
		d.audit.record(d.Now(), req, false, "parse error: "+err.Error())
		return nil, err
	}
	sel, ok := st.(relational.SelectStmt)
	if !ok {
		err := fmt.Errorf("ppdb: only SELECT is allowed through Query")
		d.audit.record(d.Now(), req, false, err.Error())
		return nil, err
	}

	d.mu.RLock()
	policy := d.policy
	d.mu.RUnlock()

	attrs, err := d.referencedAttributes(sel)
	if err != nil {
		d.audit.record(d.Now(), req, false, err.Error())
		return nil, err
	}

	// Policy gate per attribute.
	pr := req.Purpose.Normalize()
	granted := map[string]privacy.Tuple{}
	for _, attr := range attrs {
		tup, found := d.findPolicyTuple(policy, attr, pr)
		if !found {
			denied := &DeniedError{Attribute: attr, Reason: fmt.Sprintf("no policy tuple for purpose %q", pr)}
			d.audit.record(d.Now(), req, false, denied.Error())
			return nil, denied
		}
		if tup.Visibility < req.Visibility {
			denied := &DeniedError{
				Attribute: attr,
				Reason: fmt.Sprintf("policy visibility %s does not admit requester class %s",
					d.scales.Visibility.Name(tup.Visibility), d.scales.Visibility.Name(req.Visibility)),
			}
			d.audit.record(d.Now(), req, false, denied.Error())
			return nil, denied
		}
		granted[attr] = tup
	}

	res, err := d.rdb.ExecStatement(sel)
	if err != nil {
		d.audit.record(d.Now(), req, false, err.Error())
		return nil, err
	}

	// Granularity degradation on the projected columns.
	for ci, col := range res.Columns {
		tup, ok := granted[strings.ToLower(col)]
		if !ok {
			continue // computed column (expression/aggregate alias)
		}
		lv := d.hierarchyLevel(col, tup.Granularity)
		if lv == 0 {
			continue
		}
		h := d.hierarchyFor(col)
		for ri := range res.Rows {
			res.Rows[ri][ci] = h.Generalize(res.Rows[ri][ci], lv)
		}
	}

	d.audit.record(d.Now(), req, true, "")
	return res, nil
}

// findPolicyTuple resolves the governing policy tuple for (attr, purpose)
// under the configured matcher semantics: with a lattice matcher, a policy
// stated for a general purpose also governs requests for its
// specializations.
func (d *DB) findPolicyTuple(policy *privacy.HousePolicy, attr string, pr privacy.Purpose) (privacy.Tuple, bool) {
	if tup, ok := policy.Find(attr, pr); ok {
		return tup, true
	}
	m := d.opts.Matcher
	if m == nil {
		return privacy.Tuple{}, false
	}
	for _, pt := range policy.ForAttribute(attr) {
		if m.Covers(pt.Tuple.Purpose, pr) {
			return pt.Tuple, true
		}
	}
	return privacy.Tuple{}, false
}

// hierarchyFor returns the attribute's hierarchy, defaulting to plain
// suppression.
func (d *DB) hierarchyFor(attr string) hierarchy {
	if h, ok := d.hierarchies[strings.ToLower(attr)]; ok {
		return h
	}
	return suppressOnly{}
}

// hierarchy is the subset of generalize.Hierarchy the PPDB needs; declared
// locally to keep the import surface explicit.
type hierarchy interface {
	Levels() int
	Generalize(v relational.Value, level int) relational.Value
}

// suppressOnly degrades any value to "*" at any level above 0.
type suppressOnly struct{}

func (suppressOnly) Levels() int { return 2 }
func (suppressOnly) Generalize(v relational.Value, level int) relational.Value {
	if level <= 0 || v.IsNull() {
		return v
	}
	return relational.Text("*")
}

// hierarchyLevel converts a policy granularity level (0 = reveal nothing …
// scale max = fully specific) into the attribute hierarchy's generalization
// level (0 = exact … Levels-1 = suppressed), scaling proportionally.
func (d *DB) hierarchyLevel(attr string, g privacy.Level) int {
	gmax := int(d.scales.Granularity.Max())
	if gmax <= 0 {
		return 0
	}
	if g >= privacy.Level(gmax) {
		return 0
	}
	if g <= 0 {
		return d.hierarchyFor(attr).Levels() - 1
	}
	hmax := d.hierarchyFor(attr).Levels() - 1
	// Fraction of granularity withheld, mapped onto hierarchy levels,
	// rounding toward more privacy.
	withheld := float64(gmax-int(g)) / float64(gmax)
	lv := int(withheld*float64(hmax) + 0.999999)
	if lv > hmax {
		lv = hmax
	}
	return lv
}

// referencedAttributes extracts every column name referenced by the SELECT —
// projections, predicates, grouping, ordering and join conditions — resolved
// against the registered tables. Star projections expand to all columns.
func (d *DB) referencedAttributes(sel relational.SelectStmt) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()

	froms := append([]relational.FromItem{sel.From}, nil...)
	for _, j := range sel.Joins {
		froms = append(froms, j.Right)
	}
	known := map[string]bool{} // bare column names across referenced tables
	aliases := map[string]map[string]bool{}
	for _, f := range froms {
		tm, ok := d.tables[f.Table]
		if !ok {
			return nil, fmt.Errorf("ppdb: table %q is not registered", f.Table)
		}
		cols := map[string]bool{}
		for _, c := range tm.table.Schema().Columns() {
			known[c.Name] = true
			cols[c.Name] = true
		}
		aliases[strings.ToLower(f.Alias)] = cols
		aliases[f.Table] = cols
	}

	seen := map[string]bool{}
	add := func(name string) {
		name = strings.ToLower(name)
		if dot := strings.LastIndex(name, "."); dot >= 0 {
			name = name[dot+1:]
		}
		if known[name] {
			seen[name] = true
		}
	}
	var walk func(e relational.Expr)
	walk = func(e relational.Expr) {
		switch x := e.(type) {
		case relational.ColRef:
			add(x.Name)
		case relational.Binary:
			walk(x.L)
			walk(x.R)
		case relational.Unary:
			walk(x.X)
		case relational.IsNull:
			walk(x.X)
		case relational.In:
			walk(x.X)
			for _, i := range x.List {
				walk(i)
			}
		case relational.Agg:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	for _, it := range sel.Items {
		if it.Star {
			for name := range known {
				seen[name] = true
			}
			continue
		}
		walk(it.Expr)
	}
	if sel.Where != nil {
		walk(sel.Where)
	}
	for _, g := range sel.GroupBy {
		walk(g)
	}
	if sel.Having != nil {
		walk(sel.Having)
	}
	for _, o := range sel.OrderBy {
		walk(o.Expr)
	}
	for _, j := range sel.Joins {
		walk(j.On)
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	// Exclude provider-identity columns from policy gating? No — identity
	// is itself private; the policy must cover it like any attribute.
	sortStrings(out)
	return out, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
