// Package errflowdata is a golden-file fixture for the errflow checker.
package errflowdata

import (
	"fmt"
	"strconv"
	"strings"
)

func parse(s string) (int, error) { return strconv.Atoi(s) }

func touch() error { return nil }

// Dropped ignores an error-returning call entirely: flagged.
func Dropped() {
	touch() // want "discarded"
}

// Blank sends the error to _: flagged.
func Blank(s string) int {
	n, _ := parse(s) // want "assigned to _"
	return n
}

// DeferredDrop drops an error in a defer: flagged.
func DeferredDrop() {
	defer touch() // want "discarded"
}

// Handled checks the error: no finding.
func Handled(s string) (int, error) {
	n, err := parse(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// BoolBlank discards a bool, not an error: no finding.
func BoolBlank(m map[string]int) int {
	v, _ := m["k"]
	return v
}

// PrintFamily uses the exempt fmt print family: no finding.
func PrintFamily(b *strings.Builder) {
	fmt.Println("hello")
	fmt.Fprintf(b, "world")
	b.WriteString("!")
}

// Deliberate documents a best-effort call.
func Deliberate() {
	//lint:ignore errflow fixture: best-effort cache warm-up, failure is benign
	touch()
}

// file mirrors the fsync-discipline surface of the ppdb persist layer:
// durability rests entirely on Sync/Close/rename errors being observed.
type file struct{}

func (file) Sync() error  { return nil }
func (file) Close() error { return nil }

func rename(from, to string) error { return nil }

// SyncDropped fires and forgets the fsync that makes a snapshot durable:
// flagged.
func SyncDropped(f file) {
	f.Sync() // want "discarded"
}

// CloseInDefer drops a deferred Close error — on write-then-close, the
// close is where NFS and full disks report failure: flagged.
func CloseInDefer(f file) {
	defer f.Close() // want "discarded"
}

// RotateDropped loses a rename mid generation-rotation: flagged.
func RotateDropped() {
	rename("snap.tmp", "snap") // want "discarded"
}

// RotateBlank sends the rotation error to _: flagged.
func RotateBlank() {
	_ = rename("snap", "snap.prev") // want "assigned to _"
}

// BestEffortCleanup documents the one legitimate drop in the persist
// paths: clearing staging debris after the save has already failed.
func BestEffortCleanup() {
	//lint:ignore errflow fixture: staging cleanup after a failed save is best-effort
	rename("snap.tmp", "gone")
}
