// Package hierdata extends the violation model to hierarchical (XML-style)
// data — the last future-work item of Sec. 10: "this work has only
// considered a traditional relational database model. Extending it to other
// popular structures such as XML … may involve changing the violation model
// itself."
//
// What changes: attributes become *paths* ("/patient/contact/email"), and
// both policies and preferences are scoped to subtrees — a tuple attached to
// a path governs every descendant unless a more specific tuple overrides it
// (longest-prefix resolution). Violation, severity and default then reuse
// the relational model verbatim per leaf: the same diff/comp/conf machinery
// of Eqs. 12-14 runs with the resolved (policy, preference) pair at each
// data-bearing node.
package hierdata

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/privacy"
)

// Node is one element of a hierarchical document. A node carries data when
// Value is non-empty; structural nodes just hold children.
type Node struct {
	Name     string
	Value    string
	Children []*Node
}

// ParseXML decodes an XML document into a Node tree. Only elements and
// character data are kept (attributes, comments and processing instructions
// are ignored — the model concerns element content).
func ParseXML(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hierdata: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: strings.ToLower(t.Name.Local)}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("hierdata: multiple root elements")
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("hierdata: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					stack[len(stack)-1].Value += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("hierdata: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("hierdata: unclosed element %s", stack[len(stack)-1].Name)
	}
	return root, nil
}

// Path renders a canonical slash path from path segments.
func Path(segments ...string) string {
	cleaned := make([]string, 0, len(segments))
	for _, s := range segments {
		s = strings.ToLower(strings.TrimSpace(strings.Trim(s, "/")))
		if s != "" {
			cleaned = append(cleaned, s)
		}
	}
	return "/" + strings.Join(cleaned, "/")
}

// normPath canonicalizes a user-supplied path.
func normPath(p string) string {
	return Path(strings.Split(p, "/")...)
}

// isPrefix reports whether prefix covers path in subtree semantics.
func isPrefix(prefix, path string) bool {
	if prefix == "/" {
		return true
	}
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// scoped is one path-scoped privacy tuple.
type scoped struct {
	path  string
	tuple privacy.Tuple
}

// PathPolicy is a house policy over a document tree: tuples attached to
// paths, inherited by subtrees, overridden by longer paths.
type PathPolicy struct {
	Name    string
	entries []scoped
}

// NewPathPolicy returns an empty path policy.
func NewPathPolicy(name string) *PathPolicy {
	return &PathPolicy{Name: name}
}

// Add attaches a tuple to a path (subtree scope).
func (p *PathPolicy) Add(path string, t privacy.Tuple) *PathPolicy {
	p.entries = append(p.entries, scoped{path: normPath(path), tuple: t.Normalize()})
	return p
}

// Len returns the number of attached tuples.
func (p *PathPolicy) Len() int { return len(p.entries) }

// Resolve returns the governing tuple for (path, purpose): the matching
// entry with the longest covering path. Ties (same path, same purpose
// attached twice) resolve to the later entry.
func (p *PathPolicy) Resolve(path string, pr privacy.Purpose) (privacy.Tuple, bool) {
	path = normPath(path)
	pr = pr.Normalize()
	bestLen := -1
	var best privacy.Tuple
	for _, e := range p.entries {
		if e.tuple.Purpose != pr || !isPrefix(e.path, path) {
			continue
		}
		if len(e.path) >= bestLen {
			bestLen = len(e.path)
			best = e.tuple
		}
	}
	return best, bestLen >= 0
}

// Purposes returns the sorted purposes that govern the given path (its own
// and inherited).
func (p *PathPolicy) Purposes(path string) []privacy.Purpose {
	path = normPath(path)
	seen := map[privacy.Purpose]bool{}
	for _, e := range p.entries {
		if isPrefix(e.path, path) {
			seen[e.tuple.Purpose] = true
		}
	}
	out := make([]privacy.Purpose, 0, len(seen))
	for pr := range seen {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathPrefs is one provider's preferences over a document tree, with the
// same subtree inheritance. Sensitivities are path-scoped too.
type PathPrefs struct {
	Provider  string
	Threshold float64
	entries   []scoped
	sens      []struct {
		path string
		s    privacy.Sensitivity
	}
}

// NewPathPrefs returns an empty path preference set.
func NewPathPrefs(provider string, threshold float64) *PathPrefs {
	return &PathPrefs{Provider: provider, Threshold: threshold}
}

// Add attaches a preference tuple to a path (subtree scope).
func (p *PathPrefs) Add(path string, t privacy.Tuple) *PathPrefs {
	p.entries = append(p.entries, scoped{path: normPath(path), tuple: t.Normalize()})
	return p
}

// SetSensitivity attaches a sensitivity element to a subtree.
func (p *PathPrefs) SetSensitivity(path string, s privacy.Sensitivity) *PathPrefs {
	p.sens = append(p.sens, struct {
		path string
		s    privacy.Sensitivity
	}{normPath(path), s})
	return p
}

// Resolve returns the provider's effective preference for (path, purpose):
// longest covering path, or (implicit zero, false) when nothing covers it.
func (p *PathPrefs) Resolve(path string, pr privacy.Purpose) (privacy.Tuple, bool) {
	path = normPath(path)
	pr = pr.Normalize()
	bestLen := -1
	var best privacy.Tuple
	for _, e := range p.entries {
		if e.tuple.Purpose != pr || !isPrefix(e.path, path) {
			continue
		}
		if len(e.path) >= bestLen {
			bestLen = len(e.path)
			best = e.tuple
		}
	}
	if bestLen < 0 {
		return privacy.ZeroTuple(pr), false
	}
	return best, true
}

// Sensitivity resolves the effective σ for a path (longest covering scope;
// unit when none).
func (p *PathPrefs) Sensitivity(path string) privacy.Sensitivity {
	path = normPath(path)
	bestLen := -1
	best := privacy.UnitSensitivity
	for _, e := range p.sens {
		if !isPrefix(e.path, path) {
			continue
		}
		if len(e.path) >= bestLen {
			bestLen = len(e.path)
			best = e.s
		}
	}
	return best
}

// LeafConflict is the assessment of one data-bearing node.
type LeafConflict struct {
	Path         string
	Purpose      privacy.Purpose
	Pref, Policy privacy.Tuple
	ImplicitZero bool
	Conf         float64
}

// Report is the per-provider assessment over a document.
type Report struct {
	Provider  string
	Violated  bool
	Violation float64
	Defaults  bool
	Leaves    []LeafConflict
}

// Assessor evaluates path policies against path preferences over documents.
type Assessor struct {
	Policy *PathPolicy
	// PathSens is the house-side Σ per path scope (longest prefix wins;
	// 1 when none matches).
	PathSens map[string]float64
}

// sigma resolves Σ for a path.
func (a *Assessor) sigma(path string) float64 {
	bestLen := -1
	best := 1.0
	for p, v := range a.PathSens {
		np := normPath(p)
		if !isPrefix(np, path) {
			continue
		}
		if len(np) >= bestLen {
			bestLen = len(np)
			best = v
		}
	}
	return best
}

// AssessDocument walks every data-bearing node of doc: for each purpose the
// policy applies to that node, the effective (preference, policy) pair is
// resolved and scored with the relational model's Conf (Eq. 14). Violation,
// severity and default aggregate exactly as in the flat model.
func (a *Assessor) AssessDocument(doc *Node, prefs *PathPrefs) (Report, error) {
	if a.Policy == nil {
		return Report{}, fmt.Errorf("hierdata: assessor has no policy")
	}
	if doc == nil || prefs == nil {
		return Report{}, fmt.Errorf("hierdata: nil document or preferences")
	}
	rep := Report{Provider: prefs.Provider}
	var walk func(n *Node, path string)
	walk = func(n *Node, path string) {
		if n.Value != "" {
			for _, pr := range a.Policy.Purposes(path) {
				pol, ok := a.Policy.Resolve(path, pr)
				if !ok {
					continue
				}
				pref, explicit := prefs.Resolve(path, pr)
				sens := prefs.Sensitivity(path)
				conf := core.Conf(path, pref, path, pol, a.sigma(path), sens, nil)
				if conf > 0 || pref.ExceededBy(pol) {
					rep.Violated = true
					rep.Violation += conf
					rep.Leaves = append(rep.Leaves, LeafConflict{
						Path:         path,
						Purpose:      pr,
						Pref:         pref,
						Policy:       pol,
						ImplicitZero: !explicit,
						Conf:         conf,
					})
				}
			}
		}
		for _, c := range n.Children {
			walk(c, path+"/"+c.Name)
		}
	}
	walk(doc, "/"+doc.Name)
	rep.Defaults = rep.Violation > prefs.Threshold
	return rep, nil
}
