package analysis

import (
	"path/filepath"
	"testing"
)

// loadProgram builds the call graph over one fixture package.
func loadProgram(t *testing.T, fixture string) *Program {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{filepath.Join("testdata", "src", fixture)})
	if err != nil {
		t.Fatalf("Load(%s): %v", fixture, err)
	}
	return BuildProgram(pkgs)
}

// fnByName finds an indexed function by its diagnostic name.
func fnByName(t *testing.T, prog *Program, name string) *Func {
	t.Helper()
	for _, fn := range prog.Functions() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s not indexed", name)
	return nil
}

// calleeNames returns the resolved callee names of fn, deduplicated in
// call order.
func calleeNames(fn *Func) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range fn.Calls {
		n := c.Callee.Name()
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func hasCallee(fn *Func, name string) bool {
	for _, c := range fn.Calls {
		if c.Callee.Name() == name {
			return true
		}
	}
	return false
}

func TestCallGraphDirectAndMethodCalls(t *testing.T) {
	prog := loadProgram(t, "callgraphdata")
	direct := fnByName(t, prog, "callgraphdata.Direct")
	if !hasCallee(direct, "callgraphdata.helper") {
		t.Errorf("Direct callees = %v, want callgraphdata.helper", calleeNames(direct))
	}
	onCat := fnByName(t, prog, "callgraphdata.OnCat")
	if !hasCallee(onCat, "(*callgraphdata.Cat).Speak") {
		t.Errorf("OnCat callees = %v, want (*callgraphdata.Cat).Speak", calleeNames(onCat))
	}
}

func TestCallGraphInterfaceOverApproximation(t *testing.T) {
	prog := loadProgram(t, "callgraphdata")
	via := fnByName(t, prog, "callgraphdata.ViaInterface")
	for _, want := range []string{"(callgraphdata.Dog).Speak", "(*callgraphdata.Cat).Speak"} {
		if !hasCallee(via, want) {
			t.Errorf("ViaInterface callees = %v, want %s", calleeNames(via), want)
		}
	}
	for _, c := range via.Calls {
		if !c.Interface {
			t.Errorf("edge to %s not marked as interface over-approximation", c.Callee.Name())
		}
	}
}

func TestCallGraphFunctionValuesAndLiterals(t *testing.T) {
	prog := loadProgram(t, "callgraphdata")
	passed := fnByName(t, prog, "callgraphdata.Passed")
	if !hasCallee(passed, "callgraphdata.Spawn") || !hasCallee(passed, "callgraphdata.target") {
		t.Errorf("Passed callees = %v, want Spawn and target", calleeNames(passed))
	}
	inLit := fnByName(t, prog, "callgraphdata.InLit")
	if !hasCallee(inLit, "callgraphdata.helper") {
		t.Errorf("InLit callees = %v, want callgraphdata.helper (literal inlined)", calleeNames(inLit))
	}
}

func TestCallGraphReachableAndPath(t *testing.T) {
	prog := loadProgram(t, "callgraphdata")
	direct := fnByName(t, prog, "callgraphdata.Direct")
	helper := fnByName(t, prog, "callgraphdata.helper")
	target := fnByName(t, prog, "callgraphdata.target")
	parent := prog.Reachable([]*Func{direct})
	if _, ok := parent[helper]; !ok {
		t.Fatal("helper not reachable from Direct")
	}
	if _, ok := parent[target]; ok {
		t.Error("target should not be reachable from Direct")
	}
	if got, want := PathTo(parent, helper), "callgraphdata.Direct → callgraphdata.helper"; got != want {
		t.Errorf("PathTo = %q, want %q", got, want)
	}
	if got, want := PathTo(parent, direct), "callgraphdata.Direct"; got != want {
		t.Errorf("PathTo(root) = %q, want %q", got, want)
	}
}
