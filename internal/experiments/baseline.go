package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/generalize"
	"repro/internal/population"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// BaselinePoint is one row of E8: at a given policy width, the internal-risk
// metrics (the paper's model) next to the external-risk metrics of the
// k-anonymous release (which cannot see policy-preference mismatch at all).
type BaselinePoint struct {
	PolicyWidth   int
	PW            float64 // internal: P(W)
	PDefault      float64 // internal: P(Default)
	KAnonK        int     // external: min equivalence-class size of the release
	LDiversity    int     // external: distinct l-diversity of the release
	PrecisionLoss float64
}

// BaselineResult is the E8 contrast series.
type BaselineResult struct {
	N      int
	K      int
	Points []BaselinePoint
}

// BaselineContrast runs E8. A microdata table is released once under
// full-domain k-anonymity; then the house policy widens step by step. The
// release-time guarantees (k, l, precision) are untouched by the widening —
// they measure re-identification risk of the published artifact — while the
// paper's internal metrics degrade monotonically. This realizes the Sec. 2
// discussion: anonymization research "assume[s] risk comes from forces
// external to the system", whereas the violation model tracks the
// internal policy/preference mismatch.
func BaselineContrast(n int, seed uint64, k, widenings int) (*BaselineResult, error) {
	providers, sigma, hp, err := expansionPopulation(n, seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)

	// Build the microdata table for the release.
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
		},
	}, seed+7)
	if err != nil {
		return nil, err
	}
	schema, err := population.MicrodataSchema()
	if err != nil {
		return nil, err
	}
	table, err := relational.NewTable("micro", schema)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := table.Insert(gen.MicrodataRow(fmt.Sprintf("p%04d", i))); err != nil {
			return nil, err
		}
	}
	ageH, err := generalize.NewNumericHierarchy(10, 2, 3)
	if err != nil {
		return nil, err
	}
	cityH, err := generalize.NewCategoryHierarchy(map[string]string{
		"calgary": "alberta", "edmonton": "alberta",
		"toronto": "ontario", "montreal": "quebec", "vancouver": "bc",
		"alberta": "canada", "ontario": "canada", "quebec": "canada", "bc": "canada",
	})
	if err != nil {
		return nil, err
	}
	qi := map[string]generalize.Hierarchy{"age": ageH, "city": cityH}
	an, err := generalize.NewAnonymizer(table, qi, "condition")
	if err != nil {
		return nil, err
	}
	release, err := an.SearchK(k)
	if err != nil {
		return nil, err
	}
	hs := []generalize.Hierarchy{qi["age"], qi["city"]}

	res := &BaselineResult{N: n, K: k}
	dims := []privacy.Dimension{privacy.DimVisibility, privacy.DimGranularity, privacy.DimRetention}
	policy := hp
	for wstep := 0; wstep <= widenings; wstep++ {
		assessor, err := core.NewAssessor(policy, sigma, core.Options{})
		if err != nil {
			return nil, err
		}
		rep := assessor.AssessPopulation(pop)
		res.Points = append(res.Points, BaselinePoint{
			PolicyWidth:   wstep,
			PW:            rep.PW,
			PDefault:      rep.PDefault,
			KAnonK:        release.MinClassSize(),
			LDiversity:    release.DistinctLDiversity(),
			PrecisionLoss: release.PrecisionLoss(hs),
		})
		policy = policy.WidenAll(fmt.Sprintf("w%d", wstep+1), dims[wstep%len(dims)], 1)
	}
	return res, nil
}

// Fprint renders the contrast table.
func (r *BaselineResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "E8 — internal vs external risk (N=%d, release anonymized to k=%d)\n", r.N, r.K)
	fmt.Fprintln(w, "internal metrics respond to policy widening; release-time metrics cannot")
	fmt.Fprintln(w)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.PolicyWidth),
			fmt.Sprintf("%.4f", p.PW),
			fmt.Sprintf("%.4f", p.PDefault),
			fmt.Sprintf("%d", p.KAnonK),
			fmt.Sprintf("%d", p.LDiversity),
			fmt.Sprintf("%.3f", p.PrecisionLoss),
		})
	}
	return WriteTable(w, []string{
		"widenings", "P(W)", "P(Default)", "release k", "release l", "precision loss",
	}, rows)
}
