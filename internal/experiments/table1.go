package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis/floatutil"
	"repro/internal/core"
	"repro/internal/privacy"
)

// Table1Row is one line of the paper's Table 1 with the derived quantities
// of Eqs. 19-24.
type Table1Row struct {
	Provider  string
	Pref      privacy.Tuple
	Sens      privacy.Sensitivity
	Threshold float64 // v_i
	Wi        bool    // w_i (Table 1 rightmost column)
	Conf      float64 // Eqs. 20
	Defaults  bool    // Eqs. 21-23
}

// Table1Result is the full reproduction of the Sec. 8 worked example.
type Table1Result struct {
	Policy          privacy.Tuple // house tuple on Weight
	SigmaWeight     float64       // Σ^Weight = 4
	Rows            []Table1Row
	TotalViolations float64 // Σ_i Violation_i
	PW              float64
	PDefault        float64 // Eq. 24: 1/3
}

// table1Setup builds the Sec. 8 fixture. The paper leaves ⟨pr, v, g, r⟩
// abstract; we instantiate v=2, g=2, r=2 on the default scales so that
// every offset in Table 1 (v+2, g−1, r+3, …) is on-scale.
func table1Setup() (*core.Assessor, []*privacy.Prefs, privacy.Tuple) {
	const pr = privacy.Purpose("research")
	base := privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 2, Retention: 2}

	hp := privacy.NewHousePolicy("table1")
	hp.Add("Weight", base)
	hp.Add("Age", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})

	sigma := privacy.AttributeSensitivities{}
	sigma.Set("Weight", 4)
	sigma.Set("Age", 1)

	// Everyone's Age preferences bound the Age policy (the paper assumes
	// Age violates nobody).
	maxAge := privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: 3, Retention: 5}

	mk := func(name string, t privacy.Tuple, s privacy.Sensitivity, thresh float64) *privacy.Prefs {
		p := privacy.NewPrefs(name, thresh)
		p.Add("Weight", t)
		p.SetSensitivity("Weight", s)
		p.Add("Age", maxAge)
		return p
	}
	v, g, r := base.Visibility, base.Granularity, base.Retention
	alice := mk("Alice",
		privacy.Tuple{Purpose: pr, Visibility: v + 2, Granularity: g + 1, Retention: r + 3},
		privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1}, 10)
	ted := mk("Ted",
		privacy.Tuple{Purpose: pr, Visibility: v + 2, Granularity: g - 1, Retention: r + 2},
		privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 5, Retention: 2}, 50)
	bob := mk("Bob",
		privacy.Tuple{Purpose: pr, Visibility: v, Granularity: g - 1, Retention: r - 1},
		privacy.Sensitivity{Value: 4, Visibility: 1, Granularity: 3, Retention: 2}, 100)

	a, err := core.NewAssessor(hp, sigma, core.Options{})
	if err != nil {
		panic(err) // fixture is static; cannot fail
	}
	return a, []*privacy.Prefs{alice, ted, bob}, base
}

// Table1 reproduces the paper's Table 1 and Eqs. 19-24 exactly:
// conf(Alice)=0, conf(Ted)=60, conf(Bob)=80, defaults 0/1/0,
// P(Default)=1/3.
func Table1() Table1Result {
	assessor, pop, base := table1Setup()
	res := Table1Result{Policy: base, SigmaWeight: 4}
	rep := assessor.AssessPopulation(pop)
	for i, p := range pop {
		pr := rep.Providers[i]
		pref, _ := p.Find("Weight", "research")
		res.Rows = append(res.Rows, Table1Row{
			Provider:  p.Provider,
			Pref:      pref,
			Sens:      p.Sensitivity("Weight", "research"),
			Threshold: p.Threshold,
			Wi:        pr.Violated,
			Conf:      pr.Violation,
			Defaults:  pr.Defaults,
		})
	}
	res.TotalViolations = rep.TotalViolations
	res.PW = rep.PW
	res.PDefault = rep.PDefault
	return res
}

// PaperTable1 holds the published values for verification: conf per
// provider, default flags, and P(Default) = 1/3.
var PaperTable1 = map[string]struct {
	Conf     float64
	Wi       bool
	Defaults bool
}{
	"Alice": {0, false, false},
	"Ted":   {60, true, true},
	"Bob":   {80, true, false},
}

// Fprint renders the reproduction next to the published values.
func (r Table1Result) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "Table 1 / Eqs. 19-24 — worked example (Σ^Weight = %g, policy %s)\n\n",
		r.SigmaWeight, r.Policy)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		paper := PaperTable1[row.Provider]
		rows = append(rows, []string{
			row.Provider,
			row.Pref.String(),
			row.Sens.String(),
			f(row.Threshold),
			b(row.Wi),
			f(row.Conf), f(paper.Conf),
			b(row.Defaults), b(paper.Defaults),
		})
	}
	if err := WriteTable(w, []string{
		"provider", "pref tuple", "σ_i", "v_i", "w_i",
		"Violation_i", "paper", "default_i", "paper",
	}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nViolations (Eq. 16) = %g\nP(W) = %.4f\nP(Default) = %.4f (paper: 1/3 = 0.3333)\n",
		r.TotalViolations, r.PW, r.PDefault)
	return nil
}

// Matches reports whether the reproduction agrees with the published values.
func (r Table1Result) Matches() bool {
	for _, row := range r.Rows {
		paper, ok := PaperTable1[row.Provider]
		if !ok || !floatutil.Eq(row.Conf, paper.Conf) || row.Wi != paper.Wi || row.Defaults != paper.Defaults {
			return false
		}
	}
	return floatutil.Eq(r.TotalViolations, 140) && r.PDefault > 0.333 && r.PDefault < 0.334
}
