// Package cleandata has no findings under any checker; the driver
// integration test asserts exit code 0 against it.
package cleandata

import "sync"

// Box is a correctly locked container.
type Box struct {
	mu sync.Mutex
	v  int
}

// Set stores v.
func (b *Box) Set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.v = v
}

// Get loads the value.
func (b *Box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// Near compares floats with an explicit tolerance.
func Near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}
