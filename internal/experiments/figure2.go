package experiments

import (
	"fmt"
	"io"

	"repro/internal/generalize"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/relational"
)

// Figure2 walks the notation of Sec. 4 / Figure 2 on a live PPDB: the data
// table T = {t_1 … t_n} with attributes A^j, the house policy HP with its
// per-attribute extraction HP^j (Eq. 4), and each provider's ProviderPref_i
// with its per-datum extraction ProviderPref_i^j (Eq. 6). It serves as the
// end-to-end integration check that the formal objects are all reachable
// from a running database.
func Figure2(w io.Writer) error {
	doc, err := policydsl.Parse(`
policy "figure2" {
  attr provider {
    tuple purpose=research visibility=house granularity=specific retention=month
  }
  attr weight {
    tuple purpose=research visibility=house granularity=partial retention=month
  }
  attr age {
    tuple purpose=research visibility=house granularity=partial retention=month
    tuple purpose=care visibility=owner granularity=specific retention=year
  }
  sensitivity weight 4
  sensitivity age 1
}

provider "t1" threshold 25 {
  attr weight {
    sens value=2 v=1 g=2 r=1
    tuple purpose=research visibility=third-party granularity=specific retention=year
  }
  attr age {
    tuple purpose=research visibility=house granularity=partial retention=month
    tuple purpose=care visibility=owner granularity=specific retention=year
  }
}

provider "t2" threshold 5 {
  attr weight {
    sens value=3 v=2 g=3 r=1
    tuple purpose=research visibility=owner granularity=existential retention=week
  }
  attr age {
    tuple purpose=research visibility=house granularity=partial retention=month
    tuple purpose=care visibility=owner granularity=specific retention=year
  }
}
`)
	if err != nil {
		return err
	}

	weightH, err := generalize.NewNumericHierarchy(5, 2, 2)
	if err != nil {
		return err
	}
	ageH, err := generalize.NewNumericHierarchy(10, 2, 2)
	if err != nil {
		return err
	}
	db, err := ppdb.New(ppdb.Config{
		Policy:      doc.Policy,
		AttrSens:    doc.AttrSens,
		Hierarchies: map[string]generalize.Hierarchy{"weight": weightH, "age": ageH},
	})
	if err != nil {
		return err
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "age", Type: relational.TypeInt},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		return err
	}
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		return err
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			return err
		}
	}
	if _, err := db.Insert("t", "t1", relational.Row{relational.Text("t1"), relational.Int(34), relational.Float(61.5)}); err != nil {
		return err
	}
	if _, err := db.Insert("t", "t2", relational.Row{relational.Text("t2"), relational.Int(51), relational.Float(92)}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Figure 2 — notation walk-through on a live PPDB")
	fmt.Fprintln(w)

	// The data table T.
	res, err := db.Query(ppdb.AccessRequest{
		Requester: "figure2", Purpose: "research", Visibility: 2,
		SQL: "SELECT provider, age, weight FROM t ORDER BY provider",
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "T (as seen for purpose=research by a house-class requester; weight degraded to 'partial'):")
	rows := make([][]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.Display()
		}
		rows = append(rows, cells)
	}
	if err := WriteTable(w, res.Columns, rows); err != nil {
		return err
	}

	// HP and HP^weight (Eq. 4).
	fmt.Fprintf(w, "\nHP: %s\n", db.Policy())
	fmt.Fprintln(w, "\nHP^weight (Eq. 4):")
	for _, e := range db.Policy().ForAttribute("weight") {
		fmt.Fprintf(w, "  %s\n", e)
	}

	// ProviderPref_i and ProviderPref_i^weight (Eqs. 5-6).
	for _, name := range []string{"t1", "t2"} {
		p, _ := db.Provider(name)
		fmt.Fprintf(w, "\nProviderPref_%s^weight (Eq. 6):\n", name)
		for _, e := range p.ForAttribute("weight") {
			fmt.Fprintf(w, "  %s  σ=%s\n", e, p.Sensitivity("weight", e.Tuple.Purpose))
		}
	}

	// The violation assessment over the live registry.
	cert, err := db.Certify(0.5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAssessment: P(W) = %.3f, P(Default) = %.3f, Violations = %g, α=0.5-PPDB: %v\n",
		cert.Report.PW, cert.Report.PDefault, cert.Report.TotalViolations, cert.IsAlphaPPDB)
	return nil
}
