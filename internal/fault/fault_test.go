package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFaultDisarmedIsNil(t *testing.T) {
	defer Reset()
	if err := Point("never.armed"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestFaultArmError(t *testing.T) {
	defer Reset()
	ArmError("site.a", nil)
	if err := Point("site.a"); !errors.Is(err, ErrInjected) {
		t.Errorf("default arm = %v, want ErrInjected", err)
	}
	custom := errors.New("disk on fire")
	ArmError("site.a", custom)
	if err := Point("site.a"); !errors.Is(err, custom) {
		t.Errorf("custom arm = %v", err)
	}
	// Other sites are unaffected.
	if err := Point("site.b"); err != nil {
		t.Errorf("unarmed sibling = %v", err)
	}
	Disarm("site.a")
	if err := Point("site.a"); err != nil {
		t.Errorf("after disarm = %v", err)
	}
}

func TestFaultArmPanic(t *testing.T) {
	defer Reset()
	ArmPanic("site.p")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("armed panic site did not panic")
		}
		if s, ok := rec.(string); !ok || !strings.Contains(s, "site.p") {
			t.Errorf("panic value = %v, want the site name", rec)
		}
	}()
	//lint:ignore errflow the call panics; there is no error to receive
	Point("site.p")
}

func TestFaultArmCrash(t *testing.T) {
	defer Reset()
	ArmCrash("site.c")
	err := Point("site.c")
	if !IsCrash(err) {
		t.Fatalf("crash arm = %v, want IsCrash", err)
	}
	if !strings.Contains(err.Error(), "site.c") {
		t.Errorf("crash error %q does not name the site", err)
	}
	// A wrapped crash is still a crash; ordinary errors are not.
	if !IsCrash(fmt.Errorf("save: %w", err)) {
		t.Error("wrapped crash not detected")
	}
	if IsCrash(errors.New("plain")) || IsCrash(nil) {
		t.Error("IsCrash misfires on non-crash errors")
	}
}

func TestFaultTrace(t *testing.T) {
	defer Reset()
	StartTrace()
	for _, name := range []string{"t.one", "t.two", "t.one", "t.three"} {
		if err := Point(name); err != nil {
			t.Fatal(err)
		}
	}
	got := StopTrace()
	want := []string{"t.one", "t.two", "t.three"}
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
	// Tracing stopped: nothing more is recorded.
	if err := Point("t.four"); err != nil {
		t.Fatal(err)
	}
	if again := StopTrace(); len(again) != 0 {
		t.Errorf("after stop, trace = %v", again)
	}
}

func TestFaultReset(t *testing.T) {
	defer Reset()
	ArmError("r.a", nil)
	ArmCrash("r.b")
	StartTrace()
	Reset()
	if Armed("r.a") || Armed("r.b") {
		t.Error("Reset left sites armed")
	}
	if err := Point("r.a"); err != nil {
		t.Errorf("after reset = %v", err)
	}
	if trace := StopTrace(); len(trace) != 0 {
		t.Errorf("after reset, trace = %v", trace)
	}
}

// TestFaultConcurrency drives arms, disarms and hits from many goroutines;
// the -race pass over this package is part of CI.
func TestFaultConcurrency(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("conc.%d", g%4)
			for i := 0; i < 200; i++ {
				ArmError(name, nil)
				//lint:ignore errflow exercising the hit path; the value is irrelevant here
				Point(name)
				Disarm(name)
				//lint:ignore errflow exercising the disarmed fast path
				Point(name)
			}
		}(g)
	}
	wg.Wait()
}
