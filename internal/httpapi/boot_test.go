package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBootstrapRecovering pins the pre-swap surface: liveness up,
// readiness down with the "recovering" verdict, everything else shed with
// the envelope 503 and a Retry-After.
func TestBootstrapRecovering(t *testing.T) {
	b := NewBootstrap()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	for _, path := range []string{"/v1/healthz", "/healthz"} {
		if rec := get(path); rec.Code != http.StatusOK {
			t.Errorf("%s = %d during recovery, want 200", path, rec.Code)
		}
	}
	for _, path := range []string{"/v1/readyz", "/readyz"} {
		rec := get(path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s = %d during recovery, want 503", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "recovering") {
			t.Errorf("%s body = %s, want a recovering verdict", path, rec.Body)
		}
	}
	rec := get("/v1/certify")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/certify = %d during recovery, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response has no Retry-After")
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("shed response is not the error envelope: %v", err)
	}
	if !strings.Contains(body.Error.Message, "recovering") {
		t.Errorf("shed message = %q", body.Error.Message)
	}
}

// TestBootstrapSwap: after Set, every request reaches the real handler.
func TestBootstrapSwap(t *testing.T) {
	b := NewBootstrap()
	b.Set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	for _, path := range []string{"/v1/certify", "/v1/readyz", "/v1/healthz"} {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusTeapot {
			t.Errorf("%s = %d after swap, want the delegate's 418", path, rec.Code)
		}
	}
}
