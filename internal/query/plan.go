package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// colUse is one referenced column resolved against the catalog: its schema
// position, the attribute it discloses, and the policy tuple governing that
// attribute for the request purpose (resolved once here, so the per-row
// loop does no purpose matching).
type colUse struct {
	col       string // canonical column name
	idx       int    // schema column index
	attr      string // canonical attribute
	ref       core.PolicyTupleRef
	projected bool
}

// planItem is one output column: its label and the colUse it discloses.
type planItem struct {
	name string
	use  int // index into plan.uses
}

// plan is a validated, policy-gated single-table SELECT ready to execute.
type plan struct {
	req     Request
	binding *TableBinding
	schema  *relational.Schema
	provIdx int // schema index of the provider-key column

	items   []planItem
	uses    []colUse
	where   relational.Expr
	orderBy []relational.OrderItem
	limit   int
	offset  int

	// env maps every accepted spelling (bare, table-qualified,
	// alias-qualified) of a referenced column to its schema index.
	env map[string]int

	// Index scan: a top-level equality on an indexed column narrows the
	// scan to Table.Lookup.
	idxCol string
	idxVal relational.Value
	useIdx bool
}

// Plan parses, validates and policy-gates one request. Errors are
// *UnenforceableError for statements per-datum enforcement cannot prove
// conformant, *DeniedError for purpose/visibility refusals, and plain
// errors for malformed input.
func (e *Engine) Plan(req Request) (*plan, error) {
	st, err := relational.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(relational.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("query: only SELECT is allowed through the enforced path")
	}
	if len(sel.Joins) > 0 {
		return nil, &UnenforceableError{Construct: "JOIN", Reason: "joined cells cannot be attributed to a single provider row"}
	}
	if sel.Distinct {
		return nil, &UnenforceableError{Construct: "DISTINCT", Reason: "deduplication mixes cells across providers"}
	}
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, &UnenforceableError{Construct: "GROUP BY", Reason: "grouped cells aggregate across providers"}
	}

	b, ok := e.cat.Lookup(sel.From.Table)
	if !ok {
		return nil, fmt.Errorf("query: table %q is not registered", sel.From.Table)
	}
	p := &plan{
		req:     req,
		binding: b,
		schema:  b.Table.Schema(),
		where:   sel.Where,
		orderBy: sel.OrderBy,
		limit:   sel.Limit,
		offset:  sel.Offset,
		env:     make(map[string]int),
	}
	p.provIdx, _ = p.schema.ColumnIndex(b.ProviderCol)

	tname := strings.ToLower(b.Table.Name())
	alias := strings.ToLower(sel.From.Alias)
	useIdx := make(map[string]int) // canonical column → index into p.uses
	resolve := func(name string, projected bool) (int, error) {
		col := privacy.CanonAttr(name)
		if dot := strings.LastIndex(col, "."); dot >= 0 {
			qual := col[:dot]
			if qual != tname && qual != alias {
				return 0, fmt.Errorf("query: unknown table qualifier %q in column %q", qual, name)
			}
			col = col[dot+1:]
		}
		idx, ok := p.schema.ColumnIndex(col)
		if !ok {
			return 0, fmt.Errorf("query: table %q has no column %q", tname, name)
		}
		ui, seen := useIdx[col]
		if !seen {
			ui = len(p.uses)
			useIdx[col] = ui
			p.uses = append(p.uses, colUse{col: col, idx: idx, attr: b.Attribute(col)})
			p.env[col] = idx
			p.env[tname+"."+col] = idx
			if alias != "" {
				p.env[alias+"."+col] = idx
			}
		}
		if projected {
			p.uses[ui].projected = true
		}
		return ui, nil
	}

	// Projection: plain column references only — every output cell must
	// bind to exactly one (provider, attribute) datum.
	for _, it := range sel.Items {
		if it.Star {
			for _, c := range p.schema.Columns() {
				ui, err := resolve(c.Name, true)
				if err != nil {
					return nil, err
				}
				p.items = append(p.items, planItem{name: c.Name, use: ui})
			}
			continue
		}
		cr, ok := it.Expr.(relational.ColRef)
		if !ok {
			return nil, &UnenforceableError{
				Construct: it.Expr.String(),
				Reason:    "projections must be plain columns so each answer cell binds to one (provider, attribute) datum",
			}
		}
		ui, err := resolve(cr.Name, true)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = p.uses[ui].col
		}
		p.items = append(p.items, planItem{name: name, use: ui})
	}

	// WHERE and ORDER BY may use expressions, but only over resolvable
	// columns — and never aggregates or subqueries.
	if sel.Where != nil {
		if err := collectCols(sel.Where, resolve); err != nil {
			return nil, err
		}
	}
	for _, o := range sel.OrderBy {
		if err := collectCols(o.Expr, resolve); err != nil {
			return nil, err
		}
	}

	// Policy gate, in sorted attribute order for deterministic denials:
	// every referenced attribute needs a policy tuple for the purpose, and
	// that tuple must admit the requester's visibility class.
	order := make([]int, len(p.uses))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return p.uses[order[i]].attr < p.uses[order[j]].attr })
	pr := req.Purpose.Normalize()
	for _, i := range order {
		u := &p.uses[i]
		ref, found := e.asr.FindPolicyTuple(u.attr, pr)
		if !found {
			return nil, &DeniedError{Attribute: u.attr, Reason: fmt.Sprintf("no policy tuple for purpose %q", pr)}
		}
		if ref.Tuple.Visibility < req.Visibility {
			return nil, &DeniedError{
				Attribute: u.attr,
				Reason: fmt.Sprintf("policy visibility %d does not admit requester class %d",
					ref.Tuple.Visibility, req.Visibility),
			}
		}
		u.ref = ref
	}

	p.pickIndex(e.src.HasHierarchy)
	return p, nil
}

// collectCols walks an expression, resolving every column reference and
// rejecting nodes whose evaluation cannot be attributed per datum.
func collectCols(ex relational.Expr, resolve func(string, bool) (int, error)) error {
	switch x := ex.(type) {
	case relational.ColRef:
		_, err := resolve(x.Name, false)
		return err
	case relational.Literal:
		return nil
	case relational.Binary:
		if err := collectCols(x.L, resolve); err != nil {
			return err
		}
		return collectCols(x.R, resolve)
	case relational.Unary:
		return collectCols(x.X, resolve)
	case relational.IsNull:
		return collectCols(x.X, resolve)
	case relational.In:
		if err := collectCols(x.X, resolve); err != nil {
			return err
		}
		for _, item := range x.List {
			if err := collectCols(item, resolve); err != nil {
				return err
			}
		}
		return nil
	case relational.InSubquery:
		return &UnenforceableError{Construct: "IN (SELECT …)", Reason: "subqueries read data outside the gated table"}
	case relational.Agg:
		return &UnenforceableError{Construct: x.String(), Reason: "aggregates mix cells across providers"}
	default:
		return &UnenforceableError{Construct: ex.String(), Reason: "unsupported expression"}
	}
}

// pickIndex looks for a top-level equality conjunct on an indexed column
// and, finding one, narrows the executor from a full scan to Table.Lookup.
// Columns whose attribute has a generalization hierarchy never qualify:
// the index matches raw stored values while WHERE evaluates the disclosed
// view, so a probe for a generalized label (`WHERE city = 'MA'` when
// 'Boston' discloses as 'MA') would miss rows a full scan answers — the
// physical plan must not change the relation.
func (p *plan) pickIndex(hasHierarchy func(attr string) bool) {
	for _, conj := range conjuncts(p.where) {
		bin, ok := conj.(relational.Binary)
		if !ok || bin.Op != relational.OpEq {
			continue
		}
		col, val, ok := colEqLiteral(bin)
		if !ok {
			continue
		}
		idx, found := p.env[privacy.CanonAttr(col)]
		if !found {
			continue
		}
		name := p.schema.Column(idx).Name
		if !p.binding.Table.HasIndex(name) {
			continue
		}
		if hasHierarchy(p.binding.Attribute(name)) {
			continue
		}
		p.idxCol, p.idxVal, p.useIdx = name, val, true
		return
	}
}

// conjuncts flattens a WHERE tree's top-level AND chain.
func conjuncts(ex relational.Expr) []relational.Expr {
	if ex == nil {
		return nil
	}
	if bin, ok := ex.(relational.Binary); ok && bin.Op == relational.OpAnd {
		return append(conjuncts(bin.L), conjuncts(bin.R)...)
	}
	return []relational.Expr{ex}
}

// colEqLiteral matches `col = literal` (either side) and returns the parts.
func colEqLiteral(bin relational.Binary) (string, relational.Value, bool) {
	if cr, ok := bin.L.(relational.ColRef); ok {
		if lit, ok := bin.R.(relational.Literal); ok {
			return cr.Name, lit.Val, true
		}
	}
	if cr, ok := bin.R.(relational.ColRef); ok {
		if lit, ok := bin.L.(relational.Literal); ok {
			return cr.Name, lit.Val, true
		}
	}
	return "", relational.Null(), false
}
