package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/ppdb"
	"repro/internal/wal"
)

func TestBuildAndServe(t *testing.T) {
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	db, err := build(corpus, "records", "provider", "weight,condition", 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := httpapi.New(db)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/certify?alpha=0.5", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("certify = %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "IsAlphaPPDB") {
		t.Errorf("body = %s", rec.Body)
	}
	// The policy endpoint serves the corpus policy.
	req = httptest.NewRequest(http.MethodGet, "/policy", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "clinic-v1") {
		t.Errorf("policy = %s", rec.Body)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", "t", "k", "", 0); err == nil {
		t.Error("missing corpus should fail")
	}
	if _, err := build("nope.dsl", "t", "k", "", 0); err == nil {
		t.Error("unreadable corpus should fail")
	}
	tmp := filepath.Join(t.TempDir(), "noprov.dsl")
	if err := writeFile(tmp, `provider "a" threshold 5 { }`); err != nil {
		t.Fatal(err)
	}
	if _, err := build(tmp, "t", "k", "", 0); err == nil {
		t.Error("policyless corpus should fail")
	}
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	if _, err := build(corpus, "t", "", "a", 0); err == nil {
		t.Error("empty key column should fail")
	}
	if _, err := build(corpus, "t", "k", "k", 0); err == nil {
		t.Error("duplicate column should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestLoadBoot(t *testing.T) {
	// Save a built DB and boot from the snapshot directory, as
	// `ppdbserver -load` does; an empty directory must fail.
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	db, err := build(corpus, "records", "provider", "weight", 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := ppdb.Load(dir, ppdb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Providers()) != len(db.Providers()) {
		t.Errorf("providers = %d, want %d", len(db2.Providers()), len(db.Providers()))
	}
	if _, err := ppdb.Load(t.TempDir(), ppdb.Config{}); err == nil {
		t.Error("empty state dir should fail")
	}
}

// TestServeGracefulDrain proves the acceptance criterion: SIGTERM flips
// readiness, drains the in-flight request to completion, writes a final
// snapshot and returns nil. The in-flight request is held open by feeding
// its body one half at a time over a raw connection.
func TestServeGracefulDrain(t *testing.T) {
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	db, err := build(corpus, "records", "provider", "weight", 0)
	if err != nil {
		t.Fatal(err)
	}
	api, err := httpapi.New(db)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(t.TempDir(), "snap")
	done := make(chan error, 1)
	go func() { done <- serve(ln, api, db, snapDir, 0, 5*time.Second) }()

	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)

	// Open the in-flight request: headers plus half the body, so the
	// handler is parked mid-read when the signal lands.
	body := `{"purpose":"care","visibility":2,"sql":"SELECT weight FROM records"}`
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /query HTTP/1.1\r\nHost: ppdb\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		len(body), body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server route the request

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// While draining, readiness is down but the listener still answers.
	waitDraining(t, base)

	// Complete the in-flight request: it must be served, not cut off.
	if _, err := io.WriteString(conn, body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("reading drained response: %v", err)
	}
	if !strings.Contains(string(resp), "200 OK") {
		t.Errorf("in-flight request was not drained: %s", resp)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after SIGTERM")
	}
	// The final snapshot landed and is loadable.
	if _, err := ppdb.Load(snapDir, ppdb.Config{}); err != nil {
		t.Errorf("final snapshot unusable: %v", err)
	}
}

// TestServePeriodicSnapshot checks the -snapshot-interval loop persists
// without any signal involved.
func TestServePeriodicSnapshot(t *testing.T) {
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	db, err := build(corpus, "records", "provider", "weight", 0)
	if err != nil {
		t.Fatal(err)
	}
	api, err := httpapi.New(db)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(t.TempDir(), "snap")
	done := make(chan error, 1)
	go func() { done <- serve(ln, api, db, snapDir, 30*time.Millisecond, 5*time.Second) }()
	waitHealthy(t, "http://"+ln.Addr().String())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(snapDir, "MANIFEST.json")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshot appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after SIGTERM")
	}
	if _, err := ppdb.Load(snapDir, ppdb.Config{}); err != nil {
		t.Errorf("periodic snapshot unusable: %v", err)
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitDraining(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				return
			}
		}
		// The listener may already be closed to new connections; that is
		// also evidence the drain began.
		if err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPprofHandler pins the private profiling mux: the pprof index is
// served, and it never leaks onto the service handler.
func TestPprofHandler(t *testing.T) {
	srv := httptest.NewServer(pprofHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index body missing profile list: %.200s", body)
	}

	// The service handler must not expose the debug routes.
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	db, err := build(corpus, "records", "provider", "weight", 0)
	if err != nil {
		t.Fatal(err)
	}
	api, err := httpapi.New(db)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("service handler serves /debug/pprof/: %d", rec.Code)
	}
}

// TestServeBootstrapAndWALRestart is the end-to-end durability loop: the
// listener answers "recovering" before the API swaps in, a provider
// registered over HTTP is WAL-durable before the 200 is written, and a
// restarted process replays it from the log with no snapshot involved.
func TestServeBootstrapAndWALRestart(t *testing.T) {
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := build(corpus, "records", "provider", "weight", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(wal.Options{Dir: walDir, SyncEvery: 1, SyncInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	api, err := httpapi.New(db)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	boot := httpapi.NewBootstrap()
	srv, errc := startServer(ln, boot)
	base := "http://" + ln.Addr().String()

	// Before the swap: alive, not ready, everything else shed.
	waitHealthy(t, base)
	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := status("/v1/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") {
		t.Errorf("recovering readyz = %d %s", code, body)
	}
	if code, _ := status("/v1/certify"); code != http.StatusServiceUnavailable {
		t.Errorf("recovering certify = %d, want 503", code)
	}

	boot.Set(api)
	if code, _ := status("/v1/readyz"); code != http.StatusOK {
		t.Errorf("post-swap readyz = %d, want 200", code)
	}

	done := make(chan error, 1)
	go func() { done <- run(srv, errc, api, db, "", 0, 5*time.Second) }()

	// A mutation served over HTTP is durable once acknowledged.
	block := `provider "walter" threshold 50 {
  attr weight {
    tuple purpose=care visibility=house granularity=specific retention=year
  }
}`
	resp, err := http.Post(base+"/v1/providers", "text/plain", strings.NewReader(block))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}

	// Restart: same corpus, same log — the HTTP-registered provider is
	// replayed even though no snapshot was ever written.
	db2, err := build(corpus, "records", "provider", "weight", 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.AttachWAL(wal.Options{Dir: walDir, SyncEvery: 1, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("restart replay: %v", err)
	}
	defer db2.CloseWAL()
	if n == 0 {
		t.Fatal("restart replayed no records")
	}
	found := false
	for _, p := range db2.Providers() {
		if p.Provider == "walter" {
			found = true
		}
	}
	if !found {
		t.Error("provider registered over HTTP lost across restart")
	}
}
