#!/bin/sh
# Certification benchmark harness: runs BenchmarkCertifyCold /
# BenchmarkCertifyIncremental / BenchmarkCertifySummary (see bench_test.go)
# and records ns/op plus the cold→incremental speedup per population size
# into BENCH_certify.json at the repo root. Wired as `make bench`; not part
# of `make check`.
#
# BENCHTIME overrides -benchtime (e.g. BENCHTIME=10x for a quick smoke run).
set -eu

cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench '^BenchmarkCertify(Cold|Incremental|Summary)' \
	-benchtime "${BENCHTIME:-1s}" -benchmem -timeout 30m .)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
/^BenchmarkCertify/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	names[++n] = name
	vals[name] = $3
}
END {
	printf "{\n  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n", \
			names[i], vals[names[i]], (i < n ? "," : "")
	}
	printf "  ],\n  \"speedup_cold_over_incremental\": {"
	sep = ""
	for (i = 1; i <= n; i++) {
		if (names[i] ~ /Cold\//) {
			size = names[i]; sub(/.*\//, "", size)
			inc = "BenchmarkCertifyIncremental/" size
			if (inc in vals && vals[inc] + 0 > 0) {
				printf "%s\"%s\": %.2f", sep, size, vals[names[i]] / vals[inc]
				sep = ", "
			}
		}
	}
	printf "}\n}\n"
}' > BENCH_certify.json

echo "wrote BENCH_certify.json"
