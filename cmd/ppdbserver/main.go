// Command ppdbserver serves a PPDB over HTTP (see internal/httpapi for the
// endpoint reference). It boots from a DSL corpus: the policy block becomes
// the house policy, the provider blocks are registered, and one table is
// created with the named columns (all FLOAT except the provider key).
//
// Usage:
//
//	ppdbserver -corpus corpus.dsl -table records -key provider -cols weight,condition -addr :8080
//
// Then:
//
//	curl -X POST localhost:8080/v1/query -d '{"purpose":"care","visibility":2,"sql":"SELECT ..."}'
//	curl localhost:8080/v1/certify?alpha=0.1
//	curl -X POST localhost:8080/v1/whatif -d '{"u":10,"diff":{"retarget":[...]}}'
//	curl localhost:8080/v1/routes
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/metrics
//
// (The pre-/v1 unversioned paths still answer, with Deprecation: true and
// RFC 8594 Sunset headers; see API.md.) -shards controls how many provider-store/ledger
// shards back the DB — 0, the default, means one per CPU; 1 reproduces the
// serial pre-sharding behavior. Certification output is byte-identical for
// every value.
//
// Lifecycle: the listener binds immediately and serves a bootstrap handler
// while the store recovers (snapshot load plus WAL replay): /healthz is up,
// /readyz answers 503 {"status":"recovering"}, everything else is shed with
// a 503 + Retry-After. The real API swaps in once recovery completes.
// SIGINT/SIGTERM flips /readyz to 503, drains in-flight requests for up to
// -drain-timeout, writes a final checkpoint (when a snapshot directory is
// configured) and exits cleanly. -snapshot-interval checkpoints the
// database periodically from a background goroutine through ppdb.Save's
// crash-safe atomic path — skipping when nothing changed since the last
// checkpoint — so a `ppdbserver -load <dir>` restart always finds a
// verifiable generation.
//
// Durability (DESIGN.md §14): -wal-dir arms a write-ahead log — every
// provider/policy/clock/sweep mutation is fsync-durable (group commit,
// tuned by -wal-sync-interval / -wal-sync-every) before the request is
// acknowledged, and a restart replays the log tail over the newest
// snapshot, so acknowledged mutations survive a kill -9 between
// checkpoints. Checkpoints prune replayed WAL segments.
//
// Observability (DESIGN.md §10): GET /metrics serves the process metrics
// (request, ledger, persistence, and the paper's P(W)/P(Default)/N
// gauges); every request is logged as one structured key=value line
// unless -access-log=false; -pprof-addr serves net/http/pprof on a
// second, normally firewalled listener — profiling stays opt-in and off
// the public port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/kvlog"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/relational"
	"repro/internal/wal"
)

func main() {
	corpus := flag.String("corpus", "", "DSL corpus with the policy and initial providers")
	load := flag.String("load", "", "boot from a directory written by ppdb.Save (overrides -corpus)")
	table := flag.String("table", "records", "table name to create")
	key := flag.String("key", "provider", "provider-identity column (TEXT PRIMARY KEY)")
	cols := flag.String("cols", "", "comma-separated FLOAT data columns")
	addr := flag.String("addr", ":8080", "listen address")
	snapshotDir := flag.String("snapshot-dir", "", "directory for periodic/final snapshots (defaults to the -load directory)")
	snapshotEvery := flag.Duration("snapshot-interval", 0, "persist a snapshot this often (0 disables periodic snapshots)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it firewalled)")
	accessLog := flag.Bool("access-log", true, "log one structured key=value line per request")
	operatorToken := flag.String("operator-token", "", "token granting the operator privilege (X-Operator-Token header): EXPLAIN traces and exact index-scan counts on POST /v1/query (empty disables both)")
	shards := flag.Int("shards", 0, "provider-store/ledger shards and certification fan-out width (0 = one per CPU, 1 = serial)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: mutations are fsync-durable before acknowledgment and replay on restart (empty disables the WAL)")
	walSyncInterval := flag.Duration("wal-sync-interval", 2*time.Millisecond, "WAL group-commit fsync interval")
	walSyncEvery := flag.Int("wal-sync-every", 64, "fsync once this many WAL records are pending, even before the interval elapses")
	flag.Parse()

	if *snapshotEvery > 0 && *snapshotDir == "" && *load == "" {
		fmt.Fprintln(os.Stderr, "ppdbserver: -snapshot-interval needs -snapshot-dir (or -load)")
		os.Exit(1)
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppdbserver: pprof listener: %v\n", err)
			os.Exit(1)
		}
		log.Print(kvlog.Line("event", "pprof_listening", "addr", pln.Addr()))
		//lint:ignore fanout[the pprof listener is deliberately fire-and-forget for the process lifetime; its exit is logged and must not stall startup]
		go func() {
			// The pprof listener dying must not take the service down:
			// log it and keep serving the main port.
			err := http.Serve(pln, pprofHandler())
			log.Print(kvlog.Line("event", "pprof_server_exit", "err", err))
		}()
	}

	// Bind and answer probes immediately; the store recovers behind the
	// bootstrap handler, which reports "recovering" until the swap.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	log.Print(kvlog.Line("event", "listening", "addr", ln.Addr()))
	boot := httpapi.NewBootstrap()
	srv, errc := startServer(ln, boot)

	var db *ppdb.DB
	if *load != "" {
		db, err = ppdb.Load(*load, ppdb.Config{Shards: *shards})
		if *snapshotDir == "" {
			*snapshotDir = *load
		}
	} else {
		db, err = build(*corpus, *table, *key, *cols, *shards)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	if *walDir != "" {
		n, err := db.AttachWAL(wal.Options{
			Dir:          *walDir,
			SyncInterval: *walSyncInterval,
			SyncEvery:    *walSyncEvery,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppdbserver: wal: %v\n", err)
			os.Exit(1)
		}
		log.Print(kvlog.Line("event", "wal_recovered", "dir", *walDir, "replayed", n))
	}
	opts := httpapi.Options{OperatorToken: *operatorToken}
	if *accessLog {
		opts.RequestLog = log.Default()
	}
	api, err := httpapi.NewWith(db, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	boot.Set(api)
	log.Print(kvlog.Line("event", "ready"))
	if err := run(srv, errc, api, db, *snapshotDir, *snapshotEvery, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
}

// pprofHandler is the opt-in profiling surface behind -pprof-addr: the
// standard net/http/pprof routes on a private mux, so nothing profiling-
// related ever registers on the service listener.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startServer wraps a handler in an http.Server with conservative timeouts
// and starts serving the already-bound listener. The returned channel
// yields Serve's exit error.
func startServer(ln net.Listener, h http.Handler) (*http.Server, <-chan error) {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	//lint:ignore fanout[the serve loop runs for the process lifetime; run() reaps its exit through errc]
	go func() { errc <- srv.Serve(ln) }()
	return srv, errc
}

// serve runs the full lifecycle on an already-bound listener with the API
// ready from the start (no recovery window). main uses startServer+run
// directly so the bootstrap handler can answer during recovery.
func serve(ln net.Listener, api *httpapi.Server, db *ppdb.DB, snapDir string, every, drainTimeout time.Duration) error {
	srv, errc := startServer(ln, api)
	return run(srv, errc, api, db, snapDir, every, drainTimeout)
}

// run is the hardened lifecycle of a serving process: a background
// checkpoint goroutine (periodic crash-safe snapshots that skip when
// nothing changed since the last one, and prune replayed WAL segments) and
// a SIGINT/SIGTERM graceful drain ending in a final checkpoint and WAL
// close. It returns nil on a clean drained shutdown.
func run(srv *http.Server, errc <-chan error, api *httpapi.Server, db *ppdb.DB, snapDir string, every, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The checkpointer runs off the serve loop so a slow Save never blocks
	// signal handling; Checkpoint itself serializes concurrent calls and
	// lets mutations proceed while it renders.
	var ckptQuit, ckptDone chan struct{}
	if every > 0 && snapDir != "" {
		ckptQuit, ckptDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(ckptDone)
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if wrote, err := db.Checkpoint(snapDir); err != nil {
						log.Print(kvlog.Line("event", "snapshot_error", "kind", "periodic", "dir", snapDir, "err", err))
					} else if wrote {
						log.Print(kvlog.Line("event", "snapshot_written", "kind", "periodic", "dir", snapDir))
					}
				case <-ckptQuit:
					return
				}
			}
		}()
	}

	select {
	case err := <-errc:
		// The listener died under us (Serve never returns nil, and
		// nothing else calls Shutdown): surface it.
		if ckptQuit != nil {
			close(ckptQuit)
			<-ckptDone
		}
		return err
	case <-ctx.Done():
		stop() // a second signal now kills the process the default way
		log.Print(kvlog.Line("event", "shutdown", "drain_timeout", drainTimeout))
		api.SetReady(false)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(sctx)
		if ckptQuit != nil {
			close(ckptQuit)
			<-ckptDone
		}
		if snapDir != "" {
			if wrote, serr := db.Checkpoint(snapDir); serr != nil {
				log.Print(kvlog.Line("event", "snapshot_error", "kind", "final", "dir", snapDir, "err", serr))
			} else if wrote {
				log.Print(kvlog.Line("event", "snapshot_written", "kind", "final", "dir", snapDir))
			}
		}
		if db.WALAttached() {
			if cerr := db.CloseWAL(); cerr != nil {
				log.Print(kvlog.Line("event", "wal_close_error", "err", cerr))
			}
		}
		<-errc // reap the Serve goroutine (http.ErrServerClosed)
		if err != nil {
			return fmt.Errorf("drain incomplete after %s: %w", drainTimeout, err)
		}
		log.Print(kvlog.Line("event", "drained"))
		return nil
	}
}

// build assembles the PPDB from the flags.
func build(corpusPath, table, key, cols string, shards int) (*ppdb.DB, error) {
	if corpusPath == "" {
		return nil, fmt.Errorf("-corpus is required")
	}
	src, err := os.ReadFile(corpusPath)
	if err != nil {
		return nil, err
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	if doc.Policy == nil {
		return nil, fmt.Errorf("corpus has no policy block")
	}
	db, err := ppdb.New(ppdb.Config{Policy: doc.Policy, AttrSens: doc.AttrSens, Shards: shards})
	if err != nil {
		return nil, err
	}
	columns := []relational.Column{{Name: key, Type: relational.TypeText, PrimaryKey: true}}
	for _, c := range strings.Split(cols, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		columns = append(columns, relational.Column{Name: c, Type: relational.TypeFloat})
	}
	schema, err := relational.NewSchema(columns)
	if err != nil {
		return nil, err
	}
	if err := db.RegisterTable(table, schema, key); err != nil {
		return nil, err
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			return nil, err
		}
	}
	return db, nil
}
